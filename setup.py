"""Setuptools shim.

The execution environment is offline and lacks the ``wheel`` package,
so PEP-660 editable installs (``pip install -e .``) cannot build; this
shim lets ``python setup.py develop`` (which pip falls back to with
``--no-use-pep517``) install the package in editable mode.  All real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
