"""Kube-Knots reproduction: GPU-aware dynamic container orchestration.

A full Python reproduction of *"Kube-Knots: Resource Harvesting through
Dynamic Container Orchestration in GPU-based Datacenters"* (Thinakaran
et al., IEEE CLUSTER 2019), including every substrate the paper runs
on: a discrete-event GPU cluster simulator, a Kubernetes-like
orchestration layer, the Knots telemetry plane (NVML sampler + per-node
TSDB + head-node aggregator), the CBP and Peak Prediction schedulers,
the Uniform / Res-Ag / Gandiva / Tiresias baselines, the Rodinia /
Djinn&Tonic / Alibaba workload models, and a benchmark harness that
regenerates every figure and table of the paper's evaluation.

Quick start::

    from repro import run_appmix, make_scheduler
    result = run_appmix("app-mix-1", make_scheduler("peak-prediction"),
                        duration_s=10.0, seed=1)
    print(result.qos_violations_per_kilo(), result.total_energy_j())
"""

from repro.cluster.cluster import Cluster, make_heterogeneous_cluster, make_paper_cluster
from repro.core.knots import Knots, KnotsConfig
from repro.core.orchestrator import KubeKnots
from repro.core.schedulers import (
    CBPScheduler,
    PeakPredictionScheduler,
    ResourceAgnosticScheduler,
    Scheduler,
    UniformScheduler,
    make_scheduler,
)
from repro.sim.simulator import KubeKnotsSimulator, SimConfig, SimResult, run_appmix
from repro.workloads.appmix import APP_MIXES, generate_appmix_workload

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "make_paper_cluster",
    "make_heterogeneous_cluster",
    "Knots",
    "KnotsConfig",
    "KubeKnots",
    "Scheduler",
    "UniformScheduler",
    "ResourceAgnosticScheduler",
    "CBPScheduler",
    "PeakPredictionScheduler",
    "make_scheduler",
    "KubeKnotsSimulator",
    "SimConfig",
    "SimResult",
    "run_appmix",
    "APP_MIXES",
    "generate_appmix_workload",
    "__version__",
]
