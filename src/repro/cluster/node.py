"""Worker and head node models.

A :class:`GpuNode` is a Dell-R730-like worker: a CPU host plus one or
more GPUs and a node-local time-series database into which the Knots
monitor logs telemetry (the paper runs one InfluxDB per worker).  The
head node runs the Kubernetes control plane and the Knots utilization
aggregator and has no GPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cluster.gpu import GPU
from repro.cluster.power import GpuPowerModel

__all__ = ["GpuSpec", "GPU_MODELS", "HostSpec", "GpuNode", "HeadNode"]


@dataclass(frozen=True)
class GpuSpec:
    """Catalogue entry for a GPU model (the paper's cluster mixes these)."""

    model: str
    mem_mb: float
    tdp_watts: float
    idle_watts: float = 25.0

    def build(self, gpu_id: str) -> GPU:
        return GPU(
            gpu_id=gpu_id,
            mem_capacity_mb=self.mem_mb,
            power_model=GpuPowerModel(tdp_watts=self.tdp_watts, idle_watts=self.idle_watts),
        )


#: GPU models shown in the Kube-Knots design figure (Fig. 5).
GPU_MODELS: dict[str, GpuSpec] = {
    "P100": GpuSpec("P100", mem_mb=16_384, tdp_watts=250.0),
    "V100": GpuSpec("V100", mem_mb=32_768, tdp_watts=300.0),
    "M40": GpuSpec("M40", mem_mb=12_288, tdp_watts=250.0),
    "K80": GpuSpec("K80", mem_mb=12_288, tdp_watts=300.0),
}


@dataclass(frozen=True)
class HostSpec:
    """CPU host configuration (Table II)."""

    cpu_model: str = "Xeon E5-2670"
    cores: int = 24          # 12 cores x 2 threads
    clock_ghz: float = 2.3
    dram_gb: int = 192


class GpuNode:
    """A GPU worker node."""

    def __init__(
        self,
        node_id: str,
        gpus: Sequence[GPU],
        host: HostSpec | None = None,
    ) -> None:
        if not gpus:
            raise ValueError("a GpuNode needs at least one GPU")
        self.node_id = node_id
        self.gpus: list[GPU] = list(gpus)
        self.host = host or HostSpec()

    @classmethod
    def build(
        cls,
        node_id: str,
        gpu_model: str = "P100",
        num_gpus: int = 1,
        host: HostSpec | None = None,
    ) -> "GpuNode":
        spec = GPU_MODELS[gpu_model]
        gpus = [spec.build(f"{node_id}/gpu{i}") for i in range(num_gpus)]
        return cls(node_id, gpus, host)

    @property
    def total_gpu_mem_mb(self) -> float:
        return sum(g.mem_capacity_mb for g in self.gpus)

    @property
    def free_gpu_mem_mb(self) -> float:
        return sum(g.free_mem_mb for g in self.gpus)

    @property
    def num_containers(self) -> int:
        return sum(len(g.containers) for g in self.gpus)

    def is_active(self) -> bool:
        """A node is *active* when any of its GPUs is awake.

        The PP scheduler only considers active GPUs (Algorithm 1) and
        leaves drained ones in deep sleep for energy savings.
        """
        return any(not g.asleep for g in self.gpus)

    def find_gpu(self, gpu_id: str) -> GPU:
        for g in self.gpus:
            if g.gpu_id == gpu_id:
                return g
        raise KeyError(f"no GPU {gpu_id} on node {self.node_id}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GpuNode({self.node_id!r}, {len(self.gpus)} GPUs)"


@dataclass
class HeadNode:
    """The CPU-only control-plane node (runs Kubernetes + Knots aggregator)."""

    node_id: str = "head"
    host: HostSpec = field(default_factory=HostSpec)
