"""GPU cluster substrate: devices, nodes, power models."""

from repro.cluster.cluster import Cluster, make_heterogeneous_cluster, make_paper_cluster
from repro.cluster.gpu import GPU, CapacityViolation, GpuSample
from repro.cluster.node import GPU_MODELS, GpuNode, GpuSpec, HeadNode, HostSpec
from repro.cluster.power import CpuEfficiencyModel, GpuPowerModel, SANDY_BRIDGE, WESTMERE

__all__ = [
    "Cluster",
    "make_paper_cluster",
    "make_heterogeneous_cluster",
    "GPU",
    "GpuSample",
    "CapacityViolation",
    "GpuNode",
    "GpuSpec",
    "HeadNode",
    "HostSpec",
    "GPU_MODELS",
    "GpuPowerModel",
    "CpuEfficiencyModel",
    "SANDY_BRIDGE",
    "WESTMERE",
]
