"""Simulated GPU device.

Models the sharing semantics the paper builds on:

* **SM (compute) is time-shared, with interference.**  If co-located
  containers together demand more than the device's SMs, each receives
  a proportional share.  On top of that, every container pays an
  interference tax proportional to its co-runners' compute activity:
  GPU kernels are non-preemptive and GPU contexts are orders of
  magnitude larger than CPU contexts (caches are VIVT and flushed on
  every switch — paper Sec. I), so merely sharing a device with busy
  neighbours slows a container even when raw SM capacity would suffice.
  This is the noisy-neighbour effect that makes utilization-agnostic
  co-location dangerous for latency-critical queries.
* **Memory is space-shared.**  Allocations are reservations used for
  admission; *usage* is what the running phase actually touches.  If
  the summed usage exceeds physical capacity the device raises a
  capacity violation and the youngest-grown container is OOM-killed —
  the failure mode Res-Ag suffers and CBP/PP are designed to avoid.
* **PCIe bandwidth is shared** and saturates at the link rate.
* **Power** follows the linear model of :mod:`repro.cluster.power`,
  including a deep-sleep state (``p_state 12``) the orchestrator uses
  for drained devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.cluster.power import GpuPowerModel
from repro.workloads.base import ResourceDemand

__all__ = ["GPU", "GpuSample", "ContainerAllocation", "CapacityViolation"]

#: PCIe gen3 x16 practical link rate, MB/s (per direction).
PCIE_LINK_MBPS = 12_000.0


@dataclass(frozen=True)
class GpuSample:
    """One telemetry sample — the five metrics Knots logs (Sec. IV-A)."""

    sm_util: float          # [0, 1]
    mem_used_mb: float
    mem_util: float         # [0, 1]
    power_w: float
    tx_mbps: float
    rx_mbps: float
    num_containers: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "sm_util": self.sm_util,
            "mem_used_mb": self.mem_used_mb,
            "mem_util": self.mem_util,
            "power_w": self.power_w,
            "tx_mbps": self.tx_mbps,
            "rx_mbps": self.rx_mbps,
        }


@dataclass
class ContainerAllocation:
    """A container's reservation on the device."""

    pod_uid: str
    alloc_mb: float
    exclusive: bool = False
    attach_seq: int = 0
    last_usage_mb: float = 0.0


@dataclass(frozen=True)
class CapacityViolation:
    """Raised (as a value) when summed usage exceeds physical memory."""

    victim_uid: str
    demanded_mb: float
    capacity_mb: float


class GPU:
    """A single simulated GPU device."""

    #: Default interference coefficient: progress of a container is
    #: divided by ``1 + alpha * (co-runners' SM demand)``.  Calibrated
    #: so that an inference query sharing a device with ~1.5 SMs worth
    #: of batch kernels roughly doubles its latency, consistent with
    #: the context-switch overheads motivating the paper.
    INTERFERENCE_ALPHA = 0.7

    def __init__(
        self,
        gpu_id: str,
        mem_capacity_mb: float = 16_384.0,
        power_model: GpuPowerModel | None = None,
        pcie_mbps: float = PCIE_LINK_MBPS,
        interference_alpha: float | None = None,
    ) -> None:
        self.gpu_id = gpu_id
        self.mem_capacity_mb = float(mem_capacity_mb)
        self.power_model = power_model or GpuPowerModel()
        self.pcie_mbps = float(pcie_mbps)
        self.interference_alpha = (
            self.INTERFERENCE_ALPHA if interference_alpha is None else float(interference_alpha)
        )
        self.containers: dict[str, ContainerAllocation] = {}
        #: Bound SoA mirror (:class:`repro.cluster.state.ClusterState`)
        #: and this device's row in it; ``None`` for standalone GPUs.
        self._state = None
        self._state_idx = -1
        self._asleep = False
        self._failed = False
        self._cordoned = False
        self._attach_counter = 0
        self._idle_memo: dict[bool, GpuSample] = {}
        self._last_sample: GpuSample = self.idle_sample()

    def bind_state(self, state, index: int) -> None:
        """Attach the cluster's SoA mirror; mutations write through."""
        self._state = state
        self._state_idx = index

    # -- mirrored attributes ------------------------------------------------
    #
    # ``asleep``/``failed``/``last_sample`` are assigned from outside
    # (orchestrator Wake, kubelet failed-device branch), so they are
    # properties whose setters push into the bound ClusterState.

    @property
    def asleep(self) -> bool:
        return self._asleep

    @asleep.setter
    def asleep(self, value: bool) -> None:
        self._asleep = bool(value)
        if self._state is not None:
            self._state.sync_flags(self._state_idx, self._asleep, self._failed)

    @property
    def failed(self) -> bool:
        return self._failed

    @failed.setter
    def failed(self, value: bool) -> None:
        self._failed = bool(value)
        if self._state is not None:
            self._state.sync_flags(self._state_idx, self._asleep, self._failed)

    @property
    def cordoned(self) -> bool:
        """Drained for a capacity transition: residents keep running,
        but the device accepts no new placements until uncordoned."""
        return self._cordoned

    @cordoned.setter
    def cordoned(self, value: bool) -> None:
        self._cordoned = bool(value)
        if self._state is not None:
            self._state.sync_cordon(self._state_idx, self._cordoned)

    @property
    def last_sample(self) -> GpuSample:
        return self._last_sample

    @last_sample.setter
    def last_sample(self, sample: GpuSample) -> None:
        self._last_sample = sample
        if self._state is not None:
            self._state.sync_sample(self._state_idx, sample)

    def _sync_alloc(self) -> None:
        if self._state is not None:
            self._state.sync_alloc(self._state_idx, self)

    # -- allocation bookkeeping -------------------------------------------

    @property
    def allocated_mem_mb(self) -> float:
        return sum(c.alloc_mb for c in self.containers.values())

    @property
    def free_mem_mb(self) -> float:
        """Unreserved memory (by allocation, not usage)."""
        return self.mem_capacity_mb - self.allocated_mem_mb

    @property
    def is_exclusive(self) -> bool:
        return any(c.exclusive for c in self.containers.values())

    def can_fit(self, alloc_mb: float, exclusive: bool = False) -> bool:
        """Admission check against reservations."""
        if self.failed or self.cordoned:
            return False
        if exclusive:
            return not self.containers
        if self.is_exclusive:
            return False
        return alloc_mb <= self.free_mem_mb + 1e-9

    def attach(self, pod_uid: str, alloc_mb: float, exclusive: bool = False) -> None:
        """Reserve ``alloc_mb`` for a container.  Wakes a sleeping device."""
        if pod_uid in self.containers:
            raise ValueError(f"pod {pod_uid} already attached to {self.gpu_id}")
        if alloc_mb < 0:
            raise ValueError(
                f"pod {pod_uid}: negative reservation ({alloc_mb:.0f} MB) on {self.gpu_id}"
            )
        if not self.can_fit(alloc_mb, exclusive):
            raise ValueError(
                f"pod {pod_uid} ({alloc_mb:.0f} MB) does not fit on {self.gpu_id} "
                f"(free {self.free_mem_mb:.0f} MB, exclusive={self.is_exclusive})"
            )
        self._attach_counter += 1
        self.containers[pod_uid] = ContainerAllocation(
            pod_uid=pod_uid,
            alloc_mb=float(alloc_mb),
            exclusive=exclusive,
            attach_seq=self._attach_counter,
        )
        self._sync_alloc()
        self.asleep = False

    def detach(self, pod_uid: str) -> None:
        if pod_uid not in self.containers:
            raise KeyError(f"pod {pod_uid} not on {self.gpu_id}")
        del self.containers[pod_uid]
        self._sync_alloc()

    def resize(self, pod_uid: str, new_alloc_mb: float) -> float:
        """Resize a container's reservation (harvesting).

        Returns the memory harvested (positive) or granted (negative).
        Growing beyond free capacity raises ``ValueError``.
        """
        alloc = self.containers.get(pod_uid)
        if alloc is None:
            raise KeyError(f"pod {pod_uid} not on {self.gpu_id}")
        if new_alloc_mb < 0:
            raise ValueError(
                f"cannot resize {pod_uid} to {new_alloc_mb:.0f} MB on {self.gpu_id}: "
                "reservations must be non-negative"
            )
        delta = alloc.alloc_mb - float(new_alloc_mb)
        if delta < 0 and -delta > self.free_mem_mb + 1e-9:
            raise ValueError(
                f"cannot grow {pod_uid} by {-delta:.0f} MB on {self.gpu_id}: "
                f"only {self.free_mem_mb:.0f} MB free"
            )
        alloc.alloc_mb = float(new_alloc_mb)
        self._sync_alloc()
        return delta

    def sleep(self) -> None:
        """Enter deep sleep (p_state 12).  Only legal when drained."""
        if self.containers:
            raise ValueError(f"{self.gpu_id} still hosts {len(self.containers)} containers")
        self.asleep = True

    # -- failure injection ---------------------------------------------------

    def fail(self) -> list[str]:
        """The device falls off the bus (ECC error, driver wedge, ...).

        Every resident container dies with it.  Returns the orphaned
        pod uids so the kubelet can report the evictions; the device
        refuses new work until :meth:`repair`.
        """
        victims = sorted(self.containers)
        self.containers.clear()
        self._sync_alloc()
        self.failed = True
        return victims

    def repair(self) -> None:
        """Bring a failed device back (empty, awake)."""
        self.failed = False
        self.asleep = False

    # -- arbitration / telemetry -------------------------------------------

    def arbitrate(
        self, demands: Mapping[str, ResourceDemand]
    ) -> tuple[dict[str, float], GpuSample, CapacityViolation | None]:
        """Arbitrate one tick of resource demands.

        Parameters
        ----------
        demands:
            ``pod_uid -> ResourceDemand`` for every container the kubelet
            is running on this device this tick.

        Returns
        -------
        (shares, sample, violation):
            ``shares[uid]`` is the fraction of its SM demand the pod was
            granted (progress rate); ``sample`` is the telemetry sample;
            ``violation`` is set if summed memory usage exceeded the
            device and names the victim (the container that attached
            last among those over their reservation, else youngest).
        """
        unknown = set(demands) - set(self.containers)
        if unknown:
            raise KeyError(f"demands for pods not attached to {self.gpu_id}: {sorted(unknown)}")

        total_sm = sum(d.sm for d in demands.values())
        sm_scale = 1.0 if total_sm <= 1.0 else 1.0 / total_sm
        # Interference tax: co-runners' kernels serialize and thrash the
        # (VIVT, flushed-on-switch) caches; each container's progress is
        # divided by 1 + alpha * (everyone else's SM demand).
        shares = {}
        for uid, d in demands.items():
            others = total_sm - d.sm
            shares[uid] = sm_scale / (1.0 + self.interference_alpha * others)

        total_mem = 0.0
        for uid, d in demands.items():
            self.containers[uid].last_usage_mb = d.mem_mb
            total_mem += d.mem_mb

        violation: CapacityViolation | None = None
        if total_mem > self.mem_capacity_mb + 1e-9:
            victim = self._pick_victim(demands)
            violation = CapacityViolation(
                victim_uid=victim,
                demanded_mb=total_mem,
                capacity_mb=self.mem_capacity_mb,
            )

        total_tx = min(sum(d.tx_mbps for d in demands.values()), self.pcie_mbps)
        total_rx = min(sum(d.rx_mbps for d in demands.values()), self.pcie_mbps)
        sm_util = min(total_sm, 1.0)
        mem_used = min(total_mem, self.mem_capacity_mb)
        # Power follows *delivered* compute: cycles lost to contention
        # and context-switch stalls do not draw peak dynamic power.
        effective_sm = min(sum(d.sm * shares[uid] for uid, d in demands.items()), 1.0)
        sample = GpuSample(
            sm_util=sm_util,
            mem_used_mb=mem_used,
            mem_util=mem_used / self.mem_capacity_mb,
            power_w=self.power_model.power(effective_sm, asleep=self.asleep and not demands),
            tx_mbps=total_tx,
            rx_mbps=total_rx,
            num_containers=len(demands),
        )
        self.last_sample = sample
        return shares, sample, violation

    def idle_sample(self) -> GpuSample:
        """Telemetry sample for a device with no running containers.

        Memoized per power state (the sample is frozen and depends only
        on ``asleep``), so idle devices can compare by identity and skip
        redundant mirror writes on wide clusters.
        """
        sample = self._idle_memo.get(self._asleep)
        if sample is None:
            sample = GpuSample(
                sm_util=0.0,
                mem_used_mb=0.0,
                mem_util=0.0,
                power_w=self.power_model.power(0.0, asleep=self._asleep),
                tx_mbps=0.0,
                rx_mbps=0.0,
                num_containers=0,
            )
            self._idle_memo[self._asleep] = sample
        return sample

    def _pick_victim(self, demands: Mapping[str, ResourceDemand]) -> str:
        """Pick the container to OOM-kill on a capacity violation.

        Containers bursting past their reservation are preferred victims;
        among those (or failing any), the most recently attached dies —
        mirroring the "relaunched tasks go to the back of the queue"
        behaviour the paper describes.
        """
        over = [
            uid
            for uid, d in demands.items()
            if d.mem_mb > self.containers[uid].alloc_mb + 1e-9
        ]
        pool = over if over else list(demands)
        return max(pool, key=lambda uid: self.containers[uid].attach_seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GPU({self.gpu_id!r}, {self.mem_capacity_mb:.0f} MB, "
            f"{len(self.containers)} containers, asleep={self.asleep})"
        )
