"""Device power and energy-efficiency models (paper Fig. 1).

The paper's central energy observation is that GPUs are *linearly*
energy proportional: normalized energy efficiency (performance per
watt, normalized to its value at 100 % utilization) rises linearly with
utilization, so a GPU is most efficient fully packed.  CPUs peak at
60–80 % utilization — their normalized efficiency exceeds 1.0 in that
band — and pushing beyond yields marginal or negative returns.

We model

* ``GPU``: efficiency(u) = u (exact linearity), with a P100-calibrated
  power curve ``P(u) = P_idle + (P_tdp - P_idle) * u`` plus a deep-sleep
  state (``p_state_12``) drawn when a device hosts no pods and the
  orchestrator parks it;
* ``Intel Sandy Bridge`` (newer, more proportional) and ``Intel
  Westmere`` (older, flatter) CPU efficiency curves with interior peaks,
  matching the qualitative shapes in Fig. 1.

All efficiency values are normalized to the device's efficiency at
100 % utilization, as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "GpuPowerModel",
    "CpuEfficiencyModel",
    "SANDY_BRIDGE",
    "WESTMERE",
    "gpu_energy_efficiency",
    "energy_proportionality_zone",
]


@dataclass(frozen=True)
class GpuPowerModel:
    """Linear GPU power model.

    Parameters are calibrated to an Nvidia P100 (PCIe, 16 GB): 250 W TDP,
    ~25 W active-idle, ~9 W in the deepest performance state (P12).
    """

    tdp_watts: float = 250.0
    idle_watts: float = 25.0
    sleep_watts: float = 9.0

    def power(self, utilization: float, asleep: bool = False) -> float:
        """Instantaneous power draw in watts at ``utilization`` in [0, 1]."""
        if asleep:
            return self.sleep_watts
        u = min(max(float(utilization), 0.0), 1.0)
        return self.idle_watts + (self.tdp_watts - self.idle_watts) * u

    def energy_mj(self, utilization: float, duration_ms: float, asleep: bool = False) -> float:
        """Energy in millijoules over ``duration_ms`` at constant utilization."""
        return self.power(utilization, asleep) * duration_ms

    def efficiency(self, utilization: float) -> float:
        """Normalized performance-per-watt at ``utilization``.

        Throughput is proportional to utilization; dividing by power and
        normalizing to the value at u=1 yields the linear relationship
        from Fig. 1 (zero work at zero utilization).
        """
        u = min(max(float(utilization), 0.0), 1.0)
        if u == 0.0:
            return 0.0
        ppw = u / self.power(u)
        return ppw / (1.0 / self.power(1.0))


def gpu_energy_efficiency(utilization: float | np.ndarray) -> np.ndarray | float:
    """Vectorized Fig.-1 GPU efficiency curve for the default P100 model."""
    model = GpuPowerModel()
    u = np.clip(np.asarray(utilization, dtype=float), 0.0, 1.0)
    power = model.idle_watts + (model.tdp_watts - model.idle_watts) * u
    eff = (u / power) * model.power(1.0)
    if np.isscalar(utilization) or getattr(utilization, "ndim", 1) == 0:
        return float(eff)
    return eff


@dataclass(frozen=True)
class CpuEfficiencyModel:
    """CPU normalized-efficiency curve with an interior peak.

    ``efficiency(u) = (u / (alpha + (1 - alpha) * u**gamma))`` normalized
    to u=1.  ``alpha`` is the idle-power fraction (higher = less energy
    proportional) and ``gamma > 1`` makes power grow super-linearly near
    full load (hyper-threading and turbo effects), which pushes the peak
    of the efficiency curve into the interior — around 60–80 % for the
    Sandy Bridge parameters, matching the paper's observation.
    """

    name: str
    alpha: float
    gamma: float

    def power_fraction(self, utilization: float) -> float:
        """Power draw as a fraction of peak power."""
        u = min(max(float(utilization), 0.0), 1.0)
        return self.alpha + (1.0 - self.alpha) * u**self.gamma

    def efficiency(self, utilization: float) -> float:
        """Normalized performance-per-watt at ``utilization`` (u=1 -> 1.0)."""
        u = min(max(float(utilization), 0.0), 1.0)
        if u == 0.0:
            return 0.0
        return (u / self.power_fraction(u)) / 1.0

    def efficiency_curve(self, utilizations: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`efficiency` over an array of utilizations."""
        u = np.clip(np.asarray(utilizations, dtype=float), 0.0, 1.0)
        power = self.alpha + (1.0 - self.alpha) * u**self.gamma
        with np.errstate(divide="ignore", invalid="ignore"):
            eff = np.where(u > 0, u / power, 0.0)
        return eff

    def peak_efficiency_utilization(self) -> float:
        """Utilization at which normalized efficiency peaks (analytic).

        d/du [u / (a + (1-a) u^g)] = 0  =>  a = (g - 1)(1 - a) u^g
        """
        a, g = self.alpha, self.gamma
        if g <= 1.0:
            return 1.0
        u = (a / ((g - 1.0) * (1.0 - a))) ** (1.0 / g)
        return min(u, 1.0)


#: Newer-generation CPU: fairly energy proportional, efficiency peaks ~70 %.
SANDY_BRIDGE = CpuEfficiencyModel(name="Intel-Sandybridge", alpha=0.30, gamma=2.4)

#: Older-generation CPU: high idle power, flat efficiency, peak near full load.
WESTMERE = CpuEfficiencyModel(name="Intel-Westmere", alpha=0.55, gamma=1.8)


def energy_proportionality_zone(model: CpuEfficiencyModel, resolution: int = 1001) -> tuple[float, float]:
    """Return the utilization band where efficiency is within 5 % of its peak.

    This is the "high energy proportionality zone" annotated in Fig. 1.
    """
    u = np.linspace(0.0, 1.0, resolution)
    eff = model.efficiency_curve(u)
    peak = eff.max()
    inside = u[eff >= 0.95 * peak]
    if inside.size == 0:
        return (1.0, 1.0)
    return (float(inside.min()), float(inside.max()))
