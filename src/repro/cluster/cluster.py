"""Cluster container: a head node plus GPU workers.

Provides the factory used by the evaluation — ten P100 workers and one
CPU-only head node (Sec. V-A) — and a heterogeneous variant mixing the
GPU models pictured in the Kube-Knots design figure.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.cluster.gpu import GPU
from repro.cluster.node import GPU_MODELS, GpuNode, HeadNode, HostSpec
from repro.cluster.state import ClusterState

__all__ = ["Cluster", "make_paper_cluster", "make_heterogeneous_cluster"]


class Cluster:
    """A named set of GPU worker nodes plus the head node."""

    def __init__(self, nodes: Sequence[GpuNode], head: HeadNode | None = None) -> None:
        if not nodes:
            raise ValueError("cluster needs at least one worker node")
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate node ids: {ids}")
        self.nodes: list[GpuNode] = list(nodes)
        self.head = head or HeadNode()
        self._by_id = {n.node_id: n for n in self.nodes}
        #: SoA mirror every GPU writes through to (see cluster/state.py).
        self.state = ClusterState(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[GpuNode]:
        return iter(self.nodes)

    def node(self, node_id: str) -> GpuNode:
        try:
            return self._by_id[node_id]
        except KeyError:
            raise KeyError(f"no node {node_id!r} in cluster") from None

    def gpus(self) -> Iterator[GPU]:
        """All GPUs across all workers, in node order."""
        for n in self.nodes:
            yield from n.gpus

    def find_gpu(self, gpu_id: str) -> GPU:
        node_id = gpu_id.split("/", 1)[0]
        return self.node(node_id).find_gpu(gpu_id)

    def active_gpus(self) -> list[GPU]:
        """Awake devices — the candidate set PP iterates (Algorithm 1)."""
        return [g for g in self.gpus() if not g.asleep]

    def total_gpu_mem_mb(self) -> float:
        return sum(g.mem_capacity_mb for g in self.gpus())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n_gpus = sum(len(n.gpus) for n in self.nodes)
        return f"Cluster({len(self.nodes)} nodes, {n_gpus} GPUs)"


def make_paper_cluster(
    num_nodes: int = 10,
    gpus_per_node: int = 1,
    gpu_model: str = "P100",
) -> Cluster:
    """The evaluation cluster: ten P100 workers + a CPU-only head node."""
    nodes = [
        GpuNode.build(f"node{i + 1}", gpu_model=gpu_model, num_gpus=gpus_per_node)
        for i in range(num_nodes)
    ]
    return Cluster(nodes)


def make_heterogeneous_cluster(models: Iterable[str] = ("P100", "P100", "M40", "V100", "K80")) -> Cluster:
    """A mixed-model cluster like the one in the design figure (Fig. 5)."""
    nodes = []
    for i, model in enumerate(models):
        if model not in GPU_MODELS:
            raise KeyError(f"unknown GPU model {model!r}; known: {sorted(GPU_MODELS)}")
        nodes.append(GpuNode.build(f"node{i + 1}", gpu_model=model))
    return Cluster(nodes)
