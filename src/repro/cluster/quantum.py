"""Array-native execution quantum: the kubelet tick as ndarray ops.

PR 8 vectorized the *scheduling* pass; this module vectorizes the
*execution* quantum — the per-tick work :meth:`Kubelet.step_device`
does for every busy device: look up each running pod's demand in its
trace, arbitrate the device (interference shares, capacity check,
telemetry sample, power), advance progress, detect completions.  On a
dense 1024-node run that loop is where the wall clock goes.

Design
------
* **Pod-major arrays.**  Every hosted pod occupies a slot in a set of
  flat arrays (progress, cached demand row, device row, reservation,
  pull deadline), appended on admit and tombstoned on release —
  write-through hooks from the kubelet keep them in sync, exactly like
  the device arrays of :class:`~repro.cluster.state.ClusterState`.
  Slots are append-only and compacted order-preservingly, so the
  per-device slot order always equals the kubelet's dict insertion
  order — which is what makes the float sums below bit-identical.
* **Phase tables.**  Each :class:`~repro.workloads.base.WorkloadTrace`
  compiles once (``demand_table``) into cumulative end-times plus a
  ``(phases, 4)`` demand matrix; all tables are concatenated so a
  slot's current demand is a cached row refreshed by ``searchsorted``
  only when progress crosses a phase boundary.
* **Segment sums via bincount.**  ``np.bincount(dev, weights=w)``
  accumulates sequentially in input order — the same left-to-right
  order as the object path's ``sum()`` over the demands dict — so
  per-device totals (SM, memory, PCIe, delivered compute) are
  bit-identical, unlike ``np.sum``/``np.add.reduceat`` whose pairwise
  reduction rounds differently.
* **Rare events drop to the object path.**  Devices with a capacity
  violation, a completion, or a failure this tick are replayed through
  the unmodified :meth:`Kubelet.step_device` — OOM victim selection
  (``_pick_victim`` tie-breaks), eviction notifications, requeue order
  and telemetry writes all come from the legacy code, so decisions
  stay bit-identical by construction.  The engine only writes device
  samples and pod progress for the common no-event case.

The engine engages under the same conditions as PR 8's fast pass
(observability fully off, sanitizer off, ``vectorized=True`` on a
quantum-safe scheduler) and composes with quiescence skipping: nodes
with pods step every tick through the vectorized path, idle nodes keep
their quiet horizons and legacy steps.

This module must not import :mod:`repro.kube` (the kube layer imports
cluster; an import back would cycle) — kubelets and pods arrive
duck-typed through the constructor and hooks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["QuantumEngine", "demand_rows_at", "pick_victim_slots"]

_NEG_INF = float("-inf")


def demand_rows_at(cum: np.ndarray, rows: np.ndarray, progress: np.ndarray) -> np.ndarray:
    """Batched ``WorkloadTrace.demand_at`` over one trace's phase table.

    ``cum``/``rows`` come from ``WorkloadTrace.demand_table()``;
    ``progress`` is an array of non-negative progress values.  Returns
    the ``(len(progress), 4)`` demand rows, with progress at or past
    the trace end clamped to the final phase — the exact semantics of
    the scalar lookup (``side="right"`` plus the terminal clamp).
    """
    idx = np.searchsorted(cum, np.asarray(progress, dtype=float), side="right")
    np.minimum(idx, len(cum) - 1, out=idx)
    return rows[idx]


def pick_victim_slots(
    dev: np.ndarray,
    d_mem: np.ndarray,
    alloc_mb: np.ndarray,
    attach_seq: np.ndarray,
    violating: np.ndarray,
) -> dict[int, int]:
    """Replay ``GPU._pick_victim`` per violating device, array-native.

    ``dev``/``d_mem``/``alloc_mb``/``attach_seq`` are pod-major arrays
    (device row, memory demand, reservation, attach sequence number);
    ``violating`` lists device rows whose summed demand exceeded
    capacity.  Returns ``{device row: victim slot}`` using the legacy
    tie-breaks: pods bursting past their reservation (strictly more
    than ``alloc + 1e-9``) are preferred victims; among those — or all
    residents when none is over — the greatest ``attach_seq`` dies.
    """
    over = d_mem > alloc_mb + 1e-9
    victims: dict[int, int] = {}
    for d in violating:
        on = np.nonzero(dev == d)[0]
        pool = on[over[on]]
        if pool.size == 0:
            pool = on
        victims[int(d)] = int(pool[np.argmax(attach_seq[pool])])
    return victims


class QuantumEngine:
    """Vectorized per-tick advance over all hosting nodes.

    Owned by the orchestrator; installed as ``kubelet.engine`` on every
    node so the admit/start/release/resize paths write through.  The
    engine replaces the per-node ``Kubelet.step`` calls for nodes that
    host pods; empty due nodes still take the legacy step (and keep
    the quiet-horizon machinery).
    """

    #: Compact the slot arrays when tombstones outnumber live slots.
    _COMPACT_MIN_DEAD = 64

    #: Occupancy crossover: below this many running pods the fixed
    #: ndarray dispatch overhead of the batched advance costs more than
    #: iterating the demands dicts, so :meth:`step_due` routes sparse
    #: ticks wholesale through the legacy per-node step (which is
    #: bit-identical by construction).  Tuned on the dense bench; set
    #: to 0 to force the vectorized path (the A/B tests do).
    min_batch = 48

    def __init__(self, cluster, kubelets, quiet_until, epoch_seen) -> None:
        state = cluster.state
        self.state = state
        self._kubelets = list(kubelets)
        self._quiet_until = quiet_until
        self._epoch_seen = epoch_seen
        self._node_slices = state.node_slices
        self._gpus = [g for node in cluster for g in node.gpus]
        n = len(state)
        # Static per-device facts (heterogeneous fleets supported).
        # ``span = tdp - idle`` precomputed: the object path evaluates
        # ``idle + (tdp - idle) * u`` fresh, and the subtraction is
        # exact either way.
        self._idle_w = state.idle_watts
        self._span_w = state.tdp_watts - state.idle_watts
        self._pcie = state.pcie_mbps
        self._alpha = state.interference_alpha
        self._cap = state.mem_capacity_mb
        self._cap_eps = state.mem_capacity_mb + 1e-9
        #: Devices whose *state* sample holds vectorized busy values
        #: while the GPU object's ``last_sample`` was left stale — the
        #: idle path must force-write through the property once.
        self._stale = np.zeros(n, dtype=bool)
        #: Nodes the fast path handled on their last executed tick
        #: (the asleep-refresh replay is only needed on entry).
        self._was_fast = np.zeros(len(state.node_slices), dtype=bool)

        # Pod-major slot arrays (append + tombstone + compaction).
        cap = 256
        self._n_slots = 0
        self._dead = 0
        self._slot: dict[str, int] = {}
        self._pods: list = [None] * cap
        self._dev = np.zeros(cap, dtype=np.intp)
        self._node = np.zeros(cap, dtype=np.intp)
        self._run = np.zeros(cap, dtype=bool)
        self._alive = np.zeros(cap, dtype=bool)
        self._deadline = np.zeros(cap)
        self._progress = np.zeros(cap)
        self._alloc = np.zeros(cap)
        self._total = np.zeros(cap)
        self._cur_end = np.zeros(cap)
        self._d_sm = np.zeros(cap)
        self._d_mem = np.zeros(cap)
        self._d_tx = np.zeros(cap)
        self._d_rx = np.zeros(cap)
        self._t_off = np.zeros(cap, dtype=np.intp)
        self._t_k = np.zeros(cap, dtype=np.intp)
        self._t_j = np.zeros(cap, dtype=np.intp)

        # Concatenated phase tables, one segment per distinct trace.
        tcap = 256
        self._trace_len = 0
        self._trace_seg: dict[int, tuple[int, int]] = {}
        self._trace_refs: list = []   # keep traces alive so id() stays unique
        self._g_cum = np.zeros(tcap)
        self._g_sm = np.zeros(tcap)
        self._g_mem = np.zeros(tcap)
        self._g_tx = np.zeros(tcap)
        self._g_rx = np.zeros(tcap)

        #: Engagement counters (plain attributes: metrics are off
        #: whenever the engine exists).  ``fast_ticks`` counts ticks
        #: the vectorized advance ran over at least one hosting node;
        #: ``fallbacks`` counts devices replayed through the object
        #: path for a rare event.
        self.fast_ticks = 0
        self.fallbacks = 0
        #: Running pods currently registered, maintained by the
        #: start/release hooks: the per-tick crossover gate in
        #: :meth:`step_due` compares it against :attr:`min_batch`.
        self._n_running = 0
        #: True while the *pod objects* hold authoritative progress
        #: (initially, and whenever sparse ticks route through the
        #: legacy step).  The fast path resyncs the arrays on entry;
        #: the sparse route writes the arrays back on entry.
        self._progress_stale = True

    # -- write-through hooks (called from the kubelet) ---------------------

    def on_admit(self, pod, deadline: float) -> None:
        """Register a newly admitted pod (pulling, not yet running)."""
        s = self._n_slots
        if s == len(self._dev):
            self._grow_slots()
        self._n_slots = s + 1
        dev = self.state.index[pod.gpu_id]
        self._dev[s] = dev
        self._node[s] = self.state.node_of[dev]
        self._run[s] = False
        self._alive[s] = True
        self._deadline[s] = deadline
        self._progress[s] = pod.progress_ms
        self._alloc[s] = pod.alloc_mb
        trace = pod.spec.trace
        off, k = self._register_trace(trace)
        self._t_off[s] = off
        self._t_k[s] = k
        self._total[s] = trace.total_ms
        # Force a demand-row refresh on the first vectorized tick.
        self._cur_end[s] = _NEG_INF
        self._t_j[s] = 0
        self._pods[s] = pod
        self._slot[pod.uid] = s

    def on_pod_started(self, pod) -> None:
        """The image pull finished; the pod is RUNNING from this tick."""
        s = self._slot[pod.uid]
        self._run[s] = True
        self._n_running += 1
        self._progress[s] = pod.progress_ms
        self._cur_end[s] = _NEG_INF
        self._t_j[s] = 0

    def on_release(self, uid: str) -> None:
        """The pod left the node (completed, OOM-killed, or evicted)."""
        s = self._slot.pop(uid, None)
        if s is not None:
            self._alive[s] = False
            if self._run[s]:
                self._n_running -= 1
                self._run[s] = False
            self._pods[s] = None
            self._dead += 1

    def on_resize(self, uid: str, new_alloc_mb: float) -> None:
        s = self._slot.get(uid)
        if s is not None:
            self._alloc[s] = new_alloc_mb

    def flush(self) -> None:
        """Write vectorized progress back to the pod objects.

        Called once at result collection, and by :meth:`step_due` when
        occupancy drops below :attr:`min_batch` mid-run, so the legacy
        step (and still-running pods in the result) see true progress.
        No-op while the objects are already authoritative.
        """
        if self._progress_stale:
            return
        n = self._n_slots
        for s in np.nonzero(self._alive[:n] & self._run[:n])[0]:
            self._pods[s].progress_ms = float(self._progress[s])
        self._progress_stale = True

    # -- the per-tick advance ----------------------------------------------

    def step_due(self, now: float, dt_ms: float, prev_now, due_idx) -> list:
        """Advance every due node one tick; returns OOM/eviction victims.

        Hosting nodes go through the vectorized advance; empty due
        nodes take the unmodified legacy step and keep their quiet
        horizons, so quiescence skipping composes unchanged.
        """
        kubelets = self._kubelets
        victims: list = []
        fast: list[int] = []
        legacy: list[int] = []
        if self._n_running < self.min_batch:
            # Sparse occupancy: the fixed ndarray dispatch cost of the
            # batched advance exceeds a couple dozen dict iterations,
            # so route every due node through the legacy step (in
            # ascending node order, preserving victim ordering).  The
            # objects become authoritative for progress: write the
            # arrays back first if a fast stint just ended.
            self.flush()
            legacy = [int(i) for i in due_idx]
        else:
            for i in due_idx:
                if kubelets[int(i)]._pods:
                    fast.append(int(i))
                else:
                    legacy.append(int(i))
        if fast:
            self._fast_tick(now, dt_ms, prev_now, fast, victims)
            self.fast_ticks += 1
        if legacy:
            epochs = self.state.node_epoch
            stale = self._stale
            for i in legacy:
                kubelet = kubelets[i]
                if self._was_fast[i]:
                    # Vectorized busy samples may be sitting in the
                    # state mirror with the GPU objects' memoized idle
                    # sample still in place; force the idle values
                    # through the property once so the legacy idle
                    # short-circuit's identity check stays sound.
                    start, stop = self._node_slices[i]
                    for dev in range(start, stop):
                        if stale[dev]:
                            gpu = self._gpus[dev]
                            gpu.last_sample = gpu.idle_sample()
                            stale[dev] = False
                    # The fast path never calls ``quiet_horizon`` for
                    # hosting nodes, so the kubelet's asleep-refresh
                    # list is stale from before the fast stint;
                    # recompute it before ``step`` replays idle clocks
                    # from it.  (Fast nodes step every tick and stamp
                    # asleep devices with ``now``, so the fresh replay
                    # is the same no-op the legacy path would do.)
                    kubelet._asleep_refresh = [
                        g.gpu_id
                        for g in kubelet.node.gpus
                        if g.asleep and not g.failed
                    ]
                    self._was_fast[i] = False
                victims.extend(kubelet.step(now, dt_ms, prev_now))
                self._quiet_until[i] = kubelet.quiet_horizon(now, dt_ms)
                self._epoch_seen[i] = epochs[i]
        return victims

    def _fast_tick(self, now, dt_ms, prev_now, nodes, victims) -> None:
        state = self.state
        kubelets = self._kubelets
        # Entry replay: a node whose previous executed tick was the
        # legacy path may have skipped ticks before it; replay the
        # asleep-device idle_since refresh exactly like Kubelet.step.
        # Continuously fast-handled nodes step every tick, where the
        # replay is provably a no-op, so it is skipped mid-stretch.
        if prev_now is not None:
            for i in nodes:
                if not self._was_fast[i]:
                    kubelet = kubelets[i]
                    idle_since = kubelet._idle_since
                    for gpu_id in kubelet._asleep_refresh:
                        idle_since[gpu_id] = prev_now
        if self._dead >= self._COMPACT_MIN_DEAD and self._dead * 2 > self._n_slots:
            self._compact()
        n = self._n_slots
        nd = len(state)
        run = self._run
        alive = self._alive
        if self._progress_stale:
            # A sparse (legacy-routed) stint just ended: the objects
            # advanced progress; resync the arrays before they become
            # authoritative again.  Crossed phase boundaries are caught
            # by the row-refresh pass below (progress only advances).
            for s in np.nonzero(alive[:n] & run[:n])[0]:
                self._progress[s] = self._pods[s].progress_ms
            self._progress_stale = False

        # 1. Pull deadlines: start pods whose image pull finished.  The
        # object path runs a node's starts before its devices and no
        # start affects another node, so running all starts first is
        # order-equivalent — and it lets the demand pass below see the
        # newly started pods, keeping their start tick out of the rare
        # path.
        pending = alive[:n] & ~run[:n]
        if pending.any():
            due_start = pending & (self._deadline[:n] <= now)
            if due_start.any():
                for i in np.unique(self._node[:n][due_start]):
                    kubelets[int(i)].start_due_pods(now)

        # 2. Demand rows: refresh slots whose progress crossed a phase
        # boundary (searchsorted against the trace's cumulative ends —
        # the exact demand_at semantics including the terminal clamp).
        act = np.nonzero(run[:n] & alive[:n])[0]
        if act.size:
            need = act[self._progress[act] >= self._cur_end[act]]
            if need.size:
                self._refresh_rows(need)

            devs = self._dev[act]
            d_sm = self._d_sm[act]
            # 3. Per-device segment sums over *touched* devices only —
            # the tick's cost scales with hosted pods, not fleet size.
            # bincount over the unique-inverse keeps the sequential
            # slot-order accumulation (== the object path's dict order);
            # relabelling devices does not reorder the inputs.
            touched, inv = np.unique(devs, return_inverse=True)
            m = len(touched)
            counts_t = np.bincount(inv, minlength=m)
            total_sm_t = np.bincount(inv, weights=d_sm, minlength=m)
            total_mem_t = np.bincount(inv, weights=self._d_mem[act], minlength=m)

            # 4. Interference shares, elementwise as in GPU.arbitrate.
            alpha = self._alpha[devs]
            sm_scale_t = np.ones(m)
            np.divide(1.0, total_sm_t, out=sm_scale_t, where=total_sm_t > 1.0)
            t = total_sm_t[inv]
            share = sm_scale_t[inv] / (1.0 + alpha * (t - d_sm))
            new_prog = self._progress[act] + dt_ms * share

            # 5. Rare-event masks: capacity violations, completions and
            # failed devices replay the object path below.  ``rare``
            # stays fleet-width (a cheap bool copy) because the node
            # remainder loop probes it for empty devices too.
            rare = state.failed.copy()
            over_t = total_mem_t > self._cap_eps[touched]
            if over_t.any():
                rare[touched[over_t]] = True
            done = new_prog >= self._total[act]
            if done.any():
                rare[devs[done]] = True

            # 6. Vectorized sample + power for untouched busy devices —
            # the same expression tree as GPU.arbitrate, elementwise.
            write_t = ~rare[touched]
            if write_t.any():
                wd = touched[write_t]
                delivered_t = np.bincount(inv, weights=d_sm * share, minlength=m)
                u = np.minimum(
                    np.maximum(np.minimum(delivered_t[write_t], 1.0), 0.0), 1.0
                )
                mem_used = np.minimum(total_mem_t, self._cap[touched])[write_t]
                tx = np.minimum(
                    np.bincount(inv, weights=self._d_tx[act], minlength=m),
                    self._pcie[touched],
                )[write_t]
                rx = np.minimum(
                    np.bincount(inv, weights=self._d_rx[act], minlength=m),
                    self._pcie[touched],
                )[write_t]
                state.sm_util[wd] = np.minimum(total_sm_t, 1.0)[write_t]
                state.mem_used_mb[wd] = mem_used
                state.mem_util[wd] = mem_used / self._cap[wd]
                state.power_w[wd] = self._idle_w[wd] + self._span_w[wd] * u
                state.tx_mbps[wd] = tx
                state.rx_mbps[wd] = rx
                state.sample_containers[wd] = counts_t[write_t]
                state.sample_dirty.update(wd.tolist())
                self._stale[wd] = True

            # 7. Advance progress for pods on untouched devices.
            ok = ~rare[devs]
            self._progress[act[ok]] = new_prog[ok]
            busy = np.zeros(nd, dtype=bool)
            busy[touched] = True
        else:
            busy = np.zeros(nd, dtype=bool)
            rare = state.failed.copy()

        # 8. Per-node remainder: rare devices replay the object path;
        # busy devices refresh their idle clock; empty devices take the
        # legacy idle branch (sample fixed point + auto-pstate).
        gpus = self._gpus
        stale = self._stale
        for i in nodes:
            kubelet = kubelets[i]
            idle_since = kubelet._idle_since
            start, stop = self._node_slices[i]
            for dev in range(start, stop):
                gpu = gpus[dev]
                if rare[dev]:
                    self._drop_device(kubelet, gpu, dev, now, dt_ms, victims)
                elif busy[dev]:
                    idle_since[gpu.gpu_id] = now
                else:
                    if stale[dev]:
                        gpu.last_sample = gpu.idle_sample()
                        stale[dev] = False
                    else:
                        sample = gpu.idle_sample()
                        if gpu.last_sample is not sample:
                            gpu.last_sample = sample
                    if gpu.containers or gpu.asleep:
                        idle_since[gpu.gpu_id] = now
                    elif now - idle_since[gpu.gpu_id] >= kubelet.config.auto_pstate_idle_ms:
                        gpu.sleep()
            if kubelet._pods:
                self._quiet_until[i] = _NEG_INF
            else:
                self._quiet_until[i] = kubelet.quiet_horizon(now, dt_ms)
            self._was_fast[i] = True
        idx = np.asarray(nodes, dtype=np.intp)
        self._epoch_seen[idx] = state.node_epoch[idx]

    def _drop_device(self, kubelet, gpu, dev, now, dt_ms, victims) -> None:
        """Replay one device through the unmodified object path.

        Progress is written back to the pod objects first so
        ``demand_at``/victim selection see current state, and resynced
        for survivors afterwards (releases tombstone via the hooks).
        """
        n = self._n_slots
        slots = np.nonzero(
            (self._dev[:n] == dev) & self._alive[:n] & self._run[:n]
        )[0]
        pods = self._pods
        for s in slots:
            pods[s].progress_ms = float(self._progress[s])
        kubelet.step_device(gpu, now, dt_ms, victims, None)
        self.fallbacks += 1
        for s in slots:
            if self._alive[s]:
                self._progress[s] = pods[s].progress_ms
        self._stale[dev] = False

    # -- internals ----------------------------------------------------------

    def _refresh_rows(self, slots: np.ndarray) -> None:
        """Re-cache demand rows after phase crossings, batched.

        Equivalent to a per-slot ``searchsorted(cum, p, side="right")``
        (the exact ``demand_at`` semantics including the terminal
        clamp), but implemented as a vectorized advance from each
        slot's cached phase index: progress never runs backwards, and
        a crossing almost always lands in the very next phase, so the
        loop usually does one pass over the batch instead of one
        scalar bisect per slot.
        """
        offs = self._t_off[slots]
        last = self._t_k[slots] - 1
        p = self._progress[slots]
        j = np.minimum(self._t_j[slots], last)
        g_cum = self._g_cum
        while True:
            step = (j < last) & (p >= g_cum[offs + j])
            if not step.any():
                break
            j += step
        row = offs + j
        terminal = (j == last) & (p >= g_cum[row])
        # Final phase reached *and* past its end: demand never changes
        # again.  Otherwise the phase ends where its cumulative bound is.
        self._cur_end[slots] = np.where(terminal, np.inf, g_cum[row])
        self._t_j[slots] = j
        self._d_sm[slots] = self._g_sm[row]
        self._d_mem[slots] = self._g_mem[row]
        self._d_tx[slots] = self._g_tx[row]
        self._d_rx[slots] = self._g_rx[row]

    def _register_trace(self, trace) -> tuple[int, int]:
        seg = self._trace_seg.get(id(trace))
        if seg is not None:
            return seg
        cum, rows = trace.demand_table()
        k = len(cum)
        off = self._trace_len
        while off + k > len(self._g_cum):
            self._grow_tables()
        self._g_cum[off:off + k] = cum
        self._g_sm[off:off + k] = rows[:, 0]
        self._g_mem[off:off + k] = rows[:, 1]
        self._g_tx[off:off + k] = rows[:, 2]
        self._g_rx[off:off + k] = rows[:, 3]
        self._trace_len = off + k
        seg = (off, k)
        self._trace_seg[id(trace)] = seg
        self._trace_refs.append(trace)
        return seg

    def _grow_slots(self) -> None:
        cap = len(self._dev) * 2
        for name in (
            "_dev", "_node", "_run", "_alive", "_deadline", "_progress",
            "_alloc", "_total", "_cur_end", "_d_sm", "_d_mem", "_d_tx",
            "_d_rx", "_t_off", "_t_k", "_t_j",
        ):
            old = getattr(self, name)
            new = np.zeros(cap, dtype=old.dtype)
            new[: len(old)] = old
            setattr(self, name, new)
        self._pods.extend([None] * (cap - len(self._pods)))

    def _grow_tables(self) -> None:
        cap = len(self._g_cum) * 2
        for name in ("_g_cum", "_g_sm", "_g_mem", "_g_tx", "_g_rx"):
            old = getattr(self, name)
            new = np.zeros(cap)
            new[: len(old)] = old
            setattr(self, name, new)

    def _compact(self) -> None:
        """Drop tombstones, preserving slot order (= admit order)."""
        n = self._n_slots
        keep = np.nonzero(self._alive[:n])[0]
        m = len(keep)
        for name in (
            "_dev", "_node", "_run", "_alive", "_deadline", "_progress",
            "_alloc", "_total", "_cur_end", "_d_sm", "_d_mem", "_d_tx",
            "_d_rx", "_t_off", "_t_k", "_t_j",
        ):
            arr = getattr(self, name)
            arr[:m] = arr[keep]
        pods = self._pods
        live = [pods[int(s)] for s in keep]
        pods[:m] = live
        for s in range(m, n):
            pods[s] = None
        self._slot = {pod.uid: j for j, pod in enumerate(live)}
        self._n_slots = m
        self._dead = 0
