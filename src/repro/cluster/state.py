"""Struct-of-arrays mirror of per-GPU cluster state.

The per-object :class:`~repro.cluster.gpu.GPU` /
:class:`~repro.cluster.node.GpuNode` model is the source of truth for
*semantics* (attach/detach/arbitrate validation, OOM victim selection,
power states), but walking thousands of Python objects per tick is the
scaling ceiling named in the ROADMAP.  :class:`ClusterState` keeps a
flat numpy mirror of everything the per-tick hot paths read:

* static per-device facts — memory capacity, the NVML byte-granular
  capacity, sleep/idle wattage, node membership, a precomputed
  lexicographic rank of every ``gpu_id`` (so vectorized candidate
  ordering can reproduce Python's string-sorted tie-breaks);
* mutable allocation state — reserved MB, container counts, the
  ``asleep``/``failed`` flags;
* the latest telemetry sample per device (the same values as
  ``gpu.last_sample``), written through from ``GPU.arbitrate``.

**Sync contract.**  Arrays are updated *write-through* by the ``GPU``
objects themselves: every mutating ``GPU`` method (attach, detach,
resize, fail, repair, sleep) and every externally-assigned flag
(``gpu.asleep``, ``gpu.failed``, ``gpu.last_sample`` are properties)
pushes into the bound state, so readers never re-derive per-object
state.  Allocation is re-summed from the containers dict on every
mutation — never incrementally adjusted — so ``capacity - alloc_mb[i]``
is bit-identical to ``gpu.free_mem_mb`` computed fresh.  Code that
mutates a ``ContainerAllocation.alloc_mb`` directly (some sanitizer
tests do, to corrupt state on purpose) bypasses the mirror; every
consumer of the mirror is disabled under the sanitizer, which keeps
that loophole harmless.

Each mutation also bumps a per-node *epoch* counter, which is what lets
the orchestrator skip quiescent kubelets and schedulers reuse cached
candidate state without re-walking idle nodes.

**Pod-major companion.**  The vectorized execution quantum
(:mod:`repro.cluster.quantum`) keeps a second, pod-major set of arrays
(progress, demand row, device row, reservation) under the same
write-through discipline: the kubelet's dicts stay the source of truth
and every admit/start/release/resize pushes into the engine, so the
per-tick advance can run as a handful of ndarray ops.  The static
per-device columns it needs beyond the scheduling mirror — idle/TDP
wattage, PCIe link rate, the interference coefficient — live here so
every array consumer shares one gather.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle (gpu binds to us)
    from repro.cluster.gpu import GpuSample
    from repro.cluster.node import GpuNode

__all__ = ["ClusterState"]


class ClusterState:
    """Flat numpy arrays over every GPU of a cluster, node-major."""

    __slots__ = (
        "gpu_ids", "index", "id_rank",
        "node_ids", "node_index", "node_of", "node_slices",
        "mem_capacity_mb", "cap_total_bytes", "sleep_watts",
        "idle_watts", "tdp_watts", "pcie_mbps", "interference_alpha",
        "alloc_mb", "num_containers", "asleep", "failed", "cordoned",
        "sm_util", "mem_used_mb", "mem_util", "power_w",
        "tx_mbps", "rx_mbps", "sample_containers",
        "sample_dirty",
        "node_epoch",
    )

    def __init__(self, nodes: Sequence["GpuNode"]) -> None:
        gpus = [gpu for node in nodes for gpu in node.gpus]
        n = len(gpus)
        self.gpu_ids: list[str] = [g.gpu_id for g in gpus]
        self.index: dict[str, int] = {gid: i for i, gid in enumerate(self.gpu_ids)}
        # Rank of each device in sorted(gpu_ids): vectorized orderings
        # lexsort on this to reproduce Python's string-sorted tie-breaks.
        self.id_rank = np.empty(n, dtype=np.intp)
        self.id_rank[np.argsort(np.array(self.gpu_ids))] = np.arange(n)

        self.node_ids: list[str] = [node.node_id for node in nodes]
        self.node_index: dict[str, int] = {
            nid: i for i, nid in enumerate(self.node_ids)
        }
        self.node_of = np.empty(n, dtype=np.intp)
        self.node_slices: list[tuple[int, int]] = []
        start = 0
        for i, node in enumerate(nodes):
            stop = start + len(node.gpus)
            self.node_of[start:stop] = i
            self.node_slices.append((start, stop))
            start = stop

        self.mem_capacity_mb = np.array([g.mem_capacity_mb for g in gpus])
        # float64 image of NVML's integer byte capacity (< 2**53, exact).
        self.cap_total_bytes = np.array(
            [float(int(g.mem_capacity_mb * 1024 * 1024)) for g in gpus]
        )
        self.sleep_watts = np.array([g.power_model.sleep_watts for g in gpus])
        self.idle_watts = np.array([g.power_model.idle_watts for g in gpus])
        self.tdp_watts = np.array([g.power_model.tdp_watts for g in gpus])
        self.pcie_mbps = np.array([g.pcie_mbps for g in gpus])
        self.interference_alpha = np.array([g.interference_alpha for g in gpus])

        self.alloc_mb = np.zeros(n)
        self.num_containers = np.zeros(n, dtype=np.int64)
        self.asleep = np.zeros(n, dtype=bool)
        self.failed = np.zeros(n, dtype=bool)
        self.cordoned = np.zeros(n, dtype=bool)

        self.sm_util = np.zeros(n)
        self.mem_used_mb = np.zeros(n)
        self.mem_util = np.zeros(n)
        self.power_w = np.zeros(n)
        self.tx_mbps = np.zeros(n)
        self.rx_mbps = np.zeros(n)
        self.sample_containers = np.zeros(n, dtype=np.int64)
        #: Devices whose sample mirror changed since the telemetry ring
        #: last consumed it (consumed and cleared by
        #: :meth:`~repro.telemetry.matrix.MatrixTelemetry.append_from_state`).
        self.sample_dirty: set[int] = set()

        self.node_epoch = np.zeros(len(nodes), dtype=np.int64)

        for i, gpu in enumerate(gpus):
            gpu.bind_state(self, i)
            self.asleep[i] = gpu.asleep
            self.failed[i] = gpu.failed
            self.cordoned[i] = gpu.cordoned
            self.sync_sample(i, gpu.last_sample)
            self.sync_alloc(i, gpu)

    def __len__(self) -> int:
        return len(self.gpu_ids)

    # -- write-through hooks (called from GPU) -----------------------------

    def sync_alloc(self, i: int, gpu) -> None:
        """Re-sum reservations after any allocation mutation on device ``i``.

        A full re-sum (not an incremental +=/-=) keeps
        ``mem_capacity_mb[i] - alloc_mb[i]`` bit-identical to the
        object path's ``free_mem_mb``, which recomputes the sum fresh.
        """
        containers = gpu.containers
        self.alloc_mb[i] = sum(c.alloc_mb for c in containers.values())
        self.num_containers[i] = len(containers)
        self.node_epoch[self.node_of[i]] += 1

    def sync_flags(self, i: int, asleep: bool, failed: bool) -> None:
        self.asleep[i] = asleep
        self.failed[i] = failed
        self.node_epoch[self.node_of[i]] += 1

    def sync_cordon(self, i: int, cordoned: bool) -> None:
        """Mirror the cordon flag (a scheduling-relevant transition)."""
        self.cordoned[i] = cordoned
        self.node_epoch[self.node_of[i]] += 1

    def sync_sample(self, i: int, sample: "GpuSample") -> None:
        """Mirror ``gpu.last_sample`` (no epoch bump: samples are outputs,
        not scheduling-relevant state transitions)."""
        self.sm_util[i] = sample.sm_util
        self.mem_used_mb[i] = sample.mem_used_mb
        self.mem_util[i] = sample.mem_util
        self.power_w[i] = sample.power_w
        self.tx_mbps[i] = sample.tx_mbps
        self.rx_mbps[i] = sample.rx_mbps
        self.sample_containers[i] = sample.num_containers
        self.sample_dirty.add(i)

    # -- derived reads ------------------------------------------------------

    def free_mb(self) -> np.ndarray:
        """Unreserved memory per device (fresh array, safe to mutate)."""
        return self.mem_capacity_mb - self.alloc_mb
