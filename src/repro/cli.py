"""Command-line interface: ``python -m repro <command>``.

The subcommands cover the workflows a user reaches for first:

``experiment``
    Regenerate one of the paper's figures/tables (or ``all``) and print
    the ASCII rendition — the same output recorded in EXPERIMENTS.md.
    ``--jobs N`` fans cache misses across N worker processes and
    ``--no-cache`` bypasses the persistent result store.
``sweep``
    Pre-compute the full experiment grid — every (app-mix x scheduler)
    cluster run plus the four-policy DL comparison — through the
    parallel sweep fabric (:mod:`repro.sweep`), filling the
    content-addressed ``.repro-cache/`` store that ``experiment``
    then reads.  Progress lands in ``sweep_*`` metrics
    (``--metrics PATH``); reruns are near-free cache hits.
``simulate``
    One cluster run: a Table-I app-mix under a chosen scheduler, with a
    summary of utilization, QoS, energy and crash counts.
    ``--scenario NAME`` threads a scenario-catalog entry (time-varying
    capacity, network model, gang-scheduled multi-GPU jobs) through the
    run; the default scenario is bit-identical to omitting the flag.
``dlsim``
    The DL-cluster comparison (Sec. V-C) for a chosen policy set.
``replay``
    Drive the simulator from a real Alibaba ``batch_task.csv``.
``serve``
    Run Kube-Knots as a long-running service (:mod:`repro.serve`): an
    asyncio HTTP front door and/or the built-in trace-driven load
    generator feed a bounded admission queue (backpressure = 429 +
    Retry-After) drained into the event loop at wall clock, with
    p50/p95/p99 decision-latency SLO metrics live on ``/metrics``.
``lint``
    Run the Kube-Knots static lint rules — determinism/hygiene
    (KK001–KK004) and thread-safety (KK005–KK008) — over source paths;
    the CI gate is ``python -m repro lint src``.  ``--layers`` runs the
    import-graph layer contract checker instead (simulation stack never
    imports drivers, no module cycles), and ``--format json`` makes
    either mode machine-readable.
``bench``
    Run the benchmark suite: hot-path kernels (TSDB windowed queries,
    the correlation matrix, AR(1) fits, CBP/PP scheduler passes — the
    ``BENCH_hotpath.json`` baseline) and the end-to-end simulator loops
    (``sim_dense``/``sim_sparse``/``dlsim_loop`` — the
    ``BENCH_simloop.json`` baseline); the CI gate is
    ``python -m repro bench --quick --json ... --baseline ...``.
``list``
    Enumerate available experiments, schedulers, mixes and policies.

``simulate`` and ``dlsim`` accept ``--sanitize`` to run under the
runtime sanitizer (:mod:`repro.analysis.sanitizer`): invariant breaches
abort the run with exit code 3 and land in the decision audit log.
``serve`` additionally accepts ``--race-detect`` to run under the
lock-order / owner-thread race detector
(:mod:`repro.analysis.racedetect`): the run completes, violations are
printed and recorded in the audit log, and the command exits 5.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from typing import Sequence

import numpy as np

from repro.analysis.sanitizer import SanitizerError
from repro.units import ms_to_s

EXPERIMENTS = (
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table4",
    "ablation",
    "ablation_dl",
    "hetero",
    "sensitivity",
    "scenarios",
)

#: Short spellings accepted wherever a scheduler name is expected.
SCHEDULER_ALIASES = {
    "pp": "peak-prediction",
    "cbp-pp": "peak-prediction",
    "resag": "res-ag",
    "hetero": "hetero-pp",
}

#: Short spellings accepted wherever an app-mix name is expected.
MIX_ALIASES = {
    "1": "app-mix-1",
    "2": "app-mix-2",
    "3": "app-mix-3",
    "mix-1": "app-mix-1",
    "mix-2": "app-mix-2",
    "mix-3": "app-mix-3",
}


def _experiment_description(name: str) -> str:
    """First docstring line of ``repro.experiments.<name>``."""
    try:
        module = importlib.import_module(f"repro.experiments.{name}")
    except Exception:  # pragma: no cover - defensive: a broken module
        return ""
    doc = (module.__doc__ or "").strip()
    return doc.splitlines()[0].rstrip(".") if doc else ""


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.core.schedulers import SCHEDULERS
    from repro.sim.dlsim import DL_POLICIES
    from repro.workloads.appmix import APP_MIXES

    print("experiments :")
    width = max(len(n) for n in EXPERIMENTS)
    for name in EXPERIMENTS:
        print(f"  {name:<{width}}  {_experiment_description(name)}")
    print("schedulers  :", ", ".join(sorted(SCHEDULERS)))
    print("app mixes   :", ", ".join(sorted(APP_MIXES)))
    print("DL policies :", ", ".join(sorted(DL_POLICIES)))
    return 0


def _make_observability(args: argparse.Namespace):
    """Build (Observability | None, audit_path | None) from CLI flags.

    Any of ``--trace``/``--metrics``/``--audit`` switches the matching
    sink on; the audit log rides along with ``--trace`` (written next to
    the trace file) so a traced run always explains its decisions.
    ``--sanitize`` attaches the runtime sanitizer (which always brings
    the audit log with it, so violations are recorded somewhere).
    """
    from repro.obs import Observability

    trace = getattr(args, "trace", None)
    metrics = getattr(args, "metrics", None)
    audit = getattr(args, "audit", None)
    sanitize = bool(getattr(args, "sanitize", False))
    if not (trace or metrics or audit or sanitize):
        return None, None
    audit_path = audit
    # Only commands that audit decisions define --audit; for those the
    # audit log rides along with --trace under a derived filename.
    if audit_path is None and trace is not None and hasattr(args, "audit"):
        from pathlib import Path

        audit_path = str(Path(trace).with_suffix("")) + ".audit.jsonl"
    return (
        Observability(
            trace=bool(trace),
            metrics=bool(metrics),
            audit=bool(audit_path),
            sanitize=sanitize,
        ),
        audit_path,
    )


def _export_observability(obs, args: argparse.Namespace, audit_path) -> None:
    if obs is None:
        return
    written = obs.export(
        trace_path=getattr(args, "trace", None),
        metrics_path=getattr(args, "metrics", None),
        audit_path=audit_path,
    )
    if getattr(args, "trace", None):
        print(f"trace: {written['trace_events']} events -> {args.trace} "
              "(open in Perfetto / chrome://tracing)")
    if getattr(args, "metrics", None):
        print(f"metrics: {written['metrics']} series -> {args.metrics}")
    if audit_path:
        summary = ", ".join(f"{k}={v}" for k, v in sorted(obs.audit.summary().items()))
        print(f"decision audit: {written['audit_records']} records -> {audit_path}"
              + (f" ({summary})" if summary else ""))
    if obs.sanitizer is not None:
        san = obs.sanitizer
        print(f"sanitizer: {san.checks} checks, {len(san.violations)} violations")


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.sweep import configure

    configure(jobs=args.jobs, cache=not args.no_cache)
    names = EXPERIMENTS if args.name == "all" else (args.name,)
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
            return 2
        module = importlib.import_module(f"repro.experiments.{name}")
        if len(names) > 1:
            print("#" * 70)
            print("##", name)
            print("#" * 70)
        print(module.main())
        print()
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core.schedulers import make_scheduler
    from repro.metrics.percentiles import cluster_percentiles
    from repro.metrics.report import format_table
    from repro.sim.simulator import SimConfig, run_appmix

    args.mix = MIX_ALIASES.get(args.mix, args.mix)
    args.scheduler = SCHEDULER_ALIASES.get(args.scheduler, args.scheduler)
    obs, audit_path = _make_observability(args)
    scenario = None
    if args.scenario != "default":
        from repro.scenario import make_scenario

        try:
            scenario = make_scenario(args.scenario)
        except KeyError as exc:
            print(str(exc.args[0]), file=sys.stderr)
            return 2
    try:
        result = run_appmix(
            args.mix,
            make_scheduler(args.scheduler),
            duration_s=args.duration,
            seed=args.seed,
            num_nodes=args.nodes,
            gpus_per_node=args.gpus,
            config=SimConfig(fast_forward=args.fast_forward, scenario=scenario),
            load_factor=args.load_factor,
            obs=obs,
        )
    except SanitizerError as exc:
        print(f"sanitizer violation: {exc}", file=sys.stderr)
        return 3
    util = cluster_percentiles(result.gpu_util_series)
    mean_power = result.total_energy_j() / ms_to_s(result.makespan_ms)
    rows = [
        ("pods completed", f"{len(result.completed())}/{len(result.pods)}"),
        ("makespan", f"{ms_to_s(result.makespan_ms):.1f} s"),
        ("utilization p50/p90/p99/max %", "/".join(f"{v:.0f}" for v in util.as_tuple())),
        ("QoS violations per kilo-query", f"{result.qos_violations_per_kilo():.1f}"),
        ("OOM kills", str(result.oom_kills)),
        ("container resizes (harvests)", str(result.resizes)),
        ("mean cluster power", f"{mean_power:.0f} W"),
        ("total energy", f"{result.total_energy_j() / 1_000.0:.1f} kJ"),
    ]
    if result.fast_quantum_ticks:
        rows.append(("fast quantum ticks", str(result.fast_quantum_ticks)))
    if obs is not None and getattr(args, "metrics", None):
        fired = obs.metrics.get("engine_events_fired_total").value()
        rows.append(("engine events fired", f"{fired:.0f}"))
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"{args.mix} under {args.scheduler} ({args.nodes} nodes, seed {args.seed})",
        )
    )
    if args.export:
        from repro.telemetry.export import export_result_json

        export_result_json(result, args.export)
        print(f"run exported to {args.export}")
    _export_observability(obs, args, audit_path)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.cluster.cluster import make_paper_cluster
    from repro.core.schedulers import make_scheduler
    from repro.metrics.report import format_table
    from repro.sim.simulator import KubeKnotsSimulator
    from repro.workloads.trace_replay import load_batch_tasks, tasks_to_workload

    args.scheduler = SCHEDULER_ALIASES.get(args.scheduler, args.scheduler)
    tasks = load_batch_tasks(args.trace, max_tasks=args.max_tasks)
    if not tasks:
        print(f"no terminated tasks found in {args.trace}", file=sys.stderr)
        return 2
    workload = tasks_to_workload(
        tasks, time_scale=args.time_scale, duration_scale=args.duration_scale, seed=args.seed
    )
    cluster = make_paper_cluster(num_nodes=args.nodes)
    result = KubeKnotsSimulator(cluster, make_scheduler(args.scheduler), workload).run()
    print(
        format_table(
            ["metric", "value"],
            [
                ("replayed tasks", str(len(tasks))),
                ("completed", f"{len(result.completed())}/{len(result.pods)}"),
                ("makespan", f"{ms_to_s(result.makespan_ms):.1f} s"),
                ("OOM kills", str(result.oom_kills)),
                ("harvest resizes", str(result.resizes)),
            ],
            title=f"trace replay: {args.trace} under {args.scheduler}",
        )
    )
    return 0


def _cmd_dlsim(args: argparse.Namespace) -> int:
    from repro.metrics.jct import normalized_jct
    from repro.metrics.report import format_table
    from repro.sim.dlsim import run_dl_comparison
    from repro.workloads.dlt import DLJobKind, DLWorkloadConfig

    config = None
    if args.quick:
        config = DLWorkloadConfig(n_training=100, n_inference=300, window_s=2 * 3_600.0)
    scenario = None
    if args.scenario != "default":
        from repro.scenario import make_scenario

        try:
            scenario = make_scenario(args.scenario)
        except KeyError as exc:
            print(str(exc.args[0]), file=sys.stderr)
            return 2
    obs, audit_path = _make_observability(args)
    try:
        results = run_dl_comparison(
            jobs_seed=args.seed, policies=args.policies, config=config, obs=obs,
            scenario=scenario,
        )
    except SanitizerError as exc:
        print(f"sanitizer violation: {exc}", file=sys.stderr)
        return 3
    ref = "cbp-pp" if "cbp-pp" in results else args.policies[0]
    ratios = normalized_jct({n: r.jcts_s() for n, r in results.items()}, reference=ref)
    rows = []
    for name, r in results.items():
        dli = r.jcts_s(DLJobKind.INFERENCE)
        rows.append(
            (
                name,
                *[round(x, 2) for x in ratios[name]],
                float(np.median(dli) * 1_000.0) if len(dli) else float("nan"),
                r.qos_violations(),
            )
        )
    print(
        format_table(
            ["policy", f"avg/{ref}", f"med/{ref}", f"p99/{ref}", "DLI med ms", "SLO viol"],
            rows,
            title="DL-cluster comparison",
        )
    )
    _export_observability(obs, args, audit_path)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from time import perf_counter

    from repro.experiments.runner import (
        DEFAULT_SETTINGS,
        MIX_ORDER,
        QUICK_SETTINGS,
        SCHEDULER_ORDER,
    )
    from repro.obs import Observability
    from repro.sweep import DLTask, MixTask, SweepError, clear, configure, last_stats, run_tasks
    from repro.workloads.dlt import DLWorkloadConfig

    if args.clear:
        clear(disk=True)
        print("cleared the persistent result store (.repro-cache)")
    configure(jobs=args.jobs, cache=not args.no_cache)
    settings = QUICK_SETTINGS if args.quick else DEFAULT_SETTINGS
    # The scale axis is part of each task's frozen repr, so the
    # content-addressed cache keys on it: a 256-node sweep never
    # collides with the paper-scale grid.
    overrides = {}
    if args.nodes is not None:
        overrides["num_nodes"] = args.nodes
    if args.gpus is not None:
        overrides["gpus_per_node"] = args.gpus
    if overrides:
        from dataclasses import replace

        settings = replace(settings, **overrides)
    tasks: list = [MixTask(m, s, settings) for m in MIX_ORDER for s in SCHEDULER_ORDER]
    dl_config = None
    if args.quick:
        dl_config = DLWorkloadConfig(n_training=100, n_inference=300, window_s=2 * 3_600.0)
    tasks += [
        DLTask(policy, jobs_seed=args.seed, config=dl_config)
        for policy in ("res-ag", "gandiva", "tiresias", "cbp-pp")
    ]
    obs = Observability(metrics=True)
    print(
        f"sweep: {len(tasks)} tasks "
        f"({len(MIX_ORDER) * len(SCHEDULER_ORDER)} cluster grid + 4 DL policies, "
        f"{'quick' if args.quick else 'full'} settings)"
    )
    start = perf_counter()
    try:
        run_tasks(tasks, obs=obs)
    except SanitizerError as exc:
        print(f"sanitizer violation: {exc}", file=sys.stderr)
        return 3
    except SweepError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    wall = perf_counter() - start
    stats = last_stats()
    total = stats["hits"] + stats["misses"]
    hit_pct = 100.0 * stats["hits"] / total if total else 0.0
    print(
        f"sweep: done in {wall:.1f}s — {stats['hits']} cache hits, "
        f"{stats['misses']} misses ({hit_pct:.0f}% hit rate, "
        f"{stats['workers']} workers for the misses)"
    )
    if args.metrics:
        written = obs.export(metrics_path=args.metrics)
        print(f"metrics: {written['metrics']} series -> {args.metrics}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.metrics.report import format_table
    from repro.serve import KnotsService, ServeConfig, run_serve

    args.mix = MIX_ALIASES.get(args.mix, args.mix)
    args.scheduler = SCHEDULER_ALIASES.get(args.scheduler, args.scheduler)
    config = ServeConfig(
        scheduler=args.scheduler,
        mix=args.mix,
        nodes=args.nodes,
        gpus_per_node=args.gpus_per_node,
        queue_capacity=args.queue_capacity,
        duration_s=None if args.duration <= 0 else args.duration,
        qps=args.qps,
        mode=args.mode,
        concurrency=args.concurrency,
        speed=args.speed,
        paced=not args.unpaced,
        drain_grace_ms=args.drain_grace * 1_000.0,
        status_interval_s=args.status_interval,
        host=args.host,
        port=args.port,
        http=not args.no_http,
        sanitize=args.sanitize,
        race_detect=args.race_detect,
        seed=args.seed,
    )
    service = KnotsService(config)
    try:
        report = run_serve(config, service=service)
    except SanitizerError as exc:
        print(f"sanitizer violation: {exc}", file=sys.stderr)
        return 3
    print(
        format_table(
            ["metric", "value"],
            report.rows(),
            title=f"serve: {args.mix} under {args.scheduler} "
                  f"({args.nodes}x{args.gpus_per_node} GPUs, seed {args.seed})",
        )
    )
    if args.metrics:
        service.obs.metrics.write(args.metrics)
        print(f"metrics: {len(service.obs.metrics.names())} series -> {args.metrics}")
    if service.obs.sanitizer is not None:
        san = service.obs.sanitizer
        print(f"sanitizer: {san.checks} checks, {len(san.violations)} violations")
    race = service.obs.race
    if race is not None:
        print(
            f"race detector: {race.acquisitions} lock acquisitions, "
            f"{len(race.violations)} violations"
        )
        if race.violations:
            for violation in race.iter_violations():
                print(violation.render(), file=sys.stderr)
            return 5
    # A graceful run never loses an accepted pod; surface it if one did.
    return 0 if report.counts["dropped"] == 0 else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.layers:
        from repro.analysis.layers import main as layers_main

        return layers_main(fmt=args.format)
    from repro.analysis.lint import main as lint_main

    return lint_main(
        args.paths, select=args.select, list_rules=args.list_rules, fmt=args.format
    )


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.hotpath import (
        check_regression,
        format_report,
        load_json,
        run_benchmarks,
        save_json,
    )

    try:
        payload = run_benchmarks(quick=args.quick, only=args.only)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(format_report(payload))
    if args.json:
        save_json(payload, args.json)
        print(f"benchmarks -> {args.json}")
    if args.baseline:
        try:
            baseline = load_json(args.baseline)
        except OSError as exc:
            print(f"cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2
        failures = check_regression(payload, baseline, args.max_regression)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 4
        print(f"regression gate: ok (<= {args.max_regression:.1f}x of {args.baseline})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Kube-Knots reproduction (CLUSTER 2019) command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="enumerate experiments, schedulers, mixes, policies")
    p_list.set_defaults(func=_cmd_list)

    p_exp = sub.add_parser("experiment", help="regenerate a paper figure/table")
    p_exp.add_argument("name", help=f"one of: {', '.join(EXPERIMENTS)}, or 'all'")
    p_exp.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker processes for simulation cache misses "
                            "(default: os.cpu_count())")
    p_exp.add_argument("--no-cache", action="store_true", dest="no_cache",
                       help="bypass the persistent result store (.repro-cache)")
    p_exp.set_defaults(func=_cmd_experiment)

    p_sweep = sub.add_parser(
        "sweep", help="pre-compute the experiment grid in parallel into .repro-cache"
    )
    p_sweep.add_argument("--quick", action="store_true",
                         help="reduced workloads (the CI smoke configuration)")
    p_sweep.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker processes for cache misses (default: os.cpu_count(); "
                              "1 = serial, no pool)")
    p_sweep.add_argument("--seed", type=int, default=1, help="DL workload seed")
    p_sweep.add_argument("--nodes", type=int, default=None,
                         help="cluster-grid node count (default: experiment settings)")
    p_sweep.add_argument("--gpus", type=int, default=None,
                         help="GPUs per node for the cluster grid "
                              "(default: experiment settings)")
    p_sweep.add_argument("--no-cache", action="store_true", dest="no_cache",
                         help="recompute everything; do not read or write .repro-cache")
    p_sweep.add_argument("--clear", action="store_true",
                         help="delete the persistent store before sweeping")
    p_sweep.add_argument("--metrics", default=None, metavar="PATH",
                         help="write Prometheus text-format metrics incl. "
                              "sweep_cache_{hits,misses}_total")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_sim = sub.add_parser("simulate", help="run one app-mix under one scheduler")
    p_sim.add_argument("--mix", default="app-mix-1", help="Table-I mix name (or just 1/2/3)")
    p_sim.add_argument("--scheduler", default="peak-prediction",
                       help="uniform | res-ag | cbp | peak-prediction (alias: pp)")
    p_sim.add_argument("--duration", type=float, default=20.0, help="arrival window, seconds")
    p_sim.add_argument("--seed", type=int, default=1)
    p_sim.add_argument("--nodes", type=int, default=10)
    p_sim.add_argument("--gpus", type=int, default=1,
                       help="GPUs per node (scale axis; paper clusters use 1 or 8)")
    p_sim.add_argument("--load-factor", type=float, default=1.0, dest="load_factor")
    p_sim.add_argument("--scenario", default="default",
                       help="scenario-catalog entry threading a capacity plan, "
                            "network model and/or gang mix through the run "
                            "(default | diurnal | spot | gang | diurnal-gang)")
    p_sim.add_argument("--export", default=None, metavar="PATH",
                       help="write the run (pods + telemetry) to a JSON file")
    p_sim.add_argument("--trace", default=None, metavar="PATH",
                       help="write a Chrome trace-event JSON (Perfetto/chrome://tracing); "
                            "also writes the decision audit log next to it")
    p_sim.add_argument("--metrics", default=None, metavar="PATH",
                       help="write Prometheus text-format metrics")
    p_sim.add_argument("--audit", default=None, metavar="PATH",
                       help="write the scheduler decision audit log (JSONL)")
    p_sim.add_argument("--sanitize", action="store_true",
                       help="run under the runtime sanitizer; invariant breaches "
                            "abort with exit code 3")
    p_sim.add_argument("--no-fast-forward", action="store_false", dest="fast_forward",
                       help="disable the idle fast-forward (outputs are bit-identical "
                            "either way; this only slows wall-clock on sparse runs)")
    p_sim.set_defaults(func=_cmd_simulate)

    p_rep = sub.add_parser("replay", help="replay an Alibaba batch_task.csv trace")
    p_rep.add_argument("trace", help="path to batch_task.csv (v2017 schema)")
    p_rep.add_argument("--scheduler", default="peak-prediction")
    p_rep.add_argument("--nodes", type=int, default=10)
    p_rep.add_argument("--max-tasks", type=int, default=200, dest="max_tasks")
    p_rep.add_argument("--time-scale", type=float, default=0.01, dest="time_scale")
    p_rep.add_argument("--duration-scale", type=float, default=0.05, dest="duration_scale")
    p_rep.add_argument("--seed", type=int, default=0)
    p_rep.set_defaults(func=_cmd_replay)

    p_dl = sub.add_parser("dlsim", help="run the DL-cluster comparison (Sec. V-C)")
    p_dl.add_argument("--policies", nargs="+",
                      default=["res-ag", "gandiva", "tiresias", "cbp-pp"])
    p_dl.add_argument("--seed", type=int, default=1)
    p_dl.add_argument("--quick", action="store_true", help="reduced workload")
    p_dl.add_argument("--scenario", default="default",
                      help="scenario-catalog entry; its network model sets the "
                           "gang locality penalty and migration pause costs")
    p_dl.add_argument("--trace", default=None, metavar="PATH",
                      help="write a Chrome trace-event JSON of all policies' job lifecycles")
    p_dl.add_argument("--metrics", default=None, metavar="PATH",
                      help="write Prometheus text-format metrics")
    p_dl.add_argument("--sanitize", action="store_true",
                      help="run under the runtime sanitizer; invariant breaches "
                           "abort with exit code 3")
    p_dl.set_defaults(func=_cmd_dlsim)

    p_srv = sub.add_parser(
        "serve", help="run Kube-Knots as a live service (HTTP front door + load generator)"
    )
    p_srv.add_argument("--qps", type=float, default=0.0,
                       help="in-process load generator rate (0 = external traffic only)")
    p_srv.add_argument("--duration", type=float, default=10.0,
                       help="arrival window in seconds; 0 = run until SIGINT")
    p_srv.add_argument("--mix", default="app-mix-1", help="Table-I mix name (or just 1/2/3)")
    p_srv.add_argument("--scheduler", default="peak-prediction",
                       help="uniform | res-ag | cbp | peak-prediction (alias: pp)")
    p_srv.add_argument("--nodes", type=int, default=32, help="paper scale: 32 nodes")
    p_srv.add_argument("--gpus-per-node", "--gpus", type=int, default=8,
                       dest="gpus_per_node")
    p_srv.add_argument("--queue-capacity", type=int, default=1024, dest="queue_capacity",
                       help="admission queue bound; overflow answers 429 + Retry-After")
    p_srv.add_argument("--mode", choices=("open", "closed"), default="open",
                       help="load-generator driving mode")
    p_srv.add_argument("--concurrency", type=int, default=64,
                       help="closed-loop outstanding-submission limit")
    p_srv.add_argument("--speed", type=float, default=1.0,
                       help="sim ms advanced per wall ms (1.0 = real time)")
    p_srv.add_argument("--unpaced", action="store_true",
                       help="run the event loop flat out (benchmarks, CI)")
    p_srv.add_argument("--drain-grace", type=float, default=30.0, dest="drain_grace",
                       help="sim seconds allowed for pending decisions at shutdown")
    p_srv.add_argument("--status-interval", type=float, default=1.0, dest="status_interval",
                       help="status-line cadence in sim seconds (0 = quiet)")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    p_srv.add_argument("--no-http", action="store_true", dest="no_http",
                       help="do not start the HTTP front door")
    p_srv.add_argument("--seed", type=int, default=1, help="load-generator seed")
    p_srv.add_argument("--metrics", default=None, metavar="PATH",
                       help="write final Prometheus text-format metrics "
                            "(also scrapeable live at /metrics)")
    p_srv.add_argument("--sanitize", action="store_true",
                       help="run under the runtime sanitizer; invariant breaches "
                            "abort with exit code 3")
    p_srv.add_argument("--race-detect", action="store_true", dest="race_detect",
                       help="run under the lock-order/owner-thread race detector; "
                            "violations are reported at exit with exit code 5")
    p_srv.set_defaults(func=_cmd_serve)

    p_lint = sub.add_parser("lint", help="run the KK static lint rules (KK001-KK008)")
    p_lint.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    p_lint.add_argument("--select", nargs="+", default=None, metavar="KKnnn",
                        help="run only these rule ids")
    p_lint.add_argument("--list-rules", action="store_true", dest="list_rules",
                        help="print the rule catalog and exit")
    p_lint.add_argument("--layers", action="store_true",
                        help="check the import-graph layer contract instead of "
                             "the per-file rules")
    p_lint.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    p_lint.set_defaults(func=_cmd_lint)

    p_bench = sub.add_parser("bench", help="run the hot-path benchmark suite")
    p_bench.add_argument("--quick", action="store_true",
                         help="reduced iteration counts (the CI smoke configuration)")
    p_bench.add_argument("--json", default=None, metavar="PATH",
                         help="write results as JSON (e.g. BENCH_hotpath.json)")
    p_bench.add_argument("--baseline", default=None, metavar="PATH",
                         help="compare scheduler-pass benchmarks against a committed "
                              "baseline JSON; exit 4 on regression")
    p_bench.add_argument("--max-regression", type=float, default=2.0,
                         dest="max_regression", metavar="RATIO",
                         help="fail when a gated benchmark exceeds RATIO x baseline "
                              "(default: 2.0)")
    p_bench.add_argument("--only", nargs="+", default=None, metavar="NAME",
                         help="run only these benchmarks")
    p_bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
