"""Execution-quantum benchmark: dense kubelet ticks, object vs array.

PR 8's cluster-scale suite pinned the *scheduling* pass; this suite
pins the *execution* quantum — the per-tick advance of every running
pod (:mod:`repro.cluster.quantum`).  The workload here scales with the
cluster (constant per-node density), so every scale runs genuinely
dense ticks: thousands of running pods per tick at 1024x8, which is
where the batched searchsorted/bincount advance pays and the per-pod
object loop does not.

One benchmark, ``quantum_tick``: for each node count the same run is
timed around ``step_kubelets`` twice — once with the vectorized
quantum engaged and once with it disabled post-construction (the
unmodified ``Kubelet.step`` loop).  The gated field is the vectorized
ms-per-tick at the largest scale; the object-path figure and the
speedup ratio ride along per scale for the docs table.  Both variants
produce bit-identical results (pinned by
``tests/test_quantum_equivalence.py``), so the comparison is pure
substrate cost.

Like the rest of :mod:`repro.bench`, this module reads the host clock
and therefore lives outside the sim-critical packages (KK001).
"""

from __future__ import annotations

import time

from repro.cluster.cluster import make_paper_cluster
from repro.core.schedulers import make_scheduler
from repro.sim.simulator import KubeKnotsSimulator, SimConfig
from repro.workloads.appmix import generate_appmix_workload

__all__ = ["bench_quantum_tick", "QUANTUM_BENCHMARKS", "QUANTUM_NODES"]

#: Benchmark names this module contributes to the suite registry.
QUANTUM_BENCHMARKS = ("quantum_tick",)

#: Node counts of the dense-tick sweep (x8 GPUs each).
QUANTUM_NODES = (32, 256, 1024)

GPUS_PER_NODE = 8

#: Workload load factor per node of scale — keeps per-node density
#: constant across the sweep (load 8.0 at 32 nodes, 256.0 at 1024), so
#: the tick stays dense at every scale instead of diluting.
LOAD_PER_NODE = 0.25


def _make_sim(num_nodes: int, engine: bool) -> KubeKnotsSimulator:
    """A density-preserving dense run on an ``num_nodes`` x 8 cluster.

    ``engine=False`` detaches the vectorized quantum after
    construction — the orchestrator then drives the unmodified
    per-node ``Kubelet.step`` loop, which is the comparison baseline.
    """
    scheduler = make_scheduler("cbp")
    scheduler.vectorized = True
    sim = KubeKnotsSimulator(
        make_paper_cluster(num_nodes=num_nodes, gpus_per_node=GPUS_PER_NODE),
        scheduler,
        generate_appmix_workload(
            "app-mix-1", duration_s=4.0, seed=3,
            load_factor=num_nodes * LOAD_PER_NODE,
        ),
        SimConfig(min_horizon_ms=20_000.0),
    )
    if not engine:
        sim.orchestrator.quantum = None
        for kubelet in sim.orchestrator.kubelets.values():
            kubelet.engine = None
    return sim


def _timed_tick_run(num_nodes: int, engine: bool) -> dict:
    """One dense run with ``step_kubelets`` timed around each tick."""
    sim = _make_sim(num_nodes, engine)
    orch = sim.orchestrator
    inner = orch.step_kubelets
    stats = {"ticks": 0, "seconds": 0.0}

    def timed_step(now, dt_ms):
        t0 = time.perf_counter()
        inner(now, dt_ms)
        stats["seconds"] += time.perf_counter() - t0
        stats["ticks"] += 1

    orch.step_kubelets = timed_step  # type: ignore[method-assign]
    t0 = time.perf_counter()
    sim.run()
    e2e = time.perf_counter() - t0
    ticks = max(stats["ticks"], 1)
    quantum = sim.orchestrator.quantum
    return {
        "nodes": num_nodes,
        "gpus": num_nodes * GPUS_PER_NODE,
        "ticks": stats["ticks"],
        "ms_per_tick": stats["seconds"] / ticks * 1e3,
        "ms_run": e2e * 1e3,
        "fast_ticks": quantum.fast_ticks if quantum is not None else 0,
        "fallbacks": quantum.fallbacks if quantum is not None else 0,
    }


def bench_quantum_tick(quick: bool) -> dict:
    """Dense kubelet-tick cost across the node-count sweep, both paths.

    Runs at the same scales in quick and full mode — the committed
    full-mode baseline must be directly comparable to the CI quick run
    (only the repeat count differs).
    """
    repeats = 1 if quick else 2

    def best(num_nodes: int, engine: bool) -> dict:
        out = None
        for _ in range(repeats):
            run = _timed_tick_run(num_nodes, engine)
            if out is None or run["ms_per_tick"] < out["ms_per_tick"]:
                out = run
        return out

    sweep = []
    for num_nodes in QUANTUM_NODES:
        vec = best(num_nodes, engine=True)
        obj = best(num_nodes, engine=False)
        sweep.append({
            "nodes": num_nodes,
            "gpus": vec["gpus"],
            "ticks": vec["ticks"],
            "ms_per_tick_vec": vec["ms_per_tick"],
            "ms_per_tick_obj": obj["ms_per_tick"],
            "speedup": obj["ms_per_tick"] / vec["ms_per_tick"],
            "fast_ticks": vec["fast_ticks"],
            "fallbacks": vec["fallbacks"],
        })
    top = sweep[-1]
    return {
        "scheduler": "cbp",
        "sweep": sweep,
        "nodes": top["nodes"],
        "ticks": top["ticks"],
        "speedup_1024": top["speedup"],
        # The gated field: vectorized ms per tick at the largest scale.
        "ms_per_tick": top["ms_per_tick_vec"],
    }
