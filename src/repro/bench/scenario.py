"""Scenario-engine benchmarks: capacity churn and gang placement.

The scenario engine threads two new costs through the hot loop: the
:class:`~repro.sim.harness.CapacityPlan` drives whole-node
drain/reclaim/restore transitions (each reclaim evicts, requeues and
write-throughs to the vectorized :class:`~repro.cluster.state.ClusterState`),
and the :class:`~repro.scenario.gangs.GangScheduler` runs an
all-or-nothing multi-device placement ahead of the inner policy.  Two
benchmarks pin both costs:

* ``scenario_diurnal`` — a diurnal-capacity app-mix run end to end at
  256 nodes.  Capacity windows rotate nodes out and back all run long,
  so the figure covers the transition machinery, the co-eviction sweep
  and the cordon-aware vectorized pass together.  Gated on ``ms_run``
  against the committed ``BENCH_scenario.json``.
* ``scenario_gang_pass`` — ms per scheduling pass with the gang mix
  switched on (gang placement + single delegation per pass).  Gated on
  ``ms_per_pass``.

Like the rest of :mod:`repro.bench`, this module reads the host clock
and therefore lives outside the sim-critical packages (KK001).
"""

from __future__ import annotations

import time

from repro.cluster.cluster import make_paper_cluster
from repro.core.schedulers import make_scheduler
from repro.scenario import GangMix, GangScheduler, apply_gang_mix, make_scenario
from repro.sim.simulator import KubeKnotsSimulator, SimConfig, run_appmix
from repro.workloads.appmix import generate_appmix_workload

__all__ = [
    "bench_scenario_diurnal",
    "bench_scenario_gang_pass",
    "SCENARIO_BENCHMARKS",
]

#: Benchmark names this module contributes to the suite registry.
SCENARIO_BENCHMARKS = ("scenario_diurnal", "scenario_gang_pass")

#: The capacity-churn scale the acceptance criteria quote.
DIURNAL_NODES = 256


def bench_scenario_diurnal(quick: bool) -> dict:
    """The diurnal-capacity run end to end at 256 nodes.

    Runs at the same scale in quick and full mode — the committed
    full-mode baseline must be directly comparable to the CI quick run
    (only the repeat count differs).
    """
    repeats = 1 if quick else 2
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_appmix(
            "app-mix-1", make_scheduler("cbp"),
            duration_s=4.0, seed=3, num_nodes=DIURNAL_NODES,
            config=SimConfig(scenario=make_scenario("diurnal")),
        )
        best = min(best, time.perf_counter() - t0)
    return {
        "scenario": "diurnal",
        "nodes": DIURNAL_NODES,
        "pods": len(result.pods),
        "evictions": result.evictions,
        "ms": best * 1e3,
        # The gated field: the 256-node diurnal run wall-clock.
        "ms_run": best * 1e3,
    }


def bench_scenario_gang_pass(quick: bool) -> dict:
    """Scheduling-pass cost with the gang mix on.

    The :class:`GangScheduler` is built directly (rather than via a
    scenario in the config) so the timing wrapper sits on its
    ``schedule`` and the figure covers the whole gang-aware pass —
    all-or-nothing placement plus the single delegation — and none of
    the event-loop bookkeeping around it.
    """
    repeats = 1 if quick else 2
    best = None
    for _ in range(repeats):
        scheduler = GangScheduler(make_scheduler("cbp"))
        inner = scheduler.schedule
        stats = {"calls": 0, "seconds": 0.0}

        def timed_schedule(ctx, inner=inner, stats=stats):
            t0 = time.perf_counter()
            actions = inner(ctx)
            stats["seconds"] += time.perf_counter() - t0
            stats["calls"] += 1
            return actions

        scheduler.schedule = timed_schedule  # type: ignore[method-assign]
        workload = apply_gang_mix(
            generate_appmix_workload("app-mix-1", duration_s=4.0, seed=3),
            GangMix(),
        )
        sim = KubeKnotsSimulator(
            make_paper_cluster(num_nodes=16, gpus_per_node=4),
            scheduler,
            workload,
            SimConfig(),
        )
        result = sim.run()
        passes = max(stats["calls"], 1)
        out = {
            "scheduler": "gang+cbp",
            "nodes": 16,
            "pods": len(result.pods),
            "passes": stats["calls"],
            # The gated field: ms per gang-aware scheduling pass.
            "ms_per_pass": stats["seconds"] / passes * 1e3,
            "total_ms": stats["seconds"] * 1e3,
        }
        if best is None or out["ms_per_pass"] < best["ms_per_pass"]:
            best = out
    return best
