"""Hot-path micro/meso benchmarks for the Kube-Knots reproduction.

Every scheduling decision flows through the same heartbeat loop:
Algorithm 1 queries five metric windows per device, CBP runs Spearman
against every resident, PP re-fits AR(1) per device.  These benchmarks
measure exactly those inner loops, at the 32-node x 8-GPU scale the
acceptance numbers are quoted at:

* ``tsdb_window_query`` — the five-second sliding-window query, new
  in-ring binary-search path vs. the legacy copy-then-slice path (which
  materialized the whole ring per query and is retained as
  ``_RingSeries.ordered()``).
* ``correlation_matrix`` — all-pairs Spearman over one profile series
  per device, vectorized rank-matrix multiply vs. the pairwise loop.
* ``ar1_heartbeat_fit`` — PP's per-heartbeat Eq. 3 fit over a sliding
  window, incremental sufficient statistics vs. the batch fit.
* ``cbp_pass`` / ``pp_pass`` — one full scheduler pass inside a real
  simulation (scheduler time only, measured around ``schedule()``).
* ``simulate_e2e`` — the same simulation wall-clock end to end.

The module lives outside the sim-critical packages on purpose: it reads
the host clock (``time.perf_counter``), which KK001 bans everywhere the
simulators live.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable

import numpy as np

from repro.forecast.arima import Ar1Cache, fit_ar1
from repro.forecast.correlation import correlation_matrix, correlation_matrix_pairwise
from repro.telemetry.tsdb import SeriesWindow, TimeSeriesDB

__all__ = ["run_benchmarks", "check_regression", "GATED_BENCHMARKS"]

#: Benchmarks whose regression CI fails on, and the field that is gated.
#: The scheduler-pass benchmarks gate against ``BENCH_hotpath.json``;
#: the simulator-loop benchmarks (:mod:`repro.bench.simloop`) gate
#: against ``BENCH_simloop.json`` — :func:`check_regression` skips
#: entries missing from either payload, so each baseline file gates
#: only the benchmarks it contains.
GATED_BENCHMARKS = {
    "cbp_pass": "ms_per_pass",
    "pp_pass": "ms_per_pass",
    "sim_dense": "ms_run",
    "sim_sparse": "ms_run",
    "dlsim_loop": "ms_run",
    # Gated on the warm-cache read path (``BENCH_sweep.json``): stable
    # across runner core counts, unlike the parallel speedup, which is
    # recorded for information alongside ``host_cpus``.
    "sweep_parallel": "ms_warm",
    # Gated per submission (``BENCH_serve.json``): stable across the
    # benchmark's window length, unlike total wall.
    "serve_loop": "ms_per_submission",
    # Gated against ``BENCH_clusterscale.json``: the scheduling pass and
    # the dense end-to-end run at the 1024x8 scale.
    "cluster_scale_pass": "ms_per_pass",
    "cluster_scale_dense": "ms_run",
    # Gated against ``BENCH_scenario.json``: the 256-node diurnal run
    # and the gang-aware scheduling pass.
    "scenario_diurnal": "ms_run",
    "scenario_gang_pass": "ms_per_pass",
    # Gated against ``BENCH_quantum.json``: the vectorized dense
    # kubelet tick at the 1024x8 scale.
    "quantum_tick": "ms_per_tick",
}

#: The scale the acceptance numbers are quoted at.
NODES, GPUS_PER_NODE, METRICS_PER_GPU = 32, 8, 5

#: Simulated telemetry cadence (matches KnotsConfig defaults).
HEARTBEAT_S, WINDOW_S = 0.01, 5.0


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best wall-clock seconds of ``repeats`` calls (min filters noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# -- TSDB windowed query ----------------------------------------------------


def _legacy_query(db: TimeSeriesDB, metric: str, since: float, until: float) -> SeriesWindow:
    """The pre-optimization query: materialize the ring, then slice."""
    series = db._series.get(metric)
    if series is None:
        empty = np.empty(0)
        return SeriesWindow(empty, empty)
    times, values = series.ordered()
    lo = int(np.searchsorted(times, since, side="left"))
    hi = int(np.searchsorted(times, until, side="right"))
    return SeriesWindow(times[lo:hi], values[lo:hi])


def bench_tsdb_query(quick: bool) -> dict:
    """One scheduling pass's worth of windowed queries (1280 at 32x8x5).

    The store is one node's TSDB (8 GPUs x 5 metrics) filled to
    realistic depth; the query mix cycles every series at advancing
    ``now`` values, so the one-entry per-series cache cannot serve
    repeats — this measures the in-ring search itself.
    """
    # Rings are written past capacity: a wrapped ring is the steady
    # state of any long simulation, and exactly where the legacy path's
    # O(ring-capacity) materialization hurt (the default capacity is
    # 65,536 slots; every query paid for all of them).
    capacity = 8_192 if quick else 65_536
    points = int(capacity * 1.25)
    n_queries = NODES * GPUS_PER_NODE * METRICS_PER_GPU
    db = TimeSeriesDB(capacity=capacity)
    metrics = [
        f"gpu{g}.m{m}" for g in range(GPUS_PER_NODE) for m in range(METRICS_PER_GPU)
    ]
    for metric in metrics:
        for i in range(points):
            db.write(metric, i * HEARTBEAT_S, (i % 97) / 97.0)
    t_end = (points - 1) * HEARTBEAT_S
    t_oldest = (points - capacity) * HEARTBEAT_S       # oldest surviving point
    nows = np.linspace(t_oldest + WINDOW_S, t_end, n_queries)

    def run_new() -> None:
        for i, now in enumerate(nows):
            db.last_window(metrics[i % len(metrics)], WINDOW_S, float(now))

    def run_old() -> None:
        for i, now in enumerate(nows):
            _legacy_query(db, metrics[i % len(metrics)], float(now) - WINDOW_S, float(now))

    repeats = 3 if quick else 5
    before = _best_of(run_old, repeats)
    after = _best_of(run_new, repeats)
    return {
        "queries": n_queries,
        "ring_capacity": capacity,
        "points_per_series": points,
        "window_points": int(WINDOW_S / HEARTBEAT_S),
        "before_us_per_query": before / n_queries * 1e6,
        "after_us_per_query": after / n_queries * 1e6,
        "speedup": before / after,
    }


# -- correlation matrix -----------------------------------------------------


def bench_correlation_matrix(quick: bool) -> dict:
    """All-pairs Spearman over one 64-point profile per device (32x8)."""
    from repro.core.profiles import PROFILE_SERIES_POINTS

    n_series = NODES * GPUS_PER_NODE
    rng = np.random.default_rng(7)
    series = {
        f"gpu{i:03d}": rng.random(PROFILE_SERIES_POINTS) for i in range(n_series)
    }
    # A few tied/constant series keep the tie-handling path honest.
    series["gpu000"] = np.round(series["gpu000"], 1)
    series["gpu001"] = np.zeros(PROFILE_SERIES_POINTS)

    before = _best_of(lambda: correlation_matrix_pairwise(series), 1 if quick else 2)
    after = _best_of(lambda: correlation_matrix(series), 3 if quick else 5)
    return {
        "series": n_series,
        "points": PROFILE_SERIES_POINTS,
        "before_ms": before * 1e3,
        "after_ms": after * 1e3,
        "speedup": before / after,
    }


# -- incremental AR(1) ------------------------------------------------------


def bench_ar1(quick: bool) -> dict:
    """PP's per-heartbeat AR(1) re-fit over a sliding window."""
    window_pts = int(WINDOW_S / HEARTBEAT_S)          # 500, as in the paper setup
    steps = 500 if quick else 2_000
    rng = np.random.default_rng(11)
    n_total = window_pts + steps
    values = np.clip(
        0.5 + 0.3 * np.sin(np.arange(n_total) * 0.05) + rng.normal(0, 0.05, n_total),
        0.0, 1.0,
    )
    times = np.arange(n_total) * HEARTBEAT_S

    def run_batch() -> None:
        for i in range(steps):
            fit_ar1(values[i : i + window_pts])

    def run_incremental() -> None:
        cache = Ar1Cache()
        for i in range(steps):
            cache.fit("gpu", times[i : i + window_pts], values[i : i + window_pts])

    repeats = 2 if quick else 3
    before = _best_of(run_batch, repeats)
    after = _best_of(run_incremental, repeats)
    return {
        "window_points": window_pts,
        "heartbeats": steps,
        "before_us_per_fit": before / steps * 1e6,
        "after_us_per_fit": after / steps * 1e6,
        "speedup": before / after,
    }


# -- scheduler passes and end-to-end simulation -----------------------------


def _timed_simulate(scheduler_name: str, quick: bool) -> tuple[dict, float]:
    """Run one app-mix simulation, timing scheduler passes separately.

    Returns (pass stats, end-to-end seconds).  The scheduler's
    ``schedule`` is wrapped on the instance so the measurement covers
    exactly Algorithm 1's decision loop — telemetry queries, CBP's
    correlation gate, PP's forecasts — and none of the event-loop
    bookkeeping around it.
    """
    from repro.core.schedulers import make_scheduler
    from repro.sim.simulator import run_appmix

    scheduler = make_scheduler(scheduler_name)
    inner = scheduler.schedule
    stats = {"calls": 0, "seconds": 0.0}

    def timed_schedule(ctx):
        t0 = time.perf_counter()
        actions = inner(ctx)
        stats["seconds"] += time.perf_counter() - t0
        stats["calls"] += 1
        return actions

    scheduler.schedule = timed_schedule  # type: ignore[method-assign]
    # The pass benchmarks are the CI regression gate, so they run at the
    # same scale in quick and full mode — the committed full-mode
    # baseline must be directly comparable to the CI quick run.
    del quick
    t0 = time.perf_counter()
    run_appmix("app-mix-1", scheduler, duration_s=8.0, seed=1, num_nodes=8)
    e2e = time.perf_counter() - t0
    return stats, e2e


def bench_scheduler_pass(scheduler_name: str, quick: bool) -> tuple[dict, float]:
    stats, e2e = _timed_simulate(scheduler_name, quick)
    passes = max(stats["calls"], 1)
    return (
        {
            "scheduler": scheduler_name,
            "passes": stats["calls"],
            "ms_per_pass": stats["seconds"] / passes * 1e3,
            "total_ms": stats["seconds"] * 1e3,
        },
        e2e,
    )


# -- harness ---------------------------------------------------------------


def run_benchmarks(quick: bool = False, only: list[str] | None = None) -> dict:
    """Run the hot-path suite; returns the ``BENCH_hotpath.json`` payload."""
    from repro.bench.simloop import (
        SIMLOOP_BENCHMARKS,
        bench_dlsim_loop,
        bench_sim_dense,
        bench_sim_sparse,
    )
    from repro.bench.clusterscale import (
        CLUSTERSCALE_BENCHMARKS,
        bench_cluster_scale_dense,
        bench_cluster_scale_pass,
    )
    from repro.bench.scenario import (
        SCENARIO_BENCHMARKS,
        bench_scenario_diurnal,
        bench_scenario_gang_pass,
    )
    from repro.bench.quantum import QUANTUM_BENCHMARKS, bench_quantum_tick
    from repro.bench.serve import SERVE_BENCHMARKS, bench_serve_loop
    from repro.bench.sweep import SWEEP_BENCHMARKS, bench_sweep_parallel

    all_benches = ("tsdb_window_query", "correlation_matrix", "ar1_heartbeat_fit",
                   "cbp_pass", "pp_pass", "simulate_e2e") \
        + SIMLOOP_BENCHMARKS + SWEEP_BENCHMARKS + SERVE_BENCHMARKS \
        + CLUSTERSCALE_BENCHMARKS + SCENARIO_BENCHMARKS + QUANTUM_BENCHMARKS
    selected = set(only) if only else set(all_benches)
    unknown = selected - set(all_benches)
    if unknown:
        raise ValueError(f"unknown benchmarks: {sorted(unknown)}; known: {list(all_benches)}")

    results: dict[str, dict] = {}
    if "tsdb_window_query" in selected:
        results["tsdb_window_query"] = bench_tsdb_query(quick)
    if "correlation_matrix" in selected:
        results["correlation_matrix"] = bench_correlation_matrix(quick)
    if "ar1_heartbeat_fit" in selected:
        results["ar1_heartbeat_fit"] = bench_ar1(quick)
    if "cbp_pass" in selected:
        results["cbp_pass"], _ = bench_scheduler_pass("cbp", quick)
    if "pp_pass" in selected or "simulate_e2e" in selected:
        pp, e2e = bench_scheduler_pass("peak-prediction", quick)
        if "pp_pass" in selected:
            results["pp_pass"] = pp
        if "simulate_e2e" in selected:
            results["simulate_e2e"] = {
                "scheduler": "peak-prediction",
                "ms": e2e * 1e3,
                "quick": quick,
            }
    if "sim_dense" in selected:
        results["sim_dense"] = bench_sim_dense(quick)
    if "sim_sparse" in selected:
        results["sim_sparse"] = bench_sim_sparse(quick)
    if "dlsim_loop" in selected:
        results["dlsim_loop"] = bench_dlsim_loop(quick)
    if "sweep_parallel" in selected:
        results["sweep_parallel"] = bench_sweep_parallel(quick)
    if "serve_loop" in selected:
        results["serve_loop"] = bench_serve_loop(quick)
    if "cluster_scale_pass" in selected:
        results["cluster_scale_pass"] = bench_cluster_scale_pass(quick)
    if "cluster_scale_dense" in selected:
        results["cluster_scale_dense"] = bench_cluster_scale_dense(quick)
    if "scenario_diurnal" in selected:
        results["scenario_diurnal"] = bench_scenario_diurnal(quick)
    if "scenario_gang_pass" in selected:
        results["scenario_gang_pass"] = bench_scenario_gang_pass(quick)
    if "quantum_tick" in selected:
        results["quantum_tick"] = bench_quantum_tick(quick)
    return {
        "schema": "kube-knots/bench-hotpath/v1",
        "mode": "quick" if quick else "full",
        "scale": {"nodes": NODES, "gpus_per_node": GPUS_PER_NODE,
                  "metrics_per_gpu": METRICS_PER_GPU},
        "python": platform.python_version(),
        "benchmarks": results,
    }


def check_regression(current: dict, baseline: dict, max_ratio: float) -> list[str]:
    """Compare gated benchmarks against a committed baseline.

    Returns a list of human-readable failures (empty means the gate
    passes).  Only the scheduler-pass benchmarks are gated — the
    micro-benchmarks' before/after ratios are informational, and
    absolute micro timings are too host-dependent to gate on; the pass
    benchmarks are gated at a deliberately loose ``max_ratio`` (2x by
    default) so only an algorithmic regression, not runner noise,
    trips CI.
    """
    failures: list[str] = []
    for name, field in GATED_BENCHMARKS.items():
        cur = current.get("benchmarks", {}).get(name)
        base = baseline.get("benchmarks", {}).get(name)
        if cur is None or base is None:
            continue
        if base[field] > 0 and cur[field] > max_ratio * base[field]:
            failures.append(
                f"{name}.{field} regressed: {cur[field]:.3f} ms vs baseline "
                f"{base[field]:.3f} ms (> {max_ratio:.1f}x)"
            )
    return failures


def format_report(payload: dict) -> str:
    """ASCII rendition of a benchmark payload."""
    from repro.metrics.report import format_table

    rows = []
    for name, b in payload["benchmarks"].items():
        if "speedup" in b:
            before = b.get("before_ms") or b.get("before_us_per_query") or b.get("before_us_per_fit")
            after = b.get("after_ms") or b.get("after_us_per_query") or b.get("after_us_per_fit")
            unit = "ms" if "before_ms" in b else "us"
            rows.append((name, f"{before:.2f} {unit}", f"{after:.2f} {unit}",
                         f"{b['speedup']:.1f}x"))
        elif "ms_per_tick" in b:
            detail = "  ".join(
                f"{p['nodes']}n:{p['ms_per_tick_vec']:.2f}/{p['ms_per_tick_obj']:.2f}"
                for p in b["sweep"]
            )
            rows.append((name, f"{b['ms_per_tick']:.3f} ms/tick @ {b['nodes']}n",
                         f"vec/obj per scale: {detail}",
                         f"{b['speedup_1024']:.1f}x"))
        elif "sweep" in b:
            detail = "  ".join(
                f"{p['nodes']}n:{p['ms_per_pass']:.2f}" for p in b["sweep"]
            )
            rows.append((name, f"{b['ms_per_pass']:.3f} ms/pass @ {b['nodes']}n",
                         detail, ""))
        elif "ms_per_pass" in b:
            rows.append((name, f"{b['ms_per_pass']:.3f} ms/pass", f"{b['passes']} passes", ""))
        elif "ratio_1024_vs_32" in b:
            rows.append((name, f"{b['ms_run_32']:.0f} ms @ 32n",
                         f"{b['ms_run']:.0f} ms @ 1024n",
                         f"{b['ratio_1024_vs_32']:.1f}x"))
        elif "ms_warm" in b:
            rows.append((name,
                         f"{b['ms_cold_serial']:.0f} ms cold serial",
                         f"{b['ms_cold_parallel']:.0f} ms cold x{b['jobs']} / "
                         f"{b['ms_warm']:.1f} ms warm",
                         f"{b['warm_speedup']:.0f}x warm"))
        elif "ms_per_submission" in b:
            rows.append((name,
                         f"{b['ms_per_submission']:.3f} ms/submission",
                         f"{b['submissions']} pods / {b['sustained_qps']:.0f} qps / "
                         f"p99 {b['p99_decision_sim_ms']:.0f} ms sim",
                         ""))
        else:
            rows.append((name, f"{b['ms']:.0f} ms", "", ""))
    return format_table(
        ["benchmark", "before / value", "after / detail", "speedup"],
        rows,
        title=f"hot-path benchmarks ({payload['mode']}, "
              f"{payload['scale']['nodes']}x{payload['scale']['gpus_per_node']} scale)",
    )


def save_json(payload: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_json(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
