"""Cluster-scale benchmarks: the scheduling pass from 32x8 to 1024x8.

The legacy pass builds one ``GpuView`` per device per pass and sorts
every device per pending pod, so its cost grows O(devices log devices)
per pod even when the workload (and therefore the number of devices
that can matter) stays fixed.  The vectorized pass — the SoA
:class:`~repro.cluster.state.ClusterState` columns scored through
:class:`~repro.core.schedulers.vectorized.ArrayPassState` — replaces
that with a handful of O(devices) ndarray ops.

Two benchmarks pin that scaling behaviour:

* ``cluster_scale_pass`` — ms per scheduling pass for the same fixed
  app-mix workload on clusters of 32, 128, 512 and 1024 nodes (x8 GPUs
  each).  The committed ``BENCH_clusterscale.json`` baseline gates the
  1024-node figure; the per-scale sweep documents the growth curve
  (sublinear in GPU count because the sparse resident walk and the
  admission gate only touch occupied devices).
* ``cluster_scale_dense`` — the ``sim_dense`` workload end to end at
  32x8 vs 1024x8.  The ratio is the headline acceptance number: a
  32x-larger cluster must cost ~2x, not 32x, wall-clock.

Like the rest of :mod:`repro.bench`, this module reads the host clock
and therefore lives outside the sim-critical packages (KK001).
"""

from __future__ import annotations

import time

from repro.cluster.cluster import make_paper_cluster
from repro.core.schedulers import make_scheduler
from repro.sim.simulator import KubeKnotsSimulator, SimConfig
from repro.workloads.appmix import generate_appmix_workload

__all__ = [
    "bench_cluster_scale_pass",
    "bench_cluster_scale_dense",
    "CLUSTERSCALE_BENCHMARKS",
    "SCALE_NODES",
]

#: Benchmark names this module contributes to the suite registry.
CLUSTERSCALE_BENCHMARKS = ("cluster_scale_pass", "cluster_scale_dense")

#: Node counts of the scale sweep (x8 GPUs each).
SCALE_NODES = (32, 128, 512, 1024)

GPUS_PER_NODE = 8


def _make_sim(num_nodes: int) -> KubeKnotsSimulator:
    """The ``sim_dense`` setup on an ``num_nodes`` x 8 cluster.

    The workload is fixed (independent of cluster size) so the sweep
    isolates how pass cost scales with *devices*, not with work.
    """
    return KubeKnotsSimulator(
        make_paper_cluster(num_nodes=num_nodes, gpus_per_node=GPUS_PER_NODE),
        make_scheduler("cbp"),
        generate_appmix_workload("app-mix-1", duration_s=4.0, seed=3),
        SimConfig(min_horizon_ms=20_000.0),
    )


def _timed_pass_run(num_nodes: int) -> dict:
    """One dense run with ``schedule()`` timed around each pass."""
    sim = _make_sim(num_nodes)
    scheduler = sim.orchestrator.scheduler
    inner = scheduler.schedule
    stats = {"calls": 0, "seconds": 0.0}

    def timed_schedule(ctx):
        t0 = time.perf_counter()
        actions = inner(ctx)
        stats["seconds"] += time.perf_counter() - t0
        stats["calls"] += 1
        return actions

    scheduler.schedule = timed_schedule  # type: ignore[method-assign]
    t0 = time.perf_counter()
    sim.run()
    e2e = time.perf_counter() - t0
    passes = max(stats["calls"], 1)
    return {
        "nodes": num_nodes,
        "gpus": num_nodes * GPUS_PER_NODE,
        "passes": stats["calls"],
        "ms_per_pass": stats["seconds"] / passes * 1e3,
        "ms_run": e2e * 1e3,
    }


def bench_cluster_scale_pass(quick: bool) -> dict:
    """Scheduling-pass cost across the node-count sweep.

    Runs at the same scales in quick and full mode — the committed
    full-mode baseline must be directly comparable to the CI quick run
    (only the repeat count differs).
    """
    repeats = 1 if quick else 2
    sweep = []
    for num_nodes in SCALE_NODES:
        best = None
        for _ in range(repeats):
            out = _timed_pass_run(num_nodes)
            if best is None or out["ms_per_pass"] < best["ms_per_pass"]:
                best = out
        sweep.append(best)
    top = sweep[-1]
    return {
        "scheduler": "cbp",
        "sweep": sweep,
        "nodes": top["nodes"],
        "passes": top["passes"],
        # The gated field: ms per pass at the largest scale.
        "ms_per_pass": top["ms_per_pass"],
    }


def bench_cluster_scale_dense(quick: bool) -> dict:
    """The dense run end to end at paper scale vs 1024 nodes."""
    repeats = 1 if quick else 2

    def best_run(num_nodes: int) -> float:
        best = float("inf")
        for _ in range(repeats):
            sim = _make_sim(num_nodes)
            t0 = time.perf_counter()
            sim.run()
            best = min(best, time.perf_counter() - t0)
        return best * 1e3

    ms_32 = best_run(32)
    ms_1024 = best_run(1024)
    return {
        "nodes_small": 32,
        "nodes_large": 1024,
        "ms_run_32": ms_32,
        # The gated field: the 1024x8 dense run wall-clock.
        "ms_run": ms_1024,
        "ratio_1024_vs_32": ms_1024 / ms_32,
    }
