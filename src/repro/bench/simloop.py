"""End-to-end simulator-loop benchmarks.

The event-driven core (:mod:`repro.sim.engine` + :mod:`repro.sim.harness`)
replaced both simulators' hand-rolled time loops; these benchmarks
measure the whole loop, not one inner kernel:

* ``sim_dense`` — a dense Table-I app-mix where every tick has work.
  The event decomposition must cost about the same as the old loop
  (there is nothing to skip), so this is the no-regression gate.
* ``sim_sparse`` — the same mix with arrival gaps stretched 40x.  The
  cluster idles between bursts and the idle fast-forward jumps the tick
  chains across quiescent spans; the reference tick-by-tick loop pays
  for every tick.  This is where the event core wins wall-clock.
* ``dlsim_loop`` — the DL-cluster simulator's advance-and-recompute
  cycle as wakeup/arrival/finalize events vs the old while-loop.

Each benchmark runs the event-driven simulator and the retained
reference loop (:mod:`repro.sim.reference`) on identical inputs,
reports best-of wall-clock for both, and sanity-checks that the two
produced the same makespan/horizon — a bench run that diverged would be
measuring different work.

Like :mod:`repro.bench.hotpath`, this module reads the host clock and
therefore lives outside the sim-critical packages (KK001).
"""

from __future__ import annotations

import time
from typing import Callable

from repro.cluster.cluster import make_paper_cluster
from repro.core.schedulers import make_scheduler
from repro.sim.dlsim import DLClusterSimulator, make_dl_policy
from repro.sim.reference import run_dl_reference, run_tick_reference
from repro.sim.simulator import KubeKnotsSimulator, SimConfig
from repro.workloads.appmix import generate_appmix_workload
from repro.workloads.dlt import DLWorkloadConfig, generate_dl_workload

__all__ = ["bench_sim_dense", "bench_sim_sparse", "bench_dlsim_loop", "SIMLOOP_BENCHMARKS"]

#: Benchmark names this module contributes to the suite registry.
SIMLOOP_BENCHMARKS = ("sim_dense", "sim_sparse", "dlsim_loop")


def _best_run(make, run, repeats: int):
    """Best wall-clock seconds of ``run(make())`` over ``repeats`` fresh
    instances (construction excluded from the timing); returns
    ``(best_seconds, last_instance, last_result)``."""
    best = float("inf")
    instance = result = None
    for _ in range(repeats):
        instance = make()
        t0 = time.perf_counter()
        result = run(instance)
        best = min(best, time.perf_counter() - t0)
    return best, instance, result


def _bench_kk(make: Callable[[], KubeKnotsSimulator], repeats: int) -> dict:
    after, sim, res = _best_run(make, lambda s: s.run(), repeats)
    before, _, ref = _best_run(make, run_tick_reference, repeats)
    if res.makespan_ms != ref.makespan_ms:  # pragma: no cover - bit-identity is pinned by tests
        raise RuntimeError(
            f"bench runs diverged: event-loop makespan {res.makespan_ms} "
            f"vs reference {ref.makespan_ms}"
        )
    return {
        "events_fired": sim.events_fired,
        "fast_forwards": sim.fast_forwards,
        "ticks_skipped": sim.ticks_skipped,
        "makespan_ms": res.makespan_ms,
        "before_ms": before * 1e3,     # reference tick-by-tick loop
        "after_ms": after * 1e3,       # event-driven loop
        "ms_run": after * 1e3,         # the gated field
        "speedup": before / after,
    }


def bench_sim_dense(quick: bool) -> dict:
    """Dense app-mix: every tick has running pods, nothing to skip.

    Runs at the same scale in quick and full mode — this is a CI
    regression gate, so the committed full-mode baseline must be
    directly comparable to the CI quick run.
    """
    def make() -> KubeKnotsSimulator:
        return KubeKnotsSimulator(
            make_paper_cluster(num_nodes=4),
            make_scheduler("cbp"),
            generate_appmix_workload("app-mix-1", duration_s=4.0, seed=3),
            SimConfig(min_horizon_ms=20_000.0),
        )

    return _bench_kk(make, repeats=2 if quick else 3)


def bench_sim_sparse(quick: bool) -> dict:
    """Sparse app-mix: arrival gaps stretched 200x leave quiescent spans
    much longer than the telemetry window, so the idle fast-forward can
    skip whole stretches of ticks (and most of their heartbeats)."""
    def make() -> KubeKnotsSimulator:
        workload = generate_appmix_workload("app-mix-1", duration_s=1.0, seed=5)
        workload = [(at * 200.0, spec) for at, spec in workload]
        return KubeKnotsSimulator(
            make_paper_cluster(num_nodes=2),
            make_scheduler("cbp"),
            workload,
            SimConfig(min_horizon_ms=5_000.0),
        )

    out = _bench_kk(make, repeats=2 if quick else 3)
    if out["fast_forwards"] == 0:  # pragma: no cover - pinned by tests
        raise RuntimeError("sparse bench never fast-forwarded; workload is not sparse enough")
    return out


def bench_dlsim_loop(quick: bool) -> dict:
    """The DL-cluster simulator loop, event-driven vs reference."""
    cfg = DLWorkloadConfig(n_training=60, n_inference=150, window_s=3_600.0)

    def make() -> DLClusterSimulator:
        jobs = generate_dl_workload(cfg, seed=11)
        return DLClusterSimulator(jobs, make_dl_policy("cbp-pp"), n_nodes=8, gpus_per_node=8)

    after, sim, res = _best_run(make, lambda s: s.run(), 2 if quick else 3)
    before, _, ref = _best_run(make, run_dl_reference, 2 if quick else 3)
    if res.horizon_s != ref.horizon_s:  # pragma: no cover - bit-identity is pinned by tests
        raise RuntimeError(
            f"bench runs diverged: event-loop horizon {res.horizon_s} "
            f"vs reference {ref.horizon_s}"
        )
    return {
        "events_fired": sim.events_fired,
        "jobs": len(res.jobs),
        "horizon_s": res.horizon_s,
        "before_ms": before * 1e3,
        "after_ms": after * 1e3,
        "ms_run": after * 1e3,
        "speedup": before / after,
    }
