"""Benchmark for the parallel sweep fabric (``repro.sweep``).

One benchmark, three measurements over the same four-task cluster grid
on a throwaway store:

* ``ms_cold_serial`` — empty cache, ``jobs=1`` (every task simulated
  inline, the pre-fabric behaviour);
* ``ms_cold_parallel`` — empty cache, misses fanned across a process
  pool (two workers minimum so the pool path is always exercised, even
  on a single-core runner — where ``parallel_speedup`` will honestly
  sit at or below 1.0);
* ``ms_warm`` — same store again: every task is a content-addressed
  cache hit, so this measures pure store-read cost.  This is the gated
  field: it only regresses if the key/pickle path gets slower, and it
  is immune to how many cores the runner has.

The in-process memo is disabled throughout so the store and the pool —
not a dict lookup — are what's measured, and the three result sets are
cross-checked byte-identical before timing is reported.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from time import perf_counter

__all__ = ["SWEEP_BENCHMARKS", "bench_sweep_parallel"]

SWEEP_BENCHMARKS = ("sweep_parallel",)


def bench_sweep_parallel(quick: bool = False) -> dict:
    from repro.experiments.runner import ExperimentSettings
    from repro.sweep import MixTask
    from repro.sweep.fabric import clear_memo, last_stats, run_tasks
    from repro.sweep.store import ResultStore

    settings = ExperimentSettings(
        duration_s=2.0 if quick else 4.0, num_nodes=4, seed=5
    )
    tasks = [
        MixTask(mix, scheduler, settings)
        for mix in ("app-mix-1", "app-mix-2")
        for scheduler in ("cbp", "peak-prediction")
    ]
    host_cpus = os.cpu_count() or 1
    jobs = max(2, min(4, host_cpus))

    with tempfile.TemporaryDirectory(prefix="repro-bench-sweep-") as tmp:
        store = ResultStore(tmp)
        clear_memo()
        start = perf_counter()
        serial = run_tasks(tasks, jobs=1, store=store, memo=False)
        cold_serial_s = perf_counter() - start

        store.clear()
        start = perf_counter()
        parallel = run_tasks(tasks, jobs=jobs, store=store, memo=False)
        cold_parallel_s = perf_counter() - start
        assert last_stats()["misses"] == len(tasks)

        # Warm reads are cheap, so repeat and keep the best: ms_warm is
        # the gated field and min-of-N filters out scheduler noise.
        warm_samples = []
        for _ in range(5):
            start = perf_counter()
            warm = run_tasks(tasks, jobs=jobs, store=store, memo=False)
            warm_samples.append(perf_counter() - start)
            stats = last_stats()
            assert stats["hits"] == len(tasks) and stats["misses"] == 0
        warm_s = min(warm_samples)

    identical = all(
        pickle.dumps(a) == pickle.dumps(b) == pickle.dumps(c)
        for a, b, c in zip(serial, parallel, warm)
    )
    if not identical:  # pragma: no cover - the determinism tests pin this
        raise AssertionError("sweep results diverged across serial/pool/cache paths")

    return {
        "tasks": len(tasks),
        "jobs": jobs,
        "host_cpus": host_cpus,
        "ms_cold_serial": cold_serial_s * 1e3,
        "ms_cold_parallel": cold_parallel_s * 1e3,
        "ms_warm": warm_s * 1e3,
        "parallel_speedup": cold_serial_s / cold_parallel_s if cold_parallel_s > 0 else 0.0,
        "warm_speedup": cold_serial_s / warm_s if warm_s > 0 else 0.0,
        "cache_hits_warm": len(tasks),
        "cache_misses_cold": len(tasks),
        "bit_identical": identical,
        "quick": quick,
    }
