"""Serving-loop benchmark: sustained QPS vs decision latency.

``serve_loop`` drives :class:`~repro.serve.server.KnotsService` at the
paper's 32-node x 8-GPU scale with a 500 QPS app-mix arrival stream —
the serving acceptance configuration — but unpaced and with arrivals
injected as sim-time events (:meth:`KnotsService.inject_workload`)
instead of the wall-clock load-generator thread.  That keeps the run
deterministic: the backlog the scheduler sees per pass, the number of
passes, and therefore the *sim-time* decision-latency distribution are
bit-stable for a fixed seed, while the wall-clock cost per submission
(``ms_per_submission``, the gated field) measures the full serving
path — admission queue, API-server submission, kubelet stepping,
heartbeats and scheduling passes.

Per-submission cost rather than total wall is gated so the number is
insensitive to the benchmark's window length; ``sustained_qps`` (how
fast the unpaced loop chews through the stream) and the deterministic
sim-time p50/p99 are recorded alongside for information.

Runs at the same scale in quick and full mode — this is a CI
regression gate, so the committed full-mode baseline
(``BENCH_serve.json``) must be directly comparable to the CI quick run.

Like the rest of :mod:`repro.bench`, this module reads the host clock
and therefore lives outside the sim-critical packages (KK001).
"""

from __future__ import annotations

import math
import time

from repro.serve.loadgen import synthesize_workload
from repro.serve.server import KnotsService, ServeConfig

__all__ = ["bench_serve_loop", "SERVE_BENCHMARKS"]

#: Benchmark names this module contributes to the suite registry.
SERVE_BENCHMARKS = ("serve_loop",)

#: The serving acceptance configuration, shortened to a CI-sized window.
QPS, DURATION_S, SEED = 500.0, 1.5, 1


def bench_serve_loop(quick: bool) -> dict:
    """One full serving session, flat out, arrivals on the sim clock."""
    items = synthesize_workload(QPS, DURATION_S, seed=SEED)

    def make() -> KnotsService:
        service = KnotsService(
            ServeConfig(
                qps=0.0,                 # arrivals are injected, not threaded
                duration_s=DURATION_S,
                paced=False,
                http=False,
                status_interval_s=0.0,
            )
        )
        service.inject_workload(items)
        return service

    best = math.inf
    report = None
    for _ in range(1 if quick else 2):
        service = make()
        t0 = time.perf_counter()
        report = service.run()
        best = min(best, time.perf_counter() - t0)
    assert report is not None
    counts = report.counts
    if counts["dropped"] or counts["submitted"] != counts["accepted"]:
        raise RuntimeError(
            f"serve bench lost pods: {counts} — the drain contract broke"
        )
    submissions = counts["submitted"]
    return {
        "nodes": 32 * 8,
        "offered_qps": QPS,
        "window_s": DURATION_S,
        "submissions": submissions,
        "placed": counts["placed"],
        "events_fired": report.events_fired,
        "sim_ms": report.sim_ms,
        "sustained_qps": submissions / best,
        "p50_decision_sim_ms": report.p50_sim_ms,
        "p99_decision_sim_ms": report.p99_sim_ms,
        "ms_run": best * 1e3,
        "ms_per_submission": best * 1e3 / submissions,   # the gated field
    }
