"""Hot-path benchmark harness (``python -m repro bench``).

Micro and meso benchmarks over the telemetry -> forecast -> scheduler
pipeline, with before/after measurements where a legacy reference
implementation is retained.  Results are written as
``BENCH_hotpath.json`` and tracked in CI as a regression gate.
"""

from repro.bench.hotpath import run_benchmarks

__all__ = ["run_benchmarks"]
