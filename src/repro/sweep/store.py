"""Persistent content-addressed result store (``.repro-cache/``).

Keys are ``sha256`` digests of everything that decides a result:

* a **schema tag** (bump :data:`SCHEMA_TAG` when the serialized result
  layout changes),
* the **code fingerprint** — ``repro.__version__``, so a release that
  changes simulation behaviour invalidates every cached run,
* the task's **type name and repr** — the full parameter set, since
  sweep tasks are frozen dataclasses of primitives whose auto-repr is
  canonical.

Values are pickles of ``{"schema", "version", "task", "result"}``
written atomically (temp file + ``os.replace``), so concurrent sweeps
— including pool workers of other invocations — never observe a torn
entry; the worst race is two processes computing the same miss and one
overwriting the other with an identical payload.  Anything unreadable
or written by a different schema/version is treated as a miss and
dropped.

The store location defaults to ``.repro-cache/`` under the current
directory and can be redirected with the ``REPRO_CACHE_DIR``
environment variable (CI and tests point it at scratch space).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
import threading
from pathlib import Path

__all__ = ["SCHEMA_TAG", "DEFAULT_CACHE_DIR", "ResultStore", "task_key"]

SCHEMA_TAG = "kube-knots/sweep-result/v1"
DEFAULT_CACHE_DIR = ".repro-cache"


def _fingerprint() -> str:
    import repro

    return f"{SCHEMA_TAG}|repro-{repro.__version__}"


def task_key(task) -> str:
    """Stable content address of a task under the current code version."""
    blob = f"{_fingerprint()}|{type(task).__name__}|{task!r}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultStore:
    """Filesystem-backed map from task key to simulation result.

    Entries live at ``<root>/<key[:2]>/<key>.pkl`` (fan-out keeps any
    one directory small).  All methods tolerate a missing root — the
    store materializes on the first :meth:`put`.
    """

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
        self.root = Path(root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str):
        """The cached result for ``key``, or ``None`` on any miss.

        Corrupt, truncated or schema-mismatched entries are removed and
        reported as misses — a damaged cache can only cost time, never
        correctness.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            return None
        except Exception:
            self._discard(path)
            return None
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_TAG:
            self._discard(path)
            return None
        return payload.get("result")

    def put(self, key: str, task, result) -> None:
        """Persist ``result`` under ``key`` atomically."""
        import repro

        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": SCHEMA_TAG,
            "version": repro.__version__,
            "task": repr(task),
            "result": result,
        }
        # The temp name must be unique per writer — pid alone is not
        # enough once run_tasks() is called from multiple threads of one
        # process (same key -> same tmp path -> replace/unlink race).
        tmp = path.with_name(
            f"{path.name}.tmp.{os.getpid()}.{threading.get_ident()}"
        )
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # pragma: no cover - only on a failed dump
                tmp.unlink()

    def clear(self) -> None:
        """Delete every cached entry (the on-disk half of invalidation)."""
        shutil.rmtree(self.root, ignore_errors=True)

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - already gone / perms
            pass
