"""Task vocabulary for the sweep fabric.

A task is a frozen dataclass describing one simulation completely: the
workload, the policy, and every knob that can change the outcome.  Two
invariants follow from that:

* **Picklable** — tasks cross the process-pool boundary, so they hold
  only primitives (strings, numbers, tuples, frozen dataclasses); the
  heavy objects (cluster, scheduler, workload) are built inside
  :meth:`execute`, in whichever process runs it.
* **Canonical repr** — the auto-generated dataclass ``repr`` is the
  task's cache identity (see :func:`repro.sweep.store.task_key`), so
  every outcome-relevant knob must be a field and defaults must be
  spelled the same way everywhere (e.g. kwargs as sorted tuples).

Heavy imports happen lazily inside ``execute`` so that unpickling a
task in a worker only loads this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # imported lazily at runtime to keep workers light
    from repro.experiments.runner import ExperimentSettings
    from repro.sim.dlsim import DLSimResult
    from repro.sim.simulator import SimResult
    from repro.workloads.dlt import DLWorkloadConfig

__all__ = ["MixTask", "DLTask", "HeteroTask", "ScenarioTask", "execute_task"]


@dataclass(frozen=True)
class MixTask:
    """One (app-mix, scheduler) cluster simulation.

    ``scheduler_kwargs`` parameterizes the scheduler (the ablation
    sweeps: ``(("percentile", 90.0),)`` etc.); ``heartbeat_ms``
    overrides the Knots aggregator cadence (the staleness ablation).
    Pass kwargs as a *sorted* tuple of pairs so equal tasks spell
    equal reprs.
    """

    mix: str
    scheduler: str
    settings: "ExperimentSettings"
    scheduler_kwargs: tuple[tuple[str, Any], ...] = ()
    heartbeat_ms: float | None = None

    def execute(self) -> "SimResult":
        from repro.core.schedulers import make_scheduler
        from repro.sim.simulator import SimConfig, run_appmix

        s = self.settings
        if self.heartbeat_ms is None:
            config = SimConfig(fast_forward=s.fast_forward)
        else:
            from repro.core.knots import KnotsConfig

            config = SimConfig(
                fast_forward=s.fast_forward,
                knots=KnotsConfig(heartbeat_ms=self.heartbeat_ms),
            )
        return run_appmix(
            self.mix,
            make_scheduler(self.scheduler, **dict(self.scheduler_kwargs)),
            duration_s=s.duration_s,
            seed=s.seed,
            num_nodes=s.num_nodes,
            gpus_per_node=s.gpus_per_node,
            config=config,
            load_factor=s.load_factor,
        )


@dataclass(frozen=True)
class DLTask:
    """One DL-cluster simulation (Sec. V-C policies).

    The job list is regenerated from ``(config, jobs_seed)`` inside the
    worker — :func:`repro.workloads.dlt.generate_dl_workload` is
    deterministic, so this is equivalent to the deep-copied shared
    workload the paired comparisons used, without shipping jobs across
    the pool.
    """

    policy: str
    jobs_seed: int = 1
    config: "DLWorkloadConfig | None" = None
    policy_kwargs: tuple[tuple[str, Any], ...] = ()

    def execute(self) -> "DLSimResult":
        from repro.sim.dlsim import DLClusterSimulator, make_dl_policy
        from repro.workloads.dlt import generate_dl_workload

        jobs = generate_dl_workload(self.config, seed=self.jobs_seed)
        policy = make_dl_policy(self.policy, **dict(self.policy_kwargs))
        return DLClusterSimulator(jobs, policy).run()


@dataclass(frozen=True)
class ScenarioTask:
    """One (scenario, app-mix, scheduler) cluster simulation.

    The scenario is referenced by *registry name*
    (:data:`repro.scenario.spec.SCENARIOS`) rather than by value: the
    name is the content of the catalog entry, so the task repr — and
    with it the cache key — stays short, canonical and stable.
    """

    scenario: str
    mix: str
    scheduler: str
    settings: "ExperimentSettings"

    def execute(self) -> "SimResult":
        from repro.core.schedulers import make_scheduler
        from repro.scenario.spec import make_scenario
        from repro.sim.simulator import SimConfig, run_appmix

        s = self.settings
        config = SimConfig(
            fast_forward=s.fast_forward, scenario=make_scenario(self.scenario)
        )
        return run_appmix(
            self.mix,
            make_scheduler(self.scheduler),
            duration_s=s.duration_s,
            seed=s.seed,
            num_nodes=s.num_nodes,
            gpus_per_node=s.gpus_per_node,
            config=config,
            load_factor=s.load_factor,
        )


@dataclass(frozen=True)
class HeteroTask:
    """One run on the Fig. 5 heterogeneous cluster (extension study)."""

    scheduler: str
    seed: int = 0

    def execute(self) -> "SimResult":
        from repro.cluster.cluster import make_heterogeneous_cluster
        from repro.core.schedulers import make_scheduler
        from repro.experiments.hetero import FIG5_MODELS, build_hetero_workload
        from repro.sim.simulator import KubeKnotsSimulator

        cluster = make_heterogeneous_cluster(FIG5_MODELS)
        sim = KubeKnotsSimulator(
            cluster, make_scheduler(self.scheduler), build_hetero_workload(self.seed)
        )
        return sim.run()


def execute_task(task) -> Any:
    """Run one task; the function a pool worker imports and calls.

    Module-level (not a method reference) so ``ProcessPoolExecutor``
    pickles it by qualified name regardless of the task type.
    """
    return task.execute()
