"""Parallel experiment fabric with a persistent content-addressed cache.

Every figure/table in :mod:`repro.experiments` reduces to a grid of
independent simulations — (app-mix x scheduler x settings) cluster runs
and (policy x workload) DL runs.  This package turns that grid into
*tasks*: frozen, picklable descriptions of one simulation whose
``repr`` doubles as the cache identity.

* :mod:`repro.sweep.tasks` — the task vocabulary (:class:`MixTask`,
  :class:`DLTask`, :class:`HeteroTask`, :class:`ScenarioTask`) and
  :func:`execute_task`, the module-level entry point a worker process
  runs.
* :mod:`repro.sweep.store` — :class:`ResultStore`, a content-addressed
  pickle store under ``.repro-cache/`` keyed by
  ``sha256(schema tag | repro version | task repr)``; hits are shared
  across processes and across invocations.
* :mod:`repro.sweep.fabric` — :func:`run_tasks`, which resolves each
  task through in-process memo -> store -> simulate, fanning cache
  misses across a ``ProcessPoolExecutor`` (``--jobs``-controlled; a
  single worker degrades to plain in-process execution so serial runs
  stay deterministic and debuggable).

Results are pinned bit-identical across the serial path, the process
pool and a warm cache — see ``tests/test_sweep.py``.
"""

from repro.sweep.fabric import SweepError, clear, configure, last_stats, run_tasks
from repro.sweep.store import SCHEMA_TAG, ResultStore, task_key
from repro.sweep.tasks import DLTask, HeteroTask, MixTask, ScenarioTask, execute_task

__all__ = [
    "MixTask",
    "DLTask",
    "HeteroTask",
    "ScenarioTask",
    "execute_task",
    "ResultStore",
    "task_key",
    "SCHEMA_TAG",
    "run_tasks",
    "configure",
    "clear",
    "last_stats",
    "SweepError",
]
