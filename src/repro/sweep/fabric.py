"""Process-pool fan-out over the content-addressed result store.

:func:`run_tasks` is the single entry point every experiment module
funnels through.  Each task resolves in three steps:

1. **memo** — a small in-process LRU keyed by task key, so figure
   modules that re-request the same grid entry don't even touch disk;
2. **store** — the persistent ``.repro-cache/`` (shared across
   processes and invocations);
3. **simulate** — remaining misses run on a
   ``concurrent.futures.ProcessPoolExecutor`` when more than one
   worker is configured, else inline.  A single worker (``jobs=1``)
   never spawns a pool, so serial runs stay deterministic under a
   debugger and on CI boxes without spare cores.

Results are bit-identical across all three resolution paths — the
simulators are seeded and the store round-trips exact pickles — and
``tests/test_sweep.py`` pins that with byte-level comparisons.

Error handling preserves the CLI contract:
:class:`~repro.analysis.sanitizer.SanitizerError` raised inside a
worker survives the pool's pickle round-trip (the exception defines
``__reduce__``) and re-raises here unchanged, so ``python -m repro``
still exits 3 on an invariant breach no matter where it fired.  A
worker that *dies* (crash, ``os._exit``) surfaces as
:class:`SweepError` naming the task that poisoned the pool instead of
hanging the sweep.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Iterable

from repro.sweep.store import ResultStore, task_key
from repro.sweep.tasks import execute_task

__all__ = ["SweepError", "run_tasks", "configure", "clear", "clear_memo", "last_stats"]


class SweepError(RuntimeError):
    """A sweep failed for an infrastructure reason (e.g. a dead worker)."""


#: Session-wide defaults, set from CLI flags (``--jobs``/``--no-cache``)
#: so experiment modules pick them up without threading parameters
#: through every ``run_figN`` signature.
_config: dict[str, Any] = {"jobs": None, "cache": True}

#: In-process memo over the store: task key -> result.  Bounded so a
#: long-lived session can't pin an unbounded set of multi-MB results
#: (the failure mode of the old ``lru_cache(maxsize=64)`` — same bound,
#: but now evictable via :func:`clear` and backed by disk).
_MEMO_MAX = 64
_memo: OrderedDict[str, Any] = OrderedDict()

_last_stats: dict[str, int] = {"tasks": 0, "hits": 0, "misses": 0, "workers": 0}

#: Guards every mutation of the module-level state above (``_config``,
#: ``_memo``, ``_last_stats``).  ``run_tasks`` may be driven from
#: several threads (e.g. a notebook kernel plus a background sweep);
#: the lock is held only around dict/OrderedDict touches — never across
#: store I/O or a simulation — so contention stays negligible.
_state_lock = threading.Lock()


def configure(jobs: int | None = None, cache: bool | None = None) -> None:
    """Set session defaults for :func:`run_tasks` (the CLI hook)."""
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    with _state_lock:
        if jobs is not None:
            _config["jobs"] = jobs
        if cache is not None:
            _config["cache"] = bool(cache)


def clear_memo() -> None:
    """Drop the in-process memo (results on disk are untouched)."""
    with _state_lock:
        _memo.clear()


def clear(disk: bool = False, store: ResultStore | None = None) -> None:
    """Invalidate cached results.

    Always drops the in-process memo; with ``disk=True`` also deletes
    the persistent ``.repro-cache/`` entries (of ``store``, or the
    default store).
    """
    clear_memo()
    if disk:
        (store or ResultStore()).clear()


def last_stats() -> dict[str, int]:
    """Counters from the most recent :func:`run_tasks` call."""
    with _state_lock:
        return dict(_last_stats)


def _memo_put(key: str, result: Any) -> None:
    with _state_lock:
        _memo[key] = result
        _memo.move_to_end(key)
        while len(_memo) > _MEMO_MAX:
            _memo.popitem(last=False)


def _resolve_jobs(jobs: int | None) -> int:
    import os

    if jobs is None:
        with _state_lock:
            jobs = _config["jobs"]
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def run_tasks(
    tasks: Iterable[Any],
    *,
    jobs: int | None = None,
    cache: bool | None = None,
    store: ResultStore | None = None,
    memo: bool = True,
    obs=None,
) -> list[Any]:
    """Resolve every task (memo -> store -> simulate), preserving order.

    Parameters
    ----------
    jobs:
        Worker processes for cache misses.  Defaults to the session
        value set by :func:`configure`, else ``os.cpu_count()``;
        ``jobs=1`` executes inline (no pool).
    cache:
        ``False`` bypasses the persistent store entirely (misses are
        recomputed and not written).  Defaults to the session value.
    store:
        Override the store instance (benchmarks and tests point this at
        scratch directories).
    memo:
        ``False`` skips the in-process memo — used where the point is
        to exercise the store or the pool (benchmarks, determinism
        tests).
    obs:
        Optional :class:`repro.obs.Observability`; when metrics are
        enabled the sweep bumps ``sweep_tasks_total``,
        ``sweep_cache_hits_total`` and ``sweep_cache_misses_total``.

    Duplicate tasks inside one batch are computed once and fanned back
    to every position.
    """
    task_list = list(tasks)
    if not task_list:
        return []
    if cache is None:
        with _state_lock:
            use_cache = _config["cache"]
    else:
        use_cache = cache
    n_jobs = _resolve_jobs(jobs)
    store_obj = (store if store is not None else ResultStore()) if use_cache else None

    keys = [task_key(t) for t in task_list]
    # Duplicate tasks in one batch share a single resolution.
    unique: dict[str, int] = {}
    for i, key in enumerate(keys):
        unique.setdefault(key, i)

    resolved: dict[str, Any] = {}
    miss_keys: list[str] = []
    hits = 0
    for key in unique:
        if memo:
            with _state_lock:
                memoized = key in _memo
                if memoized:
                    resolved[key] = _memo[key]
                    _memo.move_to_end(key)
            if memoized:
                hits += 1
                continue
        if store_obj is not None:
            result = store_obj.get(key)
            if result is not None:
                if memo:
                    _memo_put(key, result)
                resolved[key] = result
                hits += 1
                continue
        miss_keys.append(key)

    misses = len(miss_keys)
    if misses:
        miss_tasks = [task_list[unique[key]] for key in miss_keys]
        workers = min(n_jobs, misses)
        if workers > 1:
            computed = _run_pool(miss_tasks, workers)
        else:
            computed = [execute_task(t) for t in miss_tasks]
        for key, task, result in zip(miss_keys, miss_tasks, computed):
            if store_obj is not None:
                store_obj.put(key, task, result)
            if memo:
                _memo_put(key, result)
            resolved[key] = result

    results = [resolved[key] for key in keys]
    with _state_lock:
        _last_stats.update(
            tasks=len(task_list), hits=hits, misses=misses,
            workers=min(n_jobs, misses) if misses else 0,
        )
    if obs is not None and getattr(obs, "enabled", False):
        metrics = obs.metrics
        metrics.counter("sweep_tasks_total", "Tasks requested from the sweep fabric").inc(
            len(task_list)
        )
        metrics.counter("sweep_cache_hits_total", "Sweep tasks served from memo/store").inc(hits)
        metrics.counter("sweep_cache_misses_total", "Sweep tasks that ran a simulation").inc(
            misses
        )
    return results


def _run_pool(miss_tasks: list[Any], workers: int) -> list[Any]:
    """Fan ``miss_tasks`` across a fresh process pool, order-preserving."""
    from concurrent.futures import ProcessPoolExecutor
    from concurrent.futures.process import BrokenProcessPool

    from repro.analysis.sanitizer import SanitizerError

    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(execute_task, task) for task in miss_tasks]
        try:
            computed = []
            for task, future in zip(miss_tasks, futures):
                try:
                    computed.append(future.result())
                except SanitizerError:
                    raise  # the CLI's exit-3 contract: re-raise untouched
                except BrokenProcessPool as exc:
                    raise SweepError(
                        f"sweep worker died while executing {task!r}; "
                        "the remaining tasks were aborted"
                    ) from exc
            return computed
        finally:
            for future in futures:
                future.cancel()
