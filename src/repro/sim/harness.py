"""Shared event-loop harness for the simulators.

Both simulators run on :class:`repro.sim.engine.EventLoop`; this module
holds the scaffolding they share:

* **phase priorities** — events landing on the same simulated instant
  fire in the fixed phase order of the original tick loop
  (faults → repairs → submissions → execution quantum → heartbeat →
  telemetry record → scheduling pass → end-of-tick bookkeeping).
* :class:`TickHarness` — owns the per-tick chains of a fixed-quantum
  simulator and the grid bookkeeping (``last_tick`` / ``next_tick``)
  that quantizes raw-time events onto the tick grid.
* :class:`GridPeriodic` — a recurring activity with its own interval
  (heartbeats, scheduling passes) that executes at the first tick at or
  after each due time, exactly like the old loop's
  ``if t >= next_due: ...; next_due = t + interval`` bookkeeping.
* :class:`GridOneShot` — a single raw-time event (a device fault, a
  repair) deferred onto the tick grid the same way.
* :class:`FaultPlan` — schedules a failure-injection plan as
  first-class events; each applied fault schedules a **cancellable**
  repair event, replacing the old per-tick list-scan-and-``remove``
  repair bookkeeping.
* :class:`CapacityPlan` — the fault plan generalized to node-granular
  capacity transitions (drain/reclaim/restore) driven by a scenario's
  pre-computed event schedule.
* :func:`run_until_idle` — drive a loop until it drains or a handler
  calls :meth:`~repro.sim.engine.EventLoop.stop`.

Quantization contract: an event scheduled at raw time ``r`` that fires
between tick ``t`` and tick ``t + tick_ms`` re-schedules itself for the
pending tick (``TickHarness.next_tick``), so its *effect* lands at the
first tick ``>= r`` — the same instant the old per-tick polling loop
would have acted on it.  Same-seed runs therefore stay bit-identical to
the reference loops in :mod:`repro.sim.reference`.
"""

from __future__ import annotations

from typing import Callable, Iterable, Protocol

from repro.sim.engine import EventHandle, EventLoop, RepeatingEvent, SimulationError

__all__ = [
    "PHASE_FAULT",
    "PHASE_REPAIR",
    "PHASE_SUBMIT",
    "PHASE_QUANTUM",
    "PHASE_HEARTBEAT",
    "PHASE_RECORD",
    "PHASE_SCHEDULE",
    "PHASE_TICK_END",
    "TickHarness",
    "GridPeriodic",
    "PhaseGate",
    "GridOneShot",
    "FaultPlan",
    "CapacityPlan",
    "run_until_idle",
    "run_paced",
]

# Phase order of the original tick loop, as same-instant priorities.
PHASE_FAULT = 0
PHASE_REPAIR = 1
PHASE_SUBMIT = 2
PHASE_QUANTUM = 3
PHASE_HEARTBEAT = 4
PHASE_RECORD = 5
PHASE_SCHEDULE = 6
PHASE_TICK_END = 7


class _FaultLike(Protocol):
    at_ms: float
    gpu_id: str
    duration_ms: float


class _CapacityEventLike(Protocol):
    at_ms: float
    node_id: str
    kind: str  # "drain" | "reclaim" | "restore"


class TickHarness:
    """Tick-grid scaffolding on a shared :class:`EventLoop`.

    Owns the execution-quantum chain plus any extra per-tick chains
    (:meth:`every_tick`) and grid-quantized periodics
    (:meth:`periodic`).  :meth:`skip_to` moves every per-tick chain at
    once — the idle fast-forward hook.
    """

    __slots__ = ("loop", "tick_ms", "last_tick", "_user_quantum", "_quantum", "_chains")

    def __init__(
        self,
        loop: EventLoop,
        tick_ms: float,
        quantum: Callable[[float], None],
        priority: int = PHASE_QUANTUM,
    ) -> None:
        self.loop = loop
        self.tick_ms = float(tick_ms)
        #: The most recent tick whose quantum has executed.
        self.last_tick: float | None = None
        self._user_quantum = quantum
        self._quantum = loop.every(
            self.tick_ms, self._on_quantum, start_at=loop.now, priority=priority
        )
        self._chains: list[RepeatingEvent] = [self._quantum]

    def _on_quantum(self, now: float) -> None:
        self.last_tick = now
        self._user_quantum(now)

    @property
    def next_tick(self) -> float:
        """The pending quantum's time: the first grid tick >= now."""
        return self._quantum.next_time

    def on_grid(self, now: float) -> bool:
        """True when ``now`` is a tick instant (whether or not this
        tick's quantum has fired yet)."""
        return now == self.last_tick or now == self._quantum.next_time

    def every_tick(self, callback: Callable[[float], None], priority: int) -> RepeatingEvent:
        """Register another per-tick chain (kept in lockstep by
        :meth:`skip_to`)."""
        chain = self.loop.every(
            self.tick_ms, callback, start_at=self.loop.now, priority=priority
        )
        self._chains.append(chain)
        return chain

    def periodic(
        self,
        interval: float,
        callback: Callable[[float], None],
        priority: int,
        start_due: float | None = None,
    ) -> "GridPeriodic":
        due = self.loop.now if start_due is None else start_due
        return GridPeriodic(self, interval, callback, priority, due)

    def at(
        self, when: float, callback: Callable[..., None], *args, priority: int
    ) -> "GridOneShot":
        return GridOneShot(self, when, callback, args, priority)

    def skip_to(self, when: float) -> None:
        """Jump every per-tick chain to ``when`` (a future grid tick)."""
        for chain in self._chains:
            chain.skip_to(when)


class GridPeriodic:
    """A recurring activity quantized to the tick grid.

    Executes at the first tick at or after each due time; the next due
    time is ``executed_tick + interval`` — exactly the old loop's
    ``if t >= next_due`` bookkeeping, so heartbeat/scheduling cadences
    are bit-identical to the reference loop even when ``interval`` is
    not a multiple of ``tick_ms``.
    """

    __slots__ = ("harness", "interval", "callback", "priority", "next_due", "_handle", "_cancelled")

    def __init__(
        self,
        harness: TickHarness,
        interval: float,
        callback: Callable[[float], None],
        priority: int,
        start_due: float,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        self.harness = harness
        self.interval = float(interval)
        self.callback = callback
        self.priority = priority
        self._cancelled = False
        self.next_due = float(start_due)
        self._handle: EventHandle = harness.loop.schedule_at(
            self.next_due, self._fire, priority=priority
        )

    def _fire(self) -> None:
        harness = self.harness
        loop = harness.loop
        now = loop.now
        if not harness.on_grid(now):
            # Between ticks: the old loop would only notice at the next
            # tick — land there, same phase slot.
            self._handle = loop._schedule_fast(harness.next_tick, self._fire, self.priority)
            return
        self.next_due = now + self.interval
        self._handle = loop._schedule_fast(self.next_due, self._fire, self.priority)
        self.callback(now)

    def cancel(self) -> None:
        self._cancelled = True
        self._handle.cancel()

    def resync(self, next_due: float) -> None:
        """Re-aim the recurrence after a fast-forward advanced its due
        bookkeeping past the skipped span."""
        if self._cancelled:
            return
        self._handle.cancel()
        self.next_due = float(next_due)
        when = max(self.next_due, self.harness.loop.now)
        self._handle = self.harness.loop.schedule_at(when, self._fire, priority=self.priority)


class PhaseGate:
    """Cadence bookkeeping for a periodic phase *fused into* a tick
    callback, instead of carrying its own event chain.

    When every same-instant event outside the tick callback uses a
    phase priority below the callback's (as the cluster simulator
    guarantees: faults/repairs/submissions are phases 0–2, the fused
    quantum..tick-end run is phases 3–7), the phases inside the tick
    are contiguous — no event can interleave between them — so a
    :class:`GridPeriodic` chain degenerates to the reference loop's
    plain ``if t >= next_due: ...; next_due = t + interval`` check.
    This class is that check, with the same :attr:`next_due` /
    :meth:`resync` surface the fast-forward path drives.
    """

    __slots__ = ("interval", "next_due")

    def __init__(self, interval: float, start_due: float) -> None:
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        self.interval = float(interval)
        self.next_due = float(start_due)

    def due(self, now: float) -> bool:
        """True (advancing the cadence) when the phase runs this tick."""
        if now >= self.next_due:
            self.next_due = now + self.interval
            return True
        return False

    def resync(self, next_due: float) -> None:
        """Re-aim the cadence after a fast-forward advanced its due
        bookkeeping past the skipped span."""
        self.next_due = float(next_due)


class GridOneShot:
    """A single raw-time event deferred onto the tick grid.

    Cancellable until it executes — the repair half of a
    :class:`FaultPlan` entry is exactly this.
    """

    __slots__ = ("harness", "callback", "args", "priority", "_handle", "_done", "_cancelled")

    def __init__(
        self,
        harness: TickHarness,
        when: float,
        callback: Callable[..., None],
        args: tuple,
        priority: int,
    ) -> None:
        self.harness = harness
        self.callback = callback
        self.args = args
        self.priority = priority
        self._done = False
        self._cancelled = False
        self._handle: EventHandle = harness.loop.schedule_at(
            when, self._fire, priority=priority
        )

    @property
    def time(self) -> float:
        """Currently scheduled firing time (moves when deferred)."""
        return self._handle.time

    @property
    def pending(self) -> bool:
        return not self._done and not self._cancelled

    def _fire(self) -> None:
        harness = self.harness
        loop = harness.loop
        now = loop.now
        if not harness.on_grid(now):
            self._handle = loop.schedule_at(harness.next_tick, self._fire, priority=self.priority)
            return
        self._done = True
        self.callback(*self.args)

    def cancel(self) -> None:
        """Prevent execution.  Idempotent; no-op once executed."""
        if not self._done:
            self._cancelled = True
            self._handle.cancel()


class FaultPlan:
    """Failure-injection plan as first-class scheduled events.

    Each :class:`~repro.sim.simulator.DeviceFault` becomes a
    :class:`GridOneShot` at its (grid-quantized) injection time; when a
    fault actually fails a device (``fail_fn`` returned True), the
    matching repair is scheduled as a **cancellable** event
    ``duration_ms`` after the raw fault time.  This replaces the old
    per-tick ``for when, gpu_id in list(repairs): ... repairs.remove``
    scan, which was O(outstanding repairs) *every tick* and O(n²)
    across a fault storm.
    """

    __slots__ = ("harness", "_fail_fn", "_repair_fn", "_events", "_repairs")

    def __init__(
        self,
        harness: TickHarness,
        faults: Iterable[_FaultLike],
        fail_fn: Callable[[str], bool],
        repair_fn: Callable[[str], None],
    ) -> None:
        self.harness = harness
        self._fail_fn = fail_fn
        self._repair_fn = repair_fn
        self._events: list[GridOneShot] = []
        #: gpu_id -> pending repair event (a failed device has at most
        #: one outstanding repair: later faults on it are swallowed).
        self._repairs: dict[str, GridOneShot] = {}
        for fault in sorted(faults, key=lambda f: f.at_ms):
            self._events.append(
                harness.at(
                    max(fault.at_ms, 0.0), self._on_fault, fault, priority=PHASE_FAULT
                )
            )

    def _on_fault(self, fault: _FaultLike) -> None:
        if not self._fail_fn(fault.gpu_id):
            return  # already failed: the plan entry is swallowed
        when = max(fault.at_ms + fault.duration_ms, self.harness.loop.now)
        repair = self.harness.at(when, self._on_repair, fault.gpu_id, priority=PHASE_REPAIR)
        self._repairs[fault.gpu_id] = repair
        self._events.append(repair)

    def _on_repair(self, gpu_id: str) -> None:
        self._repairs.pop(gpu_id, None)
        self._repair_fn(gpu_id)

    def cancel_repair(self, gpu_id: str) -> bool:
        """Cancel the outstanding repair for ``gpu_id`` (the device
        then stays failed).  Returns True if one was cancelled."""
        repair = self._repairs.pop(gpu_id, None)
        if repair is None or not repair.pending:
            return False
        repair.cancel()
        return True

    @property
    def pending(self) -> int:
        """Fault/repair events still scheduled to fire."""
        return sum(1 for event in self._events if event.pending)

    def repair_pending(self, gpu_id: str) -> bool:
        return gpu_id in self._repairs and self._repairs[gpu_id].pending


class CapacityPlan:
    """A scheduled capacity plan (the :class:`FaultPlan` generalized to
    node-granular transitions).

    Each event is a pre-computed ``(at_ms, node_id, kind)`` triple —
    see :func:`repro.scenario.capacity.build_capacity_events` — turned
    into a :class:`GridOneShot`.  Kinds:

    ``drain``
        Cordon the node ahead of a reclaim (residents keep running,
        no new placements) — the drain-before-reclaim grace window.
    ``reclaim``
        Take the node away: evict its pods back to the pending queue,
        fail its devices.  Fires in the fault phase slot.
    ``restore``
        Bring the node back into service.  Fires in the repair phase
        slot, so a same-instant reclaim+restore nets out to a repaired
        node, exactly like a same-instant fault+repair.

    The plan only *schedules*; the transition callbacks (the
    orchestrator's ``cordon_node``/``reclaim_node``/``restore_node``)
    own the semantics, keeping this module free of any scenario import.
    """

    __slots__ = ("harness", "_drain_fn", "_reclaim_fn", "_restore_fn", "_events")

    _PHASES = {"drain": PHASE_FAULT, "reclaim": PHASE_FAULT, "restore": PHASE_REPAIR}

    def __init__(
        self,
        harness: TickHarness,
        events: Iterable[_CapacityEventLike],
        drain_fn: Callable[[str], object],
        reclaim_fn: Callable[[str], object],
        restore_fn: Callable[[str], object],
    ) -> None:
        self.harness = harness
        self._drain_fn = drain_fn
        self._reclaim_fn = reclaim_fn
        self._restore_fn = restore_fn
        self._events: list[GridOneShot] = []
        for event in sorted(events, key=lambda e: (e.at_ms, self._PHASES[e.kind], e.node_id)):
            self._events.append(
                harness.at(
                    max(event.at_ms, 0.0),
                    self._on_event,
                    event,
                    priority=self._PHASES[event.kind],
                )
            )

    def _on_event(self, event: _CapacityEventLike) -> None:
        # Transition callbacks are idempotent-tolerant: overlapping
        # windows may re-drain or re-restore a node; that is swallowed
        # by the orchestrator exactly like a duplicate fault.
        if event.kind == "drain":
            self._drain_fn(event.node_id)
        elif event.kind == "reclaim":
            self._reclaim_fn(event.node_id)
        elif event.kind == "restore":
            self._restore_fn(event.node_id)
        else:  # pragma: no cover - validated at construction
            raise SimulationError(f"unknown capacity event kind {event.kind!r}")

    @property
    def pending(self) -> int:
        """Capacity events still scheduled to fire."""
        return sum(1 for event in self._events if event.pending)


def run_until_idle(loop: EventLoop, max_events: int | None = None) -> int:
    """Run ``loop`` until it drains or a handler calls ``loop.stop()``.

    Returns the number of events fired.
    """
    return loop.run(max_events=max_events)


def run_paced(
    loop: EventLoop, pacer: Callable[[float], None], max_events: int | None = None
) -> int:
    """Run ``loop`` at wall clock: ``pacer(when)`` blocks before each
    event until its sim time is due in wall terms.

    The serving layer (:mod:`repro.serve`) drives its tick harness this
    way — the same event chains as the offline simulators, paced
    against a host clock injected from outside the sim-critical
    packages.  Returns the number of events fired (the run ends on
    :meth:`~repro.sim.engine.EventLoop.stop` or a drained heap).
    """
    return loop.run_paced(pacer, max_events=max_events)
