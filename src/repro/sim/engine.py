"""Discrete-event simulation engine.

A minimal, allocation-light event loop used by every simulator in this
package: :class:`~repro.sim.simulator.KubeKnotsSimulator` drives its
tick quantum, heartbeats, scheduling passes, submissions and
fault/repair plan through it (via :mod:`repro.sim.harness`), and
:class:`~repro.sim.dlsim.DLClusterSimulator` runs its
advance-and-recompute cycle as wakeup/arrival/finalize events.

Events are ``(time, priority, seq)``-ordered entries kept in a binary
heap; ``priority`` breaks ties between events at the same instant
(lower fires first) and ``seq`` is a monotonically increasing
tie-breaker so equal-(time, priority) events fire in FIFO order, which
keeps runs deterministic.

Time is a ``float`` in **milliseconds** throughout the package unless a
module documents otherwise (the DL simulator in :mod:`repro.sim.dlsim`
uses seconds, matching the Tiresias simulator it replaces; it passes
``clock_scale=1000`` so observability timestamps stay in the
package-wide millisecond convention).

Because time only advances to the next *scheduled* event, an idle
stretch costs whatever events are scheduled across it — the cluster
simulator exploits this by fast-forwarding its tick chains over
quiescent spans (see ``docs/performance.md``).

The loop can carry an :class:`repro.obs.Observability` bundle: each
fired event then advances the shared sim clock, bumps the
``engine_events_fired_total`` counter and (when tracing) emits a span
named after the callback.  With the default disabled bundle the only
overhead is one boolean check per event.

When the bundle carries a runtime sanitizer
(``Observability(sanitize=True)``), the loop additionally checks that
no event is scheduled behind the clock, that fired events never move
time backwards, and — every ``heap_audit_interval`` events — that the
O(1) live-event counter agrees with a full heap census.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.obs.context import NOOP, Observability

__all__ = ["EventHandle", "EventLoop", "RepeatingEvent", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on invalid use of the event loop (e.g. scheduling in the past)."""


class EventHandle:
    """One scheduled event, doubling as the caller's cancellation handle.

    Returned by :meth:`EventLoop.schedule`; holding it allows the caller
    to :meth:`cancel` the event before it fires.  Cancelling an
    already-fired or already-cancelled event is a no-op.

    The heap itself stores plain ``(time, priority, seq, handle)``
    tuples so event ordering is decided by C tuple comparison — ``seq``
    is unique, so two entries never tie into comparing handles.  Merging
    the event record and the handle into one object (instead of the old
    ``_Event`` + wrapper pair) halves the per-schedule allocations on
    the dense dispatch path.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled", "fired", "_loop")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        loop: "EventLoop",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._loop = loop

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self.cancelled and not self.fired:
            self.cancelled = True
            self._loop._pending -= 1


class RepeatingEvent:
    """A self-rescheduling periodic event, created by :meth:`EventLoop.every`.

    The next occurrence is scheduled *before* the callback runs, so
    :attr:`next_time` is always valid inside the callback and
    :meth:`skip_to` may be called from within it (the pre-scheduled
    occurrence is cancelled and replaced).
    """

    __slots__ = ("_loop", "interval", "callback", "priority", "_handle", "_cancelled")

    def __init__(
        self,
        loop: "EventLoop",
        interval: float,
        callback: Callable[[float], None],
        start_at: float,
        priority: int,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        self._loop = loop
        self.interval = float(interval)
        self.callback = callback
        self.priority = priority
        self._cancelled = False
        self._handle = loop.schedule_at(start_at, self._fire, priority=priority)

    @property
    def next_time(self) -> float:
        """Time of the next scheduled occurrence."""
        return self._handle.time

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def _fire(self) -> None:
        loop = self._loop
        now = loop._now
        self._handle = loop._schedule_fast(now + self.interval, self._fire, self.priority)
        self.callback(now)

    def cancel(self) -> None:
        """Stop the recurrence.  Idempotent."""
        self._cancelled = True
        self._handle.cancel()

    def skip_to(self, when: float) -> None:
        """Move the next occurrence to ``when``, dropping occurrences
        in between (the idle fast-forward hook)."""
        if self._cancelled:
            raise SimulationError("cannot skip a cancelled periodic event")
        self._handle.cancel()
        self._handle = self._loop.schedule_at(when, self._fire, priority=self.priority)


class EventLoop:
    """A deterministic discrete-event loop.

    >>> loop = EventLoop()
    >>> fired = []
    >>> _ = loop.schedule(5.0, fired.append, "b")
    >>> _ = loop.schedule(1.0, fired.append, "a")
    >>> loop.run()
    2
    >>> fired
    ['a', 'b']
    """

    def __init__(
        self,
        start_time: float = 0.0,
        obs: Observability | None = None,
        clock_scale: float = 1.0,
    ) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, int, EventHandle]] = []
        self._seq = itertools.count()
        self._running = False
        self._stop_requested = False
        self._stop_hooks: list[Callable[[], None]] = []
        # Live count of pending (scheduled, neither fired nor cancelled)
        # events, maintained on schedule/cancel/fire so ``len(loop)`` is
        # O(1) instead of an O(n) heap scan.
        self._pending = 0
        self.obs = obs or NOOP
        #: Factor applied to event times when stamping the shared obs
        #: clock — lets a simulator keep its native time unit while
        #: traces/metrics stay in the package-wide milliseconds.
        self.clock_scale = float(clock_scale)
        self._san = self.obs.sanitizer
        # Owner-thread affinity guard (only when a race detector rides
        # on the bundle): the loop is single-threaded by contract —
        # cross-thread interaction goes through stop()/add_stop_hook()
        # exclusively — and the guard turns a silent heap race into a
        # reported "owner_thread" violation.
        race = getattr(self.obs, "race", None)
        self._affinity = race.affinity("EventLoop") if race is not None else None
        self._fired_total = 0
        self._m_fired = self.obs.metrics.counter(
            "engine_events_fired_total", "Events fired by the discrete-event loop"
        )

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events.  O(1)."""
        return self._pending

    def count_inline_advances(self, n: int) -> None:
        """Fold externally-advanced instants into the fired counter.

        The DL simulator's drive cycle moves the clock across provably
        event-free spans without a heap event; those jumps are engine
        advances all the same, so drivers report them here to keep
        ``engine_events_fired_total`` an honest instant count.
        """
        if n and self.obs.enabled:
            self._m_fired.inc(n)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any, priority: int = 0
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            if self._san is not None:
                self._san.check_schedule(self._now, self._now + delay)
            raise SimulationError(f"cannot schedule event {delay} units in the past")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self, when: float, callback: Callable[..., None], *args: Any, priority: int = 0
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run at absolute time ``when``.

        ``priority`` orders events at the same instant: lower values
        fire first; equal priorities fire in FIFO order.
        """
        if self._affinity is not None and self._running:
            # Mutating a running loop is only legal from the thread
            # driving it; other threads must go through stop().
            self._affinity.check("schedule_at")
        if when < self._now:
            if self._san is not None:
                # Audits the breach and (by default) raises SanitizerError.
                self._san.check_schedule(self._now, when)
            raise SimulationError(
                f"cannot schedule event at t={when} before current time t={self._now}"
            )
        when = float(when)
        seq = next(self._seq)
        event = EventHandle(when, priority, seq, callback, args, self)
        heapq.heappush(self._heap, (when, priority, seq, event))
        self._pending += 1
        return event

    def _schedule_fast(
        self, when: float, callback: Callable[[], None], priority: int
    ) -> EventHandle:
        """Internal re-scheduling path for the periodic chains.

        Callers guarantee ``when >= now`` (it is always ``now`` plus a
        positive interval, or an already-validated future grid tick),
        so the past-time guard and float coercion of
        :meth:`schedule_at` are skipped — this runs once per fired
        chain event on the dense dispatch path.
        """
        seq = next(self._seq)
        event = EventHandle(when, priority, seq, callback, (), self)
        heapq.heappush(self._heap, (when, priority, seq, event))
        self._pending += 1
        return event

    def every(
        self,
        interval: float,
        callback: Callable[[float], None],
        *,
        start_at: float | None = None,
        priority: int = 0,
    ) -> RepeatingEvent:
        """Schedule ``callback(now)`` every ``interval`` time units.

        The first occurrence fires at ``start_at`` (default: one
        interval from now).  Returns a :class:`RepeatingEvent` whose
        :meth:`~RepeatingEvent.cancel` stops the recurrence and whose
        :meth:`~RepeatingEvent.skip_to` jumps it forward.
        """
        first = self._now + interval if start_at is None else start_at
        return RepeatingEvent(self, interval, callback, first, priority)

    def stop(self) -> None:
        """Ask the current (or next) :meth:`run` to halt after the
        in-flight event.  Pending events stay scheduled.

        Idempotent and safe to call from any thread (and from signal
        handlers): it only sets a flag and notifies the registered stop
        hooks.  A hook that blocks a paced run's sleep (see
        :meth:`run_paced`) is woken so a cross-thread stop cannot hang
        behind the pacer.
        """
        self._stop_requested = True
        for hook in self._stop_hooks:
            hook()

    @property
    def stop_requested(self) -> bool:
        """True once :meth:`stop` has been called and not yet consumed
        by a plain :meth:`run`."""
        return self._stop_requested

    def add_stop_hook(self, hook: Callable[[], None]) -> None:
        """Register ``hook()`` to run on every :meth:`stop` call.

        Hooks must be idempotent and thread-safe — the serving layer
        uses one to wake its wall-clock pacer out of a sleep.
        """
        self._stop_hooks.append(hook)

    def step(self) -> bool:
        """Fire the single next pending event.

        Returns ``True`` if an event fired, ``False`` if the loop is empty.
        """
        heap = self._heap
        while heap:
            when, _priority, _seq, event = heapq.heappop(heap)
            if event.cancelled:
                continue          # already uncounted at cancel time
            san = self._san
            if san is not None:
                san.check_event_time(self._now, when)
            self._now = when
            event.fired = True
            self._pending -= 1
            if san is not None:
                self._fired_total += 1
                if self._fired_total % san.heap_audit_interval == 0:
                    live = sum(1 for entry in heap if not entry[3].cancelled)
                    san.check_heap(self._pending, live)
            obs = self.obs
            if obs.enabled:
                obs.clock.now = when * self.clock_scale
                self._m_fired.inc()
                tracer = obs.tracer
                if tracer.enabled:
                    name = getattr(event.callback, "__qualname__", repr(event.callback))
                    tracer.begin(name, cat="engine")
                    try:
                        event.callback(*event.args)
                    finally:
                        tracer.end()
                    return True
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run events in time order.

        Parameters
        ----------
        until:
            If given, stop once the next event lies strictly after
            ``until`` (the clock is then advanced to ``until``).
        max_events:
            Safety valve: stop after firing this many events.

        Returns
        -------
        int
            The number of events fired.  The run also ends when a
            callback calls :meth:`stop` (pending events stay queued).
        """
        if self._running:
            raise SimulationError("event loop is already running (re-entrant run())")
        if self._affinity is not None:
            self._affinity.rebind()   # sanctioned hand-off: the runner owns the loop
        self._running = True
        self._stop_requested = False
        fired = 0
        heap = self._heap
        pop = heapq.heappop
        # The plain path — no sanitizer, observability disabled — is the
        # dense-dispatch hot loop: pop and fire inline, no step() call,
        # no per-event instrumentation checks.
        plain = self._san is None and not self.obs.enabled
        try:
            if plain and until is None and max_events is None:
                # run_until_idle's shape: no bound checks at all, pop
                # directly instead of peek-then-pop.
                while heap:
                    if self._stop_requested:
                        break
                    entry = pop(heap)
                    event = entry[3]
                    if event.cancelled:
                        continue
                    self._now = entry[0]
                    event.fired = True
                    self._pending -= 1
                    event.callback(*event.args)
                    fired += 1
                return fired
            while heap:
                if self._stop_requested:
                    break
                if max_events is not None and fired >= max_events:
                    break
                head = heap[0]
                if head[3].cancelled:
                    pop(heap)
                    continue
                if until is not None and head[0] > until:
                    break
                if plain:
                    pop(heap)
                    event = head[3]
                    self._now = head[0]
                    event.fired = True
                    self._pending -= 1
                    event.callback(*event.args)
                else:
                    self.step()
                fired += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return fired

    def run_paced(self, pacer: Callable[[float], None], max_events: int | None = None) -> int:
        """Run events in time order, pacing each against a wall clock.

        ``pacer(when)`` is called with the absolute sim time of the next
        pending event *before* it fires; the pacer blocks until that sim
        instant is due in wall-clock terms (the engine itself never
        reads a host clock — determinism-critical packages ban it, so
        the clock lives with the injected pacer, e.g.
        :class:`repro.serve.server.WallClockPacer`).  A pacer must
        return promptly once :meth:`stop` is called — register a wakeup
        via :meth:`add_stop_hook`.

        Unlike :meth:`run`, a stop requested *before* entry is honoured
        (a signal may land between constructing the loop and pacing it),
        so the stop flag is not reset here.  Returns the number of
        events fired.
        """
        if self._running:
            raise SimulationError("event loop is already running (re-entrant run_paced())")
        if self._affinity is not None:
            self._affinity.rebind()   # sanctioned hand-off: the runner owns the loop
        self._running = True
        fired = 0
        heap = self._heap
        try:
            while heap:
                if self._stop_requested:
                    break
                if max_events is not None and fired >= max_events:
                    break
                head = heap[0]
                if head[3].cancelled:
                    heapq.heappop(heap)
                    continue
                pacer(head[0])
                if self._stop_requested:
                    break
                if self.step():
                    fired += 1
        finally:
            self._running = False
        return fired

    def _peek(self) -> EventHandle | None:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        return heap[0][3] if heap else None
