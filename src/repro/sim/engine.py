"""Discrete-event simulation engine.

A minimal, allocation-light event loop used by every simulator in this
package.  Events are ``(time, seq, callback)`` triples kept in a binary
heap; ``seq`` is a monotonically increasing tie-breaker so that events
scheduled for the same instant fire in FIFO order, which keeps runs
deterministic.

Time is a ``float`` in **milliseconds** throughout the package unless a
module documents otherwise (the DL simulator in :mod:`repro.sim.dlsim`
uses seconds, matching the Tiresias simulator it replaces).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["EventHandle", "EventLoop", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on invalid use of the event loop (e.g. scheduling in the past)."""


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Opaque handle returned by :meth:`EventLoop.schedule`.

    Holding the handle allows the caller to :meth:`cancel` the event
    before it fires.  Cancelling an already-fired or already-cancelled
    event is a no-op.
    """

    __slots__ = ("_event",)

    def __init__(self, event: _Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled firing time of the event."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True


class EventLoop:
    """A deterministic discrete-event loop.

    >>> loop = EventLoop()
    >>> fired = []
    >>> _ = loop.schedule(5.0, fired.append, "b")
    >>> _ = loop.schedule(1.0, fired.append, "a")
    >>> loop.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event {delay} units in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, when: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at t={when} before current time t={self._now}"
            )
        event = _Event(float(when), next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def step(self) -> bool:
        """Fire the single next pending event.

        Returns ``True`` if an event fired, ``False`` if the loop is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run events in time order.

        Parameters
        ----------
        until:
            If given, stop once the next event lies strictly after
            ``until`` (the clock is then advanced to ``until``).
        max_events:
            Safety valve: stop after firing this many events.

        Returns
        -------
        int
            The number of events fired.
        """
        if self._running:
            raise SimulationError("event loop is already running (re-entrant run())")
        self._running = True
        fired = 0
        try:
            while self._heap:
                if max_events is not None and fired >= max_events:
                    break
                nxt = self._peek()
                if nxt is None:
                    break
                if until is not None and nxt.time > until:
                    break
                self.step()
                fired += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return fired

    def _peek(self) -> _Event | None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None
