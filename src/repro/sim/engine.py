"""Discrete-event simulation engine.

A minimal, allocation-light event loop used by every simulator in this
package.  Events are ``(time, seq, callback)`` triples kept in a binary
heap; ``seq`` is a monotonically increasing tie-breaker so that events
scheduled for the same instant fire in FIFO order, which keeps runs
deterministic.

Time is a ``float`` in **milliseconds** throughout the package unless a
module documents otherwise (the DL simulator in :mod:`repro.sim.dlsim`
uses seconds, matching the Tiresias simulator it replaces).

The loop can carry an :class:`repro.obs.Observability` bundle: each
fired event then advances the shared sim clock, bumps the
``engine_events_fired_total`` counter and (when tracing) emits a span
named after the callback.  With the default disabled bundle the only
overhead is one boolean check per event.

When the bundle carries a runtime sanitizer
(``Observability(sanitize=True)``), the loop additionally checks that
no event is scheduled behind the clock, that fired events never move
time backwards, and — every ``heap_audit_interval`` events — that the
O(1) live-event counter agrees with a full heap census.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.context import NOOP, Observability

__all__ = ["EventHandle", "EventLoop", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on invalid use of the event loop (e.g. scheduling in the past)."""


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)
    fired: bool = field(compare=False, default=False)


class EventHandle:
    """Opaque handle returned by :meth:`EventLoop.schedule`.

    Holding the handle allows the caller to :meth:`cancel` the event
    before it fires.  Cancelling an already-fired or already-cancelled
    event is a no-op.
    """

    __slots__ = ("_event", "_loop")

    def __init__(self, event: _Event, loop: "EventLoop") -> None:
        self._event = event
        self._loop = loop

    @property
    def time(self) -> float:
        """Scheduled firing time of the event."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        event = self._event
        if not event.cancelled and not event.fired:
            event.cancelled = True
            self._loop._pending -= 1


class EventLoop:
    """A deterministic discrete-event loop.

    >>> loop = EventLoop()
    >>> fired = []
    >>> _ = loop.schedule(5.0, fired.append, "b")
    >>> _ = loop.schedule(1.0, fired.append, "a")
    >>> loop.run()
    2
    >>> fired
    ['a', 'b']
    """

    def __init__(self, start_time: float = 0.0, obs: Observability | None = None) -> None:
        self._now = float(start_time)
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        self._running = False
        # Live count of pending (scheduled, neither fired nor cancelled)
        # events, maintained on schedule/cancel/fire so ``len(loop)`` is
        # O(1) instead of an O(n) heap scan.
        self._pending = 0
        self.obs = obs or NOOP
        self._san = self.obs.sanitizer
        self._fired_total = 0
        self._m_fired = self.obs.metrics.counter(
            "engine_events_fired_total", "Events fired by the discrete-event loop"
        )

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events.  O(1)."""
        return self._pending

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            if self._san is not None:
                self._san.check_schedule(self._now, self._now + delay)
            raise SimulationError(f"cannot schedule event {delay} units in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, when: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run at absolute time ``when``."""
        if when < self._now:
            if self._san is not None:
                # Audits the breach and (by default) raises SanitizerError.
                self._san.check_schedule(self._now, when)
            raise SimulationError(
                f"cannot schedule event at t={when} before current time t={self._now}"
            )
        event = _Event(float(when), next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        self._pending += 1
        return EventHandle(event, self)

    def step(self) -> bool:
        """Fire the single next pending event.

        Returns ``True`` if an event fired, ``False`` if the loop is empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue          # already uncounted at cancel time
            san = self._san
            if san is not None:
                san.check_event_time(self._now, event.time)
            self._now = event.time
            event.fired = True
            self._pending -= 1
            if san is not None:
                self._fired_total += 1
                if self._fired_total % san.heap_audit_interval == 0:
                    live = sum(1 for e in self._heap if not e.cancelled)
                    san.check_heap(self._pending, live)
            obs = self.obs
            if obs.enabled:
                obs.clock.now = event.time
                self._m_fired.inc()
                tracer = obs.tracer
                if tracer.enabled:
                    name = getattr(event.callback, "__qualname__", repr(event.callback))
                    tracer.begin(name, cat="engine")
                    try:
                        event.callback(*event.args)
                    finally:
                        tracer.end()
                    return True
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Run events in time order.

        Parameters
        ----------
        until:
            If given, stop once the next event lies strictly after
            ``until`` (the clock is then advanced to ``until``).
        max_events:
            Safety valve: stop after firing this many events.

        Returns
        -------
        int
            The number of events fired.
        """
        if self._running:
            raise SimulationError("event loop is already running (re-entrant run())")
        self._running = True
        fired = 0
        try:
            while self._heap:
                if max_events is not None and fired >= max_events:
                    break
                nxt = self._peek()
                if nxt is None:
                    break
                if until is not None and nxt.time > until:
                    break
                self.step()
                fired += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return fired

    def _peek(self) -> _Event | None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None
