"""Discrete-event DL-cluster simulator (paper Sec. V-C, Fig. 12, Table IV).

Replaces the Tiresias discrete-time simulator the paper built CBP+PP
into: a 32-node x 8-GPU cluster running 520 DL-training jobs and 1400
DL-inference tasks, under four schedulers whose *mechanisms* (not just
their numbers) are implemented:

``res-ag``
    Strict FIFO, no preemption, gang jobs hold devices exclusively
    until completion.  A large gang at the head of the queue blocks
    everything behind it (HOL), including millisecond inference tasks.
``gandiva``
    Jobs start immediately by oversubscribing devices; co-resident jobs
    round-robin time-slice (progress divided by the slice count, plus a
    context-switch overhead).  A periodic rebalancer migrates jobs from
    crowded to idle devices ("trial-and-error" packing); each migration
    pauses the job for several seconds.
``tiresias``
    Two-queue Least-Attained-Service: jobs below an attained GPU-time
    threshold hold priority; the running set is recomputed on every
    event and lower-priority jobs are suspended (paying a
    suspend/resume penalty) to make room.  Fresh inference tasks have
    zero attained service, so they preempt their way in quickly — at
    the cost of the preemption latency.
``cbp-pp``
    Kube-Knots: no preemption, utilization-aware backfill for training
    gangs (any job that fits may start — no HOL), and inference tasks
    are *co-located* onto devices running training jobs through memory
    harvesting, paying only a small interference stretch.

The simulator runs on the shared :class:`repro.sim.engine.EventLoop`
(in seconds, with ``clock_scale=1000`` so observability timestamps stay
in the package-wide milliseconds): arrivals are first-class events, one
cancellable *wakeup* event advances progress to the next completion /
pause-expiry / policy-timer candidate, and a *finalize* event per
instant recomputes rates and re-aims the wakeup — so twelve simulated
hours cost a few thousand events regardless of scale.  Outputs are
pinned bit-identical to the original advance-and-recompute loop
(:func:`repro.sim.reference.run_dl_reference`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.obs.context import NOOP, Observability
from repro.sim.engine import EventLoop
from repro.sim.harness import run_until_idle
from repro.units import s_to_ms
from repro.workloads.dlt import DLJob, DLJobKind

__all__ = [
    "DLSchedulerPolicy",
    "ResAgPolicy",
    "GandivaPolicy",
    "TiresiasPolicy",
    "CbpPpPolicy",
    "DL_POLICIES",
    "make_dl_policy",
    "DLSimResult",
    "DLClusterSimulator",
]

_EPS = 1e-9


@dataclass
class _RunState:
    """Execution state of one admitted job."""

    job: DLJob
    gpus: list[int]
    remaining_s: float
    rate: float = 1.0
    paused_until: float | None = None   # migration / preemption pause


class _Pool:
    """The 256-device pool.  ``load[g]`` counts training jobs on device
    ``g``; ``dli[g]`` counts co-located inference tasks (CBP+PP)."""

    def __init__(self, n_gpus: int, gpus_per_node: int = 8) -> None:
        self.n_gpus = n_gpus
        self.gpus_per_node = gpus_per_node
        self.load = np.zeros(n_gpus, dtype=int)
        self.dli = np.zeros(n_gpus, dtype=int)

    def node_of(self, gpu: int) -> int:
        return gpu // self.gpus_per_node

    def free_ids(self) -> np.ndarray:
        return np.nonzero(self.load == 0)[0]

    def take_compact(self, k: int) -> list[int] | None:
        """Pick ``k`` free devices spanning as few nodes as possible.

        Gang-scheduled training synchronizes across its devices every
        mini-batch; spreading a gang over more nodes costs network hops
        (the locality concern Tiresias studies).  Greedy fill: nodes
        with the most free devices first.
        """
        free = self.free_ids()
        if len(free) < k:
            return None
        by_node: dict[int, list[int]] = {}
        for g in free:
            by_node.setdefault(self.node_of(int(g)), []).append(int(g))
        chosen: list[int] = []
        for _node, gpus in sorted(by_node.items(), key=lambda kv: (-len(kv[1]), kv[0])):
            take = min(k - len(chosen), len(gpus))
            chosen.extend(gpus[:take])
            if len(chosen) == k:
                return chosen
        return None

    def nodes_spanned(self, gpus: list[int]) -> int:
        return len({self.node_of(g) for g in gpus})

    def n_free(self) -> int:
        return int((self.load == 0).sum())

    def take(self, ids: Iterable[int]) -> None:
        for g in ids:
            self.load[g] += 1

    def release(self, ids: Iterable[int]) -> None:
        for g in ids:
            self.load[g] -= 1
            if self.load[g] < 0:
                raise RuntimeError(f"negative load on gpu {g}")

    def least_loaded(self, k: int) -> list[int]:
        """The ``k`` devices with the smallest training load (stable)."""
        order = np.lexsort((np.arange(self.n_gpus), self.load))
        return [int(g) for g in order[:k]]


class DLSchedulerPolicy:
    """Base class: queue discipline + rate model for one scheduler."""

    name = "base"

    #: When True, inference tasks occupy *sharing* slots (``pool.dli``)
    #: rather than claiming the device the way training jobs do.  Only
    #: Tiresias treats inference as ordinary (preempting) jobs.
    dli_shares_devices = True

    #: Set by the simulator: per-extra-node sync tax on gang progress.
    locality_penalty = 0.0

    def _locality_factor(self, state: "_RunState") -> float:
        """Progress multiplier for a (possibly) cross-node gang."""
        if self.locality_penalty <= 0.0 or len(state.gpus) <= 1:
            return 1.0
        spanned = self.pool.nodes_spanned(state.gpus)
        return 1.0 / (1.0 + self.locality_penalty * (spanned - 1))

    def __init__(self) -> None:
        self.pool: _Pool | None = None
        self.pending: list[_RunState] = []
        self.running: dict[int, _RunState] = {}

    def attach(self, pool: _Pool) -> None:
        self.pool = pool

    # -- hooks ---------------------------------------------------------

    def submit(self, state: _RunState, now: float) -> None:
        self.pending.append(state)
        self.reschedule(now)

    def complete(self, state: _RunState, now: float) -> None:
        if self.dli_shares_devices and state.job.kind is DLJobKind.INFERENCE:
            for g in state.gpus:
                self.pool.dli[g] = max(self.pool.dli[g] - 1, 0)
        else:
            self.pool.release(state.gpus)
        del self.running[state.job.job_id]
        self.reschedule(now)

    def reschedule(self, now: float) -> None:
        """Admit pending jobs per the policy's queue discipline."""
        raise NotImplementedError

    def rates(self, now: float) -> None:
        """Recompute every running job's progress rate in place."""
        for state in self.running.values():
            state.rate = self._locality_factor(state)

    def next_timer(self, now: float) -> float | None:
        """Next policy-internal event (e.g. Gandiva's migration tick)."""
        return None

    def on_timer(self, now: float) -> None:  # pragma: no cover - default
        pass

    # -- helpers ---------------------------------------------------------

    def _start(self, state: _RunState, gpus: list[int], now: float) -> None:
        state.gpus = gpus
        if self.dli_shares_devices and state.job.kind is DLJobKind.INFERENCE:
            for g in gpus:
                self.pool.dli[g] += 1
        else:
            self.pool.take(gpus)
        self.running[state.job.job_id] = state
        if state.job.start_s is None:
            state.job.start_s = now


class ResAgPolicy(DLSchedulerPolicy):
    """GPU-agnostic sharing baseline.

    Training gangs are strict FIFO with exclusive devices and no
    preemption — a large gang at the head blocks every gang behind it.
    Inference tasks go through the shared-GPU plugin instead: first-fit
    onto the lowest-indexed device with a sharing slot, blind to how
    crowded that device already is.  During bursts they pile onto the
    same early devices and time-share with whatever is there — the
    interference that produces Res-Ag's violation cliff in Fig. 12b.
    """

    name = "res-ag"

    def __init__(self, max_dli_per_gpu: int = 8) -> None:
        super().__init__()
        self.max_dli_per_gpu = max_dli_per_gpu

    def reschedule(self, now: float) -> None:
        # Inference: utilization-agnostic first-fit sharing.
        still_pending: list[_RunState] = []
        for state in self.pending:
            if state.job.kind is not DLJobKind.INFERENCE:
                still_pending.append(state)
                continue
            slots = np.nonzero(self.pool.dli < self.max_dli_per_gpu)[0]
            if len(slots) == 0:
                still_pending.append(state)
                continue
            g = int(slots[0])             # first fit: lowest index, blindly
            self._start(state, [g], now)
        self.pending = still_pending

        # Training gangs: strict FIFO over exclusive devices.
        while self.pending:
            head_idx = next(
                (i for i, s in enumerate(self.pending) if s.job.kind is DLJobKind.TRAINING),
                None,
            )
            if head_idx is None:
                return
            head = self.pending[head_idx]
            gpus = self.pool.take_compact(head.job.num_gpus)
            if gpus is None:
                return                      # head blocks the whole gang queue
            self.pending.pop(head_idx)
            self._start(head, gpus, now)

    def rates(self, now: float) -> None:
        for state in self.running.values():
            if state.job.kind is DLJobKind.INFERENCE:
                g = state.gpus[0]
                co = int(self.pool.load[g]) + int(self.pool.dli[g]) - 1
                state.rate = 1.0 / (1.0 + co)
            else:
                state.rate = self._locality_factor(state)


class CbpPpPolicy(DLSchedulerPolicy):
    """Kube-Knots: backfill for gangs, harvested co-location for DLI."""

    name = "cbp-pp"

    def __init__(self, max_dli_per_gpu: int = 4, dli_stretch: float = 0.15) -> None:
        super().__init__()
        self.max_dli_per_gpu = max_dli_per_gpu
        #: Interference stretch an inference task pays per co-resident
        #: training job — small, because harvesting gives it real memory
        #: and the training job's compute peaks are forecast around.
        self.dli_stretch = dli_stretch

    def reschedule(self, now: float) -> None:
        still_pending: list[_RunState] = []
        for state in self.pending:
            job = state.job
            if job.kind is DLJobKind.INFERENCE:
                free = self.pool.free_ids()
                if len(free):
                    self._start(state, [int(free[0])], now)
                else:
                    # Harvest: co-locate on the training device with the
                    # fewest resident queries.
                    candidates = np.nonzero(self.pool.dli < self.max_dli_per_gpu)[0]
                    if len(candidates):
                        g = int(candidates[np.argmin(self.pool.dli[candidates])])
                        self._start(state, [g], now)
                    else:
                        still_pending.append(state)
                continue
            # Training gang: utilization-aware backfill — no HOL.
            gpus = self.pool.take_compact(job.num_gpus)
            if gpus is not None:
                self._start(state, gpus, now)
            else:
                still_pending.append(state)
        self.pending = still_pending

    def rates(self, now: float) -> None:
        for state in self.running.values():
            if state.job.kind is DLJobKind.INFERENCE:
                trainers = int(self.pool.load[state.gpus[0]])
                state.rate = 1.0 / (1.0 + self.dli_stretch * trainers)
            else:
                state.rate = self._locality_factor(state)


class GandivaPolicy(DLSchedulerPolicy):
    """Time-slicing + trial-and-error migration."""

    name = "gandiva"

    def __init__(
        self,
        slice_overhead: float = 0.05,
        migration_interval_s: float = 600.0,
        migration_pause_s: float = 5.0,
        max_share: int = 2,
        max_dli_per_gpu: int = 8,
    ) -> None:
        super().__init__()
        self.slice_overhead = slice_overhead
        self.migration_interval_s = migration_interval_s
        self.migration_pause_s = migration_pause_s
        #: Gandiva packs at most this many *training* jobs per device.
        self.max_share = max_share
        self.max_dli_per_gpu = max_dli_per_gpu
        self._next_migration = migration_interval_s

    def reschedule(self, now: float) -> None:
        still_pending: list[_RunState] = []
        for state in self.pending:
            if state.job.kind is DLJobKind.INFERENCE:
                # Inference slots onto the least-crowded device and
                # time-slices with everything there.
                slots = np.nonzero(self.pool.dli < self.max_dli_per_gpu)[0]
                if len(slots) == 0:
                    still_pending.append(state)
                    continue
                crowd = self.pool.load[slots] + self.pool.dli[slots]
                g = int(slots[np.argmin(crowd)])
                self._start(state, [g], now)
                continue
            k = state.job.num_gpus
            gpus = self.pool.least_loaded(k)
            if any(self.pool.load[g] >= self.max_share for g in gpus):
                still_pending.append(state)   # even oversubscription has limits
                continue
            self._start(state, gpus, now)
        self.pending = still_pending

    def rates(self, now: float) -> None:
        for state in self.running.values():
            if state.paused_until is not None and now + _EPS < state.paused_until:
                state.rate = 0.0
                continue
            state.paused_until = None
            if state.job.kind is DLJobKind.INFERENCE:
                g = state.gpus[0]
                k = int(self.pool.load[g]) + int(self.pool.dli[g])
            else:
                k = max(int(self.pool.load[g]) for g in state.gpus)
            # Each extra co-runner costs a slice of context-switch
            # overhead on top of the 1/k time share.
            overhead = min(self.slice_overhead * max(k - 1, 0), 0.6)
            state.rate = (1.0 - overhead) / max(k, 1) * self._locality_factor(state)

    def next_timer(self, now: float) -> float | None:
        return self._next_migration

    def on_timer(self, now: float) -> None:
        """Rebalance: move jobs off crowded devices onto idle ones.

        Gandiva's introspective packing is trial-and-error: it migrates
        and keeps the result if utilization improves.  We model the
        successful migrations (crowded -> idle) plus their cost — the
        migrated job pauses for several seconds, which is precisely the
        stall that hurts co-scheduled inference tasks (Sec. VI-E).
        """
        self._next_migration = now + self.migration_interval_s
        for state in sorted(self.running.values(), key=lambda s: s.job.job_id):
            if state.job.kind is DLJobKind.INFERENCE:
                continue
            k = max(int(self.pool.load[g]) for g in state.gpus)
            if k <= 1:
                continue
            free = self.pool.free_ids()
            if len(free) < state.job.num_gpus:
                continue
            self.pool.release(state.gpus)
            state.gpus = [int(g) for g in free[: state.job.num_gpus]]
            self.pool.take(state.gpus)
            state.paused_until = now + self.migration_pause_s
            state.job.migrations += 1


class TiresiasPolicy(DLSchedulerPolicy):
    """Two-queue Least-Attained-Service with suspend/resume preemption."""

    name = "tiresias"
    dli_shares_devices = False   # inference preempts like any short job

    def __init__(
        self,
        queue_threshold_gpu_s: float = 10_000.0,
        preempt_penalty_s: float = 30.0,
        preempt_latency_s: float = 0.08,
    ) -> None:
        super().__init__()
        #: Attained GPU-time separating the high- from the low-priority
        #: queue (Tiresias' discretized 2DAS).
        self.queue_threshold_gpu_s = queue_threshold_gpu_s
        #: Work lost per suspend/resume cycle (checkpoint + restore).
        self.preempt_penalty_s = preempt_penalty_s
        #: Wall-clock latency before the preempting job can start.
        self.preempt_latency_s = preempt_latency_s

    def _priority(self, state: _RunState) -> tuple:
        attained = (state.job.service_s - state.remaining_s) * state.job.num_gpus
        q = 0 if attained < self.queue_threshold_gpu_s else 1
        return (q, state.job.arrival_s, state.job.job_id)

    def reschedule(self, now: float) -> None:
        """Recompute the running set in LAS-priority order."""
        everyone = list(self.running.values()) + self.pending
        everyone.sort(key=self._priority)
        capacity = self.pool.n_gpus
        chosen: list[_RunState] = []
        used = 0
        for state in everyone:
            if used + state.job.num_gpus <= capacity:
                chosen.append(state)
                used += state.job.num_gpus
        chosen_ids = {s.job.job_id for s in chosen}

        # Suspend running jobs that lost their slot.
        preempted = False
        for state in list(self.running.values()):
            if state.job.job_id not in chosen_ids:
                self.pool.release(state.gpus)
                state.gpus = []
                state.remaining_s += self.preempt_penalty_s
                state.job.preemptions += 1
                del self.running[state.job.job_id]
                self.pending.append(state)
                preempted = True

        # Start chosen jobs that are not yet running.
        for state in chosen:
            if state.job.job_id in self.running:
                continue
            gpus = self.pool.take_compact(state.job.num_gpus)
            if gpus is None:
                continue
            if state in self.pending:
                self.pending.remove(state)
            self._start(state, gpus, now)
            if preempted:
                # the slot only becomes usable after the suspend lands
                state.paused_until = now + self.preempt_latency_s

    def rates(self, now: float) -> None:
        for state in self.running.values():
            if state.paused_until is not None and now + _EPS < state.paused_until:
                state.rate = 0.0
            else:
                state.paused_until = None
                state.rate = self._locality_factor(state)


DL_POLICIES = {
    "res-ag": ResAgPolicy,
    "gandiva": GandivaPolicy,
    "tiresias": TiresiasPolicy,
    "cbp-pp": CbpPpPolicy,
}


def make_dl_policy(name: str, **kwargs) -> DLSchedulerPolicy:
    try:
        cls = DL_POLICIES[name]
    except KeyError:
        raise KeyError(f"unknown DL policy {name!r}; known: {sorted(DL_POLICIES)}") from None
    return cls(**kwargs)


@dataclass
class DLSimResult:
    """Outcome of one DL-cluster run."""

    policy: str
    jobs: list[DLJob]
    horizon_s: float

    def finished(self, kind: DLJobKind | None = None) -> list[DLJob]:
        out = [j for j in self.jobs if j.finish_s is not None]
        if kind is not None:
            out = [j for j in out if j.kind is kind]
        return out

    def jcts_s(self, kind: DLJobKind | None = None) -> np.ndarray:
        return np.asarray([j.jct_s for j in self.finished(kind)])

    def qos_violations(self) -> int:
        return sum(1 for j in self.finished(DLJobKind.INFERENCE) if j.violates_qos())

    def violations_per_hour(self) -> float:
        return self.qos_violations() * 3_600.0 / self.horizon_s


# Same-instant phase order of the DL loop: advance/completions first,
# then arrivals, then the finalize (timer + rate recompute) step.
_P_WAKE = 0
_P_ARRIVAL = 1
_P_FINALIZE = 2


class DLClusterSimulator:
    """Advance-and-recompute simulation of one policy, event-driven."""

    def __init__(
        self,
        jobs: list[DLJob],
        policy: DLSchedulerPolicy,
        n_nodes: int = 32,
        gpus_per_node: int = 8,
        max_horizon_s: float = 7 * 24 * 3_600.0,
        locality_penalty: float = 0.0,
        obs: Observability | None = None,
    ) -> None:
        self.jobs = sorted(jobs, key=lambda j: j.arrival_s)
        self.policy = policy
        self.obs = obs or NOOP
        self._san = self.obs.sanitizer
        self._m_submitted = self.obs.metrics.counter(
            "dl_jobs_submitted_total", "DL jobs submitted", labelnames=("policy", "kind")
        )
        self._m_completed = self.obs.metrics.counter(
            "dl_jobs_completed_total", "DL jobs completed", labelnames=("policy", "kind")
        )
        self.pool = _Pool(n_nodes * gpus_per_node, gpus_per_node=gpus_per_node)
        policy.attach(self.pool)
        #: Per-extra-node synchronization tax on a gang's progress rate
        #: (0 = free cross-node networking; ~0.05-0.15 models a
        #: bandwidth-bound parameter-server setup).
        policy.locality_penalty = locality_penalty
        self.max_horizon_s = max_horizon_s
        #: Events fired by the last :meth:`run` (engine statistics).
        self.events_fired = 0

    def run(self) -> DLSimResult:
        # The loop runs in *seconds* (this simulator's native unit);
        # clock_scale keeps obs timestamps in package-wide milliseconds.
        loop = EventLoop(obs=self.obs, clock_scale=1_000.0)
        self._loop = loop
        self._now = 0.0
        self._next_arrival = 0
        self._wake_handle = None
        self._inline_instants = 0
        # Arrivals are *not* scheduled as events: the next arrival time
        # is always in the drive cycle's candidate set, so every step
        # lands at (or within the batching slop before) every arrival
        # instant and submits due jobs inline — the old loop's
        # ``while`` check, minus one heap event per job.  The single
        # bootstrap finalize then drives the whole cycle inline.
        loop.schedule_at(0.0, self._on_finalize, priority=_P_FINALIZE)
        # The heap only sees the bootstrap finalize plus the occasional
        # defensive wake; the drive cycle advances most instants inline,
        # so the true engine statistic is heap events + inline jumps.
        self.events_fired = run_until_idle(loop) + self._inline_instants
        loop.count_inline_advances(self._inline_instants)
        return DLSimResult(
            policy=self.policy.name, jobs=self.jobs, horizon_s=max(self._now, 1.0)
        )

    # -- event handlers ------------------------------------------------------

    def _advance_to(self, t: float) -> None:
        """Advance every running job's progress to time ``t`` at the
        rates fixed by the last finalize."""
        dt = max(t - self._now, 0.0)
        if dt > 0.0:
            for state in self.policy.running.values():
                if state.rate > _EPS:
                    state.remaining_s -= dt * state.rate
        self._now = t

    def _retire_done(self) -> None:
        """Retire finished jobs in job-id order, like the old loop's
        same-instant completion batch."""
        policy = self.policy
        now = self._now
        done = [s for s in policy.running.values() if s.remaining_s <= 1e-6]
        for state in sorted(done, key=lambda s: s.job.job_id):
            state.job.finish_s = now
            policy.complete(state, now)
            if self.obs.enabled:
                self._m_completed.inc(policy=policy.name, kind=state.job.kind.value)
                tracer = self.obs.tracer
                if tracer.enabled:
                    tracer.async_end(
                        f"dljob:{state.job.kind.value}", f"{policy.name}/{state.job.job_id}",
                        cat=policy.name, ts=s_to_ms(now),
                    )

    def _submit_due(self) -> None:
        """Submit every arrival inside the batching slop — the old
        loop's completions-then-arrivals order, as a ``while`` check
        instead of one heap event per job (a wake always lands at or
        within ``_EPS`` before each arrival, because the next arrival
        is in every finalize's candidate set)."""
        policy = self.policy
        now = self._now
        jobs = self.jobs
        n = len(jobs)
        idx = self._next_arrival
        while idx < n and jobs[idx].arrival_s <= now + _EPS:
            job = jobs[idx]
            idx += 1
            policy.submit(_RunState(job=job, gpus=[], remaining_s=job.service_s), now)
            if self.obs.enabled:
                self._m_submitted.inc(policy=policy.name, kind=job.kind.value)
                tracer = self.obs.tracer
                if tracer.enabled:
                    tracer.async_begin(
                        f"dljob:{job.kind.value}", f"{policy.name}/{job.job_id}",
                        cat=policy.name,
                        args={"num_gpus": job.num_gpus, "service_s": job.service_s},
                        ts=s_to_ms(now),
                    )
        self._next_arrival = idx

    def _on_wake(self) -> None:
        """A scheduled wake (only aimed when a foreign event could fire
        before the next candidate instant): advance progress to the
        wake time, close the instant, and re-enter the drive cycle."""
        self._advance_to(self._loop.now)
        self._retire_done()
        self._submit_due()
        self._drive()

    def _on_finalize(self) -> None:
        """The single bootstrap event: mirrors the old loop's first
        iteration by recomputing rates/candidates at t=0, then drives
        the whole advance-and-recompute cycle inline."""
        self._drive()

    def _drive(self) -> None:
        """The advance-and-recompute cycle, run inline.

        Each step closes the current instant — fire a due policy
        timer, check the drain condition, recompute rates and
        candidate times — then jumps the clock straight to the
        earliest candidate and repeats.  This simulator is normally
        the only producer of events on its loop, so the heap
        round-trip (one wake event per instant, plus the cancel churn
        of re-aiming it) is pure overhead; a wake is scheduled only
        when a *foreign* live event would fire at or before the next
        candidate, which preserves exact heap interleaving for any
        future co-hosted event source."""
        loop = self._loop
        obs = self.obs
        policy = self.policy
        jobs = self.jobs
        n = len(jobs)
        san = self._san
        heap = loop._heap
        running = policy.running
        clock_scale = loop.clock_scale
        max_horizon = self.max_horizon_s
        while True:
            now = self._now
            # Policy timer (checked after completions/arrivals, as
            # before — a timer that came due while the cluster slept
            # fires late, at the next event, matching Gandiva's
            # original migration cadence).
            timer = policy.next_timer(now)
            if timer is not None and timer <= now + _EPS:
                policy.on_timer(now)
                policy.reschedule(now)

            if self._next_arrival >= n and not running and not policy.pending:
                loop.stop()             # drained
                return

            policy.rates(now)
            t_candidates: list[float] = []
            if self._next_arrival < n:
                t_candidates.append(jobs[self._next_arrival].arrival_s)
            for state in running.values():
                if state.rate > _EPS:
                    t_candidates.append(now + state.remaining_s / state.rate)
                elif state.paused_until is not None:
                    t_candidates.append(state.paused_until)
            timer = policy.next_timer(now)
            if timer is not None and (running or policy.pending):
                t_candidates.append(timer)
            if not t_candidates:
                loop.stop()             # nothing can ever happen again
                return
            t_next = min(t_candidates)
            if san is not None:
                san.check_dl_time(now, t_next)
                san.check_dl_pool(self.pool.load, self.pool.dli)
            if t_next > max_horizon:
                loop.stop()
                return

            while heap and heap[0][3].cancelled:
                heapq.heappop(heap)
            if heap and heap[0][0] <= t_next:
                # A foreign event fires first (or shares the instant):
                # fall back to the heap so ordering is decided there.
                wake = self._wake_handle
                if wake is not None:
                    if not wake.fired and not wake.cancelled and wake.time == t_next:
                        return          # already aimed at this instant: keep it
                    wake.cancel()
                # t_next >= now is guaranteed (check_dl_time validates
                # the candidate set), so the fast schedule path applies.
                self._wake_handle = loop._schedule_fast(t_next, self._on_wake, _P_WAKE)
                return

            # Inline jump: nothing else can fire before t_next.  The
            # clock moves exactly as the engine would move it, and the
            # obs clock is stamped the same way the engine stamps it.
            self._inline_instants += 1
            loop._now = t_next
            if obs.enabled:
                obs.clock.now = t_next * clock_scale
            # Advance progress at the rates fixed above, then close the
            # new instant: completions, then arrivals, as in the old
            # loop (:meth:`_retire_done` / :meth:`_submit_due`, inlined
            # on this hot path).
            dt = t_next - now
            if dt > 0.0:
                for state in running.values():
                    if state.rate > _EPS:
                        state.remaining_s -= dt * state.rate
            self._now = now = t_next
            done = [s for s in running.values() if s.remaining_s <= 1e-6]
            if done:
                for state in sorted(done, key=lambda s: s.job.job_id):
                    state.job.finish_s = now
                    policy.complete(state, now)
                    if obs.enabled:
                        self._m_completed.inc(policy=policy.name, kind=state.job.kind.value)
                        tracer = obs.tracer
                        if tracer.enabled:
                            tracer.async_end(
                                f"dljob:{state.job.kind.value}",
                                f"{policy.name}/{state.job.job_id}",
                                cat=policy.name, ts=s_to_ms(now),
                            )
            idx = self._next_arrival
            if idx < n and jobs[idx].arrival_s <= now + _EPS:
                self._submit_due()


def run_dl_comparison(
    jobs_seed: int = 0,
    policies: Iterable[str] = ("res-ag", "gandiva", "tiresias", "cbp-pp"),
    config=None,
    obs: Observability | None = None,
    scenario=None,
) -> dict[str, DLSimResult]:
    """Run the same workload under each policy (paired comparison).

    When ``scenario`` (a :class:`repro.scenario.spec.Scenario`) carries
    a network model, its per-link costs parameterize the DL simulator:
    the cross-node sync tax on gang progress comes from the fabric's
    locality penalty, and Gandiva's migration pause from checkpointing
    an average-sized gang over the uplink.  Without a scenario the
    defaults are untouched, so existing runs stay bit-identical.
    """
    import copy

    from repro.workloads.dlt import generate_dl_workload

    locality_penalty = 0.0
    policy_kwargs: dict[str, dict] = {}
    if scenario is not None and scenario.network is not None:
        from repro.scenario.network import NetworkFabric

        fabric = NetworkFabric(scenario.network, [])
        locality_penalty = fabric.locality_penalty()
        policy_kwargs["gandiva"] = {
            "migration_pause_s": fabric.migration_pause_s(2)
        }

    base_jobs = generate_dl_workload(config, seed=jobs_seed)
    results = {}
    for name in policies:
        jobs = copy.deepcopy(base_jobs)
        sim = DLClusterSimulator(
            jobs,
            make_dl_policy(name, **policy_kwargs.get(name, {})),
            locality_penalty=locality_penalty,
            obs=obs,
        )
        results[name] = sim.run()
    return results
