"""Simulators: event engine, shared harness, cluster + DL-cluster simulators."""

from repro.sim.dlsim import DLClusterSimulator, DLSimResult, make_dl_policy, run_dl_comparison
from repro.sim.engine import EventHandle, EventLoop, RepeatingEvent, SimulationError
from repro.sim.harness import FaultPlan, GridOneShot, GridPeriodic, TickHarness, run_until_idle
from repro.sim.simulator import KubeKnotsSimulator, SimConfig, SimResult, run_appmix

__all__ = [
    "EventLoop",
    "EventHandle",
    "RepeatingEvent",
    "SimulationError",
    "TickHarness",
    "GridPeriodic",
    "GridOneShot",
    "FaultPlan",
    "run_until_idle",
    "KubeKnotsSimulator",
    "SimConfig",
    "SimResult",
    "run_appmix",
    "DLClusterSimulator",
    "DLSimResult",
    "make_dl_policy",
    "run_dl_comparison",
]
