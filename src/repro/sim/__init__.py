"""Simulators: event engine, cluster simulator, DL-cluster simulator."""

from repro.sim.dlsim import DLClusterSimulator, DLSimResult, make_dl_policy, run_dl_comparison
from repro.sim.engine import EventHandle, EventLoop, SimulationError
from repro.sim.simulator import KubeKnotsSimulator, SimConfig, SimResult, run_appmix

__all__ = [
    "EventLoop",
    "EventHandle",
    "SimulationError",
    "KubeKnotsSimulator",
    "SimConfig",
    "SimResult",
    "run_appmix",
    "DLClusterSimulator",
    "DLSimResult",
    "make_dl_policy",
    "run_dl_comparison",
]
