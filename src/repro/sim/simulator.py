"""End-to-end cluster simulation driver (the ten-node experiments).

Ties the whole stack together: workload arrivals are submitted to the
API server, the Knots monitoring plane heartbeats device telemetry
into the node TSDBs, the scheduler runs its passes, kubelets execute
pods on the simulated GPUs, and energy/QoS/JCT accounting is collected
into a :class:`SimResult` that the experiment modules turn into the
paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import Cluster, make_paper_cluster
from repro.core.knots import KnotsConfig
from repro.core.orchestrator import KubeKnots
from repro.core.schedulers.base import Scheduler
from repro.kube.api import EventType
from repro.kube.kubelet import KubeletConfig
from repro.kube.pod import Pod
from repro.obs.context import NOOP, Observability
from repro.units import ms_to_s
from repro.workloads.appmix import WorkloadItem
from repro.workloads.base import QoSClass

__all__ = ["DeviceFault", "SimConfig", "SimResult", "KubeKnotsSimulator", "run_appmix"]


@dataclass(frozen=True)
class DeviceFault:
    """One injected device failure: ``gpu_id`` dies at ``at_ms`` and is
    repaired (empty) ``duration_ms`` later."""

    at_ms: float
    gpu_id: str
    duration_ms: float = 5_000.0


@dataclass(frozen=True)
class SimConfig:
    """Simulation timing and bounds."""

    tick_ms: float = 10.0            # execution/telemetry quantum
    schedule_interval_ms: float = 20.0
    horizon_factor: float = 4.0      # run at most factor x arrival window
    min_horizon_ms: float = 60_000.0
    prewarm_images: bool = True      # steady state: docker layers cached
    faults: tuple[DeviceFault, ...] = ()   # failure-injection plan
    knots: KnotsConfig = field(default_factory=KnotsConfig)
    kubelet: KubeletConfig = field(default_factory=KubeletConfig)


@dataclass
class SimResult:
    """Everything the experiments need from one run."""

    scheduler: str
    pods: list[Pod]
    makespan_ms: float
    energy_j_per_gpu: dict[str, float]
    oom_kills: int
    evictions: int
    resizes: int
    gpu_util_series: dict[str, np.ndarray]    # gpu_id -> sm_util samples
    gpu_mem_series: dict[str, np.ndarray]     # gpu_id -> mem_util samples
    sample_times_ms: np.ndarray

    # -- derived metrics -----------------------------------------------------

    def completed(self) -> list[Pod]:
        return [p for p in self.pods if p.done]

    def latency_pods(self) -> list[Pod]:
        return [p for p in self.completed() if p.spec.qos_class is QoSClass.LATENCY_CRITICAL]

    def qos_violations(self) -> int:
        return sum(1 for p in self.latency_pods() if p.violates_qos())

    def qos_violations_per_kilo(self) -> float:
        """Violations per 1000 inference queries (Fig. 10a's unit)."""
        lc = self.latency_pods()
        if not lc:
            return 0.0
        return 1_000.0 * self.qos_violations() / len(lc)

    def total_energy_j(self) -> float:
        return float(sum(self.energy_j_per_gpu.values()))

    def jcts_ms(self, qos_class: QoSClass | None = None) -> np.ndarray:
        pods = self.completed()
        if qos_class is not None:
            pods = [p for p in pods if p.spec.qos_class is qos_class]
        return np.asarray([p.jct_ms() for p in pods])


class KubeKnotsSimulator:
    """Discrete-time execution of one (cluster, scheduler, workload) run."""

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        workload: list[WorkloadItem],
        config: SimConfig | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.config = config or SimConfig()
        self.obs = obs or NOOP
        self.orchestrator = KubeKnots(
            cluster,
            scheduler,
            knots_config=self.config.knots,
            kubelet_config=self.config.kubelet,
            obs=self.obs,
        )
        self.cluster = cluster
        self.workload = sorted(workload, key=lambda item: item[0])
        if self.config.prewarm_images:
            images = {spec.image for _, spec in self.workload}
            for kubelet in self.orchestrator.kubelets.values():
                kubelet.prewarm(images)
        self._energy_j: dict[str, float] = {g.gpu_id: 0.0 for g in cluster.gpus()}
        self._util_hist: dict[str, list[float]] = {g.gpu_id: [] for g in cluster.gpus()}
        self._mem_hist: dict[str, list[float]] = {g.gpu_id: [] for g in cluster.gpus()}
        self._times: list[float] = []

    def run(self) -> SimResult:
        cfg = self.config
        api = self.orchestrator.api
        obs = self.obs
        tracer = obs.tracer
        if tracer.enabled:
            tracer.begin(
                "simulation", cat="sim",
                args={"scheduler": self.orchestrator.scheduler.name, "pods": len(self.workload)},
                ts=0.0,
            )
        arrival_end = self.workload[-1][0] if self.workload else 0.0
        horizon = max(arrival_end * cfg.horizon_factor, cfg.min_horizon_ms)

        fail_plan = sorted(cfg.faults, key=lambda f: f.at_ms)
        repairs: list[tuple[float, str]] = []
        next_fault = 0

        next_submit = 0
        next_schedule = 0.0
        next_heartbeat = 0.0
        t = 0.0
        while True:
            if obs.enabled:
                obs.clock.now = t
            # 0. failure-injection plan
            while next_fault < len(fail_plan) and fail_plan[next_fault].at_ms <= t:
                fault = fail_plan[next_fault]
                next_fault += 1
                gpu = self.cluster.find_gpu(fault.gpu_id)
                if not gpu.failed:
                    gpu.fail()
                    repairs.append((fault.at_ms + fault.duration_ms, fault.gpu_id))
            for when, gpu_id in list(repairs):
                if when <= t:
                    self.cluster.find_gpu(gpu_id).repair()
                    repairs.remove((when, gpu_id))

            # 1. submissions due this tick
            while next_submit < len(self.workload) and self.workload[next_submit][0] <= t:
                pod = api.submit(self.workload[next_submit][1], t)
                next_submit += 1
                if tracer.enabled:
                    tracer.instant(
                        "submit", cat="workload",
                        args={"pod": pod.uid, "image": pod.spec.image}, ts=t,
                    )

            # 2. execute one quantum on every node
            self.orchestrator.step_kubelets(t, cfg.tick_ms)

            # 3. telemetry heartbeat into the node TSDBs (paced by the
            #    Knots heartbeat interval — the scheduler only sees what
            #    the monitoring plane actually sampled)
            if t >= next_heartbeat:
                self.orchestrator.heartbeat(t)
                next_heartbeat = t + cfg.knots.heartbeat_ms
            self._record(t, cfg.tick_ms)

            # 4. scheduling pass
            if t >= next_schedule:
                self.orchestrator.scheduling_pass(t)
                next_schedule = t + cfg.schedule_interval_ms

            t += cfg.tick_ms
            if next_submit >= len(self.workload) and api.all_done():
                break
            if t > horizon:
                break

        if tracer.enabled:
            tracer.end(args={"makespan_ms": t}, ts=t)
        return SimResult(
            scheduler=self.orchestrator.scheduler.name,
            pods=api.pods(),
            makespan_ms=t,
            energy_j_per_gpu={k: v for k, v in self._energy_j.items()},
            oom_kills=len(api.events_of(EventType.OOM_KILLED)),
            evictions=len(api.events_of(EventType.EVICTED)),
            resizes=len(api.events_of(EventType.RESIZED)),
            gpu_util_series={k: np.asarray(v) for k, v in self._util_hist.items()},
            gpu_mem_series={k: np.asarray(v) for k, v in self._mem_hist.items()},
            sample_times_ms=np.asarray(self._times),
        )

    def _record(self, t: float, dt_ms: float) -> None:
        self._times.append(t)
        tracing = self.obs.tracer.enabled
        sm_sum = mem_sum = power_sum = 0.0
        n = 0
        for gpu in self.cluster.gpus():
            s = gpu.last_sample
            # A sleeping device's last arbitrate() saw no demands and the
            # sleep flag, so its sample power already reflects p_state 12.
            power = s.power_w if s.num_containers or not gpu.asleep else gpu.power_model.sleep_watts
            self._energy_j[gpu.gpu_id] += power * ms_to_s(dt_ms)
            self._util_hist[gpu.gpu_id].append(s.sm_util)
            self._mem_hist[gpu.gpu_id].append(s.mem_util)
            if tracing:
                sm_sum += s.sm_util
                mem_sum += s.mem_util
                power_sum += power
                n += 1
        if tracing and n:
            # Counter tracks render as stacked area charts in Perfetto.
            self.obs.tracer.counter(
                "cluster_utilization",
                {"sm_util_mean": sm_sum / n, "mem_util_mean": mem_sum / n},
                ts=t,
            )
            self.obs.tracer.counter("cluster_power_w", {"total": power_sum}, ts=t)
            self.obs.tracer.counter(
                "pending_pods", {"count": float(self.orchestrator.api.num_pending())}, ts=t
            )


def run_appmix(
    mix_name: str,
    scheduler: Scheduler,
    duration_s: float = 20.0,
    seed: int = 0,
    num_nodes: int = 10,
    config: SimConfig | None = None,
    load_factor: float = 1.0,
    obs: Observability | None = None,
) -> SimResult:
    """Convenience wrapper: one Table-I mix on the paper cluster."""
    from repro.workloads.appmix import generate_appmix_workload

    cluster = make_paper_cluster(num_nodes=num_nodes)
    workload = generate_appmix_workload(mix_name, duration_s=duration_s, seed=seed, load_factor=load_factor)
    return KubeKnotsSimulator(cluster, scheduler, workload, config, obs=obs).run()
