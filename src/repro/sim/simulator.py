"""End-to-end cluster simulation driver (the ten-node experiments).

Ties the whole stack together: workload arrivals are submitted to the
API server, the Knots monitoring plane heartbeats device telemetry
into the node TSDBs, the scheduler runs its passes, kubelets execute
pods on the simulated GPUs, and energy/QoS/JCT accounting is collected
into a :class:`SimResult` that the experiment modules turn into the
paper's figures.

The driver is event-driven: submissions, Knots heartbeats, scheduling
passes, device faults/repairs and the execution/telemetry quantum are
first-class events on the shared :class:`repro.sim.engine.EventLoop`,
phase-ordered by the priorities in :mod:`repro.sim.harness`.  When the
cluster is provably quiescent (no unfinished pods, every device asleep
or failed, no fault plan outstanding) the per-tick chains fast-forward
to the next arrival, accounting for the skipped span in closed form —
same-seed outputs stay bit-identical to the reference tick loop
(:func:`repro.sim.reference.run_tick_reference`, pinned by
``tests/test_sim_equivalence.py``) while idle spans cost events, not
ticks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.cluster.cluster import Cluster, make_paper_cluster
from repro.core.knots import KnotsConfig
from repro.core.orchestrator import KubeKnots
from repro.core.schedulers.base import Scheduler
from repro.kube.api import EventType
from repro.kube.kubelet import KubeletConfig
from repro.kube.pod import Pod
from repro.obs.context import NOOP, Observability
from repro.sim.engine import EventLoop
from repro.sim.harness import (
    CapacityPlan,
    FaultPlan,
    PhaseGate,
    TickHarness,
    run_until_idle,
)
from repro.units import ms_to_s
from repro.workloads.appmix import WorkloadItem
from repro.workloads.base import QoSClass

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenario.spec import Scenario

__all__ = ["DeviceFault", "SimConfig", "SimResult", "KubeKnotsSimulator", "run_appmix"]


@dataclass(frozen=True)
class DeviceFault:
    """One injected device failure: ``gpu_id`` dies at ``at_ms`` and is
    repaired (empty) ``duration_ms`` later."""

    at_ms: float
    gpu_id: str
    duration_ms: float = 5_000.0


@dataclass(frozen=True)
class SimConfig:
    """Simulation timing and bounds."""

    tick_ms: float = 10.0            # execution/telemetry quantum
    schedule_interval_ms: float = 20.0
    horizon_factor: float = 4.0      # run at most factor x arrival window
    min_horizon_ms: float = 60_000.0
    prewarm_images: bool = True      # steady state: docker layers cached
    faults: tuple[DeviceFault, ...] = ()   # failure-injection plan
    #: Jump the tick chains across provably idle spans (no unfinished
    #: pods, all devices asleep/failed, no fault plan outstanding).
    #: Output-equivalent to ticking through the span; turn off to force
    #: every quantum to execute (e.g. when profiling the substrate).
    fast_forward: bool = True
    #: Cluster-scale overrides: when set, :func:`run_appmix` sizes the
    #: paper cluster from the config instead of its own arguments — the
    #: axis the ``bench/clusterscale`` suite and ``--nodes/--gpus`` CLI
    #: flags sweep.
    nodes: int | None = None
    gpus_per_node: int | None = None
    knots: KnotsConfig = field(default_factory=KnotsConfig)
    kubelet: KubeletConfig = field(default_factory=KubeletConfig)
    #: Scenario axes (capacity plan, network model, gang mix) threaded
    #: through the whole stack — see :mod:`repro.scenario`.  ``None``
    #: and the default scenario (all axes off) leave every code path
    #: inert: same-seed runs stay bit-identical to a pre-scenario
    #: build.
    scenario: "Scenario | None" = None


@dataclass
class SimResult:
    """Everything the experiments need from one run."""

    scheduler: str
    pods: list[Pod]
    makespan_ms: float
    energy_j_per_gpu: dict[str, float]
    oom_kills: int
    evictions: int
    resizes: int
    gpu_util_series: dict[str, np.ndarray]    # gpu_id -> sm_util samples
    gpu_mem_series: dict[str, np.ndarray]     # gpu_id -> mem_util samples
    sample_times_ms: np.ndarray
    #: Ticks the vectorized execution quantum handled (0 when the
    #: engine was disengaged or never left the object path).  Substrate
    #: accounting, not an output — excluded from equality on purpose so
    #: fast-on and fast-off runs still compare identical.
    fast_quantum_ticks: int = field(default=0, compare=False)

    # Derived-metric caches: every figure asks for completed()/
    # latency_pods() repeatedly; pods never change after the run.
    _completed: list[Pod] | None = field(default=None, init=False, repr=False, compare=False)
    _latency: list[Pod] | None = field(default=None, init=False, repr=False, compare=False)

    # -- derived metrics -----------------------------------------------------

    def completed(self) -> list[Pod]:
        if self._completed is None:
            self._completed = [p for p in self.pods if p.done]
        return self._completed

    def latency_pods(self) -> list[Pod]:
        if self._latency is None:
            self._latency = [
                p for p in self.completed() if p.spec.qos_class is QoSClass.LATENCY_CRITICAL
            ]
        return self._latency

    def qos_violations(self) -> int:
        return sum(1 for p in self.latency_pods() if p.violates_qos())

    def qos_violations_per_kilo(self) -> float:
        """Violations per 1000 inference queries (Fig. 10a's unit)."""
        lc = self.latency_pods()
        if not lc:
            return 0.0
        return 1_000.0 * self.qos_violations() / len(lc)

    def total_energy_j(self) -> float:
        return float(sum(self.energy_j_per_gpu.values()))

    def jcts_ms(self, qos_class: QoSClass | None = None) -> np.ndarray:
        pods = self.completed()
        if qos_class is not None:
            pods = [p for p in pods if p.spec.qos_class is qos_class]
        return np.asarray([p.jct_ms() for p in pods])


class KubeKnotsSimulator:
    """Event-driven execution of one (cluster, scheduler, workload) run."""

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        workload: list[WorkloadItem],
        config: SimConfig | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.config = config or SimConfig()
        self.obs = obs or NOOP
        scenario = self.config.scenario
        self._network = None
        self._capacity: CapacityPlan | None = None
        if scenario is not None and scenario.network is not None:
            from repro.scenario.network import NetworkFabric

            self._network = NetworkFabric(
                scenario.network, [node.node_id for node in cluster]
            )
        if scenario is not None and scenario.gangs is not None:
            from repro.scenario.gangs import GangScheduler

            rack_size = scenario.network.rack_size if scenario.network else 8
            scheduler = GangScheduler(
                scheduler, rack_size=rack_size, prefer=scenario.gangs.prefer
            )
        self.orchestrator = KubeKnots(
            cluster,
            scheduler,
            knots_config=self.config.knots,
            kubelet_config=self.config.kubelet,
            obs=self.obs,
        )
        self.cluster = cluster
        self.workload = sorted(workload, key=lambda item: item[0])
        if self._network is not None:
            # With a network model, image pulls are charged per-link
            # transfer costs instead of the flat prewarm shortcut.
            for kubelet in self.orchestrator.kubelets.values():
                kubelet.network = self._network
        elif self.config.prewarm_images:
            images = {spec.image for _, spec in self.workload}
            for kubelet in self.orchestrator.kubelets.values():
                kubelet.prewarm(images)
        self.state = cluster.state
        #: Telemetry accounting is vectorized over the ClusterState
        #: mirrors unless a per-device consumer is live: the tracer sums
        #: per-GPU power inline, and the sanitizer cross-checks the
        #: per-object path — both keep the legacy per-GPU loop.
        self._vec_telemetry = not self.obs.tracer.enabled and self.obs.sanitizer is None
        self._energy_arr = np.zeros(len(self.state))
        self._sm_rows: list[np.ndarray] = []
        self._mem_rows: list[np.ndarray] = []
        self._row_counts: list[int] = []
        self._energy_j: dict[str, float] = {g.gpu_id: 0.0 for g in cluster.gpus()}
        self._util_hist: dict[str, list[float]] = {g.gpu_id: [] for g in cluster.gpus()}
        self._mem_hist: dict[str, list[float]] = {g.gpu_id: [] for g in cluster.gpus()}
        self._times: list[float] = []
        #: Run statistics (populated by :meth:`run`).
        self.events_fired = 0
        self.fast_forwards = 0
        self.ticks_skipped = 0
        self._m_ff = self.obs.metrics.counter(
            "sim_fast_forwards_total", "Idle spans fast-forwarded by the simulator"
        )
        self._m_skipped = self.obs.metrics.counter(
            "sim_ticks_skipped_total", "Tick quanta skipped by idle fast-forward"
        )

    def run(self) -> SimResult:
        from repro.kube.pod import reset_uid_counter

        # UIDs restart at pod-1 for every run so results are a function
        # of (workload, scheduler, config) alone — the sweep fabric's
        # cross-process bit-identity depends on it.
        reset_uid_counter()
        cfg = self.config
        api = self.orchestrator.api
        obs = self.obs
        tracer = obs.tracer
        if tracer.enabled:
            tracer.begin(
                "simulation", cat="sim",
                args={"scheduler": self.orchestrator.scheduler.name, "pods": len(self.workload)},
                ts=0.0,
            )
        arrival_end = self.workload[-1][0] if self.workload else 0.0
        self._horizon = max(arrival_end * cfg.horizon_factor, cfg.min_horizon_ms)
        self._makespan = 0.0
        self._next_submit = 0

        loop = EventLoop(obs=obs)
        self._loop = loop
        # Phases 3–7 (execution quantum … end-of-tick bookkeeping) run
        # *fused* inside the one quantum chain: every one-shot event
        # (fault, repair, submission) carries a phase priority below
        # PHASE_QUANTUM, so at any instant those phases are contiguous
        # and fusing them is order-preserving — one heap event per tick
        # instead of five.  Heartbeat/scheduling cadences keep the
        # reference loop's ``if t >= next_due`` bookkeeping via
        # :class:`PhaseGate`.
        harness = TickHarness(loop, cfg.tick_ms, self._on_tick)
        self._harness = harness
        self._hb = PhaseGate(cfg.knots.heartbeat_ms, start_due=loop.now)
        self._sched = PhaseGate(cfg.schedule_interval_ms, start_due=loop.now)
        self._faults = FaultPlan(harness, cfg.faults, self._fail_gpu, self._repair_gpu)
        scenario = cfg.scenario
        if scenario is not None and scenario.capacity is not None:
            from repro.scenario.capacity import build_capacity_events

            orch = self.orchestrator
            events = build_capacity_events(
                scenario.capacity,
                [node.node_id for node in self.cluster],
                self._horizon,
            )
            self._capacity = CapacityPlan(
                harness,
                events,
                orch.cordon_node,
                lambda node_id: orch.reclaim_node(node_id, loop.now),
                orch.restore_node,
            )

        self.events_fired = run_until_idle(loop)
        t_end = self._makespan

        if tracer.enabled:
            tracer.end(args={"makespan_ms": t_end}, ts=t_end)
        return self.collect_result(t_end)

    def collect_result(self, makespan_ms: float) -> SimResult:
        """Assemble the :class:`SimResult` from whichever telemetry
        store this run filled (shared with the reference driver)."""
        quantum = getattr(self.orchestrator, "quantum", None)
        if quantum is not None:
            # Write array-side progress back to the surviving pod
            # objects so per-pod accounting matches the object path.
            quantum.flush()
        api = self.orchestrator.api
        if self._vec_telemetry:
            gpu_ids = self.state.gpu_ids
            if self._row_counts:
                counts = np.asarray(self._row_counts)
                # Transpose to device-major *before* expanding, so each
                # per-device series comes out a row view — one bulk op
                # instead of thousands of strided column extractions on
                # wide clusters.  Dense runs (every count 1) skip the
                # expansion entirely.
                sm = np.vstack(self._sm_rows).T
                mem = np.vstack(self._mem_rows).T
                if int(counts.sum()) != len(self._row_counts):
                    sm = np.repeat(sm, counts, axis=1)
                    mem = np.repeat(mem, counts, axis=1)
            else:
                sm = mem = np.empty((len(gpu_ids), 0))
            energy = {gid: float(self._energy_arr[i]) for i, gid in enumerate(gpu_ids)}
            util_series = {gid: sm[i] for i, gid in enumerate(gpu_ids)}
            mem_series = {gid: mem[i] for i, gid in enumerate(gpu_ids)}
        else:
            energy = {k: v for k, v in self._energy_j.items()}
            util_series = {k: np.asarray(v) for k, v in self._util_hist.items()}
            mem_series = {k: np.asarray(v) for k, v in self._mem_hist.items()}
        return SimResult(
            scheduler=self.orchestrator.scheduler.name,
            pods=api.pods(),
            makespan_ms=makespan_ms,
            energy_j_per_gpu=energy,
            oom_kills=len(api.events_of(EventType.OOM_KILLED)),
            evictions=len(api.events_of(EventType.EVICTED)),
            resizes=len(api.events_of(EventType.RESIZED)),
            gpu_util_series=util_series,
            gpu_mem_series=mem_series,
            sample_times_ms=np.asarray(self._times),
            fast_quantum_ticks=quantum.fast_ticks if quantum is not None else 0,
        )

    # -- event handlers ------------------------------------------------------

    def _submit_due(self, now: float) -> None:
        """Submit every arrival at or before this tick, in arrival
        order — the reference loop's ``while`` check.  An arrival
        between ticks therefore lands at the first grid tick >= its
        raw time, the same instant the old per-tick polling loop (and
        the previous one-event-per-arrival scheme) submitted it."""
        api = self.orchestrator.api
        tracer = self.obs.tracer
        workload = self.workload
        i = self._next_submit
        n = len(workload)
        while i < n and workload[i][0] <= now:
            pod = api.submit(workload[i][1], now)
            i += 1
            if tracer.enabled:
                tracer.instant(
                    "submit", cat="workload",
                    args={"pod": pod.uid, "image": pod.spec.image}, ts=now,
                )
        self._next_submit = i

    def _on_tick(self, now: float) -> None:
        """One fused tick: due submissions, execution quantum, then the
        heartbeat, telemetry-record, scheduling and end-of-tick phases
        in the reference loop's order.  The heartbeat is paced by the
        Knots heartbeat interval (the scheduler only sees what the
        monitoring plane actually sampled); the scheduling pass by its
        own interval."""
        orch = self.orchestrator
        tick_ms = self.config.tick_ms
        if self._next_submit < len(self.workload):
            self._submit_due(now)
        orch.step_kubelets(now, tick_ms)
        if self._hb.due(now):
            orch.heartbeat(now)
        self._record(now, tick_ms)
        if self._sched.due(now):
            orch.scheduling_pass(now)
        self._on_tick_end(now)

    def _fail_gpu(self, gpu_id: str) -> bool:
        return self.orchestrator.fail_gpu(gpu_id)

    def _repair_gpu(self, gpu_id: str) -> None:
        self.orchestrator.repair_gpu(gpu_id)

    def _on_tick_end(self, now: float) -> None:
        """End-of-tick bookkeeping: termination checks (after the
        scheduling phase, like the old loop) and the idle fast-forward
        opportunity check."""
        t_next = now + self.config.tick_ms
        all_submitted = self._next_submit >= len(self.workload)
        if all_submitted and self.orchestrator.api.all_done():
            self._makespan = t_next
            self._loop.stop()
            return
        if t_next > self._horizon:
            self._makespan = t_next
            self._loop.stop()
            return
        # With every arrival submitted, a quiescent span can only end at
        # the stop check above — there is no future arrival to jump to.
        if self.config.fast_forward and not all_submitted:
            self._maybe_fast_forward(now, t_next)

    # -- idle fast-forward ---------------------------------------------------

    def _maybe_fast_forward(self, now: float, t_next: float) -> None:
        """Jump the tick chains across a provably idle span.

        Guards: every submitted pod has succeeded (so no kubelet has
        work, no scheduler pass can act), every device is asleep or
        failed (so the driver's auto-p-state clock has already settled
        and arbitration is a fixed point), and no fault/repair event is
        outstanding (a repair would wake hardware mid-span).  Under
        those conditions each skipped tick is a no-op up to constant
        per-device telemetry, which is accounted in closed form below —
        bit-identical floats, because energy accumulates by the same
        repeated addition and the tick grid is produced by the same
        ``t + tick_ms`` chain the live path uses.
        """
        api = self.orchestrator.api
        if not api.all_done():
            return
        a_raw = self.workload[self._next_submit][0]
        if a_raw <= t_next:
            return                      # next arrival lands on the very next tick
        if self._faults.pending:
            return
        if self._capacity is not None and self._capacity.pending:
            return                      # a capacity transition would wake the span
        if self._vec_telemetry:
            state = self.state
            if not bool(np.all(state.asleep | state.failed)):
                return                  # a device is awake: auto-p-state still settling
            gpus: list = []
        else:
            gpus = list(self.cluster.gpus())
            if any(not (g.asleep or g.failed) for g in gpus):
                return                  # a device is awake: auto-p-state still settling

        cfg = self.config
        tick = cfg.tick_ms
        hb_ms = cfg.knots.heartbeat_ms
        san = self.obs.sanitizer
        slack = san.staleness_slack if san is not None else 2.0
        # Every TSDB read is bounded to the last ``window_ms``; only
        # heartbeats inside that window (plus staleness slack) before
        # the resume tick are observable.  Skip the rest.
        tail_from = a_raw - cfg.knots.window_ms - (slack + 2.0) * hb_ms - 2.0 * tick
        next_hb = self._hb.next_due
        next_sched = self._sched.next_due
        times = self._times
        horizon = self._horizon
        stopped = False
        skipped = 0
        tp = t_next
        while tp < a_raw:
            times.append(tp)
            skipped += 1
            if tp >= next_hb:
                if tp >= tail_from:
                    self.orchestrator.heartbeat(tp)
                next_hb = tp + hb_ms
            if tp >= next_sched:
                # The pass is skipped outright: with no pending pods, no
                # residents and no awake devices, every shipped policy
                # provably returns no actions.
                next_sched = tp + cfg.schedule_interval_ms
            t_after = tp + tick
            if t_after > horizon:
                self._makespan = t_after
                stopped = True
                break
            tp = t_after

        # Per-device telemetry over the span is constant: arbitration of
        # an empty, parked device is a fixed point of the live path.
        # Energy stays a *repeated* addition (never ``inc * skipped``) so
        # floats match the tick loop bit for bit.
        ms = ms_to_s(tick)
        if self._vec_telemetry:
            state = self.state
            power = np.where(
                (state.sample_containers > 0) | ~state.asleep,
                state.power_w,
                state.sleep_watts,
            )
            inc = power * ms
            for _ in range(skipped):
                self._energy_arr += inc
            if skipped:
                self._sm_rows.append(state.sm_util.copy())
                self._mem_rows.append(state.mem_util.copy())
                self._row_counts.append(skipped)
        else:
            for gpu in gpus:
                s = gpu.last_sample
                power = s.power_w if s.num_containers or not gpu.asleep else gpu.power_model.sleep_watts
                inc = power * ms
                e = self._energy_j[gpu.gpu_id]
                for _ in range(skipped):
                    e += inc
                self._energy_j[gpu.gpu_id] = e
                self._util_hist[gpu.gpu_id].extend([s.sm_util] * skipped)
                self._mem_hist[gpu.gpu_id].extend([s.mem_util] * skipped)

        if san is not None:
            san.check_fast_forward(
                now, tp, api.all_done(), all(g.asleep or g.failed for g in gpus)
            )
        self.fast_forwards += 1
        self.ticks_skipped += skipped
        if self.obs.enabled:
            self._m_ff.inc()
            self._m_skipped.inc(skipped)
            if self.obs.tracer.enabled:
                self.obs.tracer.instant(
                    "fast_forward", cat="sim",
                    args={"from_ms": now, "to_ms": tp, "ticks_skipped": skipped},
                )
        if stopped:
            self._loop.stop()
            return
        self._harness.skip_to(tp)
        self._hb.resync(next_hb)
        self._sched.resync(next_sched)

    # -- telemetry accounting ------------------------------------------------

    def _record(self, t: float, dt_ms: float) -> None:
        self._times.append(t)
        if self._vec_telemetry:
            state = self.state
            power = np.where(
                (state.sample_containers > 0) | ~state.asleep,
                state.power_w,
                state.sleep_watts,
            )
            self._energy_arr += power * ms_to_s(dt_ms)
            self._sm_rows.append(state.sm_util.copy())
            self._mem_rows.append(state.mem_util.copy())
            self._row_counts.append(1)
            return
        tracing = self.obs.tracer.enabled
        sm_sum = mem_sum = power_sum = 0.0
        n = 0
        for gpu in self.cluster.gpus():
            s = gpu.last_sample
            # A sleeping device's last arbitrate() saw no demands and the
            # sleep flag, so its sample power already reflects p_state 12.
            power = s.power_w if s.num_containers or not gpu.asleep else gpu.power_model.sleep_watts
            self._energy_j[gpu.gpu_id] += power * ms_to_s(dt_ms)
            self._util_hist[gpu.gpu_id].append(s.sm_util)
            self._mem_hist[gpu.gpu_id].append(s.mem_util)
            if tracing:
                sm_sum += s.sm_util
                mem_sum += s.mem_util
                power_sum += power
                n += 1
        if tracing and n:
            # Counter tracks render as stacked area charts in Perfetto.
            self.obs.tracer.counter(
                "cluster_utilization",
                {"sm_util_mean": sm_sum / n, "mem_util_mean": mem_sum / n},
                ts=t,
            )
            self.obs.tracer.counter("cluster_power_w", {"total": power_sum}, ts=t)
            self.obs.tracer.counter(
                "pending_pods", {"count": float(self.orchestrator.api.num_pending())}, ts=t
            )


def run_appmix(
    mix_name: str,
    scheduler: Scheduler,
    duration_s: float = 20.0,
    seed: int = 0,
    num_nodes: int = 10,
    config: SimConfig | None = None,
    load_factor: float = 1.0,
    gpus_per_node: int = 1,
    obs: Observability | None = None,
) -> SimResult:
    """Convenience wrapper: one Table-I mix on the paper cluster.

    ``config.nodes`` / ``config.gpus_per_node``, when set, override the
    same-named arguments — the single knob the CLI and bench suite turn
    to scale the cluster.
    """
    from repro.workloads.appmix import generate_appmix_workload

    cfg = config or SimConfig()
    if cfg.nodes is not None:
        num_nodes = cfg.nodes
    if cfg.gpus_per_node is not None:
        gpus_per_node = cfg.gpus_per_node
    cluster = make_paper_cluster(num_nodes=num_nodes, gpus_per_node=gpus_per_node)
    workload = generate_appmix_workload(mix_name, duration_s=duration_s, seed=seed, load_factor=load_factor)
    if cfg.scenario is not None and cfg.scenario.gangs is not None:
        from repro.scenario.gangs import apply_gang_mix

        workload = apply_gang_mix(workload, cfg.scenario.gangs)
    return KubeKnotsSimulator(cluster, scheduler, workload, cfg, obs=obs).run()
