"""Reference implementations of the pre-event-loop simulator drivers.

The event-driven cores in :mod:`repro.sim.simulator` and
:mod:`repro.sim.dlsim` are pinned bit-identical to the loops they
replaced (the same norm PR 3 set by retaining
``correlation_matrix_pairwise``).  This module keeps those loops
runnable:

* :func:`run_tick_reference` — the original fixed-tick ``while`` loop
  of ``KubeKnotsSimulator.run``: one iteration per
  ``tick_ms``, with in-loop fault application, an O(n²)
  list-scan-and-``remove`` repair list, and per-tick submission /
  heartbeat / scheduling phase checks.
* :func:`run_dl_reference` — the original advance-and-recompute loop of
  ``DLClusterSimulator.run``.

Both operate on a **freshly constructed, not yet run** simulator
instance and drive exactly the same substrate objects the event-driven
paths drive, so ``tests/test_sim_equivalence.py`` can compare the two
executions field by field, and ``repro.bench.simloop`` can time
old-vs-new on identical inputs.
"""

from __future__ import annotations

from repro.units import s_to_ms

__all__ = ["run_tick_reference", "run_dl_reference"]


def run_tick_reference(sim) -> "SimResult":  # noqa: F821 - forward ref, see import below
    """Drive a fresh :class:`~repro.sim.simulator.KubeKnotsSimulator`
    with the pre-PR fixed-tick loop and return its :class:`SimResult`."""

    cfg = sim.config
    api = sim.orchestrator.api
    obs = sim.obs
    tracer = obs.tracer
    if tracer.enabled:
        tracer.begin(
            "simulation", cat="sim",
            args={"scheduler": sim.orchestrator.scheduler.name, "pods": len(sim.workload)},
            ts=0.0,
        )
    arrival_end = sim.workload[-1][0] if sim.workload else 0.0
    horizon = max(arrival_end * cfg.horizon_factor, cfg.min_horizon_ms)

    fail_plan = sorted(cfg.faults, key=lambda f: f.at_ms)
    repairs: list[tuple[float, str]] = []
    next_fault = 0

    next_submit = 0
    next_schedule = 0.0
    next_heartbeat = 0.0
    t = 0.0
    while True:
        if obs.enabled:
            obs.clock.now = t
        # 0. failure-injection plan
        while next_fault < len(fail_plan) and fail_plan[next_fault].at_ms <= t:
            fault = fail_plan[next_fault]
            next_fault += 1
            gpu = sim.cluster.find_gpu(fault.gpu_id)
            if not gpu.failed:
                gpu.fail()
                repairs.append((fault.at_ms + fault.duration_ms, fault.gpu_id))
        for when, gpu_id in list(repairs):
            if when <= t:
                sim.cluster.find_gpu(gpu_id).repair()
                repairs.remove((when, gpu_id))

        # 1. submissions due this tick
        while next_submit < len(sim.workload) and sim.workload[next_submit][0] <= t:
            pod = api.submit(sim.workload[next_submit][1], t)
            next_submit += 1
            if tracer.enabled:
                tracer.instant(
                    "submit", cat="workload",
                    args={"pod": pod.uid, "image": pod.spec.image}, ts=t,
                )

        # 2. execute one quantum on every node
        sim.orchestrator.step_kubelets(t, cfg.tick_ms)

        # 3. telemetry heartbeat into the node TSDBs
        if t >= next_heartbeat:
            sim.orchestrator.heartbeat(t)
            next_heartbeat = t + cfg.knots.heartbeat_ms
        sim._record(t, cfg.tick_ms)

        # 4. scheduling pass
        if t >= next_schedule:
            sim.orchestrator.scheduling_pass(t)
            next_schedule = t + cfg.schedule_interval_ms

        t += cfg.tick_ms
        if next_submit >= len(sim.workload) and api.all_done():
            break
        if t > horizon:
            break

    if tracer.enabled:
        tracer.end(args={"makespan_ms": t}, ts=t)
    return sim.collect_result(t)


def run_dl_reference(sim) -> "DLSimResult":  # noqa: F821 - forward ref, see import below
    """Drive a fresh :class:`~repro.sim.dlsim.DLClusterSimulator` with
    the pre-PR advance-and-recompute loop."""
    from repro.sim.dlsim import _EPS, _RunState, DLSimResult

    now = 0.0
    next_arrival_idx = 0
    policy = sim.policy
    n = len(sim.jobs)

    while True:
        policy.rates(now)
        t_candidates: list[float] = []
        if next_arrival_idx < n:
            t_candidates.append(sim.jobs[next_arrival_idx].arrival_s)
        for state in policy.running.values():
            if state.rate > _EPS:
                t_candidates.append(now + state.remaining_s / state.rate)
            elif state.paused_until is not None:
                t_candidates.append(state.paused_until)
        timer = policy.next_timer(now)
        if timer is not None and (policy.running or policy.pending):
            t_candidates.append(timer)
        if not t_candidates:
            break
        t_next = min(t_candidates)
        san = sim._san
        if san is not None:
            sim.obs.clock.now = s_to_ms(now)   # stamp violations in ms
            san.check_dl_time(now, t_next)
            san.check_dl_pool(sim.pool.load, sim.pool.dli)
        if t_next > sim.max_horizon_s:
            break
        dt = max(t_next - now, 0.0)

        # advance progress
        for state in policy.running.values():
            if state.rate > _EPS:
                state.remaining_s -= dt * state.rate
        now = t_next

        # completions
        done = [s for s in policy.running.values() if s.remaining_s <= 1e-6]
        for state in sorted(done, key=lambda s: s.job.job_id):
            state.job.finish_s = now
            policy.complete(state, now)
            if sim.obs.enabled:
                sim.obs.clock.now = s_to_ms(now)
                sim._m_completed.inc(policy=policy.name, kind=state.job.kind.value)
                tracer = sim.obs.tracer
                if tracer.enabled:
                    tracer.async_end(
                        f"dljob:{state.job.kind.value}", f"{policy.name}/{state.job.job_id}",
                        cat=policy.name, ts=s_to_ms(now),
                    )

        # arrivals
        while next_arrival_idx < n and sim.jobs[next_arrival_idx].arrival_s <= now + _EPS:
            job = sim.jobs[next_arrival_idx]
            next_arrival_idx += 1
            policy.submit(_RunState(job=job, gpus=[], remaining_s=job.service_s), now)
            if sim.obs.enabled:
                sim.obs.clock.now = s_to_ms(now)
                sim._m_submitted.inc(policy=policy.name, kind=job.kind.value)
                tracer = sim.obs.tracer
                if tracer.enabled:
                    tracer.async_begin(
                        f"dljob:{job.kind.value}", f"{policy.name}/{job.job_id}",
                        cat=policy.name,
                        args={"num_gpus": job.num_gpus, "service_s": job.service_s},
                        ts=s_to_ms(now),
                    )

        # policy timer
        timer = policy.next_timer(now)
        if timer is not None and timer <= now + _EPS:
            policy.on_timer(now)
            policy.reschedule(now)

        if next_arrival_idx >= n and not policy.running and not policy.pending:
            break

    return DLSimResult(policy=policy.name, jobs=sim.jobs, horizon_s=max(now, 1.0))
