"""Spearman rank correlation (paper Eq. 1) and correlation matrices.

CBP decides whether two pods may share a device by the Spearman
correlation of their utilization series: positively correlated pods
(rho above the co-location threshold, 0.5 in the paper) are sent to
different nodes because they will peak together.

The implementation follows Eq. 1 — ``rho = 1 - 6*sum(d_i^2) / (n(n^2-1))``
on ranks — with average ranks for ties (in which case the rank-Pearson
form is used, since the d_i^2 shortcut is only exact without ties).

Hot-path structure: ranking is the expensive part of Spearman, and on
the scheduler's hot path the *same* series is ranked against many
partners (CBP gates one candidate against every resident).  The module
therefore exposes a rank-once API — :func:`rank_with_ties` to compute a
series' ranks (and tie flag) once, and :func:`spearman_from_ranks` to
combine two pre-ranked series — which :class:`~repro.core.profiles.ImageProfile`
caches per profile version.  :func:`correlation_matrix` ranks each
series once and forms all pairwise rhos as a single centered
rank-matrix multiply instead of O(n^2) pairwise Python loops.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "rankdata",
    "rank_with_ties",
    "spearman",
    "spearman_from_ranks",
    "correlation_matrix",
    "correlation_matrix_pairwise",
    "is_safe_to_colocate",
]


def rank_with_ties(x: np.ndarray) -> tuple[np.ndarray, bool]:
    """Average ranks (1-based) and whether any ties are present.

    Vectorized via ``np.unique(return_inverse=True)``: the average rank
    of a tie group ending at cumulative count ``c`` with ``k`` members
    is ``c - (k - 1) / 2``, which reproduces
    ``scipy.stats.rankdata('average')`` exactly.  (NaNs are not
    supported — utilization series never contain them.)
    """
    x = np.asarray(x, dtype=float)
    if len(x) == 0:
        return np.empty(0), False
    uniques, inverse, counts = np.unique(x, return_inverse=True, return_counts=True)
    avg = np.cumsum(counts) - (counts - 1) / 2.0
    return avg[inverse], len(uniques) != len(x)


def rankdata(x: np.ndarray) -> np.ndarray:
    """Average ranks (1-based), matching scipy.stats.rankdata('average')."""
    return rank_with_ties(x)[0]


def spearman(x: Sequence[float] | np.ndarray, y: Sequence[float] | np.ndarray) -> float:
    """Spearman's rho between two equal-length series.

    Returns 0.0 for degenerate inputs (length < 2 or a constant series):
    a constant utilization trace carries no co-location risk signal, so
    treating it as uncorrelated is the safe scheduling default.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    n = len(x)
    if n < 2:
        return 0.0
    if np.all(x == x[0]) or np.all(y == y[0]):
        return 0.0
    rx, tx = rank_with_ties(x)
    ry, ty = rank_with_ties(y)
    return _rho_from_ranks(rx, ry, tx or ty)


def spearman_from_ranks(
    rx: np.ndarray, ry: np.ndarray, ties: bool | None = None
) -> float:
    """:func:`spearman` on pre-computed average ranks (the rank-once path).

    ``rx``/``ry`` must come from :func:`rankdata` / :func:`rank_with_ties`
    over the original series; ``ties`` is the OR of the two tie flags
    (recomputed from the ranks when ``None``).  Produces bit-identical
    results to :func:`spearman` on the underlying series: a series is
    constant iff its ranks are, and average ranks determine the rho in
    both the tied and untied branches.
    """
    rx = np.asarray(rx, dtype=float)
    ry = np.asarray(ry, dtype=float)
    if rx.shape != ry.shape:
        raise ValueError(f"shape mismatch: {rx.shape} vs {ry.shape}")
    n = len(rx)
    if n < 2:
        return 0.0
    if np.all(rx == rx[0]) or np.all(ry == ry[0]):
        return 0.0
    if ties is None:
        ties = _has_ties(rx) or _has_ties(ry)
    return _rho_from_ranks(rx, ry, ties)


def _rho_from_ranks(rx: np.ndarray, ry: np.ndarray, ties: bool) -> float:
    """Eq. 1 on non-degenerate rank vectors (d^2 shortcut unless tied)."""
    n = len(rx)
    if ties:
        # Pearson on ranks (exact in the presence of ties).  Not done
        # in place: rank vectors may be shared read-only cache entries.
        rx = rx - rx.mean()
        ry = ry - ry.mean()
        denom = np.sqrt((rx @ rx) * (ry @ ry))
        return float((rx @ ry) / denom) if denom > 0 else 0.0
    d = rx - ry
    return float(1.0 - 6.0 * (d @ d) / (n * (n * n - 1.0)))


def _has_ties(ranks: np.ndarray) -> bool:
    return len(np.unique(ranks)) != len(ranks)


def correlation_matrix(series: Mapping[str, np.ndarray]) -> tuple[list[str], np.ndarray]:
    """Pairwise Spearman matrix across named series (Fig. 2a / 2c heatmaps).

    Returns the metric names (sorted for determinism) and the symmetric
    rho matrix with unit diagonal.

    Each series is ranked once; all off-diagonal entries then fall out
    of one centered rank-matrix product, ``Rc @ Rc.T`` row-normalized —
    rank-Pearson, which equals Eq. 1's d^2 form exactly in the absence
    of ties and is the correct tie-handling form otherwise.  Degenerate
    rows (constant or shorter than 2 points) get rho 0, matching
    :func:`spearman`.
    """
    names = sorted(series)
    k = len(names)
    if k == 0:
        return names, np.eye(0)
    first = np.asarray(series[names[0]], dtype=float)
    for name in names[1:]:
        arr = np.asarray(series[name], dtype=float)
        if arr.shape != first.shape:
            raise ValueError(f"shape mismatch: {first.shape} vs {arr.shape}")
    n = len(first)
    if n < 2:
        return names, np.eye(k)
    ranks = np.empty((k, n), dtype=float)
    for i, name in enumerate(names):
        ranks[i] = rankdata(np.asarray(series[name], dtype=float))
    centered = ranks - ranks.mean(axis=1, keepdims=True)
    norms = np.sqrt(np.einsum("ij,ij->i", centered, centered))
    cov = centered @ centered.T
    scale = np.outer(norms, norms)
    mat = np.divide(cov, scale, out=np.zeros((k, k)), where=scale > 0)
    np.fill_diagonal(mat, 1.0)
    return names, mat


def correlation_matrix_pairwise(
    series: Mapping[str, np.ndarray],
) -> tuple[list[str], np.ndarray]:
    """Reference O(n^2)-pairwise implementation of :func:`correlation_matrix`.

    Kept for the equivalence tests and the before/after benchmark; the
    vectorized path above is what production code calls.
    """
    names = sorted(series)
    n = len(names)
    mat = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            rho = spearman(series[names[i]], series[names[j]])
            mat[i, j] = mat[j, i] = rho
    return names, mat


def is_safe_to_colocate(
    candidate: np.ndarray,
    resident: np.ndarray,
    threshold: float = 0.5,
) -> bool:
    """CBP's admission predicate.

    Two usage series may share a device iff their Spearman correlation
    is below ``threshold``; strongly co-moving pods would peak together
    and risk a capacity violation.
    """
    return spearman(candidate, resident) < threshold
