"""Spearman rank correlation (paper Eq. 1) and correlation matrices.

CBP decides whether two pods may share a device by the Spearman
correlation of their utilization series: positively correlated pods
(rho above the co-location threshold, 0.5 in the paper) are sent to
different nodes because they will peak together.

The implementation follows Eq. 1 — ``rho = 1 - 6*sum(d_i^2) / (n(n^2-1))``
on ranks — with average ranks for ties (in which case the rank-Pearson
form is used, since the d_i^2 shortcut is only exact without ties).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["rankdata", "spearman", "correlation_matrix", "is_safe_to_colocate"]


def rankdata(x: np.ndarray) -> np.ndarray:
    """Average ranks (1-based), matching scipy.stats.rankdata('average')."""
    x = np.asarray(x, dtype=float)
    order = np.argsort(x, kind="mergesort")
    ranks = np.empty(len(x), dtype=float)
    ranks[order] = np.arange(1, len(x) + 1, dtype=float)
    # average ranks within tie groups
    sorted_x = x[order]
    i = 0
    while i < len(x):
        j = i
        while j + 1 < len(x) and sorted_x[j + 1] == sorted_x[i]:
            j += 1
        if j > i:
            avg = (i + j) / 2.0 + 1.0
            ranks[order[i : j + 1]] = avg
        i = j + 1
    return ranks


def spearman(x: Sequence[float] | np.ndarray, y: Sequence[float] | np.ndarray) -> float:
    """Spearman's rho between two equal-length series.

    Returns 0.0 for degenerate inputs (length < 2 or a constant series):
    a constant utilization trace carries no co-location risk signal, so
    treating it as uncorrelated is the safe scheduling default.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    n = len(x)
    if n < 2:
        return 0.0
    if np.all(x == x[0]) or np.all(y == y[0]):
        return 0.0
    rx, ry = rankdata(x), rankdata(y)
    if _has_ties(rx) or _has_ties(ry):
        # Pearson on ranks (exact in the presence of ties).
        rx -= rx.mean()
        ry -= ry.mean()
        denom = np.sqrt((rx @ rx) * (ry @ ry))
        return float((rx @ ry) / denom) if denom > 0 else 0.0
    d = rx - ry
    return float(1.0 - 6.0 * (d @ d) / (n * (n * n - 1.0)))


def _has_ties(ranks: np.ndarray) -> bool:
    return len(np.unique(ranks)) != len(ranks)


def correlation_matrix(series: Mapping[str, np.ndarray]) -> tuple[list[str], np.ndarray]:
    """Pairwise Spearman matrix across named series (Fig. 2a / 2c heatmaps).

    Returns the metric names (sorted for determinism) and the symmetric
    rho matrix with unit diagonal.
    """
    names = sorted(series)
    n = len(names)
    mat = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            rho = spearman(series[names[i]], series[names[j]])
            mat[i, j] = mat[j, i] = rho
    return names, mat


def is_safe_to_colocate(
    candidate: np.ndarray,
    resident: np.ndarray,
    threshold: float = 0.5,
) -> bool:
    """CBP's admission predicate.

    Two usage series may share a device iff their Spearman correlation
    is below ``threshold``; strongly co-moving pods would peak together
    and risk a capacity violation.
    """
    return spearman(candidate, resident) < threshold
