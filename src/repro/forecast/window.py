"""Sliding-window resampling and forecast-accuracy evaluation.

The harness behind Fig. 10b: take a fine-grained ground-truth
utilization series, resample it at a given *heartbeat* interval (the
rate at which the aggregator polls the node TSDBs), slide a fixed
five-second window along the resampled series, and score predictions
against the truth.  Two evaluation modes:

* :func:`evaluate_forecaster` — fixed-horizon *level* forecasts,
  scored by mean absolute error relative to the mean utilization;
* :func:`evaluate_peak_predictor` — the Fig. 10b task proper: predict
  the next second's *peak* utilization, scored as the fraction of
  predictions within tolerance.  Coarse heartbeats alias peaks away;
  oversampled windows drown the peak estimate in read noise — which is
  why accuracy rises toward an interior optimum and falls on both
  sides, as the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.forecast.regressors import Forecaster

__all__ = ["SlidingWindow", "resample", "AccuracyReport", "evaluate_forecaster", "evaluate_peak_predictor"]


class SlidingWindow:
    """Bounded FIFO window over a stream of floats (NumPy-backed).

    Mirrors the TSDB ring's zero-copy design: before wraparound
    :meth:`values` is a read-only view of the buffer, and afterwards the
    ordered assembly is cached per version (one rebuild per push, not
    one per read)."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._buf = np.empty(capacity)
        self._capacity = capacity
        self._count = 0
        self._head = 0
        self._version = 0
        self._cache: tuple[int, np.ndarray] | None = None

    def push(self, value: float) -> None:
        self._buf[self._head] = value
        self._head = (self._head + 1) % self._capacity
        self._count = min(self._count + 1, self._capacity)
        self._version += 1

    def __len__(self) -> int:
        return self._count

    @property
    def full(self) -> bool:
        return self._count == self._capacity

    def values(self) -> np.ndarray:
        """Window contents, oldest first (read-only, cached per push)."""
        if self._cache is not None and self._cache[0] == self._version:
            return self._cache[1]
        if self._count < self._capacity:
            out = self._buf[: self._count]
        elif self._head == 0:
            out = self._buf[:]
        else:
            out = np.concatenate([self._buf[self._head:], self._buf[: self._head]])
        out.flags.writeable = False
        self._cache = (self._version, out)
        return out


def resample(times_ms: np.ndarray, values: np.ndarray, interval_ms: float) -> tuple[np.ndarray, np.ndarray]:
    """Sample a series at a fixed cadence using last-observation-carried-forward.

    Mirrors what the TSDB actually holds when Knots polls NVML every
    ``interval_ms``: the instantaneous value at each poll tick.
    """
    if interval_ms <= 0:
        raise ValueError("interval must be positive")
    t0, t1 = float(times_ms[0]), float(times_ms[-1])
    ticks = np.arange(t0, t1 + 1e-9, interval_ms)
    idx = np.searchsorted(times_ms, ticks, side="right") - 1
    idx = np.clip(idx, 0, len(values) - 1)
    return ticks, values[idx]


@dataclass(frozen=True)
class AccuracyReport:
    """Result of one forecaster evaluation at one heartbeat interval."""

    forecaster: str
    heartbeat_ms: float
    n_predictions: int
    mae: float
    rmse: float
    accuracy_pct: float


def evaluate_forecaster(
    times_ms: np.ndarray,
    values: np.ndarray,
    heartbeat_ms: float,
    forecaster: Forecaster,
    window_ms: float = 5_000.0,
    horizon_ms: float | None = None,
    max_windows: int = 200,
    noise_floor: float = 0.0,
    rng: np.random.Generator | None = None,
) -> AccuracyReport:
    """Score fixed-horizon forecasts of ``forecaster`` on a series.

    Parameters
    ----------
    times_ms, values:
        Fine-grained ground truth (e.g. 0.25 ms cadence utilization).
    heartbeat_ms:
        Aggregator polling interval; the series is resampled to this.
    window_ms:
        Sliding-window span (the paper uses five seconds).
    horizon_ms:
        Wall-clock forecast horizon (PP forecasts one second ahead —
        Eq. 3).  ``None`` means one heartbeat step.  At coarse
        heartbeats one step already covers the horizon; at fine
        heartbeats the forecast spans many steps, which is where the
        window's information content matters.
    max_windows:
        Evaluate at most this many window positions, spaced evenly —
        keeps the expensive comparators (Theil–Sen, MLP) tractable.
    noise_floor:
        Std-dev of measurement noise added to *sampled* points.  Models
        NVML read jitter: the device's utilization counters integrate
        over a much longer period than a sub-ms poll, so oversampling
        returns increasingly noisy values — which is what makes
        accuracy drop past the 1 ms optimum in Fig. 10b.

    Accuracy is ``100 * (1 - MAE / mean(signal))``, clipped to [0, 100]:
    mean absolute error relative to the average utilization level —
    i.e. the relative error a capacity decision based on the forecast
    would suffer.
    """
    times_ms = np.asarray(times_ms, dtype=float)
    values = np.asarray(values, dtype=float)
    ticks, sampled = resample(times_ms, values, heartbeat_ms)
    if noise_floor > 0.0:
        rng = rng or np.random.default_rng(1234)
        sampled = sampled + rng.normal(0.0, noise_floor, size=sampled.shape)
    win_pts = max(int(round(window_ms / heartbeat_ms)), 2)
    steps = 1 if horizon_ms is None else max(int(round(horizon_ms / heartbeat_ms)), 1)
    n = len(sampled)
    if n <= win_pts + steps:
        return AccuracyReport(forecaster.name, heartbeat_ms, 0, float("nan"), float("nan"), 0.0)

    positions = np.unique(
        np.linspace(win_pts, n - 1 - steps, min(max_windows, n - win_pts - steps)).astype(int)
    )
    preds = np.empty(len(positions))
    actual = np.empty(len(positions))
    for k, i in enumerate(positions):
        window = sampled[i - win_pts : i]
        preds[k] = forecaster.predict_ahead(window, steps)
        # Score against the *true* signal at the target time, not the
        # noisy sample — the scheduler cares about real utilization.
        t_target = ticks[i - 1] + steps * heartbeat_ms
        j = min(int(np.searchsorted(times_ms, t_target, side="right")) - 1, len(values) - 1)
        actual[k] = values[max(j, 0)]

    err = preds - actual
    mae = float(np.abs(err).mean())
    rmse = float(np.sqrt((err**2).mean()))
    scale = float(np.abs(values).mean())
    if scale <= 0:
        accuracy = 100.0 if mae < 1e-9 else 0.0
    else:
        accuracy = float(np.clip(100.0 * (1.0 - mae / scale), 0.0, 100.0))
    return AccuracyReport(forecaster.name, heartbeat_ms, len(positions), mae, rmse, accuracy)


def evaluate_peak_predictor(
    times_ms: np.ndarray,
    values: np.ndarray,
    heartbeat_ms: float,
    forecaster: Forecaster,
    window_ms: float = 5_000.0,
    horizon_ms: float = 1_000.0,
    tolerance: float = 0.12,
    max_windows: int = 200,
    noise_floor: float = 0.0,
    rng: np.random.Generator | None = None,
) -> AccuracyReport:
    """Score *peak* predictions — the Fig. 10b task proper.

    PP's job is to predict the next peak resource consumption (Sec.
    VI-D: "we vary the frequency at which we query the GPUs to predict
    the peak resource usage").  The predictor estimates the maximum
    utilization over the next ``horizon_ms`` as

        forecasted level  +  (window max - window median)

    i.e. the model supplies the level trend and the window supplies the
    observed peak amplitude.  A prediction is a *hit* when it lands
    within ``tolerance`` of the true next-horizon maximum; accuracy is
    the hit percentage.

    This is where the heartbeat sweep bites from both sides:

    * coarse heartbeats *alias the peaks away* — a 5-point window has
      almost certainly never sampled a 50 ms surge, so the amplitude
      term is missing and peaks are underpredicted;
    * oversampling drowns the window max in read noise — the maximum of
      tens of thousands of noisy samples carries a positive bias of
      several sigma, so peaks are overpredicted.
    """
    times_ms = np.asarray(times_ms, dtype=float)
    values = np.asarray(values, dtype=float)
    ticks, sampled = resample(times_ms, values, heartbeat_ms)
    if noise_floor > 0.0:
        rng = rng or np.random.default_rng(1234)
        sampled = sampled + rng.normal(0.0, noise_floor, size=sampled.shape)
    win_pts = max(int(round(window_ms / heartbeat_ms)), 2)
    steps = max(int(round(horizon_ms / heartbeat_ms)), 1)
    n = len(sampled)
    if n <= win_pts + steps:
        return AccuracyReport(forecaster.name, heartbeat_ms, 0, float("nan"), float("nan"), 0.0)

    positions = np.unique(
        np.linspace(win_pts, n - 1 - steps, min(max_windows, n - win_pts - steps)).astype(int)
    )
    hits = 0
    errs = []
    for i in positions:
        window = sampled[i - win_pts : i]
        level_now = float(np.median(window))
        level_pred = forecaster.predict_ahead(window, max(steps // 2, 1))
        pred_peak = level_pred + (float(window.max()) - level_now)
        t0 = ticks[i - 1]
        j0 = int(np.searchsorted(times_ms, t0, side="right"))
        j1 = int(np.searchsorted(times_ms, t0 + horizon_ms, side="right"))
        actual = float(values[j0:j1].max()) if j1 > j0 else float(values[min(j0, len(values) - 1)])
        err = pred_peak - actual
        errs.append(err)
        hits += abs(err) <= tolerance
    errs = np.asarray(errs)
    return AccuracyReport(
        forecaster=forecaster.name,
        heartbeat_ms=heartbeat_ms,
        n_predictions=len(positions),
        mae=float(np.abs(errs).mean()),
        rmse=float(np.sqrt((errs**2).mean())),
        accuracy_pct=100.0 * hits / len(positions),
    )
