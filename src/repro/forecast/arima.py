"""First-order ARIMA forecasting (paper Eq. 3).

The PP scheduler forecasts each device's utilization one step ahead
with a non-seasonal ARIMA whose AR(1) form is a moving-window linear
regression: ``Y_pred = mu + phi * Y_{t-1}``.  The coefficients are
re-fit on every heartbeat over the sliding window (five seconds in the
paper) by least squares on the lag-1 pairs.

Richer models (Theil–Sen, SGD, MLP — :mod:`repro.forecast.regressors`)
are implemented for the Fig. 10b accuracy comparison; the paper found
they do not beat AR(1) on such short windows, and our reproduction of
that figure shows the same.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Arima1", "fit_ar1", "fit_ar1_at_lag", "forecast_series", "Ar1Cache"]


@dataclass(frozen=True)
class Arima1:
    """A fitted AR(1) model: ``Y_pred = mu + phi * Y_prev``."""

    mu: float
    phi: float
    n_obs: int

    def predict(self, y_prev: float) -> float:
        return self.mu + self.phi * y_prev

    def forecast(self, y_last: float, steps: int = 1) -> np.ndarray:
        """Iterated multi-step forecast from the last observation."""
        if steps < 1:
            raise ValueError("steps must be >= 1")
        out = np.empty(steps)
        y = y_last
        for i in range(steps):
            y = self.predict(y)
            out[i] = y
        return out


def fit_ar1(window: np.ndarray) -> Arima1:
    """Least-squares fit of Eq. 3 over a sliding window.

    Degenerate windows degrade gracefully: with fewer than 3 points or a
    constant series the fit becomes a persistence forecast
    (``phi = 0, mu = last/mean value``), which is the right behaviour
    for a scheduler that must always produce *some* estimate.
    """
    y = np.asarray(window, dtype=float)
    n = len(y)
    if n == 0:
        return Arima1(mu=0.0, phi=0.0, n_obs=0)
    if n < 3 or np.all(y == y[0]):
        return Arima1(mu=float(y.mean()), phi=0.0, n_obs=n)
    x_prev, x_next = y[:-1], y[1:]
    var = x_prev.var()
    if var <= 1e-12:
        return Arima1(mu=float(x_next.mean()), phi=0.0, n_obs=n)
    phi = float(np.cov(x_prev, x_next, bias=True)[0, 1] / var)
    # Clamp to the stationary region; an explosive fit on a 5 s window is
    # noise and would forecast unbounded utilization.
    phi = float(np.clip(phi, -1.0, 1.0))
    mu = float(x_next.mean() - phi * x_prev.mean())
    return Arima1(mu=mu, phi=phi, n_obs=n)


def fit_ar1_at_lag(window: np.ndarray, lag: int) -> Arima1:
    """Direct lag-``k`` regression: ``Y_{t+k} = mu + phi * Y_t``.

    The forecasting form of Eq. 3 for a horizon of ``k`` samples: a
    moving-window linear regression between observations ``k`` apart.
    Statistically far better behaved than iterating a one-step AR(1)
    ``k`` times (any noise-induced bias in phi is raised to the k-th
    power under iteration; here it enters once).
    """
    y = np.asarray(window, dtype=float)
    n = len(y)
    if lag < 1:
        raise ValueError(f"lag must be >= 1, got {lag}")
    if n < lag + 3:
        return fit_ar1(y)        # not enough pairs: one-step fallback
    x_prev, x_next = y[:-lag], y[lag:]
    var = x_prev.var()
    if var <= 1e-12:
        return Arima1(mu=float(x_next.mean()), phi=0.0, n_obs=n)
    phi = float(np.cov(x_prev, x_next, bias=True)[0, 1] / var)
    phi = float(np.clip(phi, -1.0, 1.0))
    mu = float(x_next.mean() - phi * x_prev.mean())
    return Arima1(mu=mu, phi=phi, n_obs=n)


def fit_ar1_from_stats(
    n: int, s1: float, s2: float, c: float, first: float, last: float
) -> Arima1:
    """Eq. 3 fit from sufficient statistics of a window ``y`` of length ``n``.

    ``s1 = sum(y)``, ``s2 = sum(y**2)``, ``c = sum(y[1:] * y[:-1])``,
    ``first = y[0]``, ``last = y[-1]``.  The lag-1 pairs' moments all
    derive from these: ``sum(y[:-1]) = s1 - last``,
    ``sum(y[:-1]**2) = s2 - last**2``, ``sum(y[1:]) = s1 - first``.

    Degenerate handling mirrors :func:`fit_ar1`: fewer than 3 points or
    a (near-)constant lag series produce a persistence forecast.  The
    arithmetic differs from the batch path only in summation order, so
    results agree to ~1e-12 on utilization-scale data (the equivalence
    the property tests assert at 1e-9).
    """
    if n == 0:
        return Arima1(mu=0.0, phi=0.0, n_obs=0)
    if n < 3:
        return Arima1(mu=s1 / n, phi=0.0, n_obs=n)
    m = n - 1
    mean_prev = (s1 - last) / m
    mean_next = (s1 - first) / m
    var = (s2 - last * last) / m - mean_prev * mean_prev
    if var <= 1e-12:
        return Arima1(mu=mean_next, phi=0.0, n_obs=n)
    cov = c / m - mean_prev * mean_next
    phi = float(np.clip(cov / var, -1.0, 1.0))
    mu = mean_next - phi * mean_prev
    return Arima1(mu=mu, phi=phi, n_obs=n)


class _Ar1State:
    """Rolling sufficient statistics of one device's sliding window."""

    __slots__ = ("times", "values", "s1", "s2", "c", "updates", "model")

    def __init__(self, times: np.ndarray, values: np.ndarray) -> None:
        self.rebuild(times, values)

    def rebuild(self, times: np.ndarray, values: np.ndarray) -> None:
        """Exact batch (re)computation — the cache-miss path."""
        self.times = times
        self.values = values
        self.s1 = float(values.sum())
        self.s2 = float(values @ values)
        self.c = float(values[1:] @ values[:-1]) if len(values) > 1 else 0.0
        self.updates = 0
        self.model = self._fit()

    def _fit(self) -> Arima1:
        v = self.values
        n = len(v)
        return fit_ar1_from_stats(
            n, self.s1, self.s2, self.c,
            float(v[0]) if n else 0.0, float(v[-1]) if n else 0.0,
        )

    def matches(self, times: np.ndarray) -> bool:
        """Is this state's window exactly ``times``?"""
        mine = self.times
        return (
            len(mine) == len(times)
            and len(mine) > 0
            and mine[0] == times[0]
            and mine[-1] == times[-1]
        )

    def slide(self, times: np.ndarray, values: np.ndarray) -> bool:
        """O(evicted + appended) update to a forward-slid window.

        Returns False when the new window is not a forward slide sharing
        at least half its points with the old one (then the caller falls
        back to :meth:`rebuild`).  Eviction removes the old prefix's
        contribution — including its lag-1 pairs and the bridge pair —
        and appending adds the new suffix's.
        """
        old_t, old_v = self.times, self.values
        n_old, n_new = len(old_t), len(times)
        if n_old == 0 or n_new == 0:
            return False
        if times[0] < old_t[0] or times[-1] < old_t[-1]:
            return False          # window moved backwards: not a slide
        evict = int(np.searchsorted(old_t, times[0], side="left"))
        keep = n_old - evict
        appended = n_new - keep
        # The shared span must line up point-for-point (duplicate
        # timestamps can break the correspondence — rebuild instead).
        if (
            appended < 0
            or keep < 1
            or keep < (n_new >> 1)
            or times[keep - 1] != old_t[-1]
        ):
            return False
        if evict:
            gone = old_v[:evict]
            self.s1 -= float(gone.sum())
            self.s2 -= float(gone @ gone)
            # Pairs (i-1, i) for i = 1..evict vanish with the prefix.
            self.c -= float(old_v[1 : evict + 1] @ old_v[:evict])
        if appended:
            new = values[keep:]
            self.s1 += float(new.sum())
            self.s2 += float(new @ new)
            self.c += float(values[keep:] @ values[keep - 1 : -1])
        self.times = times
        self.values = values
        self.updates += 1
        self.model = self._fit()
        return True


class Ar1Cache:
    """Per-series incremental AR(1) fitter for sliding-window forecasts.

    PP re-fits Eq. 3 on every device's five-second memory window every
    heartbeat; between consecutive heartbeats that window slides by one
    or two points.  This cache keeps rolling sufficient statistics
    (sums, squared sums, lag-1 cross products with eviction) per series
    key, making the steady-state fit O(points slid) instead of
    O(window), with the exact batch computation as the fallback on any
    cache miss.  ``refresh_every`` bounds floating-point drift by
    forcing a batch rebuild after that many incremental updates.
    """

    def __init__(self, refresh_every: int = 1024) -> None:
        if refresh_every < 1:
            raise ValueError("refresh_every must be >= 1")
        self.refresh_every = refresh_every
        self._states: dict[str, _Ar1State] = {}
        self.hits = 0             # served from unchanged-window cache
        self.slides = 0           # incremental O(1) updates
        self.rebuilds = 0         # batch fallbacks

    def fit(self, key: str, times: np.ndarray, values: np.ndarray) -> Arima1:
        """AR(1) model over ``(times, values)``, reusing per-key state.

        ``times`` must be the window's (monotonic) timestamps — they
        identify which points entered and left since the previous fit.
        """
        state = self._states.get(key)
        if state is not None and state.matches(times):
            self.hits += 1
            return state.model
        if (
            state is not None
            and state.updates < self.refresh_every
            and state.slide(times, values)
        ):
            self.slides += 1
            return state.model
        if state is None:
            self._states[key] = _Ar1State(times, values)
        else:
            state.rebuild(times, values)
        self.rebuilds += 1
        return self._states[key].model


def forecast_series(window: np.ndarray, steps: int = 1, clip: tuple[float, float] | None = None) -> np.ndarray:
    """Fit AR(1) on ``window`` and forecast ``steps`` ahead.

    ``clip`` bounds the forecasts (e.g. ``(0, 1)`` for utilizations,
    ``(0, capacity)`` for memory).
    """
    y = np.asarray(window, dtype=float)
    model = fit_ar1(y)
    last = float(y[-1]) if len(y) else 0.0
    pred = model.forecast(last, steps)
    if clip is not None:
        np.clip(pred, clip[0], clip[1], out=pred)
    return pred
