"""First-order ARIMA forecasting (paper Eq. 3).

The PP scheduler forecasts each device's utilization one step ahead
with a non-seasonal ARIMA whose AR(1) form is a moving-window linear
regression: ``Y_pred = mu + phi * Y_{t-1}``.  The coefficients are
re-fit on every heartbeat over the sliding window (five seconds in the
paper) by least squares on the lag-1 pairs.

Richer models (Theil–Sen, SGD, MLP — :mod:`repro.forecast.regressors`)
are implemented for the Fig. 10b accuracy comparison; the paper found
they do not beat AR(1) on such short windows, and our reproduction of
that figure shows the same.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Arima1", "fit_ar1", "fit_ar1_at_lag", "forecast_series"]


@dataclass(frozen=True)
class Arima1:
    """A fitted AR(1) model: ``Y_pred = mu + phi * Y_prev``."""

    mu: float
    phi: float
    n_obs: int

    def predict(self, y_prev: float) -> float:
        return self.mu + self.phi * y_prev

    def forecast(self, y_last: float, steps: int = 1) -> np.ndarray:
        """Iterated multi-step forecast from the last observation."""
        if steps < 1:
            raise ValueError("steps must be >= 1")
        out = np.empty(steps)
        y = y_last
        for i in range(steps):
            y = self.predict(y)
            out[i] = y
        return out


def fit_ar1(window: np.ndarray) -> Arima1:
    """Least-squares fit of Eq. 3 over a sliding window.

    Degenerate windows degrade gracefully: with fewer than 3 points or a
    constant series the fit becomes a persistence forecast
    (``phi = 0, mu = last/mean value``), which is the right behaviour
    for a scheduler that must always produce *some* estimate.
    """
    y = np.asarray(window, dtype=float)
    n = len(y)
    if n == 0:
        return Arima1(mu=0.0, phi=0.0, n_obs=0)
    if n < 3 or np.all(y == y[0]):
        return Arima1(mu=float(y.mean()), phi=0.0, n_obs=n)
    x_prev, x_next = y[:-1], y[1:]
    var = x_prev.var()
    if var <= 1e-12:
        return Arima1(mu=float(x_next.mean()), phi=0.0, n_obs=n)
    phi = float(np.cov(x_prev, x_next, bias=True)[0, 1] / var)
    # Clamp to the stationary region; an explosive fit on a 5 s window is
    # noise and would forecast unbounded utilization.
    phi = float(np.clip(phi, -1.0, 1.0))
    mu = float(x_next.mean() - phi * x_prev.mean())
    return Arima1(mu=mu, phi=phi, n_obs=n)


def fit_ar1_at_lag(window: np.ndarray, lag: int) -> Arima1:
    """Direct lag-``k`` regression: ``Y_{t+k} = mu + phi * Y_t``.

    The forecasting form of Eq. 3 for a horizon of ``k`` samples: a
    moving-window linear regression between observations ``k`` apart.
    Statistically far better behaved than iterating a one-step AR(1)
    ``k`` times (any noise-induced bias in phi is raised to the k-th
    power under iteration; here it enters once).
    """
    y = np.asarray(window, dtype=float)
    n = len(y)
    if lag < 1:
        raise ValueError(f"lag must be >= 1, got {lag}")
    if n < lag + 3:
        return fit_ar1(y)        # not enough pairs: one-step fallback
    x_prev, x_next = y[:-lag], y[lag:]
    var = x_prev.var()
    if var <= 1e-12:
        return Arima1(mu=float(x_next.mean()), phi=0.0, n_obs=n)
    phi = float(np.cov(x_prev, x_next, bias=True)[0, 1] / var)
    phi = float(np.clip(phi, -1.0, 1.0))
    mu = float(x_next.mean() - phi * x_prev.mean())
    return Arima1(mu=mu, phi=phi, n_obs=n)


def forecast_series(window: np.ndarray, steps: int = 1, clip: tuple[float, float] | None = None) -> np.ndarray:
    """Fit AR(1) on ``window`` and forecast ``steps`` ahead.

    ``clip`` bounds the forecasts (e.g. ``(0, 1)`` for utilizations,
    ``(0, capacity)`` for memory).
    """
    y = np.asarray(window, dtype=float)
    model = fit_ar1(y)
    last = float(y[-1]) if len(y) else 0.0
    pred = model.forecast(last, steps)
    if clip is not None:
        np.clip(pred, clip[0], clip[1], out=pred)
    return pred
