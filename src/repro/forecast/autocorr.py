"""Auto-correlation of utilization series (paper Eq. 2).

PP uses the lag-k autocorrelation of a device's recent utilization
window to decide whether the series has enough structure to forecast:
``r_k <= 0`` means "trend not strong enough / data too limited" and the
scheduler falls back to the next node instead of trusting a forecast.
"""

from __future__ import annotations

import numpy as np

__all__ = ["autocorrelation", "autocorrelation_function", "has_predictable_trend", "peak_interval"]


def autocorrelation(y: np.ndarray, lag: int = 1) -> float:
    """Lag-``k`` autocorrelation r_k per Eq. 2.

    r_k = sum_{i=1}^{n-k} (Y_i - Ybar)(Y_{i+k} - Ybar) / sum (Y_i - Ybar)^2

    Returns 0.0 for series too short (n <= lag) or constant — both are
    the paper's "cannot predict" cases.
    """
    y = np.asarray(y, dtype=float)
    n = len(y)
    if lag < 1:
        raise ValueError(f"lag must be >= 1, got {lag}")
    if n <= lag:
        return 0.0
    mean = y.mean()
    dev = y - mean
    denom = dev @ dev
    if denom <= 0:
        return 0.0
    num = dev[: n - lag] @ dev[lag:]
    return float(num / denom)


def autocorrelation_function(y: np.ndarray, max_lag: int) -> np.ndarray:
    """r_k for k = 1..max_lag (vectorized over the deviation products)."""
    y = np.asarray(y, dtype=float)
    n = len(y)
    out = np.zeros(max_lag)
    if n < 2:
        return out
    dev = y - y.mean()
    denom = dev @ dev
    if denom <= 0:
        return out
    for k in range(1, max_lag + 1):
        if k >= n:
            break
        out[k - 1] = dev[: n - k] @ dev[k:] / denom
    return out


def has_predictable_trend(y: np.ndarray, lag: int = 1) -> bool:
    """Algorithm 1's ``AutoCorrelation(...)`` gate: r_lag > 0."""
    return autocorrelation(y, lag) > 0.0


def peak_interval(y: np.ndarray, max_lag: int | None = None) -> int | None:
    """Estimate the spacing between consecutive resource peaks.

    Returns the lag of the first local maximum of the autocorrelation
    function with a positive value, or ``None`` when the series shows no
    periodic structure.  PP uses this to judge whether two pods' peak
    phases will collide.
    """
    y = np.asarray(y, dtype=float)
    if max_lag is None:
        max_lag = max(len(y) // 2, 1)
    acf = autocorrelation_function(y, max_lag)
    if len(acf) < 3:
        return None
    for k in range(1, len(acf) - 1):
        if acf[k] > 0 and acf[k] >= acf[k - 1] and acf[k] >= acf[k + 1]:
            return k + 1  # lags are 1-based
    return None
