"""Alternative one-step forecasters for the Fig. 10b comparison.

The paper quantitatively compared ARIMA against linear regression,
Theil–Sen, SGD, automatic relevance determination, random forest and a
multi-layer perceptron, and found that on a five-second sliding window
the simpler statistical model wins: "other complex models do not
improve much due to limited real-time training data".

We implement the three comparators shown in Fig. 10b — Theil–Sen, SGD
(linear model trained by stochastic gradient descent) and a small MLP —
plus ordinary least squares, all NumPy-only and all exposing the same
``fit(window) -> model; model.predict_next(window)`` surface so the
accuracy harness treats every forecaster identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

__all__ = [
    "Forecaster",
    "LeastSquaresForecaster",
    "TheilSenForecaster",
    "SGDForecaster",
    "MLPForecaster",
    "ArimaForecaster",
    "FORECASTERS",
]


class Forecaster(Protocol):
    """Forecaster over a sliding window."""

    name: str

    def predict_next(self, window: np.ndarray) -> float:
        """Forecast the value immediately following ``window``."""
        ...

    def predict_ahead(self, window: np.ndarray, steps: int) -> float:
        """Forecast the value ``steps`` samples past the window's end.

        The schedulers always forecast a fixed *wall-clock* horizon
        (one second, Eq. 3), so the number of sample steps grows as the
        heartbeat shrinks — this is what Fig. 10b sweeps.
        """
        ...


def _time_axis(n: int) -> np.ndarray:
    return np.arange(n, dtype=float)


@dataclass
class LeastSquaresForecaster:
    """OLS line through (t, y); extrapolates linearly."""

    name: str = "linear-regression"

    def predict_next(self, window: np.ndarray) -> float:
        return self.predict_ahead(window, 1)

    def predict_ahead(self, window: np.ndarray, steps: int) -> float:
        y = np.asarray(window, dtype=float)
        n = len(y)
        if n == 0:
            return 0.0
        if n == 1:
            return float(y[0])
        t = _time_axis(n)
        slope, intercept = np.polyfit(t, y, 1)
        return float(intercept + slope * (n - 1 + steps))


@dataclass
class TheilSenForecaster:
    """Median-of-pairwise-slopes robust line fit.

    O(n^2) pair enumeration is fine: windows hold at most a few thousand
    points (5 s at 1 ms), and we vectorize the slope matrix.
    """

    name: str = "theil-sen"
    max_pairs: int = 250_000

    def predict_next(self, window: np.ndarray) -> float:
        return self.predict_ahead(window, 1)

    def predict_ahead(self, window: np.ndarray, steps: int) -> float:
        y = np.asarray(window, dtype=float)
        n = len(y)
        if n == 0:
            return 0.0
        if n == 1:
            return float(y[0])
        horizon = n - 1 + steps
        t = _time_axis(n)
        if n * (n - 1) // 2 > self.max_pairs:
            # Subsample evenly to bound the pair count; Theil–Sen is
            # insensitive to this because the slope is a median.
            k = int(np.sqrt(2 * self.max_pairs))
            idx = np.linspace(0, n - 1, k).astype(int)
            t, y = t[idx], y[idx]
            n = len(t)
        dt = t[:, None] - t[None, :]
        dy = y[:, None] - y[None, :]
        iu = np.triu_indices(n, k=1)
        slopes = dy[iu] / dt[iu]
        slope = float(np.median(slopes))
        intercept = float(np.median(y - slope * t))
        return float(intercept + slope * horizon)


@dataclass
class SGDForecaster:
    """Linear model on (t, y) trained by plain SGD.

    Deliberately mirrors sklearn's SGDRegressor defaults in spirit:
    a handful of epochs, inverse-scaling learning rate.  On tiny windows
    it is noticeably noisier than OLS — which is the point of Fig. 10b.
    """

    name: str = "sgd"
    epochs: int = 20
    eta0: float = 0.05
    seed: int = 7

    def predict_next(self, window: np.ndarray) -> float:
        return self.predict_ahead(window, 1)

    def predict_ahead(self, window: np.ndarray, steps: int) -> float:
        y = np.asarray(window, dtype=float)
        n = len(y)
        if n == 0:
            return 0.0
        if n == 1:
            return float(y[0])
        rng = np.random.default_rng(self.seed)
        # Normalize the time axis so the learning rate is scale-free.
        t = _time_axis(n) / n
        w, b = 0.0, float(y.mean())
        step = 0
        for _ in range(self.epochs):
            for i in rng.permutation(n):
                step += 1
                eta = self.eta0 / (1.0 + 0.01 * step)
                err = (w * t[i] + b) - y[i]
                w -= eta * err * t[i]
                b -= eta * err
        return float(w * ((n - 1 + steps) / n) + b)   # extrapolate past t~1


@dataclass
class MLPForecaster:
    """A small 1-hidden-layer MLP mapping lag vectors to the next value.

    Trained with full-batch gradient descent on (lag window -> next)
    pairs drawn from the window itself.  With a five-second window there
    are few training pairs, so the model underfits/overfits erratically —
    reproducing the paper's observation about complex models.
    """

    name: str = "mlp"
    lags: int = 4
    hidden: int = 8
    epochs: int = 200
    lr: float = 0.05
    seed: int = 7

    def predict_next(self, window: np.ndarray) -> float:
        return self.predict_ahead(window, 1)

    def predict_ahead(self, window: np.ndarray, steps: int) -> float:
        """Direct multi-horizon training: targets are ``steps`` ahead."""
        y = np.asarray(window, dtype=float)
        n = len(y)
        if n == 0:
            return 0.0
        if n <= self.lags + steps:
            return float(y[-1])
        # Standardize for stable training.
        mu, sigma = y.mean(), y.std()
        if sigma <= 1e-12:
            return float(y[-1])
        z = (y - mu) / sigma
        windows = np.lib.stride_tricks.sliding_window_view(z, self.lags)
        # pair i: lags ending at index i+lags-1 -> target at +steps
        X = windows[: n - self.lags - steps + 1]
        t = z[self.lags + steps - 1 :]
        if len(X) > 4_096:       # bound training cost on huge windows
            idx = np.linspace(0, len(X) - 1, 4_096).astype(int)
            X, t = X[idx], t[idx]
        rng = np.random.default_rng(self.seed)
        w1 = rng.normal(0, 0.5, (self.lags, self.hidden))
        b1 = np.zeros(self.hidden)
        w2 = rng.normal(0, 0.5, self.hidden)
        b2 = 0.0
        m = len(t)
        for _ in range(self.epochs):
            h = np.tanh(X @ w1 + b1)
            pred = h @ w2 + b2
            err = pred - t
            grad_pred = 2.0 * err / m
            gw2 = h.T @ grad_pred
            gb2 = grad_pred.sum()
            gh = np.outer(grad_pred, w2) * (1 - h * h)
            gw1 = X.T @ gh
            gb1 = gh.sum(axis=0)
            w2 -= self.lr * gw2
            b2 -= self.lr * gb2
            w1 -= self.lr * gw1
            b1 -= self.lr * gb1
        last = z[-self.lags :]
        pred = float(np.tanh(last @ w1 + b1) @ w2 + b2)
        return pred * sigma + mu


@dataclass
class ArimaForecaster:
    """Adapter exposing :mod:`repro.forecast.arima` under the common API."""

    name: str = "arima"

    def predict_next(self, window: np.ndarray) -> float:
        return self.predict_ahead(window, 1)

    def predict_ahead(self, window: np.ndarray, steps: int) -> float:
        """Direct lag-k moving-window regression (Eq. 3 at the horizon)."""
        from repro.forecast.arima import fit_ar1_at_lag

        y = np.asarray(window, dtype=float)
        if len(y) == 0:
            return 0.0
        model = fit_ar1_at_lag(y, steps)
        return model.predict(float(y[-1]))


#: The comparator set plotted in Fig. 10b (CBP+PP uses the ARIMA entry).
FORECASTERS: dict[str, Forecaster] = {
    "arima": ArimaForecaster(),
    "theil-sen": TheilSenForecaster(),
    "sgd": SGDForecaster(),
    "mlp": MLPForecaster(),
    "linear-regression": LeastSquaresForecaster(),
}
