"""Forecasting toolkit: correlation, autocorrelation, ARIMA, comparators."""

from repro.forecast.arima import Arima1, fit_ar1, fit_ar1_at_lag, forecast_series
from repro.forecast.autocorr import autocorrelation, autocorrelation_function, has_predictable_trend, peak_interval
from repro.forecast.correlation import correlation_matrix, is_safe_to_colocate, spearman
from repro.forecast.regressors import FORECASTERS, Forecaster
from repro.forecast.window import (
    AccuracyReport,
    SlidingWindow,
    evaluate_forecaster,
    evaluate_peak_predictor,
    resample,
)

__all__ = [
    "Arima1",
    "fit_ar1",
    "fit_ar1_at_lag",
    "forecast_series",
    "autocorrelation",
    "autocorrelation_function",
    "has_predictable_trend",
    "peak_interval",
    "spearman",
    "correlation_matrix",
    "is_safe_to_colocate",
    "FORECASTERS",
    "Forecaster",
    "SlidingWindow",
    "AccuracyReport",
    "evaluate_forecaster",
    "evaluate_peak_predictor",
    "resample",
]
