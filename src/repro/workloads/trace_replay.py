"""Replaying a real Alibaba cluster trace (Sec. II-B / III).

The paper drives its load generator from the open-sourced Alibaba 2017
trace.  That trace cannot be redistributed here, so the package's
experiments use the statistical synthesizer in
:mod:`repro.workloads.alibaba`; this module closes the loop for users
who *have* the trace: it parses the ``batch_task.csv`` schema, extracts
exactly what the paper used — inter-arrival times, durations and
normalized resource requests — and turns them into pod submissions for
the simulator.

Expected CSV schema (Alibaba cluster-trace-v2017 ``batch_task.csv``,
no header)::

    create_timestamp, modify_timestamp, job_id, task_id,
    instance_num, status, plan_cpu, plan_mem

``plan_cpu`` is in units of 1/100 core; ``plan_mem`` is a normalized
fraction of node memory in [0, 100].  Only ``Terminated`` tasks carry a
meaningful duration and are replayed.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.kube.pod import PodSpec
from repro.workloads.base import Phase, QoSClass, ResourceDemand, WorkloadTrace

__all__ = ["TraceTask", "load_batch_tasks", "tasks_to_workload"]


@dataclass(frozen=True)
class TraceTask:
    """One terminated batch task from the trace."""

    job_id: str
    task_id: str
    arrival_s: float
    duration_s: float
    cpu_fraction: float    # of one machine's cores, [0, 1]
    mem_fraction: float    # of one machine's memory, [0, 1]


def load_batch_tasks(
    path: str | Path,
    machine_cores: int = 64,
    max_tasks: int | None = None,
) -> list[TraceTask]:
    """Parse ``batch_task.csv`` into :class:`TraceTask` records.

    Arrival times are re-based so the earliest terminated task arrives
    at t=0.  Malformed rows (missing plan values, non-positive
    durations) are skipped — the real trace contains plenty.
    """
    tasks: list[TraceTask] = []
    with Path(path).open(newline="") as fh:
        for row in csv.reader(fh):
            if len(row) < 8:
                continue
            create, modify, job_id, task_id, _n, status, plan_cpu, plan_mem = row[:8]
            if status.strip() != "Terminated":
                continue
            try:
                t0, t1 = float(create), float(modify)
                cpu = float(plan_cpu) / (100.0 * machine_cores)
                mem = float(plan_mem) / 100.0
            except ValueError:
                continue
            if t1 <= t0 or cpu <= 0 or mem <= 0:
                continue
            tasks.append(
                TraceTask(
                    job_id=job_id,
                    task_id=task_id,
                    arrival_s=t0,
                    duration_s=t1 - t0,
                    cpu_fraction=min(cpu, 1.0),
                    mem_fraction=min(mem, 1.0),
                )
            )
            if max_tasks is not None and len(tasks) >= max_tasks:
                break
    if not tasks:
        return tasks
    base = min(t.arrival_s for t in tasks)
    return sorted(
        (
            TraceTask(t.job_id, t.task_id, t.arrival_s - base, t.duration_s,
                      t.cpu_fraction, t.mem_fraction)
            for t in tasks
        ),
        key=lambda t: t.arrival_s,
    )


def tasks_to_workload(
    tasks: Iterable[TraceTask],
    device_mem_mb: float = 16_384.0,
    time_scale: float = 1.0,
    duration_scale: float = 1.0,
    seed: int = 0,
) -> list[tuple[float, PodSpec]]:
    """Turn trace tasks into simulator pod submissions.

    The mapping the paper describes: the trace supplies *when* work
    arrives and *how much* it asks for; the GPU workload shape (phased
    demand, transient peaks) comes from the Rodinia-style template.

    Parameters
    ----------
    time_scale:
        Compresses inter-arrival times (the real trace spans 12 h; a
        simulation usually replays a compressed slice).
    duration_scale:
        Compresses task durations by the same logic.
    """
    rng = np.random.default_rng(seed)
    items: list[tuple[float, PodSpec]] = []
    for task in tasks:
        duration_ms = max(task.duration_s * 1_000.0 * duration_scale, 20.0)
        steady_mb = max(task.mem_fraction * device_mem_mb * 0.6, 32.0)
        peak_mb = min(steady_mb * rng.uniform(1.8, 3.0), device_mem_mb)
        sm = float(np.clip(task.cpu_fraction * rng.uniform(0.8, 1.2), 0.02, 1.0))
        trace = WorkloadTrace(
            f"replay-{task.job_id}-{task.task_id}",
            [
                Phase(duration_ms * 0.08, ResourceDemand(0.03, steady_mb * 0.5, 10.0, 2_000.0)),
                Phase(duration_ms * 0.80, ResourceDemand(sm, steady_mb, 5.0, 8.0)),
                Phase(duration_ms * 0.06, ResourceDemand(min(sm * 1.5, 1.0), peak_mb, 20.0, 30.0)),
                Phase(duration_ms * 0.06, ResourceDemand(0.02, steady_mb * 0.4, 800.0, 5.0)),
            ],
            qos_class=QoSClass.BATCH,
            requested_mem_mb=min(peak_mb * rng.uniform(1.1, 1.5), device_mem_mb),
        )
        items.append(
            (
                task.arrival_s * 1_000.0 * time_scale,
                PodSpec(
                    name=f"{task.job_id}/{task.task_id}",
                    image=f"trace/{task.job_id}",
                    trace=trace,
                ),
            )
        )
    return items
