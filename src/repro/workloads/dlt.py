"""Deep-learning cluster workload (paper Sec. V-C).

The simulator-based comparison against Gandiva and Tiresias uses an
experimental workload of **520 DL training (DLT)** jobs and **1400 DL
inference (DLI)** tasks:

* DLT job *requirements* (GPU counts, service times) are modeled after
  the Tiresias paper's production distributions: mostly 1-GPU jobs with
  a long tail of 2/4/8/16-GPU gang-scheduled jobs, service times from
  minutes to hours (log-normal).
* DLI tasks take 20-80 ms on a free device and carry the usual 150 ms
  end-to-end SLO.
* The DLT/DLI split across time follows the Table-I app-mix bins, and
  arrivals follow the Alibaba 12-hour inter-arrival pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.workloads.alibaba import ArrivalProcess

__all__ = ["DLJobKind", "DLJob", "DLWorkloadConfig", "generate_dl_workload"]


class DLJobKind(Enum):
    TRAINING = "DLT"
    INFERENCE = "DLI"


@dataclass
class DLJob:
    """One job in the DL-cluster simulation.

    ``service_s`` is the uncontended runtime on ``num_gpus`` devices;
    the simulator stretches it under time-slicing / co-location.
    """

    job_id: int
    kind: DLJobKind
    arrival_s: float
    num_gpus: int
    service_s: float
    qos_threshold_s: float | None = None   # inference only

    # -- filled in by the simulator -------------------------------------
    start_s: float | None = None
    finish_s: float | None = None
    preemptions: int = 0
    migrations: int = 0

    @property
    def jct_s(self) -> float:
        if self.finish_s is None:
            raise ValueError(f"job {self.job_id} has not finished")
        return self.finish_s - self.arrival_s

    def violates_qos(self) -> bool:
        if self.kind is not DLJobKind.INFERENCE or self.qos_threshold_s is None:
            return False
        return self.jct_s > self.qos_threshold_s


#: Gang sizes and probabilities, after Tiresias' production analysis
#: (most jobs are single-GPU; a heavy tail gangs up to 32 devices).
GANG_SIZES = np.array([1, 2, 4, 8, 16, 32])
GANG_PROBS = np.array([0.45, 0.20, 0.15, 0.10, 0.07, 0.03])


@dataclass(frozen=True)
class DLWorkloadConfig:
    """Knobs for :func:`generate_dl_workload`."""

    n_training: int = 520
    n_inference: int = 1400
    window_s: float = 12 * 3600.0        # the 12 h Alibaba trace period
    # Log-normal DLT service: median ~2 h, tail reaching a couple of days
    # ("few minutes to few hours" per job, with a production-style tail
    # that keeps the 256-GPU pool contended through the trace window).
    dlt_median_s: float = 9_000.0
    dlt_sigma: float = 1.0
    dli_min_s: float = 0.020
    dli_max_s: float = 0.080
    dli_qos_s: float = 0.150
    #: Inference queries "arrive in short bursts" (Sec. II-C): requests
    #: come in clumps of ~``dli_burst_size_mean`` with tight intra-burst
    #: gaps, which is what piles them up on one device under an
    #: utilization-agnostic first-fit.
    dli_burst_size_mean: float = 4.5
    dli_intra_burst_gap_s: float = 0.025
    training_burstiness: float = 0.8


def generate_dl_workload(
    config: DLWorkloadConfig | None = None, seed: int = 0
) -> list[DLJob]:
    """Generate the 520-DLT / 1400-DLI experimental workload.

    Returns jobs sorted by arrival time with sequential ids.
    """
    cfg = config or DLWorkloadConfig()
    rng = np.random.default_rng(seed)

    dlt_rate = cfg.n_training / cfg.window_s
    dlt_arrivals = _arrivals(cfg.n_training, dlt_rate, cfg.training_burstiness, cfg.window_s, seed + 1)
    dli_arrivals = _burst_arrivals(
        cfg.n_inference,
        cfg.window_s,
        cfg.dli_burst_size_mean,
        cfg.dli_intra_burst_gap_s,
        seed + 2,
    )

    jobs: list[DLJob] = []
    mu = np.log(cfg.dlt_median_s)
    for t in dlt_arrivals:
        jobs.append(
            DLJob(
                job_id=0,
                kind=DLJobKind.TRAINING,
                arrival_s=float(t),
                num_gpus=int(rng.choice(GANG_SIZES, p=GANG_PROBS)),
                service_s=float(rng.lognormal(mu, cfg.dlt_sigma)),
            )
        )
    for t in dli_arrivals:
        jobs.append(
            DLJob(
                job_id=0,
                kind=DLJobKind.INFERENCE,
                arrival_s=float(t),
                num_gpus=1,
                service_s=float(rng.uniform(cfg.dli_min_s, cfg.dli_max_s)),
                qos_threshold_s=cfg.dli_qos_s,
            )
        )
    jobs.sort(key=lambda j: j.arrival_s)
    for i, job in enumerate(jobs):
        job.job_id = i
    return jobs


def _burst_arrivals(
    n: int, window_s: float, burst_size_mean: float, intra_gap_s: float, seed: int
) -> np.ndarray:
    """Exactly ``n`` arrivals grouped into short bursts.

    Burst start times are uniform over the window; burst sizes are
    geometric with the given mean; queries within a burst land
    ``intra_gap_s`` apart (tens of milliseconds — the pile-up window an
    agnostic first-fit scheduler gets burned by).
    """
    rng = np.random.default_rng(seed)
    times: list[float] = []
    p = 1.0 / burst_size_mean
    while len(times) < n:
        start = float(rng.uniform(0.0, window_s))
        size = int(rng.geometric(p))
        for k in range(size):
            gap = float(rng.exponential(intra_gap_s))
            times.append(start + k * gap)
            if len(times) >= n:
                break
    return np.sort(np.asarray(times[:n]))


def _arrivals(n: int, rate: float, burstiness: float, window_s: float, seed: int) -> np.ndarray:
    """Exactly ``n`` arrival times in [0, window) with the given burstiness."""
    process = ArrivalProcess(
        rate_per_s=rate,
        burstiness=burstiness,
        diurnal_period_s=window_s / 2.0,
        rng=np.random.default_rng(seed),
    )
    times = process.sample_until(window_s)
    while len(times) < n:
        extra = process.sample_until(window_s)
        times = np.concatenate([times, extra])
    rng = np.random.default_rng(seed + 10_000)
    if len(times) > n:
        times = np.sort(rng.choice(times, size=n, replace=False))
    return times
