"""Workload models: Rodinia, Djinn & Tonic, Alibaba, app-mixes, DL jobs.

The app-mix and DL-workload generators are exported lazily: they build
:class:`~repro.kube.pod.PodSpec` objects, and the kube package in turn
depends on the cluster substrate, whose device model consumes
:class:`~repro.workloads.base.ResourceDemand` from here — eager imports
would make that a cycle.
"""

from repro.workloads.alibaba import ArrivalProcess, pareto_split
from repro.workloads.base import Phase, QoSClass, ResourceDemand, WorkloadTrace
from repro.workloads.djinn_tonic import DJINN_TONIC_PROFILES, QOS_THRESHOLD_MS, make_inference_trace
from repro.workloads.rodinia import RODINIA_PROFILES, make_rodinia_trace, suite_timeline

__all__ = [
    "WorkloadTrace",
    "Phase",
    "ResourceDemand",
    "QoSClass",
    "RODINIA_PROFILES",
    "make_rodinia_trace",
    "suite_timeline",
    "DJINN_TONIC_PROFILES",
    "QOS_THRESHOLD_MS",
    "make_inference_trace",
    "ArrivalProcess",
    "pareto_split",
    "APP_MIXES",
    "AppMix",
    "generate_appmix_workload",
    "DLJob",
    "DLJobKind",
    "DLWorkloadConfig",
    "generate_dl_workload",
]

_LAZY = {
    "APP_MIXES": ("repro.workloads.appmix", "APP_MIXES"),
    "AppMix": ("repro.workloads.appmix", "AppMix"),
    "generate_appmix_workload": ("repro.workloads.appmix", "generate_appmix_workload"),
    "DLJob": ("repro.workloads.dlt", "DLJob"),
    "DLJobKind": ("repro.workloads.dlt", "DLJobKind"),
    "DLWorkloadConfig": ("repro.workloads.dlt", "DLWorkloadConfig"),
    "generate_dl_workload": ("repro.workloads.dlt", "generate_dl_workload"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
