"""Rodinia-like batch workload traces (paper Sec. II-C1, Fig. 3).

The paper runs eight Rodinia applications sequentially on a P100 and
observes (Fig. 3):

* resource consumption is low on average with rare surges;
* phase changes are deterministic: a PCIe-input burst reliably precedes
  the compute/memory ramp by a few milliseconds;
* SM utilization has a ~90x median-to-peak gap, PCIe bandwidth ~400x;
* an application occupies its full allocation only ~6 % of its runtime
  yet is provisioned for the peak.

Each profile below generates a phased :class:`WorkloadTrace` with those
properties: a load phase (rx burst), repeated compute iterations whose
short peaks follow a bandwidth-led prelude, and a write-back phase (tx
burst).  Per-instance jitter comes from the caller's RNG so no two pods
are identical, while class-level shape (what CBP correlates on) is
stable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.base import Phase, QoSClass, ResourceDemand, WorkloadTrace

__all__ = ["RodiniaProfile", "RODINIA_PROFILES", "RODINIA_SUITE_ORDER", "make_rodinia_trace", "suite_timeline"]


@dataclass(frozen=True)
class RodiniaProfile:
    """Shape parameters for one Rodinia application."""

    name: str
    base_ms: float          # nominal uncontended runtime
    steady_sm: float        # SM demand between peaks
    peak_sm: float          # SM demand during surges
    steady_mem_mb: float
    peak_mem_mb: float
    load_rx_mbps: float     # input-transfer burst bandwidth
    store_tx_mbps: float
    iter_ms: float          # length of one compute iteration
    peak_fraction: float = 0.06   # fraction of runtime at peak demand


#: Calibrated to the relative magnitudes visible in Fig. 3.  Peak memory
#: stays in the hundreds-of-MB to ~2.5 GB band (Fig. 3 right panel tops
#: out near 2 500 MB), steady demand is far lower, and bandwidth bursts
#: reach a few GB/s against a near-zero median.
RODINIA_PROFILES: dict[str, RodiniaProfile] = {
    "leukocyte": RodiniaProfile("leukocyte", 80.0, 0.40, 0.95, 350.0, 1800.0, 4000.0, 900.0, 16.0),
    "heartwall": RodiniaProfile("heartwall", 20.0, 0.45, 0.90, 420.0, 2100.0, 4800.0, 1200.0, 5.0),
    "particlefilter": RodiniaProfile("particlefilter", 40.0, 0.22, 0.85, 180.0, 1400.0, 3600.0, 700.0, 8.0),
    "mummergpu": RodiniaProfile("mummergpu", 40.0, 0.35, 0.98, 600.0, 2500.0, 5200.0, 1500.0, 10.0),
    "pathfinder": RodiniaProfile("pathfinder", 140.0, 0.18, 0.70, 150.0, 900.0, 2500.0, 500.0, 20.0),
    "lud": RodiniaProfile("lud", 20.0, 0.28, 0.80, 200.0, 1100.0, 3000.0, 600.0, 5.0),
    "kmeans": RodiniaProfile("kmeans", 70.0, 0.30, 0.75, 260.0, 1300.0, 2800.0, 650.0, 12.0),
    "streamcluster": RodiniaProfile("streamcluster", 280.0, 0.15, 0.65, 120.0, 800.0, 2200.0, 450.0, 30.0),
    "myocyte": RodiniaProfile("myocyte", 60.0, 0.10, 0.60, 80.0, 700.0, 1800.0, 350.0, 10.0),
}

#: The eight apps run sequentially for Fig. 3, in gridline order.
RODINIA_SUITE_ORDER = (
    "leukocyte",
    "heartwall",
    "particlefilter",
    "mummergpu",
    "pathfinder",
    "lud",
    "kmeans",
    "streamcluster",
)


def make_rodinia_trace(
    name: str,
    rng: np.random.Generator,
    scale: float = 1.0,
    requested_headroom: float = 1.25,
    mem_scale: float = 1.0,
) -> WorkloadTrace:
    """Build one batch pod's trace from a profile.

    Parameters
    ----------
    name:
        Profile key from :data:`RODINIA_PROFILES`.
    rng:
        Source of per-instance jitter (runtimes +-15 %, demands +-10 %).
    scale:
        Multiplies the runtime (problem size).  Demands are unchanged —
        the paper notes consumption stays low "without increasing the
        problem size"; bigger problems run longer, not hotter.
    requested_headroom:
        How much the user over-requests beyond true peak memory
        (Observation 2: applications overstate their requirements).
    mem_scale:
        Multiplies the memory footprint.  The single-node
        characterization (Fig. 3) uses 1.0 — the stock Rodinia problem
        sizes touch at most ~2.5 GB of a P100; the cluster experiments
        scale the working sets up (datacenter batch jobs fill a larger
        share of device memory) so that packing decisions face real
        capacity pressure.
    """
    try:
        p = RODINIA_PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown Rodinia app {name!r}; known: {sorted(RODINIA_PROFILES)}") from None

    jitter = lambda v, frac: float(v * rng.uniform(1.0 - frac, 1.0 + frac))  # noqa: E731
    total_ms = max(jitter(p.base_ms * scale, 0.15), 2.0)
    steady_sm = min(jitter(p.steady_sm, 0.10), 1.0)
    peak_sm = min(jitter(p.peak_sm, 0.05), 1.0)
    steady_mem = jitter(p.steady_mem_mb, 0.10) * mem_scale
    peak_mem = max(jitter(p.peak_mem_mb, 0.10) * mem_scale, steady_mem * 1.5)

    phases: list[Phase] = []
    # -- load phase: input transfer dominates, compute near-idle ----------
    load_ms = max(total_ms * 0.08, 0.5)
    phases.append(
        Phase(load_ms, ResourceDemand(sm=0.03, mem_mb=steady_mem * 0.5, tx_mbps=10.0, rx_mbps=jitter(p.load_rx_mbps, 0.10)))
    )
    # -- compute iterations: steady body with a bandwidth-led peak --------
    body_ms = total_ms * 0.86
    iter_ms = max(jitter(p.iter_ms, 0.10), 1.0)
    n_iters = max(int(body_ms / iter_ms), 1)
    # Peak occupies `peak_fraction` of total runtime, split across iters;
    # each peak is preceded by a short rx prelude (the early marker PP
    # exploits: bandwidth rises a few ms before compute/memory).
    peak_ms_per_iter = max(total_ms * p.peak_fraction / n_iters, 0.2)
    prelude_ms = max(peak_ms_per_iter * 0.5, 0.1)
    steady_ms = max(iter_ms - peak_ms_per_iter - prelude_ms, 0.2)
    for _ in range(n_iters):
        phases.append(
            Phase(steady_ms, ResourceDemand(sm=steady_sm, mem_mb=steady_mem, tx_mbps=5.0, rx_mbps=8.0))
        )
        phases.append(
            Phase(
                prelude_ms,
                ResourceDemand(sm=steady_sm, mem_mb=steady_mem, tx_mbps=5.0, rx_mbps=jitter(p.load_rx_mbps * 0.6, 0.15)),
            )
        )
        phases.append(
            Phase(peak_ms_per_iter, ResourceDemand(sm=peak_sm, mem_mb=peak_mem, tx_mbps=20.0, rx_mbps=30.0))
        )
    # -- write-back phase --------------------------------------------------
    store_ms = max(total_ms * 0.06, 0.3)
    phases.append(
        Phase(store_ms, ResourceDemand(sm=0.02, mem_mb=steady_mem * 0.4, tx_mbps=jitter(p.store_tx_mbps, 0.10), rx_mbps=5.0))
    )

    return WorkloadTrace(
        name=name,
        phases=phases,
        qos_class=QoSClass.BATCH,
        requested_mem_mb=min(peak_mem * requested_headroom, 16_384.0),
    )


def suite_timeline(
    rng: np.random.Generator | None = None,
    step_ms: float = 1.0,
    scale: float = 1.0,
) -> dict[str, np.ndarray]:
    """Fig. 3's input: the eight-app suite run back-to-back on one GPU.

    Returns arrays ``time_ms``, ``sm_util``, ``mem_used_mb``,
    ``tx_bytes``, ``rx_bytes`` plus ``boundaries_ms`` (the gridlines
    between consecutive benchmarks).
    """
    rng = rng or np.random.default_rng(42)
    times: list[np.ndarray] = []
    sm: list[np.ndarray] = []
    mem: list[np.ndarray] = []
    tx: list[np.ndarray] = []
    rx: list[np.ndarray] = []
    boundaries = [0.0]
    offset = 0.0
    for name in RODINIA_SUITE_ORDER:
        trace = make_rodinia_trace(name, rng, scale=scale)
        samples = trace.sample_series(step_ms)
        n = len(samples["sm"])
        times.append(offset + np.arange(n) * step_ms)
        sm.append(samples["sm"])
        mem.append(samples["mem_mb"])
        tx.append(samples["tx_mbps"])
        rx.append(samples["rx_mbps"])
        offset += trace.total_ms
        boundaries.append(offset)
    return {
        "time_ms": np.concatenate(times),
        "sm_util": np.concatenate(sm),
        "mem_used_mb": np.concatenate(mem),
        "tx_mbps": np.concatenate(tx),
        "rx_mbps": np.concatenate(rx),
        "boundaries_ms": np.asarray(boundaries),
    }
