"""Djinn & Tonic-like DNN inference queries (paper Sec. II-C2, Fig. 4).

User-facing ML inference services hosted in containers: short-lived
(tens of milliseconds), arriving in bursts, latency-critical with a
150 ms QoS threshold.  Fig. 4's key facts, which these models
reproduce:

* single-query memory footprints are under ~10 % of a 16 GB device;
* even at batch size 128, most queries stay under 50 % of device
  memory — so inference pods are prime co-location candidates;
* TensorFlow's default allocator nonetheless earmarks ~99 % of device
  memory ("TF" series in Fig. 4), causing severe internal
  fragmentation unless the framework API is exposed to the scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.base import Phase, QoSClass, ResourceDemand, WorkloadTrace

__all__ = [
    "InferenceProfile",
    "DJINN_TONIC_PROFILES",
    "TF_EARMARK_FRACTION",
    "QOS_THRESHOLD_MS",
    "inference_memory_mb",
    "tf_managed_memory_mb",
    "make_inference_trace",
]

#: End-to-end latency SLO for user-facing queries (Sec. VI-B).
QOS_THRESHOLD_MS = 150.0

#: Fraction of device memory TensorFlow's default allocator grabs.
TF_EARMARK_FRACTION = 0.99

#: Device size Fig. 4 normalizes against (P100, 16 GB).
DEVICE_MEM_MB = 16_384.0


@dataclass(frozen=True)
class InferenceProfile:
    """Shape of one Djinn & Tonic query class.

    ``base_mem_mb`` is the model-weights footprint (batch-independent);
    ``per_query_mb`` the activation cost per batched query;
    ``base_latency_ms`` the single-query device time.
    """

    name: str
    kind: str              # "image" | "speech" | "text"
    base_mem_mb: float
    per_query_mb: float
    base_latency_ms: float
    sm_demand: float


#: Six query classes shown in Fig. 4 (abbreviations from the D&T suite):
#: face = facial recognition, imc = image classification,
#: key = keyword spotting (speech), ner = named-entity recognition,
#: pos = part-of-speech tagging, chk = sentence chunking.
DJINN_TONIC_PROFILES: dict[str, InferenceProfile] = {
    "face": InferenceProfile("face", "image", 950.0, 38.0, 35.0, 0.55),
    "imc": InferenceProfile("imc", "image", 1250.0, 52.0, 45.0, 0.65),
    "key": InferenceProfile("key", "speech", 420.0, 18.0, 30.0, 0.40),
    "ner": InferenceProfile("ner", "text", 240.0, 9.0, 12.0, 0.30),
    "pos": InferenceProfile("pos", "text", 210.0, 8.0, 10.0, 0.28),
    "chk": InferenceProfile("chk", "text", 260.0, 10.0, 14.0, 0.32),
}


def inference_memory_mb(name: str, batch_size: int) -> float:
    """Actual device memory needed by a query class at a batch size."""
    if batch_size < 1:
        raise ValueError(f"batch size must be >= 1, got {batch_size}")
    p = DJINN_TONIC_PROFILES[name]
    return p.base_mem_mb + p.per_query_mb * batch_size


def tf_managed_memory_mb(device_mem_mb: float = DEVICE_MEM_MB) -> float:
    """Memory TensorFlow earmarks regardless of demand (Fig. 4's "TF")."""
    return TF_EARMARK_FRACTION * device_mem_mb


def make_inference_trace(
    name: str,
    rng: np.random.Generator,
    batch_size: int = 1,
    tf_managed: bool = False,
    requested_headroom: float = 1.2,
) -> WorkloadTrace:
    """Build one inference pod's trace.

    The trace has the three-beat structure PP exploits: an input/weights
    transfer burst (rx peak), a short compute phase (SM + memory peak a
    few ms after the bandwidth peak), and a tiny result write-back.

    With ``tf_managed=True`` the pod *requests* the TF earmark (99 % of
    the device) even though it uses far less — reproducing the internal
    fragmentation of Fig. 4 that motivates exposing framework APIs to
    the scheduler (Observation 5).
    """
    p = DJINN_TONIC_PROFILES[name]
    mem = inference_memory_mb(name, batch_size)
    latency = float(p.base_latency_ms * (0.35 + 0.65 * np.sqrt(batch_size)) * rng.uniform(0.9, 1.1))
    load_ms = max(latency * 0.25, 0.5)
    compute_ms = max(latency * 0.65, 0.5)
    store_ms = max(latency * 0.10, 0.2)

    phases = [
        Phase(load_ms, ResourceDemand(sm=0.05, mem_mb=p.base_mem_mb, tx_mbps=20.0, rx_mbps=3500.0)),
        Phase(compute_ms, ResourceDemand(sm=min(p.sm_demand * rng.uniform(0.9, 1.1), 1.0), mem_mb=mem, tx_mbps=30.0, rx_mbps=50.0)),
        Phase(store_ms, ResourceDemand(sm=0.03, mem_mb=p.base_mem_mb * 0.8, tx_mbps=600.0, rx_mbps=10.0)),
    ]
    requested = tf_managed_memory_mb() if tf_managed else min(mem * requested_headroom, DEVICE_MEM_MB)
    return WorkloadTrace(
        name=name,
        phases=phases,
        qos_class=QoSClass.LATENCY_CRITICAL,
        requested_mem_mb=requested,
    )
