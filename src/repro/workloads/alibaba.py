"""Synthetic Alibaba-trace statistics and arrival process (Sec. II-B, III).

The paper mines the 2017 Alibaba production CPU trace (1 300 machines,
12 951 batch jobs, 11 089 containers over 12 h) for three things it then
builds the GPU evaluation on:

1. **Arrival dynamics** — task inter-arrival times drive the load
   generator for the ten-node cluster (Sec. III).
2. **The 80/20 Pareto mix** — 80 % of jobs are short-lived
   latency-critical queries consuming ~20 % of resources; the rest are
   long batch jobs.
3. **Correlation structure** (Fig. 2) — latency-critical containers'
   utilization metrics are essentially uncorrelated (unpredictable),
   while batch jobs' metrics co-move strongly (core vs memory, core vs
   1/5/15-second load averages), which is what makes proactive
   harvesting feasible (Observation 3).

Since the original trace cannot be redistributed, this module
*synthesizes* populations with the published statistics: utilization
CDFs matching Fig. 2b (average CPU ~47 %, average memory ~76 % of
request, half of pods under ~45 % of provisioned memory), a Gaussian
copula imposing the Fig. 2a/2c correlation structure, and a
doubly-stochastic arrival process with diurnal modulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "LATENCY_METRICS",
    "BATCH_METRICS",
    "synthesize_latency_containers",
    "synthesize_batch_jobs",
    "batch_task_series",
    "utilization_cdfs",
    "ArrivalProcess",
    "pareto_split",
]

#: Eight per-container metrics in the latency-critical heatmap (Fig. 2a).
LATENCY_METRICS = (
    "cpu_avg",
    "cpu_max",
    "mem_avg",
    "mem_max",
    "net_in",
    "net_out",
    "disk_io",
    "load_1",
)

#: Six per-job metrics in the batch heatmap (Fig. 2c).
BATCH_METRICS = ("core_util", "mem_util", "load_1", "load_5", "load_15", "disk_io")


def _gaussian_copula(rng: np.random.Generator, corr: np.ndarray, n: int) -> np.ndarray:
    """Draw ``n`` samples of correlated uniforms via a Gaussian copula."""
    # Nearest-PSD safeguard: tiny negative eigenvalues from hand-written
    # correlation matrices would make cholesky fail.
    w, v = np.linalg.eigh(corr)
    w = np.clip(w, 1e-9, None)
    corr_psd = (v * w) @ v.T
    d = np.sqrt(np.diag(corr_psd))
    corr_psd = corr_psd / np.outer(d, d)
    z = rng.multivariate_normal(np.zeros(len(corr)), corr_psd, size=n, method="cholesky")
    from scipy.stats import norm

    return norm.cdf(z)


# Target rank-correlation structure for latency-critical containers:
# weak, patternless (short-lived tasks give no usable signal).
_LATENCY_CORR = np.array(
    [
        # cpu_a cpu_m mem_a mem_m net_i net_o disk  load1
        [1.00, 0.35, 0.10, 0.05, 0.15, 0.12, 0.05, 0.30],
        [0.35, 1.00, 0.05, 0.12, 0.10, 0.08, 0.02, 0.20],
        [0.10, 0.05, 1.00, 0.40, 0.05, 0.03, 0.10, 0.08],
        [0.05, 0.12, 0.40, 1.00, 0.02, 0.04, 0.08, 0.05],
        [0.15, 0.10, 0.05, 0.02, 1.00, 0.25, 0.05, 0.10],
        [0.12, 0.08, 0.03, 0.04, 0.25, 1.00, 0.04, 0.08],
        [0.05, 0.02, 0.10, 0.08, 0.05, 0.04, 1.00, 0.05],
        [0.30, 0.20, 0.08, 0.05, 0.10, 0.08, 0.05, 1.00],
    ]
)

# Batch jobs: strong positive core<->mem and core<->load correlations
# (plus one negative pair: disk-bound phases depress core utilization) —
# the "early markers" CBP keys on.
_BATCH_CORR = np.array(
    [
        # core  mem   l1    l5    l15   disk
        [1.00, 0.82, 0.90, 0.85, 0.78, -0.45],
        [0.82, 1.00, 0.75, 0.72, 0.68, -0.35],
        [0.90, 0.75, 1.00, 0.93, 0.85, -0.40],
        [0.85, 0.72, 0.93, 1.00, 0.92, -0.38],
        [0.78, 0.68, 0.85, 0.92, 1.00, -0.35],
        [-0.45, -0.35, -0.40, -0.38, -0.35, 1.00],
    ]
)


def synthesize_latency_containers(n: int = 11_089, rng: np.random.Generator | None = None) -> dict[str, np.ndarray]:
    """Per-container metric values for the latency-critical population.

    Marginals are Beta distributions tuned to Fig. 2b: mean average-CPU
    ~0.47, mean average-memory ~0.45 of request with max-memory pushing
    toward ~0.76.
    """
    rng = rng or np.random.default_rng(0)
    u = _gaussian_copula(rng, _LATENCY_CORR, n)
    from scipy.stats import beta

    cols = {
        "cpu_avg": beta.ppf(u[:, 0], 2.4, 2.7),    # mean ~0.47
        "cpu_max": beta.ppf(u[:, 1], 4.5, 1.8),    # mean ~0.71, peaked high
        "mem_avg": beta.ppf(u[:, 2], 2.0, 2.4),    # median ~0.45
        "mem_max": beta.ppf(u[:, 3], 4.8, 1.5),    # mean ~0.76
        "net_in": beta.ppf(u[:, 4], 1.5, 4.0),
        "net_out": beta.ppf(u[:, 5], 1.5, 4.5),
        "disk_io": beta.ppf(u[:, 6], 1.2, 5.0),
        "load_1": beta.ppf(u[:, 7], 2.0, 3.0),
    }
    return cols


def synthesize_batch_jobs(n: int = 12_951, rng: np.random.Generator | None = None) -> dict[str, np.ndarray]:
    """Per-job metric values for the batch population (Fig. 2c's input)."""
    rng = rng or np.random.default_rng(1)
    u = _gaussian_copula(rng, _BATCH_CORR, n)
    from scipy.stats import beta

    cols = {
        "core_util": beta.ppf(u[:, 0], 2.2, 2.3),
        "mem_util": beta.ppf(u[:, 1], 2.5, 2.0),
        "load_1": beta.ppf(u[:, 2], 2.0, 2.2),
        "load_5": beta.ppf(u[:, 3], 2.0, 2.2),
        "load_15": beta.ppf(u[:, 4], 2.0, 2.2),
        "disk_io": beta.ppf(u[:, 5], 1.5, 3.5),
    }
    return cols


def batch_task_series(
    duration_s: float = 120.0,
    step_s: float = 1.0,
    rng: np.random.Generator | None = None,
) -> dict[str, np.ndarray]:
    """One batch task's utilization *time series* with Fig. 2c structure.

    ``core_util`` follows a mean-reverting AR(1) with occasional demand
    surges; ``mem_util`` tracks it with lag and noise; ``load_1/5/15``
    are trailing means of core over 1/5/15-step windows — so the
    "datacenter load could be accurately predicted up to 15 seconds
    ahead" property (Observation 3) holds by construction.
    """
    rng = rng or np.random.default_rng(2)
    n = int(duration_s / step_s)
    core = np.empty(n)
    level = 0.35
    for i in range(n):
        level += 0.25 * (0.35 - level) + rng.normal(0, 0.05)
        if rng.random() < 0.04:       # demand surge
            level = min(level + rng.uniform(0.3, 0.55), 1.0)
        core[i] = np.clip(level, 0.02, 1.0)
    lagged = np.roll(core, 2)
    lagged[:2] = core[:2]
    mem = np.clip(0.75 * lagged + 0.15 + rng.normal(0, 0.03, n), 0.0, 1.0)

    def trailing_mean(x: np.ndarray, w: int) -> np.ndarray:
        c = np.cumsum(np.insert(x, 0, 0.0))
        out = np.empty(len(x))
        for i in range(len(x)):
            lo = max(i - w + 1, 0)
            out[i] = (c[i + 1] - c[lo]) / (i + 1 - lo)
        return out

    return {
        "time_s": np.arange(n) * step_s,
        "core_util": core,
        "mem_util": mem,
        "load_1": trailing_mean(core, 1),
        "load_5": trailing_mean(core, 5),
        "load_15": trailing_mean(core, 15),
        "disk_io": np.clip(0.5 - 0.35 * core + rng.normal(0, 0.05, n), 0.0, 1.0),
    }


def utilization_cdfs(containers: dict[str, np.ndarray]) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """Empirical CDFs of the four Fig. 2b series.

    Returns ``label -> (x, F(x))`` for max/avg CPU and memory
    utilization, each sorted ascending.
    """
    out = {}
    for label, key in (
        ("max_cpu", "cpu_max"),
        ("avg_cpu", "cpu_avg"),
        ("max_mem", "mem_max"),
        ("avg_mem", "mem_avg"),
    ):
        x = np.sort(containers[key])
        f = np.arange(1, len(x) + 1) / len(x)
        out[label] = (x, f)
    return out


@dataclass
class ArrivalProcess:
    """Doubly-stochastic arrival process modeled on the Alibaba trace.

    Inter-arrivals are lognormal (heavy-ish tail => bursts) around a
    base rate that is modulated by a diurnal sinusoid.  ``burstiness``
    is the coefficient of variation of the inter-arrival distribution.
    """

    rate_per_s: float = 2.0
    burstiness: float = 1.0
    diurnal_amplitude: float = 0.3
    diurnal_period_s: float = 3_600.0
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(3))

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError("rate must be positive")
        if self.burstiness <= 0:
            raise ValueError("burstiness must be positive")
        # lognormal(mu, s): cov = sqrt(exp(s^2) - 1)  =>  s from burstiness
        self._sigma = float(np.sqrt(np.log(1.0 + self.burstiness**2)))

    def _instantaneous_rate(self, t_s: float) -> float:
        mod = 1.0 + self.diurnal_amplitude * np.sin(2 * np.pi * t_s / self.diurnal_period_s)
        return max(self.rate_per_s * mod, 1e-6)

    def sample_until(self, duration_s: float) -> np.ndarray:
        """Arrival times (seconds) in ``[0, duration_s)``."""
        arrivals: list[float] = []
        t = 0.0
        while True:
            rate = self._instantaneous_rate(t)
            mean_gap = 1.0 / rate
            mu = np.log(mean_gap) - self._sigma**2 / 2.0
            gap = float(self.rng.lognormal(mu, self._sigma))
            t += gap
            if t >= duration_s:
                break
            arrivals.append(t)
        return np.asarray(arrivals)


def pareto_split(n: int, rng: np.random.Generator, short_fraction: float = 0.8) -> np.ndarray:
    """Boolean mask: True = short-lived latency-critical task.

    The paper fixes the batch/interactive cut-off by the Pareto
    principle — 80 % of jobs are short-lived and consume only 20 % of
    the resources.
    """
    if not (0.0 < short_fraction < 1.0):
        raise ValueError("short_fraction must be in (0, 1)")
    return rng.random(n) < short_fraction
