"""Application mixes (paper Table I) and the cluster load generator.

Three mixes of Rodinia batch jobs and Djinn & Tonic inference queries,
binned by sustained GPU load and by coefficient-of-variation of that
load, scheduled onto the cluster with Alibaba-trace arrival dynamics
and the 80/20 Pareto short/long split (Sec. III).

=========  =============================================  ==========  ====  ====
Mix        Batch apps                                     LC queries  Load  COV
=========  =============================================  ==========  ====  ====
app-mix-1  leukocyte heartwall particlefilter mummergpu   face key    HIGH  LOW
app-mix-2  pathfinder lud kmeans streamcluster            chk ner pos MED   MED
app-mix-3  particlefilter streamcluster lud myocyte       imc face    LOW   HIGH
=========  =============================================  ==========  ====  ====
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kube.pod import PodSpec
from repro.workloads.alibaba import ArrivalProcess, pareto_split
from repro.workloads.djinn_tonic import QOS_THRESHOLD_MS, make_inference_trace
from repro.workloads.rodinia import make_rodinia_trace

__all__ = ["AppMix", "APP_MIXES", "generate_appmix_workload", "WorkloadItem"]

#: One generated submission: (arrival time in ms, pod spec).
WorkloadItem = tuple[float, PodSpec]


@dataclass(frozen=True)
class AppMix:
    """One Table-I bin."""

    name: str
    batch_apps: tuple[str, ...]
    lc_queries: tuple[str, ...]
    load: str                 # HIGH | MED | LOW
    cov: str                  # LOW | MED | HIGH
    arrival_rate_per_s: float
    burstiness: float         # COV of inter-arrival times
    batch_scale: float        # Rodinia runtime multiplier (problem size)
    batch_mem_scale: float = 3.0   # Rodinia working-set multiplier


APP_MIXES: dict[str, AppMix] = {
    "app-mix-1": AppMix(
        name="app-mix-1",
        batch_apps=("leukocyte", "heartwall", "particlefilter", "mummergpu"),
        lc_queries=("face", "key"),
        load="HIGH",
        cov="LOW",
        arrival_rate_per_s=12.0,
        burstiness=0.4,
        batch_scale=65.0,
    ),
    "app-mix-2": AppMix(
        name="app-mix-2",
        batch_apps=("pathfinder", "lud", "kmeans", "streamcluster"),
        lc_queries=("chk", "ner", "pos"),
        load="MED",
        cov="MED",
        arrival_rate_per_s=6.0,
        burstiness=1.0,
        batch_scale=40.0,
    ),
    "app-mix-3": AppMix(
        name="app-mix-3",
        batch_apps=("particlefilter", "streamcluster", "lud", "myocyte"),
        lc_queries=("imc", "face"),
        load="LOW",
        cov="HIGH",
        arrival_rate_per_s=2.5,
        burstiness=2.2,
        batch_scale=30.0,
    ),
}


def generate_appmix_workload(
    mix: AppMix | str,
    duration_s: float = 30.0,
    seed: int = 0,
    load_factor: float = 1.0,
    underrequest_fraction: float = 0.3,
    tf_managed_fraction: float = 0.15,
) -> list[WorkloadItem]:
    """Generate one mix's submission schedule.

    Parameters
    ----------
    mix:
        An :class:`AppMix` or its Table-I name.
    duration_s:
        Length of the arrival window (jobs may finish after it).
    seed:
        Workload RNG seed — fixed seed, identical workload, so scheduler
        comparisons are paired.
    load_factor:
        Scales the arrival rate (sensitivity sweeps).
    underrequest_fraction:
        Fraction of batch pods whose users *under*-state peak memory
        (Observation 2's flip side): these are the requests a
        utilization-agnostic packer gets burned by.
    tf_managed_fraction:
        Fraction of inference services running TensorFlow's default
        allocator, which earmarks ~99 % of device memory regardless of
        need (Fig. 4's "TF" series).  A request-honouring scheduler can
        only place such a pod on an *empty* device — the internal
        memory fragmentation of Observation 5 — while utilization-aware
        provisioning right-sizes it from the image's observed profile.

    Returns
    -------
    list of (arrival_ms, PodSpec), sorted by arrival time.
    """
    if isinstance(mix, str):
        mix = APP_MIXES[mix]
    rng = np.random.default_rng(seed)
    arrivals_s = ArrivalProcess(
        rate_per_s=mix.arrival_rate_per_s * load_factor,
        burstiness=mix.burstiness,
        rng=np.random.default_rng(seed + 1),
    ).sample_until(duration_s)
    is_short = pareto_split(len(arrivals_s), rng)

    items: list[WorkloadItem] = []
    for i, (t_s, short) in enumerate(zip(arrivals_s, is_short)):
        if short:
            query = str(rng.choice(mix.lc_queries))
            # Online serving batches conservatively: large batches trade
            # latency for throughput and would blow the 150 ms SLO by
            # construction (Fig. 4's 1-128 sweep is a memory study, not
            # a serving configuration).
            batch_size = int(2 ** rng.integers(0, 4))
            trace = make_inference_trace(
                query,
                rng,
                batch_size=batch_size,
                tf_managed=bool(rng.random() < tf_managed_fraction),
            )
            spec = PodSpec(
                name=f"{mix.name}-lc-{i}",
                image=f"djinn/{query}",
                trace=trace,
                qos_threshold_ms=QOS_THRESHOLD_MS,
            )
        else:
            app = str(rng.choice(mix.batch_apps))
            if rng.random() < underrequest_fraction:
                headroom = float(rng.uniform(0.4, 0.7))
            else:
                headroom = float(rng.uniform(1.1, 1.6))
            trace = make_rodinia_trace(
                app,
                rng,
                scale=mix.batch_scale,
                requested_headroom=headroom,
                mem_scale=mix.batch_mem_scale,
            )
            spec = PodSpec(name=f"{mix.name}-batch-{i}", image=f"rodinia/{app}", trace=trace)
        items.append((float(t_s) * 1_000.0, spec))
    return items
