"""Workload trace model.

Every application in the reproduction — Rodinia batch kernels, Djinn &
Tonic inference queries, synthetic Alibaba containers — is described by
a :class:`WorkloadTrace`: a sequence of :class:`Phase` segments, each
demanding a level of the four GPU resources the paper's Knots monitor
samples (SM occupancy, device memory, PCIe transmit/receive bandwidth).

Demand is indexed by *progress* (milliseconds of work completed), not
wall-clock time: when the SM is contended the kubelet grants a pod only
a share of its demand and progress advances proportionally slower.
This is how co-location interference and slowdown emerge in the
simulator without any per-application special-casing.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Sequence

import numpy as np

__all__ = ["Phase", "QoSClass", "ResourceDemand", "WorkloadTrace"]


class QoSClass(Enum):
    """Scheduling class of a pod, mirroring the paper's workload split."""

    LATENCY_CRITICAL = "latency-critical"
    BATCH = "batch"


@dataclass(frozen=True)
class ResourceDemand:
    """Instantaneous resource demand of one container.

    Attributes
    ----------
    sm:
        Fraction of the GPU's streaming multiprocessors demanded, in
        [0, 1].  Time-shared under contention.
    mem_mb:
        Device memory resident, in MB.  Space-shared; the sum across
        co-located containers must fit in the device.
    tx_mbps / rx_mbps:
        PCIe transmit / receive bandwidth, MB/s.
    """

    sm: float
    mem_mb: float
    tx_mbps: float
    rx_mbps: float

    def scaled(self, factor: float) -> "ResourceDemand":
        """Uniformly scale all demands (used by load generators)."""
        return ResourceDemand(
            sm=self.sm * factor,
            mem_mb=self.mem_mb * factor,
            tx_mbps=self.tx_mbps * factor,
            rx_mbps=self.rx_mbps * factor,
        )


@dataclass(frozen=True)
class Phase:
    """One execution phase with constant resource demand."""

    duration_ms: float
    demand: ResourceDemand

    def __post_init__(self) -> None:
        if self.duration_ms <= 0:
            raise ValueError(f"phase duration must be positive, got {self.duration_ms}")
        if not (0.0 <= self.demand.sm <= 1.0):
            raise ValueError(f"SM demand must be in [0, 1], got {self.demand.sm}")
        if self.demand.mem_mb < 0:
            raise ValueError("memory demand must be non-negative")


class WorkloadTrace:
    """A piecewise-constant resource demand trace.

    Parameters
    ----------
    name:
        Application name (e.g. ``"lud"``, ``"face"``).
    phases:
        Ordered phase list.  Total work is the sum of phase durations.
    qos_class:
        Latency-critical or batch.
    requested_mem_mb:
        Memory the *user* requests for the container.  Applications
        overstate their needs (Observation 2); defaults to the peak of
        the trace if not given.
    """

    def __init__(
        self,
        name: str,
        phases: Sequence[Phase],
        qos_class: QoSClass = QoSClass.BATCH,
        requested_mem_mb: float | None = None,
    ) -> None:
        if not phases:
            raise ValueError("a workload needs at least one phase")
        self.name = name
        self.phases: tuple[Phase, ...] = tuple(phases)
        self.qos_class = qos_class
        # Cumulative end-times of phases, for O(log n) progress lookup.
        self._cum = np.cumsum([p.duration_ms for p in self.phases])
        # Lazily-compiled phase table for the array-native execution
        # quantum (see :meth:`demand_table`).
        self._table: tuple[np.ndarray, np.ndarray] | None = None
        self.requested_mem_mb = (
            float(requested_mem_mb) if requested_mem_mb is not None else self.peak_mem_mb()
        )

    # -- basic properties -------------------------------------------------

    @property
    def total_ms(self) -> float:
        """Total work in the trace, in milliseconds of uncontended execution."""
        return float(self._cum[-1])

    def demand_at(self, progress_ms: float) -> ResourceDemand:
        """Demand after ``progress_ms`` of work has been completed."""
        if progress_ms < 0:
            raise ValueError("progress cannot be negative")
        if progress_ms >= self._cum[-1]:
            return self.phases[-1].demand
        idx = int(np.searchsorted(self._cum, progress_ms, side="right"))
        return self.phases[idx].demand

    def demand_table(self) -> tuple[np.ndarray, np.ndarray]:
        """Compile the trace into arrays for batched progress lookups.

        Returns ``(cum_ends, rows)``: ``cum_ends`` is the float64
        cumulative phase end-times (``cum_ends[-1] == total_ms``) and
        ``rows`` is a ``(num_phases, 4)`` float64 matrix whose columns
        are ``sm, mem_mb, tx_mbps, rx_mbps`` — the exact values
        :meth:`demand_at` returns for a progress inside each phase.
        Compiled once and cached; the arrays are shared, do not mutate.
        """
        table = self._table
        if table is None:
            cum = np.asarray(self._cum, dtype=float)
            rows = np.array(
                [
                    (p.demand.sm, p.demand.mem_mb, p.demand.tx_mbps, p.demand.rx_mbps)
                    for p in self.phases
                ],
                dtype=float,
            )
            self._table = table = (cum, rows)
        return table

    # -- summary statistics used by the schedulers ------------------------

    def peak_mem_mb(self) -> float:
        """Worst-case device memory across the trace."""
        return max(p.demand.mem_mb for p in self.phases)

    def peak_sm(self) -> float:
        return max(p.demand.sm for p in self.phases)

    def mem_percentile(self, q: float) -> float:
        """Duration-weighted percentile of the memory series.

        CBP resizes containers to the 80th percentile of this
        distribution (``q=80``) rather than the peak.
        """
        return self._weighted_percentile([p.demand.mem_mb for p in self.phases], q)

    def sm_percentile(self, q: float) -> float:
        return self._weighted_percentile([p.demand.sm for p in self.phases], q)

    def _weighted_percentile(self, values: Iterable[float], q: float) -> float:
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        vals = np.asarray(list(values), dtype=float)
        weights = np.asarray([p.duration_ms for p in self.phases], dtype=float)
        order = np.argsort(vals)
        vals, weights = vals[order], weights[order]
        cdf = np.cumsum(weights) / weights.sum()
        idx = int(np.searchsorted(cdf, q / 100.0, side="left"))
        return float(vals[min(idx, len(vals) - 1)])

    def mean_mem_mb(self) -> float:
        """Duration-weighted mean memory footprint."""
        mems = np.asarray([p.demand.mem_mb for p in self.phases])
        weights = np.asarray([p.duration_ms for p in self.phases])
        return float(np.average(mems, weights=weights))

    # -- sampled series (for correlation analysis) ------------------------

    def sample_series(self, step_ms: float = 100.0) -> dict[str, np.ndarray]:
        """Sample the trace at a fixed cadence.

        Returns a dict of equal-length arrays keyed ``sm``, ``mem_mb``,
        ``tx_mbps``, ``rx_mbps``.  Used by CBP to build correlation
        profiles for an application class.
        """
        if step_ms <= 0:
            raise ValueError("step must be positive")
        times = np.arange(0.0, self.total_ms, step_ms)
        sm = np.empty(times.shape)
        mem = np.empty(times.shape)
        tx = np.empty(times.shape)
        rx = np.empty(times.shape)
        for i, t in enumerate(times):
            d = self.demand_at(float(t))
            sm[i], mem[i], tx[i], rx[i] = d.sm, d.mem_mb, d.tx_mbps, d.rx_mbps
        return {"sm": sm, "mem_mb": mem, "tx_mbps": tx, "rx_mbps": rx}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkloadTrace({self.name!r}, {len(self.phases)} phases, "
            f"{self.total_ms:.0f} ms, peak {self.peak_mem_mb():.0f} MB, "
            f"{self.qos_class.value})"
        )
