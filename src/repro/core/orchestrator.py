"""Kube-Knots: the integrated orchestrator.

Binds the Kubernetes substrate (API server + kubelets + device
plugins), the Knots monitoring runtime, and one placement policy.  Each
*scheduling pass* it assembles a :class:`SchedulingContext` from the
Knots aggregator, asks the policy for actions, and applies them through
the substrate — bind via the API server and kubelet, resize via the
device plugin's docker-resize path, sleep/wake on the devices.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.quantum import QuantumEngine
from repro.core.knots import Knots, KnotsConfig
from repro.core.schedulers.base import (
    Action,
    Bind,
    Resize,
    ResidentPod,
    Scheduler,
    SchedulingContext,
    Sleep,
    Wake,
)
from repro.kube.api import APIServer
from repro.kube.device_plugin import SharedGPUDevicePlugin
from repro.kube.kubelet import Kubelet, KubeletConfig
from repro.obs.context import NOOP, Observability

__all__ = ["KubeKnots"]


class KubeKnots:
    """Kubernetes + Knots + a placement policy."""

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        knots_config: KnotsConfig | None = None,
        kubelet_config: KubeletConfig | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.obs = obs or NOOP
        scheduler.bind_observability(self.obs)
        self.api = APIServer()
        self.knots = Knots(cluster, knots_config, obs=self.obs)
        self.kubelets: dict[str, Kubelet] = {}
        for node in cluster:
            plugin = SharedGPUDevicePlugin(node, sharing_enabled=scheduler.requires_sharing)
            self.kubelets[node.node_id] = Kubelet(
                node, self.api, plugin, kubelet_config, obs=self.obs
            )
        #: Tick-skip bookkeeping, indexed like ``cluster.state.node_epoch``
        #: (both follow cluster node order).  A node is stepped when its
        #: epoch moved (external mutation) or its quiet horizon passed.
        self._kubelet_list: list[Kubelet] = list(self.kubelets.values())
        n_nodes = len(self._kubelet_list)
        self._quiet_until = np.full(n_nodes, -np.inf)
        self._epoch_seen = np.full(n_nodes, -1, dtype=np.int64)
        self._prev_tick_now: float | None = None
        #: Conservative "may host pods" mask over nodes: set when a Bind
        #: is applied, lazily cleared when a context build finds the
        #: node empty.  OR-ed with the live container counts from the
        #: SoA mirror, so the resident walk skips the (at 1024 nodes,
        #: vast) idle majority instead of polling every kubelet.
        self._hosting = np.zeros(n_nodes, dtype=bool)
        self._node_starts = np.array(
            [start for start, _ in cluster.state.node_slices], dtype=np.intp
        )
        #: Vectorized execution quantum: advances all hosting nodes'
        #: pods in one array pass per tick, dropping rare events (OOM,
        #: completion, failure) back through ``Kubelet.step_device``.
        #: Engages under the same conditions as the PR 8 scheduling
        #: fast pass — observability fully off and a scheduler whose
        #: telemetry reads go through the SoA mirror — so a sanitized
        #: or ``vectorized=False`` run pins the object path everywhere.
        self.quantum: QuantumEngine | None = None
        if (
            self.obs.sanitizer is None
            and not self.obs.enabled
            and getattr(scheduler, "quantum_ok", None) is not None
            and scheduler.quantum_ok()
        ):
            self.quantum = QuantumEngine(
                cluster, self._kubelet_list, self._quiet_until, self._epoch_seen
            )
            for kubelet in self._kubelet_list:
                kubelet.engine = self.quantum
        metrics = self.obs.metrics
        self._m_passes = metrics.counter(
            "scheduler_passes_total", "Scheduling passes executed"
        )
        self._m_actions = metrics.counter(
            "scheduler_actions_total", "Actions applied, by kind", labelnames=("kind",)
        )
        self._m_faults = metrics.counter(
            "gpu_faults_injected_total", "Devices failed by the fault plan"
        )
        self._m_repairs = metrics.counter(
            "gpu_repairs_total", "Failed devices repaired"
        )
        self._m_cordons = metrics.counter(
            "node_cordons_total", "Nodes cordoned by the capacity plan"
        )
        self._m_reclaims = metrics.counter(
            "node_reclaims_total", "Nodes reclaimed by the capacity plan"
        )
        self._m_restores = metrics.counter(
            "node_restores_total", "Reclaimed/cordoned nodes restored"
        )
        self._m_gang_coevictions = metrics.counter(
            "gang_coevictions_total", "Gang siblings evicted with a dying member"
        )

    # -- context assembly ----------------------------------------------------

    def build_context(self, now: float) -> SchedulingContext:
        residents: dict[str, list[ResidentPod]] = {}
        state = self.cluster.state
        scan = self._hosting | (
            np.add.reduceat(state.num_containers, self._node_starts) > 0
        )
        kubelets = self._kubelet_list
        for i in np.nonzero(scan)[0]:
            kubelet = kubelets[i]
            pods = kubelet.hosted_map()
            if not pods:
                self._hosting[i] = False
                continue
            for pod in pods.values():
                residents.setdefault(pod.gpu_id, []).append(
                    ResidentPod(
                        uid=pod.uid,
                        image=pod.spec.image,
                        alloc_mb=pod.alloc_mb,
                        qos_class=pod.spec.qos_class,
                    )
                )
        return SchedulingContext(
            now=now,
            pending=self.api.pending_pods(),
            knots=self.knots,
            residents=residents,
        )

    # -- the pass --------------------------------------------------------------

    def scheduling_pass(self, now: float) -> list[Action]:
        """Run one policy pass and apply its actions.  Returns them."""
        obs = self.obs
        if not obs.enabled:
            ctx = self.build_context(now)
            actions = self.scheduler.schedule(ctx)
            for action in actions:
                self._apply(action, now)
            return actions

        obs.clock.now = now
        obs.audit.begin_pass(self.scheduler.name, ts=now)
        tracer = obs.tracer
        if tracer.enabled:
            tracer.begin("scheduling_pass", cat="scheduler", args={"policy": self.scheduler.name})
        ctx = self.build_context(now)
        actions = self.scheduler.schedule(ctx)
        for action in actions:
            self._apply(action, now)
            self._m_actions.inc(kind=type(action).__name__.lower())
        self._m_passes.inc()
        if tracer.enabled:
            tracer.end(args={"pending": len(ctx.pending), "actions": len(actions)})
        return actions

    def _apply(self, action: Action, now: float) -> None:
        if isinstance(action, Bind):
            pod = self.api.pod(action.pod_uid)
            node_id = action.gpu_id.split("/", 1)[0]
            self.api.bind(pod, node_id, action.gpu_id, action.alloc_mb, now)
            self.kubelets[node_id].admit(pod, now)
            self._hosting[self.cluster.state.node_index[node_id]] = True
        elif isinstance(action, Resize):
            pod = self.api.pod(action.pod_uid)
            node_id = action.gpu_id.split("/", 1)[0]
            self.kubelets[node_id].resize(pod, action.new_alloc_mb, now)
        elif isinstance(action, Sleep):
            gpu = self.cluster.find_gpu(action.gpu_id)
            if not gpu.containers:
                gpu.sleep()
                if self.obs.tracer.enabled:
                    self.obs.tracer.instant("gpu_sleep", cat="power", args={"gpu": action.gpu_id})
        elif isinstance(action, Wake):
            self.cluster.find_gpu(action.gpu_id).asleep = False
            if self.obs.tracer.enabled:
                self.obs.tracer.instant("gpu_wake", cat="power", args={"gpu": action.gpu_id})
        else:  # pragma: no cover - future action types
            raise TypeError(f"unknown action {action!r}")

    # -- execution hooks used by the simulator ----------------------------------

    def step_kubelets(self, now: float, dt_ms: float) -> None:
        """Advance every due node by one tick; record completed-pod profiles.

        A node with no hosted pods and no pending auto-pstate transition
        is provably inert (:meth:`Kubelet.quiet_horizon`), so its step
        is skipped until its horizon passes or its devices are mutated
        externally — any bind/resize/sleep/wake/fail/repair bumps the
        node's epoch in :class:`~repro.cluster.state.ClusterState`,
        which re-arms stepping on the next tick.  Under the sanitizer
        every node steps every tick, exactly like the legacy loop.
        """
        state = self.cluster.state
        if self.obs.sanitizer is not None:
            victims: list = []
            for kubelet in self.kubelets.values():
                victims.extend(kubelet.step(now, dt_ms))
            if victims:
                self._co_evict_gangs(victims, now)
            self._record_completions()
            self._prev_tick_now = now
            return
        due = (state.node_epoch != self._epoch_seen) | (self._quiet_until <= now)
        if due.any():
            prev = self._prev_tick_now
            due_idx = np.nonzero(due)[0]
            if self.quantum is not None:
                victims = self.quantum.step_due(now, dt_ms, prev, due_idx)
            else:
                epochs = state.node_epoch
                kubelets = self._kubelet_list
                victims = []
                for i in due_idx:
                    kubelet = kubelets[i]
                    victims.extend(kubelet.step(now, dt_ms, prev))
                    self._quiet_until[i] = kubelet.quiet_horizon(now, dt_ms)
                    self._epoch_seen[i] = epochs[i]
            if victims:
                self._co_evict_gangs(victims, now)
            self._record_completions()
        self._prev_tick_now = now

    def _co_evict_gangs(self, victims: list, now: float) -> None:
        """When a gang member dies, evict its still-hosted siblings.

        Gang semantics: members make progress in lock-step, so a lost
        member invalidates the others' work — requeue the whole gang
        together and let the scheduler re-place it atomically.  Pods
        without a gang spec (the default) are untouched.
        """
        seen: set[str] = set()
        for pod in victims:
            gang = pod.spec.gang
            if gang is None or gang.gang_id in seen:
                continue
            seen.add(gang.gang_id)
            for member in self.api.gang_members(gang.gang_id):
                if member.uid == pod.uid or member.node_id is None or member.done:
                    continue
                kubelet = self.kubelets.get(member.node_id)
                if kubelet is not None and kubelet.evict_pod(member.uid, now) is not None:
                    if self.obs.enabled:
                        self._m_gang_coevictions.inc()

    def _record_completions(self) -> None:
        # Event-driven: the API server hands over this tick's
        # completions in submission order (the order the old full-scan
        # diff visited them — the profile store's running means are
        # order-sensitive in floats).
        for pod in self.api.drain_succeeded():
            self.knots.profiles.record_trace(pod.spec.image, pod.spec.trace)

    def heartbeat(self, now: float) -> None:
        self.knots.heartbeat(now)

    # -- failure injection (driven by the simulator's fault plan) ----------------

    def fail_gpu(self, gpu_id: str) -> bool:
        """Fail a device (it falls off the bus; the kubelet evicts its
        pods on the next quantum).  Returns False if already failed —
        the fault-plan entry is then swallowed, exactly like the old
        in-loop ``if not gpu.failed`` check."""
        gpu = self.cluster.find_gpu(gpu_id)
        if gpu.failed:
            return False
        gpu.fail()
        if self.obs.enabled:
            self._m_faults.inc()
            if self.obs.tracer.enabled:
                self.obs.tracer.instant("gpu_fail", cat="fault", args={"gpu": gpu_id})
        return True

    def repair_gpu(self, gpu_id: str) -> None:
        """Bring a failed device back (empty and awake)."""
        self.cluster.find_gpu(gpu_id).repair()
        if self.obs.enabled:
            self._m_repairs.inc()
            if self.obs.tracer.enabled:
                self.obs.tracer.instant("gpu_repair", cat="fault", args={"gpu": gpu_id})

    # -- capacity transitions (driven by the simulator's capacity plan) ----------

    def cordon_node(self, node_id: str) -> bool:
        """Drain a node: residents keep running, no new placements.

        Returns False when every device was already cordoned (tolerant
        of overlapping capacity windows re-draining a spare)."""
        node = self.kubelets[node_id].node
        changed = False
        for gpu in node.gpus:
            if not gpu.cordoned:
                gpu.cordoned = True
                changed = True
        if changed and self.obs.enabled:
            self._m_cordons.inc()
            if self.obs.tracer.enabled:
                self.obs.tracer.instant("node_cordon", cat="capacity", args={"node": node_id})
        return changed

    def uncordon_node(self, node_id: str) -> None:
        """Re-open a drained node for placement."""
        for gpu in self.kubelets[node_id].node.gpus:
            if gpu.cordoned:
                gpu.cordoned = False

    def reclaim_node(self, node_id: str, now: float) -> bool:
        """Take a node away (spot reclaim): evict every hosted pod back
        to the pending queue, then fail its devices.  Gang siblings of
        the victims are co-evicted cluster-wide.  Returns False if the
        node was already fully reclaimed."""
        kubelet = self.kubelets[node_id]
        node = kubelet.node
        if all(gpu.failed for gpu in node.gpus):
            return False
        self.cordon_node(node_id)
        victims = [
            kubelet.evict_pod(uid, now) for uid in list(kubelet.hosted_map())
        ]
        victims = [pod for pod in victims if pod is not None]
        if victims:
            self._co_evict_gangs(victims, now)
        for gpu in node.gpus:
            if not gpu.failed:
                gpu.fail()
        if self.obs.enabled:
            self._m_reclaims.inc()
            if self.obs.tracer.enabled:
                self.obs.tracer.instant(
                    "node_reclaim", cat="capacity",
                    args={"node": node_id, "evicted": len(victims)},
                )
        self._check_capacity_conservation(node)
        return True

    def restore_node(self, node_id: str) -> None:
        """Bring a reclaimed (or merely drained) node back into service."""
        node = self.kubelets[node_id].node
        for gpu in node.gpus:
            if gpu.failed:
                gpu.repair()
            if gpu.cordoned:
                gpu.cordoned = False
        if self.obs.enabled:
            self._m_restores.inc()
            if self.obs.tracer.enabled:
                self.obs.tracer.instant("node_restore", cat="capacity", args={"node": node_id})
        self._check_capacity_conservation(node)

    def _check_capacity_conservation(self, node) -> None:
        """Sanitizer hook: after a capacity transition, allocations must
        fit the node's live capacity and no accepted pod may be lost."""
        san = self.obs.sanitizer
        if san is None:
            return
        san.check_node_capacity(node)
        hosted: set[str] = set()
        for kubelet in self.kubelets.values():
            hosted.update(kubelet.hosted_map())
        san.check_pod_tracking(
            {p.uid for p in self.api.unfinished()},
            {p.uid for p in self.api.pending_pods()},
            hosted,
        )
