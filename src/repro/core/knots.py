"""Knots: the GPU-aware orchestration runtime (paper Sec. IV-A).

Knots is the glue between raw device telemetry and scheduling policy:

* it owns one :class:`NodeMonitor` per worker, each writing the five
  GPU metrics into the node-local TSDB every *heartbeat*;
* it owns the head-node :class:`UtilizationAggregator`, the only view
  schedulers get of the cluster;
* it owns the :class:`ProfileStore` of per-image usage profiles built
  from runtime feedback (no a priori profiling);
* it exposes Algorithm 1's primitives: ``query`` (all metric windows
  for a device) and the sorted active-device list.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.core.profiles import ProfileStore
from repro.obs.context import NOOP, Observability
from repro.telemetry.aggregator import GpuView, NodeMonitor, UtilizationAggregator
from repro.telemetry.matrix import MatrixTelemetry, TsdbFacade
from repro.telemetry.tsdb import SeriesWindow

__all__ = ["KnotsConfig", "Knots"]


@dataclass(frozen=True)
class KnotsConfig:
    """Timing parameters of the monitoring plane."""

    heartbeat_ms: float = 10.0      # TSDB logging cadence (1 ms in the paper)
    window_ms: float = 5_000.0      # sliding window the schedulers query (5 s)


class Knots:
    """The runtime system aggregating cluster-wide GPU telemetry."""

    def __init__(
        self,
        cluster: Cluster,
        config: KnotsConfig | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.cluster = cluster
        self.config = config or KnotsConfig()
        self.obs = obs or NOOP
        #: Telemetry storage is the cluster-wide matrix ring; each node
        #: monitor reads/writes it through a TSDB-compatible facade.
        self.state = cluster.state
        self.matrix = MatrixTelemetry(
            self.state, self.config.heartbeat_ms, self.config.window_ms
        )
        self.monitors: dict[str, NodeMonitor] = {
            node.node_id: NodeMonitor(node, tsdb=TsdbFacade(self.matrix, node))
            for node in cluster
        }
        self.aggregator = UtilizationAggregator(list(self.monitors.values()), obs=self.obs)
        self.profiles = ProfileStore()
        self._m_heartbeats = self.obs.metrics.counter(
            "knots_heartbeats_total", "Monitoring-plane sampling rounds"
        )

    # -- monitoring plane ---------------------------------------------------

    def heartbeat(self, now: float) -> None:
        """Sample every node's devices into its TSDB (one heartbeat).

        One vectorized row append covers every clean node; nodes whose
        facade was written to directly (tests seeding telemetry) keep
        the legacy per-series monitor walk into their override store.
        """
        self.matrix.append_from_state(now)
        for node_id in self.matrix.dirty_nodes:
            self.monitors[node_id].heartbeat(now)
        self._m_heartbeats.inc()

    # -- Algorithm 1 primitives ---------------------------------------------

    def query(self, gpu_id: str, now: float) -> dict[str, SeriesWindow]:
        """``QUERY(gpu_node)``: recent windows of all five metrics."""
        windows = self.aggregator.query_node_stats(gpu_id, self.config.window_ms, now)
        san = self.obs.sanitizer
        if san is not None:
            for metric, window in windows.items():
                san.check_window_fresh(gpu_id, metric, window, now, self.config.heartbeat_ms)
        return windows

    def memory_window(self, gpu_id: str, now: float) -> SeriesWindow:
        """The memory-utilization series PP autocorrelates and forecasts."""
        window = self.aggregator.query(gpu_id, "mem_util", self.config.window_ms, now)
        san = self.obs.sanitizer
        if san is not None:
            san.check_window_fresh(gpu_id, "mem_util", window, now, self.config.heartbeat_ms)
        return window

    def active_gpus_by_free_memory(self) -> list[GpuView]:
        """``Sort_by_Free_Memory(All_Active_GPUs)``."""
        return self.aggregator.sorted_by_free_memory(active_only=True)

    def all_gpus_by_free_memory(self) -> list[GpuView]:
        return self.aggregator.sorted_by_free_memory(active_only=False)
