"""Heterogeneity-aware Peak Prediction (extension).

The Kube-Knots design figure (Fig. 5) pictures a heterogeneous cluster
— P100s next to M40s, V100s and K80s — but the evaluation runs on
uniform P100s, leaving device heterogeneity as the obvious extension.
This scheduler adds capacity-aware placement on top of PP:

* **Best-capacity-fit for batch.**  A 2 GB job parked on a 32 GB V100
  strands premium capacity that an 11 GB job will later need; among the
  devices PP would accept, prefer the one whose *capacity* is smallest
  while still leaving the pod's peak-footprint headroom.  This keeps
  the big devices free for the big pods.
* **Peak-aware spill protection.**  A pod whose observed peak footprint
  simply cannot fit a small device is never routed to it, even when its
  harvested (80th-percentile) reservation would — avoiding guaranteed
  future capacity violations on the small models.

Everything else — harvesting, the correlation gate, ARIMA forecasting,
consolidation and deep sleep — is inherited unchanged from
:class:`~repro.core.schedulers.peak_prediction.PeakPredictionScheduler`.
"""

from __future__ import annotations

from repro.core.schedulers.base import PassState
from repro.core.schedulers.peak_prediction import PeakPredictionScheduler
from repro.kube.pod import Pod
from repro.workloads.base import QoSClass

__all__ = ["HeteroAwarePeakPrediction"]


class HeteroAwarePeakPrediction(PeakPredictionScheduler):
    """PP + device-capacity awareness for mixed-model clusters."""

    name = "hetero-pp"
    requires_sharing = True

    def __init__(self, peak_headroom: float = 1.05, **kwargs) -> None:
        super().__init__(**kwargs)
        #: A device must fit ``peak_headroom x`` the pod's peak memory
        #: (alone) to be considered at all — the spill-protection rule.
        self.peak_headroom = peak_headroom

    def _wake_pick(self, sleeping: list, pod, alloc: float, peak: float):
        """Only wake a device whose capacity fits the pod's *peak*."""
        need = max(alloc, self.peak_headroom * pod.spec.trace.peak_mem_mb())
        for view in sleeping:
            if view.mem_capacity_mb >= need:
                return view
        return None

    def _candidate_gpus(
        self, pod: Pod, state: PassState, lc_ceiling: float | None = None
    ) -> list[str]:
        order = super()._candidate_gpus(pod, state, lc_ceiling)
        peak = pod.spec.trace.peak_mem_mb()
        # Spill protection: drop devices that could never hold the peak.
        order = [g for g in order if state.caps.get(g, 0.0) >= self.peak_headroom * peak]
        if pod.spec.qos_class is QoSClass.BATCH:
            # Best-capacity-fit: stable re-sort by capacity, keeping PP's
            # consolidation order among devices of the same model.
            order.sort(key=lambda g: state.caps.get(g, 0.0))
        return order
