"""Res-Ag: GPU-sharing, utilization-agnostic baseline (Sec. IV-B).

The paper's fair baseline: sharing is enabled through the modified
device plugin (compute time-shared, memory space-shared) and pods are
packed with first-fit-decreasing bin packing on their *requested*
memory — but the policy is blind to every GPU metric Knots collects.

Two consequences the evaluation hinges on:

* **Static earmarks fragment the device.**  Each pod's reservation is
  its *declared* request — which users overstate (Observation 2) — so a
  16 GB device "fills up" after two or three batch containers while its
  physical memory sits largely unused.  Pending pods then queue behind
  stranded reservations: the resource fragmentation and HOL queueing
  that caps Res-Ag's utilization (Fig. 6) and blows inference SLOs.
* **And it still crashes.**  Requests are static guesses; the policy
  never looks at real-time usage, so a pod whose user *under*-declared
  its peak bursts past its earmark, co-located peaks exceed physical
  capacity, and the device OOM-kills a victim — the capacity violations
  and relaunch storms of Sec. IV-B.
"""

from __future__ import annotations

from repro.core.schedulers.base import Action, Bind, Scheduler, SchedulingContext

__all__ = ["ResourceAgnosticScheduler"]


class ResourceAgnosticScheduler(Scheduler):
    """First-fit-decreasing packing on static requests."""

    name = "res-ag"
    requires_sharing = True

    def __init__(self, max_pods_per_gpu: int = 8, clip_requests: bool = False) -> None:
        #: Packing stops once a device hosts this many pods (the plugin's
        #: share-count limit in the paper's modified k8s-device-plugin).
        self.max_pods_per_gpu = max_pods_per_gpu
        #: Ablation knob: if True, oversized requests are clipped into
        #: the remaining reservation headroom instead of queueing —
        #: trades fragmentation for much denser packing and more OOMs.
        self.clip_requests = clip_requests

    def schedule(self, ctx: SchedulingContext) -> list[Action]:
        actions: list[Action] = []
        auditing = self.obs.audit.enabled
        queue_depth = len(ctx.pending)
        views = ctx.knots.all_gpus_by_free_memory()
        # Fixed node order = first-fit; ignore telemetry entirely.
        views.sort(key=lambda v: v.gpu_id)
        free = {v.gpu_id: v.free_alloc_mb for v in views}
        count = {v.gpu_id: len(ctx.residents_on(v.gpu_id)) for v in views}

        for pod in self.ffd_order(ctx.pending):
            req = pod.spec.requested_mem_mb
            placed = False
            for v in views:
                gid = v.gpu_id
                if count[gid] >= self.max_pods_per_gpu:
                    continue
                headroom = free[gid]
                if self.clip_requests:
                    alloc = min(req, headroom)
                    if alloc < min(512.0, req):
                        continue
                else:
                    if req > headroom:
                        continue   # static earmark does not fit: try next
                    alloc = req
                actions.append(Bind(pod.uid, gid, alloc))
                if auditing:
                    self._audit_bind(
                        pod, gid, alloc, queue_depth,
                        evidence={"request_mb": req, "free_mb_before": round(headroom, 1)},
                    )
                free[gid] -= alloc
                count[gid] += 1
                placed = True
                break
            if not placed and auditing:
                self._audit_reject(
                    pod, queue_depth,
                    evidence={
                        "request_mb": req,
                        "reason": "fragmented",
                        "max_free_mb": round(max(free.values(), default=0.0), 1),
                    },
                )
        return actions
