"""PP: Peak Prediction scheduler (paper Sec. IV-D, Algorithm 1).

PP is layered on CBP and relaxes its most costly restriction.  CBP
refuses to co-locate positively correlated pods; PP observes that
correlated pods are still safe together **if their peak phases do not
collide** — a GPU application's peaks are periodic (phase changes:
bandwidth burst precedes compute/memory peak), so near-term utilization
is forecastable.  Concretely, where CBP's correlation gate fails:

1. Compute the lag-1 autocorrelation of the device's recent memory
   series (Eq. 2).  ``r <= 0`` means no exploitable trend — move on to
   the next node.
2. Otherwise forecast the next second of device memory with first-order
   ARIMA (Eq. 3) over the five-second sliding window.
3. If predicted free memory covers the pod's reservation, schedule it
   there anyway; else repeat the admission checks on the next node in
   the sorted list.

PP additionally performs the *consolidation* behind the energy savings
of Fig. 11a: batch placement visits the fullest **active** device
first, drained devices are put into deep sleep (p_state 12), and a
sleeping device is woken only when nothing active can take a pod — or
when every active device is too compute-loaded to host a
latency-critical query without stretching it past its SLO.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedulers.base import (
    Action,
    Bind,
    PassState,
    SchedulingContext,
    Sleep,
    Wake,
)
from repro.core.schedulers.cbp import CBPScheduler
from repro.forecast.arima import forecast_series
from repro.forecast.autocorr import autocorrelation
from repro.kube.pod import Pod
from repro.workloads.base import QoSClass

__all__ = ["PeakPredictionScheduler"]


class PeakPredictionScheduler(CBPScheduler):
    """CBP + peak-phase forecasting + consolidation ("CBP+PP")."""

    name = "peak-prediction"
    requires_sharing = True

    def __init__(
        self,
        percentile: float = 80.0,
        correlation_threshold: float = 0.5,
        forecast_steps: int = 1,
        min_active_gpus: int = 1,
        forecast_safety: float = 1.2,
        **kwargs,
    ) -> None:
        super().__init__(percentile=percentile, correlation_threshold=correlation_threshold, **kwargs)
        self.forecast_steps = forecast_steps
        self.min_active_gpus = min_active_gpus
        #: Headroom multiplier over the raw point forecast: a point
        #: estimate has no error bars, and an OOM kill costs a relaunch
        #: (the exact failure mode PP exists to prevent).
        self.forecast_safety = forecast_safety
        self._forecast_hits = 0
        self._forecast_misses = 0

    def _candidate_gpus(
        self, pod: Pod, state: PassState, lc_ceiling: float | None = None
    ) -> list[str]:
        """Like CBP's order, but latency-critical pods only see devices
        under their SLO-derived SM ceiling: a busier device would
        stretch the query past its budget through co-location
        interference.  If that leaves nothing, the empty list sends the
        pod to the wake/relaxed path in :meth:`schedule`."""
        if pod.spec.qos_class is QoSClass.LATENCY_CRITICAL:
            ok, _hot = self._lc_candidate_split(pod, state, lc_ceiling)
            return ok
        return super()._candidate_gpus(pod, state)

    # -- pass ---------------------------------------------------------------

    def schedule(self, ctx: SchedulingContext) -> list[Action]:
        actions: list[Action] = []
        active = ctx.knots.active_gpus_by_free_memory()
        state = PassState.from_views(active, ctx.residents_on)
        self._load_pressure(ctx, state)
        actions.extend(self._harvest(ctx, state))

        sleeping = [v for v in ctx.knots.all_gpus_by_free_memory() if v.asleep]
        unplaced = 0
        for pod in self._ordered_pending(ctx):
            alloc = self._provision(ctx, pod)
            expected_sm = self._expected_sm(ctx, pod)
            peak = self._peak_of(ctx, pod, alloc)
            placed = self._place_one(ctx, pod, alloc, peak, expected_sm, state, actions)
            if placed:
                continue
            view = self._wake_pick(sleeping, pod, alloc, peak)
            if view is not None:
                # Nothing active can take the pod safely: wake a device.
                sleeping.remove(view)
                actions.append(Wake(view.gpu_id))
                state.add_gpu(view)
                state.sm[view.gpu_id] = 0.0
                state.sm_peak[view.gpu_id] = 0.0
                state.overshoots[view.gpu_id] = []
                state.lc_count[view.gpu_id] = 0
                actions.append(Bind(pod.uid, view.gpu_id, alloc))
                self._book_pod(state, view.gpu_id, pod, alloc, expected_sm, peak)
            elif pod.spec.qos_class is QoSClass.LATENCY_CRITICAL:
                # No cool device and nothing to wake: place on the least
                # loaded device anyway — a stretched query beats an
                # indefinitely queued one.
                if not self._place_one(
                    ctx, pod, alloc, peak, expected_sm, state, actions, relaxed=True
                ):
                    unplaced += 1
            else:
                unplaced += 1

        actions.extend(self._consolidate(state, unplaced))
        return actions

    def _wake_pick(self, sleeping: list, pod: Pod, alloc: float, peak: float):
        """First sleeping device adequate for the pod, or None.

        Adequacy here is reservation fit; the heterogeneity-aware
        subclass tightens this to peak fit so a harvested reservation
        never lures a large pod onto a small device.
        """
        for view in sleeping:
            if alloc <= view.mem_capacity_mb:
                return view
        return None

    def _place_one(
        self,
        ctx: SchedulingContext,
        pod: Pod,
        alloc: float,
        peak: float,
        expected_sm: float,
        state: PassState,
        actions: list[Action],
        relaxed: bool = False,
    ) -> bool:
        """Algorithm 1's SCHEDULE procedure over the sorted node list."""
        if relaxed:
            candidates = CBPScheduler._candidate_gpus(self, pod, state)
        else:
            candidates = self._candidate_gpus(pod, state, self._lc_ceiling(ctx, pod))
        for gpu_id in candidates:
            if not self._fits(state, gpu_id, alloc, peak, pod, expected_sm):
                continue
            if self._admit(ctx, pod, gpu_id, alloc, state):
                ok = True
            else:
                ok = self._forecast_admit(ctx, gpu_id, alloc, state.caps[gpu_id])
            if ok:
                actions.append(Bind(pod.uid, gpu_id, alloc))
                self._book_pod(state, gpu_id, pod, alloc, expected_sm, peak)
                return True
        return False

    def _forecast_admit(self, ctx: SchedulingContext, gpu_id: str, alloc: float, cap_mb: float) -> bool:
        """The ARIMA branch: admit if predicted free memory covers ``alloc``."""
        window = ctx.knots.memory_window(gpu_id, ctx.now)
        if len(window) < 3:
            return False
        values = np.asarray(window.values)
        if autocorrelation(values, lag=1) <= 0.0:
            return False          # trend not strong enough to predict
        pred_util = forecast_series(values, steps=self.forecast_steps, clip=(0.0, 1.0))[-1]
        pred_free_mb = (1.0 - float(pred_util)) * cap_mb
        if pred_free_mb >= alloc * self.forecast_safety:
            self._forecast_hits += 1
            return True
        self._forecast_misses += 1
        return False

    # -- consolidation / power management ------------------------------------

    def _consolidate(self, state: PassState, unplaced: int) -> list[Action]:
        """Sleep drained devices beyond the minimum active set.

        Only devices with no residents and no bind issued this pass are
        candidates; the paper keeps low-load mixes on a minimal number
        of active GPUs with the rest in minimum-power idle.
        """
        if unplaced:
            return []            # demand still unplaced — keep capacity up
        empty = sorted(gid for gid, c in state.count.items() if c == 0)
        n_active = len(state.count)
        sleeps: list[Action] = []
        for gid in empty:
            if n_active - len(sleeps) <= self.min_active_gpus:
                break
            sleeps.append(Sleep(gid))
        return sleeps

    # -- introspection --------------------------------------------------------

    @property
    def forecast_stats(self) -> tuple[int, int]:
        """(admits via forecast, rejects via forecast) this run."""
        return self._forecast_hits, self._forecast_misses
