"""PP: Peak Prediction scheduler (paper Sec. IV-D, Algorithm 1).

PP is layered on CBP and relaxes its most costly restriction.  CBP
refuses to co-locate positively correlated pods; PP observes that
correlated pods are still safe together **if their peak phases do not
collide** — a GPU application's peaks are periodic (phase changes:
bandwidth burst precedes compute/memory peak), so near-term utilization
is forecastable.  Concretely, where CBP's correlation gate fails:

1. Compute the lag-1 autocorrelation of the device's recent memory
   series (Eq. 2).  ``r <= 0`` means no exploitable trend — move on to
   the next node.
2. Otherwise forecast the next second of device memory with first-order
   ARIMA (Eq. 3) over the five-second sliding window.
3. If predicted free memory covers the pod's reservation, schedule it
   there anyway; else repeat the admission checks on the next node in
   the sorted list.

PP additionally performs the *consolidation* behind the energy savings
of Fig. 11a: batch placement visits the fullest **active** device
first, drained devices are put into deep sleep (p_state 12), and a
sleeping device is woken only when nothing active can take a pod — or
when every active device is too compute-loaded to host a
latency-critical query without stretching it past its SLO.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedulers.base import (
    Action,
    Bind,
    PassState,
    SchedulingContext,
    Sleep,
    Wake,
)
from repro.core.schedulers.cbp import CBPScheduler
from repro.core.schedulers.vectorized import ArrayPassState
from repro.forecast.arima import Ar1Cache
from repro.forecast.autocorr import autocorrelation
from repro.kube.pod import Pod
from repro.workloads.base import QoSClass

__all__ = ["PeakPredictionScheduler"]


class PeakPredictionScheduler(CBPScheduler):
    """CBP + peak-phase forecasting + consolidation ("CBP+PP")."""

    name = "peak-prediction"
    requires_sharing = True

    def __init__(
        self,
        percentile: float = 80.0,
        correlation_threshold: float = 0.5,
        forecast_steps: int = 1,
        min_active_gpus: int = 1,
        forecast_safety: float = 1.2,
        **kwargs,
    ) -> None:
        super().__init__(percentile=percentile, correlation_threshold=correlation_threshold, **kwargs)
        self.forecast_steps = forecast_steps
        self.min_active_gpus = min_active_gpus
        #: Headroom multiplier over the raw point forecast: a point
        #: estimate has no error bars, and an OOM kill costs a relaunch
        #: (the exact failure mode PP exists to prevent).
        self.forecast_safety = forecast_safety
        self._forecast_hits = 0
        self._forecast_misses = 0
        #: Evidence from the last forecast evaluation (audit-only).
        self._last_forecast: dict | None = None
        #: Incremental AR(1) sufficient statistics per device series:
        #: the per-heartbeat Eq. 3 fit is O(points slid), not O(window).
        self._ar1 = Ar1Cache()

    def _candidate_gpus(
        self, pod: Pod, state: PassState, lc_ceiling: float | None = None
    ) -> list[str]:
        """Like CBP's order, but latency-critical pods only see devices
        under their SLO-derived SM ceiling: a busier device would
        stretch the query past its budget through co-location
        interference.  If that leaves nothing, the empty list sends the
        pod to the wake/relaxed path in :meth:`schedule`."""
        if pod.spec.qos_class is QoSClass.LATENCY_CRITICAL:
            ok, _hot = self._lc_candidate_split(pod, state, lc_ceiling)
            return ok
        return super()._candidate_gpus(pod, state)

    # -- pass ---------------------------------------------------------------

    def quantum_ok(self) -> bool:
        """Same contract as CBP's: stock PP with observability off runs
        the array-native pass over ``ClusterState``, which the
        vectorized quantum keeps exact."""
        return type(self) is PeakPredictionScheduler and self.vectorized

    def schedule(self, ctx: SchedulingContext) -> list[Action]:
        actions: list[Action] = []
        self._begin_pass()
        if type(self) is PeakPredictionScheduler and self._fast_pass_ok(ctx):
            return self._schedule_fast(ctx)
        active = ctx.knots.active_gpus_by_free_memory()
        state = PassState.from_views(active, ctx.residents_on)
        self._load_pressure(ctx, state)
        actions.extend(self._harvest(ctx, state))

        sleeping = [
            v for v in ctx.knots.all_gpus_by_free_memory() if v.asleep and not v.cordoned
        ]
        queue_depth = len(ctx.pending)
        unplaced = 0
        for pod in self._ordered_pending(ctx):
            alloc = self._provision(ctx, pod)
            expected_sm = self._expected_sm(ctx, pod)
            peak = self._peak_of(ctx, pod, alloc)
            attempts: list[dict] | None = [] if self._auditing else None
            placed = self._place_one(
                ctx, pod, alloc, peak, expected_sm, state, actions, attempts=attempts
            )
            if placed:
                continue
            view = self._wake_pick(sleeping, pod, alloc, peak)
            if view is not None:
                # Nothing active can take the pod safely: wake a device.
                sleeping.remove(view)
                actions.append(Wake(view.gpu_id))
                state.add_gpu(view)
                state.sm[view.gpu_id] = 0.0
                state.sm_peak[view.gpu_id] = 0.0
                state.overshoots[view.gpu_id] = []
                state.lc_count[view.gpu_id] = 0
                actions.append(Bind(pod.uid, view.gpu_id, alloc))
                if self._auditing:
                    self.obs.audit.record(
                        "wake", gpu_id=view.gpu_id, queue_depth=queue_depth,
                        evidence={"reason": "no-active-device-fits", "pod_uid": pod.uid},
                    )
                    evidence = self._bind_evidence(pod, alloc, peak, expected_sm, attempts)
                    evidence["admitted_via"] = "wake"
                    evidence["forecast"] = self._forecast_peek(
                        ctx, view.gpu_id, view.mem_capacity_mb, alloc
                    )
                    self._audit_bind(pod, view.gpu_id, alloc, queue_depth, evidence)
                self._book_pod(state, view.gpu_id, pod, alloc, expected_sm, peak)
            elif pod.spec.qos_class is QoSClass.LATENCY_CRITICAL:
                # No cool device and nothing to wake: place on the least
                # loaded device anyway — a stretched query beats an
                # indefinitely queued one.
                if not self._place_one(
                    ctx, pod, alloc, peak, expected_sm, state, actions,
                    relaxed=True, attempts=attempts,
                ):
                    unplaced += 1
                    if self._auditing:
                        self._audit_reject(
                            pod, queue_depth,
                            evidence={"alloc_mb": alloc, "peak_mb": peak, "attempts": attempts},
                        )
            else:
                unplaced += 1
                if self._auditing:
                    self._audit_reject(
                        pod, queue_depth,
                        evidence={"alloc_mb": alloc, "peak_mb": peak, "attempts": attempts},
                    )

        sleeps = self._consolidate(state, unplaced)
        if self._auditing:
            for action in sleeps:
                self.obs.audit.record(
                    "sleep", gpu_id=action.gpu_id, queue_depth=queue_depth,
                    evidence={"reason": "drained-device-consolidation"},
                )
        actions.extend(sleeps)
        return actions

    # -- array-native fast pass (see schedulers/vectorized.py) ---------------

    def _schedule_fast(self, ctx: SchedulingContext) -> list[Action]:
        """The PP pass over :class:`ArrayPassState`: same phase order,
        same candidate orders, same wake/relaxed/consolidation logic as
        the dict pass — scalar work only on the devices it actually
        visits."""
        actions: list[Action] = []
        cs = ctx.knots.state
        aps = ArrayPassState(cs, ~(cs.failed | cs.asleep | cs.cordoned))
        aps.load_residents(ctx, ctx.knots)
        actions.extend(self._harvest_fast(ctx, aps))

        # Sleeping (healthy) devices in the legacy visit order:
        # (-free, gpu_id).  Asleep devices host nothing, so their free
        # memory is stable for the whole pass.
        sleep_idx = np.nonzero(cs.asleep & ~cs.failed & ~cs.cordoned)[0]
        if len(sleep_idx) > 1:
            free = cs.mem_capacity_mb[sleep_idx] - cs.alloc_mb[sleep_idx]
            order = np.lexsort((cs.id_rank[sleep_idx], -free))
            sleep_idx = sleep_idx[order]
        sleeping = [int(i) for i in sleep_idx]

        gpu_ids = cs.gpu_ids
        unplaced = 0
        for pod in self._ordered_pending(ctx):
            alloc = self._provision(ctx, pod)
            expected_sm = self._expected_sm(ctx, pod)
            peak = self._peak_of(ctx, pod, alloc)
            is_lc = pod.spec.qos_class is QoSClass.LATENCY_CRITICAL
            if self._place_one_fast(ctx, pod, aps, alloc, peak, expected_sm, actions, is_lc, relaxed=False):
                continue
            wake_i = next((j for j in sleeping if alloc <= aps.caps[j]), None)
            if wake_i is not None:
                sleeping.remove(wake_i)
                gpu_id = gpu_ids[wake_i]
                actions.append(Wake(gpu_id))
                aps.wake(wake_i)
                actions.append(Bind(pod.uid, gpu_id, alloc))
                aps.book(
                    wake_i, gpu_id, pod.spec.image, is_lc,
                    alloc, expected_sm, peak, self._peak_sm_of(pod),
                )
            elif is_lc:
                if not self._place_one_fast(
                    ctx, pod, aps, alloc, peak, expected_sm, actions, is_lc, relaxed=True
                ):
                    unplaced += 1
            else:
                unplaced += 1

        if not unplaced:
            n_active = aps.n_included()
            n_sleeps = 0
            for i in aps.empty_included():
                if n_active - n_sleeps <= self.min_active_gpus:
                    break
                actions.append(Sleep(gpu_ids[i]))
                n_sleeps += 1
        return actions

    def _place_one_fast(
        self,
        ctx: SchedulingContext,
        pod: Pod,
        aps: ArrayPassState,
        alloc: float,
        peak: float,
        expected_sm: float,
        actions: list[Action],
        is_lc: bool,
        relaxed: bool,
    ) -> bool:
        """:meth:`_place_one` on the array state.  Non-relaxed LC pods
        only see devices under their SLO ceiling (PP's candidate
        override); the relaxed retry falls back to CBP's full order with
        the default ceiling."""
        fits = aps.fits_mask(
            alloc, peak, expected_sm, not is_lc,
            self.max_pods_per_gpu, self.usage_headroom, self.batch_sm_ceiling,
        )
        if is_lc:
            ceiling = self.lc_sm_ceiling if relaxed else self._lc_ceiling(ctx, pod)
            hot_allowed = relaxed
        else:
            ceiling = 0.0
            hot_allowed = False
        aps.begin_pod()
        hot = False
        gpu_ids = aps.cs.gpu_ids
        while True:
            if is_lc:
                i = aps.pick_lc(fits, ceiling, hot)
                if i < 0 and hot_allowed and not hot:
                    hot = True
                    continue
            else:
                i = aps.pick_batch(fits)
            if i < 0:
                return False
            gpu_id = gpu_ids[i]
            if self._admit(ctx, pod, gpu_id, alloc, aps):
                ok = True
            else:
                ok = self._forecast_admit(ctx, gpu_id, alloc, float(aps.caps[i]))
            if ok:
                actions.append(Bind(pod.uid, gpu_id, alloc))
                aps.book(
                    i, gpu_id, pod.spec.image, is_lc,
                    alloc, expected_sm, peak, self._peak_sm_of(pod),
                )
                return True
            aps.reject(i)

    def _wake_pick(self, sleeping: list, pod: Pod, alloc: float, peak: float):
        """First sleeping device adequate for the pod, or None.

        Adequacy here is reservation fit; the heterogeneity-aware
        subclass tightens this to peak fit so a harvested reservation
        never lures a large pod onto a small device.
        """
        for view in sleeping:
            if alloc <= view.mem_capacity_mb:
                return view
        return None

    def _place_one(
        self,
        ctx: SchedulingContext,
        pod: Pod,
        alloc: float,
        peak: float,
        expected_sm: float,
        state: PassState,
        actions: list[Action],
        relaxed: bool = False,
        attempts: list[dict] | None = None,
    ) -> bool:
        """Algorithm 1's SCHEDULE procedure over the sorted node list."""
        auditing = self._auditing and attempts is not None
        if relaxed:
            candidates = CBPScheduler._candidate_gpus(self, pod, state)
        else:
            candidates = self._candidate_gpus(pod, state, self._lc_ceiling(ctx, pod))
        for gpu_id in candidates:
            if not self._fits(state, gpu_id, alloc, peak, pod, expected_sm):
                if auditing:
                    attempts.append(self._attempt(state, gpu_id, "no-fit"))
                continue
            self._last_forecast = None
            if self._admit(ctx, pod, gpu_id, alloc, state):
                ok = True
                via = "correlation-gate"
            else:
                ok = self._forecast_admit(ctx, gpu_id, alloc, state.caps[gpu_id])
                via = "forecast"
            if ok:
                actions.append(Bind(pod.uid, gpu_id, alloc))
                if auditing:
                    attempts.append(self._attempt(state, gpu_id, "bound"))
                    evidence = self._bind_evidence(pod, alloc, peak, expected_sm, attempts)
                    evidence["admitted_via"] = via
                    if relaxed:
                        evidence["relaxed"] = True
                    # Every PP placement records the forecast it saw —
                    # the ARIMA one that admitted it, or a peek at what
                    # the forecaster would have said for the device.
                    evidence["forecast"] = (
                        self._last_forecast
                        if self._last_forecast is not None
                        else self._forecast_peek(ctx, gpu_id, state.caps[gpu_id], alloc)
                    )
                    self._audit_bind(pod, gpu_id, alloc, len(ctx.pending), evidence)
                self._book_pod(state, gpu_id, pod, alloc, expected_sm, peak)
                return True
            if auditing:
                entry = self._attempt(state, gpu_id, "forecast-reject")
                if self._last_forecast is not None:
                    entry["forecast"] = self._last_forecast
                attempts.append(entry)
        return False

    def _forecast_util(self, gpu_id: str, window) -> float:
        """Eq. 3 forecast of a device's memory utilization, clipped to [0, 1].

        Fitting goes through the incremental :class:`Ar1Cache`: per
        heartbeat the device's sliding window gains one point and loses
        at most a few, so the steady-state fit updates rolling
        sufficient statistics instead of re-reducing the whole window
        (with the exact batch fit as the cache-miss fallback).
        """
        model = self._ar1.fit(gpu_id, window.times, window.values)
        pred = model.forecast(float(window.values[-1]), self.forecast_steps)
        np.clip(pred, 0.0, 1.0, out=pred)
        return float(pred[-1])

    def _forecast_admit(self, ctx: SchedulingContext, gpu_id: str, alloc: float, cap_mb: float) -> bool:
        """The ARIMA branch: admit if predicted free memory covers ``alloc``."""
        window = ctx.knots.memory_window(gpu_id, ctx.now)
        if len(window) < 3:
            if self._auditing:
                self._last_forecast = {"reason": "short-window", "admitted": False}
            return False
        values = np.asarray(window.values)
        if autocorrelation(values, lag=1) <= 0.0:
            if self._auditing:
                self._last_forecast = {"reason": "no-trend", "admitted": False}
            return False          # trend not strong enough to predict
        pred_util = self._forecast_util(gpu_id, window)
        pred_free_mb = (1.0 - float(pred_util)) * cap_mb
        admitted = pred_free_mb >= alloc * self.forecast_safety
        if self._auditing:
            self._last_forecast = {
                "predicted_peak_util": round(float(pred_util), 4),
                "predicted_free_mb": round(pred_free_mb, 1),
                "required_mb": round(alloc * self.forecast_safety, 1),
                "safety": self.forecast_safety,
                "window_points": int(len(values)),
                "admitted": admitted,
            }
        if admitted:
            self._forecast_hits += 1
            return True
        self._forecast_misses += 1
        return False

    def _forecast_peek(
        self, ctx: SchedulingContext, gpu_id: str, cap_mb: float, alloc: float
    ) -> dict:
        """Audit-only forecast snapshot for a device (no counters touched).

        Used when a placement was admitted without the ARIMA branch, so
        the audit record still carries the predicted peak the device was
        heading toward at decision time.
        """
        window = ctx.knots.memory_window(gpu_id, ctx.now)
        if len(window) < 3:
            return {"reason": "short-window"}
        values = np.asarray(window.values)
        pred_util = self._forecast_util(gpu_id, window)
        return {
            "predicted_peak_util": round(float(pred_util), 4),
            "predicted_free_mb": round((1.0 - float(pred_util)) * cap_mb, 1),
            "required_mb": round(alloc * self.forecast_safety, 1),
            "safety": self.forecast_safety,
            "window_points": int(len(values)),
        }

    # -- consolidation / power management ------------------------------------

    def _consolidate(self, state: PassState, unplaced: int) -> list[Action]:
        """Sleep drained devices beyond the minimum active set.

        Only devices with no residents and no bind issued this pass are
        candidates; the paper keeps low-load mixes on a minimal number
        of active GPUs with the rest in minimum-power idle.
        """
        if unplaced:
            return []            # demand still unplaced — keep capacity up
        empty = sorted(gid for gid, c in state.count.items() if c == 0)
        n_active = len(state.count)
        sleeps: list[Action] = []
        for gid in empty:
            if n_active - len(sleeps) <= self.min_active_gpus:
                break
            sleeps.append(Sleep(gid))
        return sleeps

    # -- introspection --------------------------------------------------------

    @property
    def forecast_stats(self) -> tuple[int, int]:
        """(admits via forecast, rejects via forecast) this run."""
        return self._forecast_hits, self._forecast_misses
