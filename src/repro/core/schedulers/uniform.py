"""Uniform scheduler: Kubernetes' stock GPU behaviour.

GPU sharing is disabled by default in Kubernetes (Sec. III-B); a pod
gets a whole device exclusively until it completes and cannot be
preempted.  Placement is utilization-agnostic spreading: the pending
queue is served strictly FIFO and the head pod takes the first idle
device in node order.  When every device is busy, the *entire queue
waits* — the head-of-line blocking that drives this baseline's ~18 %
QoS violations (Sec. VI-B): a 10 ms inference query stuck behind a
batch job blows its 150 ms SLO long before a GPU frees up.
"""

from __future__ import annotations

from repro.core.schedulers.base import Action, Bind, Scheduler, SchedulingContext

__all__ = ["UniformScheduler"]


class UniformScheduler(Scheduler):
    """Exclusive-GPU FIFO baseline ("Uniform" in Figs. 10a/11a)."""

    name = "uniform"
    requires_sharing = False

    def schedule(self, ctx: SchedulingContext) -> list[Action]:
        actions: list[Action] = []
        auditing = self.obs.audit.enabled
        queue_depth = len(ctx.pending)
        # Devices with nothing resident and no bind issued this pass.
        free = [
            v.gpu_id
            for v in ctx.knots.all_gpus_by_free_memory()
            if not ctx.residents_on(v.gpu_id)
        ]
        # Keep node order (spreading), not free-memory order: the stock
        # scheduler is agnostic of GPU metrics.
        free.sort()
        it = iter(free)
        for pod in ctx.pending:           # strict FIFO
            gpu_id = next(it, None)
            if gpu_id is None:
                # Head-of-line blocking: everything behind waits too.
                if auditing:
                    for waiting in ctx.pending[len(actions):]:
                        self._audit_reject(
                            waiting, queue_depth, evidence={"reason": "head-of-line"}
                        )
                break
            actions.append(Bind(pod.uid, gpu_id, pod.spec.requested_mem_mb))
            if auditing:
                self._audit_bind(
                    pod, gpu_id, pod.spec.requested_mem_mb, queue_depth,
                    evidence={"exclusive": True, "idle_devices": len(free)},
                )
        return actions
