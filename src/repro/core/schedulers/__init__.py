"""Placement policies evaluated in the paper.

==================  =============================================
Name                Policy
==================  =============================================
``uniform``         Kubernetes default: exclusive GPU, FIFO (HOL)
``res-ag``          GPU sharing, FFD on static requests, agnostic
``cbp``             Correlation Based Provisioning (Sec. IV-C)
``peak-prediction`` CBP + ARIMA peak forecasting (Sec. IV-D)
``hetero-pp``       PP + device-capacity awareness (extension)
==================  =============================================

:func:`make_scheduler` builds one by name; the DL-cluster baselines
(Gandiva, Tiresias) live in :mod:`repro.sim.dlsim` because they
schedule gang jobs, not pods.
"""

from repro.core.schedulers.base import (
    Action,
    Bind,
    Resize,
    ResidentPod,
    Scheduler,
    SchedulingContext,
    Sleep,
    Wake,
)
from repro.core.schedulers.cbp import CBPScheduler
from repro.core.schedulers.hetero import HeteroAwarePeakPrediction
from repro.core.schedulers.peak_prediction import PeakPredictionScheduler
from repro.core.schedulers.resource_agnostic import ResourceAgnosticScheduler
from repro.core.schedulers.uniform import UniformScheduler

__all__ = [
    "Action",
    "Bind",
    "Resize",
    "Sleep",
    "Wake",
    "ResidentPod",
    "Scheduler",
    "SchedulingContext",
    "UniformScheduler",
    "ResourceAgnosticScheduler",
    "CBPScheduler",
    "PeakPredictionScheduler",
    "HeteroAwarePeakPrediction",
    "make_scheduler",
    "SCHEDULERS",
]

SCHEDULERS = {
    "uniform": UniformScheduler,
    "res-ag": ResourceAgnosticScheduler,
    "cbp": CBPScheduler,
    "peak-prediction": PeakPredictionScheduler,
    "hetero-pp": HeteroAwarePeakPrediction,
}


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a scheduler by its registry name."""
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise KeyError(f"unknown scheduler {name!r}; known: {sorted(SCHEDULERS)}") from None
    return cls(**kwargs)
