"""Array-native scheduling pass state (the 1024-node fast path).

The legacy pass materializes one :class:`~repro.telemetry.aggregator.GpuView`
per device per pass, five ``PassState`` dicts keyed by gpu_id, and a
full Python ``sorted`` of every device per pending pod.  At 32x8 that
is noise; at 1024x8 the pass spends milliseconds building views of
devices it will never touch.

:class:`ArrayPassState` keeps the same accounting as column vectors
over the :class:`~repro.cluster.state.ClusterState` index, so

* pass setup is four O(n) vector ops plus a sparse walk of the
  *occupied* devices (``ctx.residents``), and
* candidate selection per pod is a vectorized fit mask plus a
  lexicographic arg-min — O(n) flat instead of O(n log n) sort.

Decision equivalence with the dict path is exact, not approximate:

* the fit mask evaluates the same float predicates elementwise
  (``cap - (free - alloc)``, the two-peak guard, the SM ceilings);
* the two-peak guard tracks the top-2 overshoots ``o1 >= o2`` per
  device; ``max(o1, c) + min(max(c, o2), o1)`` equals the legacy
  ``sum(sorted(overshoots + [c], reverse=True)[:2])`` for every case of
  the candidate overshoot ``c`` (c >= o1, o2 <= c < o1, c < o2);
* tie-breaks on gpu_id use ``ClusterState.id_rank`` (the precomputed
  lexicographic rank of the id strings), so arg-min picks exactly the
  device the legacy full sort would visit first.

The fast path only runs with observability fully off (no audit, no
metrics, no sanitizer): the audit trail records per-candidate attempt
lines whose enumeration the arg-min deliberately skips.  The dict path
remains the single source of truth for audited/sanitized passes and
for scheduler subclasses that override candidate ordering.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedulers.base import SchedulingContext
from repro.workloads.base import QoSClass

__all__ = ["ArrayPassState"]


class ArrayPassState:
    """Per-pass accounting as column vectors over the ClusterState index."""

    __slots__ = (
        "cs",
        "included",
        "free",
        "caps",
        "count",
        "sm",
        "sm_peak",
        "lc_count",
        "o1",
        "o2",
        "planned_images",
        "_tried",
    )

    def __init__(self, cs, included: np.ndarray) -> None:
        n = len(cs)
        self.cs = cs
        self.included = included
        #: Same float op the per-object path performs in ``free_mem_mb``
        #: (capacity minus the summed reservations), elementwise.
        self.free = cs.mem_capacity_mb - cs.alloc_mb
        self.caps = cs.mem_capacity_mb
        self.count = np.zeros(n, dtype=np.int64)
        self.sm = np.zeros(n)
        self.sm_peak = np.zeros(n)
        self.lc_count = np.zeros(n, dtype=np.int64)
        #: Top-2 per-device peak overshoots, ``o1 >= o2``.
        self.o1 = np.zeros(n)
        self.o2 = np.zeros(n)
        #: gpu_id -> images bound this pass (the correlation gate reads it).
        self.planned_images: dict[str, list[str]] = {}
        #: Scratch mask: candidates already rejected by the admission
        #: gate for the pod currently being placed.
        self._tried = np.zeros(n, dtype=bool)

    # -- setup ---------------------------------------------------------------

    def load_residents(self, ctx: SchedulingContext, knots) -> None:
        """Sparse equivalent of ``_load_pressure`` + the view counts.

        Devices without residents keep the zero defaults — exactly what
        the dict path computes for them (empty loop, ``pressure = 0``).
        """
        index = self.cs.index
        included = self.included
        profiles = knots.profiles
        for gpu_id, residents in ctx.residents.items():
            i = index.get(gpu_id)
            if i is None or not included[i]:
                continue
            self.count[i] = len(residents)
            pressure = 0.0
            peak_pressure = 0.0
            lc = 0
            for res in residents:
                if res.qos_class is QoSClass.LATENCY_CRITICAL:
                    lc += 1
                profile = profiles.get(res.image)
                if profile is not None and profile.observations:
                    pressure += float(np.percentile(profile.sm_series, 75))
                    peak_pressure += float(profile.sm_series.max())
                    self.push_overshoot(i, max(profile.peak_mem_mb() - res.alloc_mb, 0.0))
                else:
                    pressure += 0.3
                    peak_pressure += 0.5
            self.sm[i] = pressure
            self.sm_peak[i] = peak_pressure
            self.lc_count[i] = lc

    def push_overshoot(self, i: int, c: float) -> None:
        if c > self.o1[i]:
            self.o2[i] = self.o1[i]
            self.o1[i] = c
        elif c > self.o2[i]:
            self.o2[i] = c

    # -- the fit mask (vectorized ``_fits``) ----------------------------------

    def fits_mask(
        self,
        alloc: float,
        peak: float,
        expected_sm: float,
        is_batch: bool,
        max_pods_per_gpu: int,
        usage_headroom: float,
        batch_sm_ceiling: float,
    ) -> np.ndarray:
        """Devices passing every ``_fits`` predicate, elementwise."""
        free = self.free
        m = self.included & (self.count < max_pods_per_gpu) & (alloc <= free)
        c = max(peak - alloc, 0.0)
        allocated_after = self.caps - (free - alloc)
        worst_two = np.maximum(self.o1, c) + np.minimum(np.maximum(self.o2, c), self.o1)
        m &= ~(allocated_after + worst_two > usage_headroom * self.caps)
        if is_batch:
            m &= (self.lc_count == 0) & (self.sm + expected_sm <= batch_sm_ceiling)
        return m

    # -- candidate selection (lexicographic arg-min over a mask) --------------

    def _argbest(self, m: np.ndarray, key1: np.ndarray, key2: np.ndarray) -> int:
        """Index minimizing ``(key1, key2, id_rank)`` over mask ``m``; -1 if empty."""
        if not m.any():
            return -1
        m = m & (key1 == key1[m].min())
        m &= key2 == key2[m].min()
        idx = np.nonzero(m)[0]
        if len(idx) == 1:
            return int(idx[0])
        return int(idx[np.argmin(self.cs.id_rank[idx])])

    def begin_pod(self) -> None:
        self._tried[:] = False

    def reject(self, i: int) -> None:
        self._tried[i] = True

    def pick_batch(self, fits: np.ndarray) -> int:
        """First device of the batch order ``(lc_count, free, gpu_id)``
        that fits and was not rejected for this pod yet."""
        return self._argbest(fits & ~self._tried, self.lc_count, self.free)

    def pick_lc(self, fits: np.ndarray, ceiling: float, hot: bool) -> int:
        """First device of the LC order that fits: devices under the SM
        budget ordered ``(-sm_peak, -free, gpu_id)``; with ``hot`` the
        over-budget remainder ordered ``(sm_peak, -free, gpu_id)``."""
        m = fits & ~self._tried
        under = self.sm_peak < ceiling
        if hot:
            return self._argbest(m & ~under, self.sm_peak, -self.free)
        return self._argbest(m & under, -self.sm_peak, -self.free)

    # -- booking (``PassState.book`` + ``_book_pod`` bookkeeping) -------------

    def book(
        self,
        i: int,
        gpu_id: str,
        image: str,
        is_lc: bool,
        alloc: float,
        expected_sm: float,
        peak: float,
        peak_sm: float,
    ) -> None:
        self.free[i] -= alloc
        self.sm[i] += expected_sm
        self.sm_peak[i] += max(peak_sm, expected_sm)
        self.count[i] += 1
        self.push_overshoot(i, max(peak - alloc, 0.0))
        self.planned_images.setdefault(gpu_id, []).append(image)
        if is_lc:
            self.lc_count[i] += 1

    # -- PP hooks --------------------------------------------------------------

    def wake(self, i: int) -> None:
        """Bring a sleeping device into the pass (``PassState.add_gpu``
        plus the zeroed pressure entries PP writes after a wake)."""
        self.included[i] = True
        self.free[i] = self.caps[i] - self.cs.alloc_mb[i]
        self.count[i] = 0
        self.sm[i] = 0.0
        self.sm_peak[i] = 0.0
        self.lc_count[i] = 0
        self.o1[i] = 0.0
        self.o2[i] = 0.0

    def empty_included(self) -> np.ndarray:
        """Included devices with no residents and no bind this pass, in
        gpu_id order — PP's consolidation candidates."""
        idx = np.nonzero(self.included & (self.count == 0))[0]
        if len(idx) <= 1:
            return idx
        return idx[np.argsort(self.cs.id_rank[idx])]

    def n_included(self) -> int:
        return int(np.count_nonzero(self.included))
