"""Scheduler interface and the action vocabulary.

Schedulers are pure policies: they receive a :class:`SchedulingContext`
(pending pods + the Knots view of the cluster) and return a list of
:class:`Action` values — bind, resize, sleep, wake — which the
orchestrator then applies through the Kubernetes substrate.  Keeping
policies side-effect-free makes every scheduling decision unit-testable
against a hand-built context.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence, Union

from repro.core.knots import Knots
from repro.kube.pod import Pod
from repro.obs.context import NOOP, Observability
from repro.workloads.base import QoSClass

__all__ = [
    "Bind",
    "Resize",
    "Sleep",
    "Wake",
    "Action",
    "ResidentPod",
    "SchedulingContext",
    "PassState",
    "Scheduler",
]


@dataclass(frozen=True)
class Bind:
    """Place a pending pod on a device with a memory reservation."""

    pod_uid: str
    gpu_id: str
    alloc_mb: float


@dataclass(frozen=True)
class Resize:
    """Dynamically resize a resident container's reservation (harvest)."""

    pod_uid: str
    gpu_id: str
    new_alloc_mb: float


@dataclass(frozen=True)
class Sleep:
    """Put a drained device into deep sleep (p_state 12)."""

    gpu_id: str


@dataclass(frozen=True)
class Wake:
    """Wake a sleeping device for incoming load."""

    gpu_id: str


Action = Union[Bind, Resize, Sleep, Wake]


@dataclass(frozen=True)
class ResidentPod:
    """What a scheduler may know about a pod already on a device."""

    uid: str
    image: str
    alloc_mb: float
    qos_class: QoSClass


@dataclass
class SchedulingContext:
    """Inputs to one scheduling pass."""

    now: float
    pending: list[Pod]
    knots: Knots
    residents: dict[str, list[ResidentPod]]   # gpu_id -> resident pods

    def residents_on(self, gpu_id: str) -> list[ResidentPod]:
        return self.residents.get(gpu_id, [])


@dataclass
class PassState:
    """Mutable per-pass accounting the CBP/PP placement loop updates.

    Built from the aggregator's device views at the start of a pass and
    kept consistent as binds/resizes are planned, so several decisions
    in one pass don't double-book a device.
    """

    free: dict[str, float]     # unreserved memory, MB
    used: dict[str, float]     # physically used memory (telemetry), MB
    caps: dict[str, float]     # capacity, MB
    sm: dict[str, float]       # expected SM demand (profile-based pressure)
    count: dict[str, int]      # resident pod count
    # Per-device peak overshoots: how far each resident's *peak* memory
    # exceeds its reservation.  The CBP/PP safety guard keeps room for
    # the two largest overshoots to fire simultaneously.
    overshoots: dict[str, list[float]] = field(default_factory=dict)
    # Worst-case (peak) SM demand per device — what a latency-critical
    # query could face if every co-runner hits its compute phase.
    sm_peak: dict[str, float] = field(default_factory=dict)
    # Latency-critical residents per device (batch placement avoids them).
    lc_count: dict[str, int] = field(default_factory=dict)
    # Images bound to each device *during this pass* — the correlation
    # gate must see them too, or two correlated pods admitted in the
    # same pass would land together.
    planned_images: dict[str, list[str]] = field(default_factory=dict)

    @classmethod
    def from_views(cls, views, residents_on) -> "PassState":
        return cls(
            free={v.gpu_id: v.free_alloc_mb for v in views},
            used={v.gpu_id: v.mem_used_mb for v in views},
            caps={v.gpu_id: v.mem_capacity_mb for v in views},
            sm={v.gpu_id: v.sm_util for v in views},
            count={v.gpu_id: len(residents_on(v.gpu_id)) for v in views},
        )

    def add_gpu(self, view) -> None:
        self.free[view.gpu_id] = view.free_alloc_mb
        self.used[view.gpu_id] = view.mem_used_mb
        self.caps[view.gpu_id] = view.mem_capacity_mb
        self.sm[view.gpu_id] = view.sm_util
        self.count[view.gpu_id] = 0

    def book(self, gpu_id: str, alloc_mb: float, expected_sm: float = 0.0, peak_sm: float = 0.0) -> None:
        self.free[gpu_id] -= alloc_mb
        self.used[gpu_id] += alloc_mb
        self.sm[gpu_id] = self.sm.get(gpu_id, 0.0) + expected_sm
        self.sm_peak[gpu_id] = self.sm_peak.get(gpu_id, 0.0) + max(peak_sm, expected_sm)
        self.count[gpu_id] = self.count.get(gpu_id, 0) + 1


class Scheduler(ABC):
    """Base class for all placement policies."""

    #: Human-readable name used in reports and experiment tables.
    name: str = "scheduler"

    #: Whether the policy needs the shared-GPU device plugin.  The
    #: orchestrator configures every node's plugin from this flag.
    requires_sharing: bool = True

    #: Observability bundle (tracer/metrics/decision audit).  Defaults
    #: to the shared no-op bundle; the orchestrator rebinds it via
    #: :meth:`bind_observability` so policies stay constructible bare.
    obs: Observability = NOOP

    @abstractmethod
    def schedule(self, ctx: SchedulingContext) -> list[Action]:
        """Produce placement/resize/power actions for this pass."""

    def quantum_ok(self) -> bool:
        """Whether the vectorized execution quantum may run under this
        policy (:mod:`repro.cluster.quantum`).

        The fast quantum keeps the SoA sample mirror exact but lets the
        per-object ``gpu.last_sample`` go stale between rare events, so
        it is only safe under policies that read telemetry through
        ``ClusterState`` (the PR 8 fast pass), never through the
        aggregator's object snapshot.  Defaults to ``False``; CBP/PP
        opt in with the same exact-type + ``vectorized`` gate as the
        scheduling fast pass, and wrappers delegate to their inner
        policy.
        """
        return False

    # -- observability hook --------------------------------------------------

    def bind_observability(self, obs: Observability) -> None:
        """Attach an observability bundle to this policy instance.

        Policies record one audit record per placement/rejection/resize
        through ``self.obs.audit``; subclasses needing pre-created
        instruments override :meth:`_setup_observability`.
        """
        self.obs = obs
        self._setup_observability(obs)

    def _setup_observability(self, obs: Observability) -> None:
        """Subclass hook: create counters/histograms once at bind time."""

    def _audit_bind(self, pod: Pod, gpu_id: str, alloc_mb: float,
                    queue_depth: int, evidence: dict | None = None) -> None:
        self.obs.audit.record(
            "bind",
            pod_uid=pod.uid,
            image=pod.spec.image,
            qos=pod.spec.qos_class.value,
            gpu_id=gpu_id,
            alloc_mb=alloc_mb,
            queue_depth=queue_depth,
            evidence=evidence,
        )

    def _audit_reject(self, pod: Pod, queue_depth: int,
                      evidence: dict | None = None) -> None:
        self.obs.audit.record(
            "reject",
            pod_uid=pod.uid,
            image=pod.spec.image,
            qos=pod.spec.qos_class.value,
            queue_depth=queue_depth,
            evidence=evidence,
        )

    # -- shared helpers -----------------------------------------------------

    @staticmethod
    def split_by_qos(pending: Sequence[Pod]) -> tuple[list[Pod], list[Pod]]:
        """(latency-critical, batch), each preserving queue order."""
        lc = [p for p in pending if p.spec.qos_class is QoSClass.LATENCY_CRITICAL]
        batch = [p for p in pending if p.spec.qos_class is QoSClass.BATCH]
        return lc, batch

    @staticmethod
    def ffd_order(pods: Sequence[Pod]) -> list[Pod]:
        """First-fit-decreasing order by requested memory (Sec. IV-B).

        Ties break on uid for determinism.
        """
        return sorted(pods, key=lambda p: (-p.spec.requested_mem_mb, p.uid))
