"""CBP: Correlation Based Provisioning (paper Sec. IV-C).

Four mechanisms on top of Res-Ag's sharing substrate, all driven by
Knots data instead of static requests:

1. **Right-size provisioning** — a new pod of a known image is reserved
   its image's 80th-percentile memory footprint, not the user's
   worst-case request.  (80 was chosen because almost no container in
   the Alibaba trace exceeds 80 % of its provisioned memory, and more
   aggressive percentiles cause constant docker resizes — Sec. IV-C.)
2. **Harvesting** — resident batch pods that were admitted before their
   image had a profile are resized down to the 80th percentile, freeing
   reservation space for pending pods.  Latency-critical pods are never
   shrunk.
3. **Correlation-gated co-location** — a large pod may join a device
   only if its usage series is *not* positively correlated (Spearman
   rho below 0.5) with any resident pod: uncorrelated pods have a low
   probability of peaking together, so provisioning both at their
   average case is safe (the 1-(1-X)^2 argument of Sec. IV-C).
4. **Real-time capacity awareness** — admission also checks the
   device's *physically used* memory from the latest heartbeat, so a
   harvested (below-peak) reservation never lets total usage approach
   capacity.  This is the "considers the real-time GPU utilization to
   safely schedule and co-locate" requirement stated at the end of
   Sec. IV-B, and it is what keeps CBP essentially crash-free where
   Res-Ag OOMs.

CBP's known weakness (which motivates PP): when the arrival mix is
dominated by mutually correlated pods there are not enough negatively
correlated partners, the schedule order skews, and pending pods queue.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedulers.base import (
    Action,
    Bind,
    PassState,
    Resize,
    ResidentPod,
    Scheduler,
    SchedulingContext,
)
from repro.core.schedulers.vectorized import ArrayPassState
from repro.forecast.correlation import spearman_from_ranks
from repro.kube.pod import Pod
from repro.workloads.base import QoSClass

__all__ = ["CBPScheduler"]


class CBPScheduler(Scheduler):
    """Correlation-based provisioning and placement."""

    name = "cbp"
    requires_sharing = True

    def __init__(
        self,
        percentile: float = 80.0,
        correlation_threshold: float = 0.5,
        resize_margin_mb: float = 64.0,
        max_pods_per_gpu: int = 8,
        corr_gate_min_mb: float = 1_300.0,
        usage_headroom: float = 0.95,
        batch_sm_ceiling: float = 1.15,
        lc_sm_ceiling: float = 0.25,
        interference_alpha: float = 0.7,
        vectorized: bool = True,
    ) -> None:
        self.percentile = percentile
        self.correlation_threshold = correlation_threshold
        #: Don't bother resizing for less than this (docker-resize churn).
        self.resize_margin_mb = resize_margin_mb
        self.max_pods_per_gpu = max_pods_per_gpu
        #: Pods smaller than this bypass the correlation gate: a
        #: footprint under ~8 % of the device cannot meaningfully
        #: contribute to a capacity violation, and gating tiny inference
        #: queries would only add queueing delay (their SLO budget).
        self.corr_gate_min_mb = corr_gate_min_mb
        #: Fraction of physical memory that (used + new alloc) may reach.
        self.usage_headroom = usage_headroom
        #: Stop stacking batch pods onto a device once its expected SM
        #: demand passes this: beyond saturation, added containers only
        #: dilate everyone's runtime (the GPU time-shares compute).
        self.batch_sm_ceiling = batch_sm_ceiling
        #: Fallback SM ceiling for latency-critical queries whose image
        #: has no runtime profile yet; profiled images get an
        #: SLO-derived per-query ceiling (see :meth:`_lc_ceiling`).
        self.lc_sm_ceiling = lc_sm_ceiling
        #: The interference coefficient assumed when inverting the
        #: co-location slowdown model (matches the device default).
        self.interference_alpha = interference_alpha
        #: Use the array-native pass over :class:`ClusterState` when no
        #: per-candidate observer is live (see :meth:`_fast_pass_ok`).
        #: Decisions are bit-identical either way; ``False`` pins the
        #: dict path (the A/B axis the equivalence tests exercise).
        self.vectorized = vectorized
        #: Evidence captured by the last :meth:`_admit` call — the
        #: per-resident-image Spearman ρ values the gate evaluated.
        #: Only populated while the decision audit log is enabled.
        self._last_correlations: dict[str, float] | None = None
        self._auditing = False
        #: Pass-scoped admission-rho memo: (candidate image, resident
        #: image, candidate profile version, resident profile version)
        #: -> rho (or None for an unprofiled resident).  Profiles only
        #: change between passes, so k residents cost k dict lookups
        #: after the first evaluation instead of k re-rankings.
        self._rho_memo: dict[tuple[str, str, int, int], float | None] = {}

    # -- pass ---------------------------------------------------------------

    def _begin_pass(self) -> None:
        """Reset pass-scoped state (audit flag, admission-rho memo)."""
        self._auditing = self.obs.audit.enabled
        self._rho_memo.clear()

    def _fast_pass_ok(self, ctx: SchedulingContext) -> bool:
        """Whether the array-native pass may replace the dict pass.

        Requires observability fully off — the audit trail records one
        attempt line per *enumerated* candidate, and the fast path
        deliberately never enumerates the devices it skips — plus a
        knots runtime that exposes the SoA :class:`ClusterState`.
        Subclasses that override candidate ordering (the heterogeneity-
        aware PP) are excluded by the exact-type checks at the call
        sites.
        """
        return (
            self.vectorized
            and not self._auditing
            and not self.obs.enabled
            and self.obs.sanitizer is None
            and getattr(ctx.knots, "state", None) is not None
        )

    def quantum_ok(self) -> bool:
        """The vectorized execution quantum is safe under stock CBP:
        with observability off it always takes the array-native pass,
        which reads telemetry through ``ClusterState`` (kept exact by
        the quantum), never through the per-object aggregator snapshot.
        Subclasses that override candidate ordering fall back to the
        dict pass, so the same exact-type gate applies."""
        return type(self) is CBPScheduler and self.vectorized

    def schedule(self, ctx: SchedulingContext) -> list[Action]:
        actions: list[Action] = []
        self._begin_pass()
        if type(self) is CBPScheduler and self._fast_pass_ok(ctx):
            cs = ctx.knots.state
            aps = ArrayPassState(cs, ~(cs.failed | cs.cordoned))
            aps.load_residents(ctx, ctx.knots)
            actions.extend(self._harvest_fast(ctx, aps))
            actions.extend(self._place_fast(ctx, aps))
            return actions
        views = ctx.knots.all_gpus_by_free_memory()
        state = PassState.from_views(views, ctx.residents_on)
        self._load_pressure(ctx, state)
        actions.extend(self._harvest(ctx, state))
        actions.extend(self._place(ctx, state))
        return actions

    def _load_pressure(self, ctx: SchedulingContext, state: PassState) -> None:
        """Replace raw (capped) SM telemetry with profile-based demand.

        nvidia-smi style utilization saturates at 100 % no matter how
        oversubscribed a device is; for placement the scheduler needs the
        *demand* behind it.  Knots reconstructs that from the resident
        pods' image profiles — runtime feedback, not a priori profiling.
        It also collects each resident's peak-memory overshoot for the
        two-peak capacity guard.
        """
        for gpu_id in state.free:
            residents = ctx.residents_on(gpu_id)
            pressure = 0.0
            peak_pressure = 0.0
            overshoots = []
            lc = 0
            for res in residents:
                if res.qos_class is QoSClass.LATENCY_CRITICAL:
                    lc += 1
                profile = ctx.knots.profiles.get(res.image)
                if profile is not None and profile.observations:
                    pressure += float(np.percentile(profile.sm_series, 75))
                    peak_pressure += float(profile.sm_series.max())
                    overshoots.append(max(profile.peak_mem_mb() - res.alloc_mb, 0.0))
                else:
                    pressure += 0.3   # unknown image: assume moderate load
                    peak_pressure += 0.5
                    overshoots.append(0.0)   # reservation is its own request
            state.sm[gpu_id] = pressure
            state.sm_peak[gpu_id] = peak_pressure
            state.overshoots[gpu_id] = overshoots
            state.lc_count[gpu_id] = lc

    # -- harvesting ----------------------------------------------------------

    def _harvest(self, ctx: SchedulingContext, state: PassState) -> list[Resize]:
        """``Docker_Resize(Node_List, Pend_Apps)``: shrink over-provisioned
        batch residents to their image's 80th-percentile footprint."""
        resizes: list[Resize] = []
        if not ctx.pending:
            return resizes       # nothing waiting — leave containers alone
        for gpu_id, residents in ctx.residents.items():
            if gpu_id not in state.free:
                continue          # device not visible this pass (asleep)
            for res in residents:
                if res.qos_class is QoSClass.LATENCY_CRITICAL:
                    continue
                target = ctx.knots.profiles.provision_mb(res.image, res.alloc_mb, self.percentile)
                if target < res.alloc_mb - self.resize_margin_mb:
                    resizes.append(Resize(res.uid, gpu_id, target))
                    state.free[gpu_id] += res.alloc_mb - target
                    if self._auditing:
                        self.obs.audit.record(
                            "resize",
                            pod_uid=res.uid,
                            image=res.image,
                            qos=res.qos_class.value,
                            gpu_id=gpu_id,
                            alloc_mb=target,
                            queue_depth=len(ctx.pending),
                            evidence={
                                "old_alloc_mb": res.alloc_mb,
                                "harvested_mb": res.alloc_mb - target,
                                "percentile": self.percentile,
                            },
                        )
        return resizes

    # -- array-native fast pass (see schedulers/vectorized.py) ---------------

    def _harvest_fast(self, ctx: SchedulingContext, aps: ArrayPassState) -> list[Resize]:
        """:meth:`_harvest` over the array state: same residents walk,
        same resize predicate, free credited into the column vector."""
        resizes: list[Resize] = []
        if not ctx.pending:
            return resizes
        index = aps.cs.index
        included = aps.included
        profiles = ctx.knots.profiles
        for gpu_id, residents in ctx.residents.items():
            i = index.get(gpu_id)
            if i is None or not included[i]:
                continue
            for res in residents:
                if res.qos_class is QoSClass.LATENCY_CRITICAL:
                    continue
                target = profiles.provision_mb(res.image, res.alloc_mb, self.percentile)
                if target < res.alloc_mb - self.resize_margin_mb:
                    resizes.append(Resize(res.uid, gpu_id, target))
                    aps.free[i] += res.alloc_mb - target
        return resizes

    def _place_fast(self, ctx: SchedulingContext, aps: ArrayPassState) -> list[Action]:
        """:meth:`_place` with vectorized fit masks and arg-min candidate
        picks.  The admission gate stays scalar and is invoked on exactly
        the devices the dict path's candidate walk would reach — same
        order, same rho-memo evolution, same binds."""
        actions: list[Action] = []
        gpu_ids = aps.cs.gpu_ids
        for pod in self._ordered_pending(ctx):
            alloc = self._provision(ctx, pod)
            expected_sm = self._expected_sm(ctx, pod)
            peak = self._peak_of(ctx, pod, alloc)
            is_lc = pod.spec.qos_class is QoSClass.LATENCY_CRITICAL
            fits = aps.fits_mask(
                alloc, peak, expected_sm, not is_lc,
                self.max_pods_per_gpu, self.usage_headroom, self.batch_sm_ceiling,
            )
            ceiling = self._lc_ceiling(ctx, pod) if is_lc else 0.0
            aps.begin_pod()
            hot = False
            while True:
                if is_lc:
                    i = aps.pick_lc(fits, ceiling, hot)
                    if i < 0 and not hot:
                        hot = True
                        continue
                else:
                    i = aps.pick_batch(fits)
                if i < 0:
                    break
                gpu_id = gpu_ids[i]
                if self._admit(ctx, pod, gpu_id, alloc, aps):
                    actions.append(Bind(pod.uid, gpu_id, alloc))
                    aps.book(
                        i, gpu_id, pod.spec.image, is_lc,
                        alloc, expected_sm, peak, self._peak_sm_of(pod),
                    )
                    break
                aps.reject(i)
        return actions

    # -- placement -----------------------------------------------------------

    def _ordered_pending(self, ctx: SchedulingContext) -> list[Pod]:
        """Latency-critical first (FCFS, SLO-aware), then batch FFD."""
        lc, batch = self.split_by_qos(ctx.pending)
        return lc + self.ffd_order(batch)

    def _candidate_gpus(
        self, pod: Pod, state: PassState, lc_ceiling: float | None = None
    ) -> list[str]:
        """Device visit order for one pod.

        Batch pods bin-pack: fullest device (least free memory) first,
        which is what harvests fragmentation into co-location instead of
        leaving slivers stranded on every node.  Latency-critical pods
        are SLO-aware *and* consolidation-friendly: among the devices
        whose compute pressure stays under the query's interference
        budget, pick the busiest (co-locate with batch — the paper's
        whole point); devices over the budget come last, coolest first.
        """
        if pod.spec.qos_class is QoSClass.LATENCY_CRITICAL:
            ok, hot = self._lc_candidate_split(pod, state, lc_ceiling)
            return ok + hot
        # Batch: prefer devices not hosting live inference queries, then
        # pack tight (least free memory first).
        return sorted(
            state.free, key=lambda gid: (state.lc_count.get(gid, 0), state.free[gid], gid)
        )

    def _lc_candidate_split(
        self, pod: Pod, state: PassState, lc_ceiling: float | None
    ) -> tuple[list[str], list[str]]:
        """(devices under the query's SM budget, busiest first; the rest).

        The budget is checked against each device's *peak* co-runner SM:
        a query overlapping a co-runner's compute surge is exactly the
        interference scenario the SLO budget must survive.
        """
        ceiling = self.lc_sm_ceiling if lc_ceiling is None else lc_ceiling
        ok = [g for g in state.free if state.sm_peak.get(g, 0.0) < ceiling]
        hot = [g for g in state.free if g not in set(ok)]
        ok.sort(key=lambda gid: (-state.sm_peak.get(gid, 0.0), -state.free[gid], gid))
        hot.sort(key=lambda gid: (state.sm_peak.get(gid, 0.0), -state.free[gid], gid))
        return ok, hot

    def _lc_ceiling(self, ctx: SchedulingContext, pod: Pod) -> float:
        """SLO-derived co-location budget for a latency-critical query.

        The query tolerates interference stretch up to (roughly)
        ``threshold / runtime``; inverting the interference model gives
        the co-runner SM demand it can live next to.  The runtime comes
        from the image's observed profile (runtime feedback, not a
        priori knowledge); unknown images get the conservative default.
        """
        threshold = pod.spec.qos_threshold_ms
        profile = ctx.knots.profiles.get(pod.spec.image)
        if threshold is None or profile is None or not profile.observations:
            return self.lc_sm_ceiling
        runtime = max(profile.mean_runtime_ms, 1.0)
        allowed_stretch = 0.6 * threshold / runtime       # 40 % safety margin
        if allowed_stretch <= 1.0:
            return 0.1            # already at the edge: want a near-idle device
        ceiling = (allowed_stretch - 1.0) / self.interference_alpha
        return float(np.clip(ceiling, 0.1, 4.0))

    def _place(self, ctx: SchedulingContext, state: PassState) -> list[Action]:
        actions: list[Action] = []
        auditing = self._auditing
        queue_depth = len(ctx.pending)
        for pod in self._ordered_pending(ctx):
            alloc = self._provision(ctx, pod)
            expected_sm = self._expected_sm(ctx, pod)
            peak = self._peak_of(ctx, pod, alloc)
            attempts: list[dict] | None = [] if auditing else None
            placed = False
            for gpu_id in self._candidate_gpus(pod, state, self._lc_ceiling(ctx, pod)):
                if not self._fits(state, gpu_id, alloc, peak, pod, expected_sm):
                    if auditing:
                        attempts.append(self._attempt(state, gpu_id, "no-fit"))
                    continue
                if not self._admit(ctx, pod, gpu_id, alloc, state):
                    if auditing:
                        attempts.append(self._attempt(state, gpu_id, "correlated"))
                    continue
                actions.append(Bind(pod.uid, gpu_id, alloc))
                if auditing:
                    attempts.append(self._attempt(state, gpu_id, "bound"))
                    self._audit_bind(
                        pod, gpu_id, alloc, queue_depth,
                        evidence=self._bind_evidence(pod, alloc, peak, expected_sm, attempts),
                    )
                self._book_pod(state, gpu_id, pod, alloc, expected_sm, peak)
                placed = True
                break
            # No admissible device: the pod stays pending (CBP's queueing
            # cost for positively correlated arrivals).
            if not placed and auditing:
                self._audit_reject(
                    pod, queue_depth,
                    evidence={"alloc_mb": alloc, "peak_mb": peak, "attempts": attempts},
                )
        return actions

    # -- audit evidence ------------------------------------------------------

    def _attempt(self, state: PassState, gpu_id: str, outcome: str) -> dict:
        """One candidate-device score line for the audit trail."""
        entry = {
            "gpu_id": gpu_id,
            "outcome": outcome,
            "free_mb": round(state.free.get(gpu_id, 0.0), 1),
            "sm": round(state.sm.get(gpu_id, 0.0), 3),
        }
        if outcome == "correlated" and self._last_correlations is not None:
            entry["correlations"] = self._last_correlations
        return entry

    def _bind_evidence(
        self, pod: Pod, alloc: float, peak: float, expected_sm: float, attempts: list[dict]
    ) -> dict:
        """Everything the CBP decision used, audit-ready."""
        return {
            "request_mb": pod.spec.requested_mem_mb,
            "peak_mb": peak,
            "expected_sm": round(expected_sm, 3),
            "percentile": self.percentile,
            "correlations": self._last_correlations,
            "attempts": attempts,
        }

    def _book_pod(
        self,
        state: PassState,
        gpu_id: str,
        pod: Pod,
        alloc: float,
        expected_sm: float,
        peak: float,
    ) -> None:
        """Record a planned bind into the pass-local accounting."""
        state.book(gpu_id, alloc, expected_sm, peak_sm=self._peak_sm_of(pod))
        state.overshoots.setdefault(gpu_id, []).append(max(peak - alloc, 0.0))
        state.planned_images.setdefault(gpu_id, []).append(pod.spec.image)
        if pod.spec.qos_class is QoSClass.LATENCY_CRITICAL:
            state.lc_count[gpu_id] = state.lc_count.get(gpu_id, 0) + 1

    def _peak_sm_of(self, pod: Pod) -> float:
        """Worst-case SM demand of a pod (from its trace)."""
        return float(pod.spec.trace.peak_sm())

    def _peak_of(self, ctx: SchedulingContext, pod: Pod, alloc: float) -> float:
        """Best estimate of the pod's peak memory: profile, else request."""
        profile = ctx.knots.profiles.get(pod.spec.image)
        if profile is not None and profile.observations:
            return profile.peak_mem_mb()
        return max(pod.spec.requested_mem_mb, alloc)

    def _fits(
        self,
        state: PassState,
        gpu_id: str,
        alloc: float,
        peak: float,
        pod: Pod,
        expected_sm: float,
    ) -> bool:
        """Reservation fit + two-peak physical safety + SM-saturation fit.

        The physical guard provisions for the common case but insists the
        device could absorb the *two largest* peak overshoots firing at
        once: co-located peaks are individually rare (a few percent duty
        cycle), so simultaneous triple peaks are negligible, while pairs
        do happen over a long run (Sec. IV-C's failure-probability
        argument made concrete).
        """
        if state.count.get(gpu_id, 0) >= self.max_pods_per_gpu:
            return False
        if alloc > state.free[gpu_id]:
            return False
        cap = state.caps[gpu_id]
        allocated_after = cap - (state.free[gpu_id] - alloc)
        overs = sorted(
            state.overshoots.get(gpu_id, []) + [max(peak - alloc, 0.0)], reverse=True
        )
        worst_two = sum(overs[:2])
        if allocated_after + worst_two > self.usage_headroom * cap:
            return False
        if pod.spec.qos_class is QoSClass.BATCH:
            # Never drop a batch kernel next to a live inference query:
            # the query's SLO budget was computed against the co-runner
            # load at *its* placement time.  Queries are short-lived, so
            # the batch pod only waits a scheduling pass or two.
            if state.lc_count.get(gpu_id, 0) > 0:
                return False
            return state.sm.get(gpu_id, 0.0) + expected_sm <= self.batch_sm_ceiling
        return True

    def _expected_sm(self, ctx: SchedulingContext, pod: Pod) -> float:
        """The pod's expected compute load, booked into the pass-local SM
        view so several queries bound in one pass spread across devices."""
        profile = ctx.knots.profiles.get(pod.spec.image)
        if profile is not None and profile.observations:
            # 75th percentile, not the mean: compute phases are where
            # co-location interference actually happens.
            return float(np.percentile(profile.sm_series, 75))
        return pod.spec.trace.peak_sm() * 0.5

    def _provision(self, ctx: SchedulingContext, pod: Pod) -> float:
        """Reservation for a pending pod: p80 of its image if known."""
        return ctx.knots.profiles.provision_mb(
            pod.spec.image, pod.spec.requested_mem_mb, self.percentile
        )

    def _admit(
        self, ctx: SchedulingContext, pod: Pod, gpu_id: str, alloc: float, state: PassState
    ) -> bool:
        """``Can_Co-locate``: correlation gate against every resident."""
        # Gate on the pod's *peak* footprint, not its (possibly resized)
        # reservation: a harvested pod still surges to its peak, and it
        # is peaks colliding that causes capacity violations.
        profile = ctx.knots.profiles.get(pod.spec.image)
        peak = profile.peak_mem_mb() if profile is not None and profile.observations else alloc
        self._last_correlations = None
        if max(alloc, peak) < self.corr_gate_min_mb:
            return True
        candidate = ctx.knots.profiles.correlation_ranks(pod.spec.image)
        if candidate is None:
            # First pod of an image: no signal.  It carries its full
            # request as reservation, so co-location is already safe
            # against reservation arithmetic.
            return True
        resident_images = [res.image for res in ctx.residents_on(gpu_id)]
        resident_images += state.planned_images.get(gpu_id, [])
        # ρ per resident image, captured for the decision audit trail.
        correlations: dict[str, float] | None = {} if self._auditing else None
        for image in resident_images:
            rho = self._admission_rho(ctx, pod.spec.image, candidate, image)
            if rho is None:
                continue
            if correlations is not None:
                correlations[image] = round(float(rho), 4)
            if rho >= self.correlation_threshold:
                self._last_correlations = correlations
                return False
        self._last_correlations = correlations
        return True

    def _admission_rho(
        self,
        ctx: SchedulingContext,
        cand_image: str,
        candidate: tuple[np.ndarray, bool],
        res_image: str,
    ) -> float | None:
        """Memoized Spearman rho between two image profiles.

        ``None`` means the resident image has no profile yet (no
        correlation signal — the original gate skipped it).  Ranks come
        pre-computed from the profile store, so a memo miss is one dot
        product, and every further resident of the same image this pass
        is a dictionary lookup.
        """
        profiles = ctx.knots.profiles
        key = (
            cand_image,
            res_image,
            profiles.version(cand_image),
            profiles.version(res_image),
        )
        memo = self._rho_memo
        if key in memo:
            return memo[key]
        resident = profiles.correlation_ranks(res_image)
        if resident is None:
            memo[key] = None
            return None
        cand_ranks, cand_ties = candidate
        res_ranks, res_ties = resident
        rho = spearman_from_ranks(cand_ranks, res_ranks, cand_ties or res_ties)
        memo[key] = rho
        return rho
