"""Kube-Knots core: Knots runtime, schedulers, orchestrator, profiles."""

from repro.core.knots import Knots, KnotsConfig
from repro.core.orchestrator import KubeKnots
from repro.core.profiles import ImageProfile, ProfileStore
from repro.core.schedulers import (
    CBPScheduler,
    PeakPredictionScheduler,
    ResourceAgnosticScheduler,
    Scheduler,
    UniformScheduler,
    make_scheduler,
)

__all__ = [
    "Knots",
    "KnotsConfig",
    "KubeKnots",
    "ProfileStore",
    "ImageProfile",
    "Scheduler",
    "UniformScheduler",
    "ResourceAgnosticScheduler",
    "CBPScheduler",
    "PeakPredictionScheduler",
    "make_scheduler",
]
