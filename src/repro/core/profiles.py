"""Online per-image resource profiles.

Kube-Knots needs *no a priori profiling* (Sec. I, contribution list):
instead, Knots observes containers as they run and accumulates a
profile per docker image — the "container resource usage profiles"
box in the design figure (Fig. 5).  CBP consults these profiles to

* resize new pods of a known image to the 80th-percentile footprint of
  what that image has actually used, and
* compute correlation between a candidate and the pods already resident
  on a device.

The first pod of an image has no profile; the schedulers then fall back
to the user's request, exactly as a cold production system would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.forecast.correlation import rank_with_ties
from repro.workloads.base import WorkloadTrace

__all__ = ["ImageProfile", "ProfileStore", "PROFILE_SERIES_POINTS"]

#: Length all correlation series are resampled to, so any two profiles
#: can be compared regardless of the underlying runtimes.
PROFILE_SERIES_POINTS = 64


def _resample_to(series: np.ndarray, n: int) -> np.ndarray:
    """Linear resample of a series to exactly ``n`` points."""
    series = np.asarray(series, dtype=float)
    if len(series) == 0:
        return np.zeros(n)
    if len(series) == 1:
        return np.full(n, series[0])
    x_old = np.linspace(0.0, 1.0, len(series))
    x_new = np.linspace(0.0, 1.0, n)
    return np.interp(x_new, x_old, series)


@dataclass
class ImageProfile:
    """Accumulated usage statistics for one image."""

    image: str
    observations: int = 0
    # Normalized-time series, running mean over observations.
    mem_series: np.ndarray = field(default_factory=lambda: np.zeros(PROFILE_SERIES_POINTS))
    sm_series: np.ndarray = field(default_factory=lambda: np.zeros(PROFILE_SERIES_POINTS))
    mean_runtime_ms: float = 0.0
    # Pooled percentile inputs.
    _mem_samples: list[np.ndarray] = field(default_factory=list)
    # Rank cache for the correlation hot path, keyed on `observations`
    # (the profile's version: mem_series is replaced on every update).
    _rank_cache: tuple[int, np.ndarray, bool] | None = field(
        default=None, repr=False, compare=False
    )

    def update(self, sampled: dict[str, np.ndarray], runtime_ms: float = 0.0) -> None:
        """Fold one completed run's sampled series into the profile."""
        mem = _resample_to(sampled["mem_mb"], PROFILE_SERIES_POINTS)
        sm = _resample_to(sampled["sm"], PROFILE_SERIES_POINTS)
        n = self.observations
        self.mem_series = (self.mem_series * n + mem) / (n + 1)
        self.sm_series = (self.sm_series * n + sm) / (n + 1)
        self.mean_runtime_ms = (self.mean_runtime_ms * n + runtime_ms) / (n + 1)
        self.observations = n + 1
        self._mem_samples.append(np.asarray(sampled["mem_mb"], dtype=float))
        if len(self._mem_samples) > 32:       # bound memory
            self._mem_samples.pop(0)

    def correlation_ranks(self) -> tuple[np.ndarray, bool]:
        """(average ranks of ``mem_series``, tie flag), ranked once.

        CBP's admission gate Spearman-correlates this profile against
        every resident of every candidate device; caching the ranks per
        profile version makes each comparison a dot product instead of
        a re-ranking.  The cached vector is read-only — it is shared by
        every consumer.
        """
        cache = self._rank_cache
        if cache is None or cache[0] != self.observations:
            ranks, ties = rank_with_ties(self.mem_series)
            ranks.flags.writeable = False
            cache = self._rank_cache = (self.observations, ranks, ties)
        return cache[1], cache[2]

    # -- the statistics CBP provisions with ---------------------------------

    def mem_percentile(self, q: float) -> float:
        if not self._mem_samples:
            raise ValueError(f"no observations for image {self.image!r}")
        pooled = np.concatenate(self._mem_samples)
        return float(np.percentile(pooled, q))

    def peak_mem_mb(self) -> float:
        if not self._mem_samples:
            raise ValueError(f"no observations for image {self.image!r}")
        return float(max(s.max() for s in self._mem_samples))

    def mean_mem_mb(self) -> float:
        if not self._mem_samples:
            raise ValueError(f"no observations for image {self.image!r}")
        return float(np.concatenate(self._mem_samples).mean())


class ProfileStore:
    """All image profiles known to the head node."""

    def __init__(self) -> None:
        self._profiles: dict[str, ImageProfile] = {}

    def __contains__(self, image: str) -> bool:
        return image in self._profiles

    def get(self, image: str) -> ImageProfile | None:
        return self._profiles.get(image)

    def images(self) -> list[str]:
        return sorted(self._profiles)

    def record_trace(self, image: str, trace: WorkloadTrace, step_ms: float = 10.0) -> None:
        """Record a completed pod's observed usage (runtime feedback)."""
        profile = self._profiles.get(image)
        if profile is None:
            profile = self._profiles[image] = ImageProfile(image=image)
        profile.update(trace.sample_series(step_ms), runtime_ms=trace.total_ms)

    def provision_mb(self, image: str, requested_mb: float, percentile: float = 80.0) -> float:
        """The reservation CBP grants a new pod of ``image``.

        With history: the image's ``percentile``-th memory footprint
        (never above the request — harvesting only shrinks).  Without
        history: the request, untouched.
        """
        profile = self._profiles.get(image)
        if profile is None or profile.observations == 0:
            return requested_mb
        return min(profile.mem_percentile(percentile), requested_mb)

    def correlation_series(self, image: str) -> np.ndarray | None:
        """Normalized-time memory series for correlation checks, or None."""
        profile = self._profiles.get(image)
        if profile is None or profile.observations == 0:
            return None
        return profile.mem_series

    def correlation_ranks(self, image: str) -> tuple[np.ndarray, bool] | None:
        """Cached (ranks, tie flag) of ``image``'s correlation series.

        ``None`` under exactly the conditions :meth:`correlation_series`
        returns ``None`` — no profile or no observations yet.
        """
        profile = self._profiles.get(image)
        if profile is None or profile.observations == 0:
            return None
        return profile.correlation_ranks()

    def version(self, image: str) -> int:
        """Profile version (observation count; 0 if unknown image).

        Keys cross-pass memoization: a (candidate, resident) rho is
        valid as long as both profiles' versions are unchanged.
        """
        profile = self._profiles.get(image)
        return 0 if profile is None else profile.observations
