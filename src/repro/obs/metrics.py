"""Counters, gauges and fixed-bucket histograms with Prometheus export.

A tiny instrumentation registry for the simulator's hot paths.  The
shapes follow the Prometheus client-library conventions — counters only
go up, histograms keep cumulative bucket counts plus ``_sum``/``_count``
— so :meth:`MetricsRegistry.render` emits valid text exposition format
that ``promtool`` or any Prometheus scraper would accept.

Like the tracer, the disabled path (:class:`NullMetricsRegistry`) hands
out shared null instruments whose mutators are empty methods: call
sites pre-create their instruments once at wiring time and pay one
no-op call per update when observability is off.
"""

from __future__ import annotations

import bisect
import re
from pathlib import Path
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "DEFAULT_BUCKETS_MS",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: Default latency buckets, in sim milliseconds (queue waits, JCTs).
DEFAULT_BUCKETS_MS: tuple[float, ...] = (
    1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 30_000.0, 60_000.0,
)


def _label_key(labelnames: tuple[str, ...], labels: dict[str, str]) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(f"expected labels {labelnames}, got {tuple(labels)}")
    return tuple(str(labels[n]) for n in labelnames)


def _escape_label_value(value: str) -> str:
    """Prometheus text-format label-value escaping: backslash, double
    quote and newline must be escaped or the exposition is corrupt (a
    raw quote ends the value early, a raw newline ends the sample)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    """HELP-line escaping: backslash and newline (quotes are legal)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _fmt_labels(labelnames: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    pairs = [f'{n}="{_escape_label_value(v)}"' for n, v in zip(labelnames, values)]
    if extra:
        pairs.append(extra)
    return "{" + ",".join(pairs) + "}" if pairs else ""


class _Instrument:
    """Shared plumbing: name, help text, label schema."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)


class Counter(_Instrument):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(self.labelnames, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(self.labelnames, labels), 0.0)

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {_escape_help(self.help)}", f"# TYPE {self.name} counter"]
        if not self._values:
            lines.append(f"{self.name} 0")
            return lines
        for key in sorted(self._values):
            lines.append(f"{self.name}{_fmt_labels(self.labelnames, key)} {self._values[key]:g}")
        return lines


class Gauge(_Instrument):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> None:
        super().__init__(name, help, labelnames)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._values[_label_key(self.labelnames, labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(self.labelnames, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(self.labelnames, labels), 0.0)

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {_escape_help(self.help)}", f"# TYPE {self.name} gauge"]
        if not self._values:
            lines.append(f"{self.name} 0")
            return lines
        for key in sorted(self._values):
            lines.append(f"{self.name}{_fmt_labels(self.labelnames, key)} {self._values[key]:g}")
        return lines


class Histogram(_Instrument):
    """Fixed-boundary histogram with cumulative Prometheus buckets."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS_MS,
        labelnames: Iterable[str] = (),
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if len(set(bounds)) != len(bounds):
            raise ValueError("duplicate bucket boundaries")
        self.buckets = bounds
        # per label-key: per-bucket (non-cumulative) counts, +1 slot for +Inf
        self._counts: dict[tuple[str, ...], list[int]] = {}
        self._sums: dict[tuple[str, ...], float] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(self.labelnames, labels)
        counts = self._counts.get(key)
        if counts is None:
            counts = self._counts[key] = [0] * (len(self.buckets) + 1)
            self._sums[key] = 0.0
        counts[bisect.bisect_left(self.buckets, value)] += 1
        self._sums[key] += value

    def count(self, **labels: str) -> int:
        key = _label_key(self.labelnames, labels)
        return sum(self._counts.get(key, ()))

    def sum(self, **labels: str) -> float:
        return self._sums.get(_label_key(self.labelnames, labels), 0.0)

    def bucket_counts(self, **labels: str) -> dict[float, int]:
        """Cumulative counts per upper bound (``inf`` key = total)."""
        key = _label_key(self.labelnames, labels)
        counts = self._counts.get(key, [0] * (len(self.buckets) + 1))
        out: dict[float, int] = {}
        running = 0
        for bound, c in zip(self.buckets, counts):
            running += c
            out[bound] = running
        out[float("inf")] = running + counts[-1]
        return out

    def render(self) -> list[str]:
        lines = [f"# HELP {self.name} {_escape_help(self.help)}", f"# TYPE {self.name} histogram"]
        if self._counts:
            keys = sorted(self._counts)
        else:
            # An unobserved unlabelled histogram still exposes its
            # (empty) buckets; a labelled one has no series to show.
            keys = [()] if not self.labelnames else []
        for key in keys:
            counts = self._counts.get(key, [0] * (len(self.buckets) + 1))
            running = 0
            for bound, c in zip(self.buckets, counts):
                running += c
                le = _fmt_labels(self.labelnames, key, extra=f'le="{bound:g}"')
                lines.append(f"{self.name}_bucket{le} {running}")
            le = _fmt_labels(self.labelnames, key, extra='le="+Inf"')
            lines.append(f"{self.name}_bucket{le} {running + counts[-1]}")
            lines.append(
                f"{self.name}_sum{_fmt_labels(self.labelnames, key)} {self._sums.get(key, 0.0):g}"
            )
            lines.append(
                f"{self.name}_count{_fmt_labels(self.labelnames, key)} {running + counts[-1]}"
            )
        return lines


class MetricsRegistry:
    """Get-or-create instrument registry with text exposition."""

    enabled: bool = True

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}

    def _get_or_create(self, cls: type, name: str, **kwargs: Any) -> Any:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}, not {cls.kind}"
                )
            return existing
        inst = cls(name, **kwargs)
        self._instruments[name] = inst
        return inst

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help=help, labelnames=labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help=help, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS_MS,
        labelnames: Iterable[str] = (),
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help=help, buckets=buckets, labelnames=labelnames)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def get(self, name: str) -> _Instrument | None:
        return self._instruments.get(name)

    def render(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in self.names():
            lines.extend(self._instruments[name].render())
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str | Path) -> None:
        Path(path).write_text(self.render())


class _NullCounter(Counter):
    def __init__(self) -> None:
        super().__init__("null_total")

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        pass


class _NullGauge(Gauge):
    def __init__(self) -> None:
        super().__init__("null")

    def set(self, value: float, **labels: str) -> None:
        pass

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        pass


class _NullHistogram(Histogram):
    def __init__(self) -> None:
        super().__init__("null", buckets=(1.0,))

    def observe(self, value: float, **labels: str) -> None:
        pass


class NullMetricsRegistry(MetricsRegistry):
    """Disabled registry: hands out shared no-op instruments."""

    enabled = False
    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()

    def counter(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Counter:
        return self._COUNTER

    def gauge(self, name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
        return self._GAUGE

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_BUCKETS_MS,
        labelnames: Iterable[str] = (),
    ) -> Histogram:
        return self._HISTOGRAM

    def render(self) -> str:
        return ""
