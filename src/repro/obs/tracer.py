"""Structured event tracer with Chrome trace-event and JSONL exporters.

The tracer records what the control loop *did* — scheduling passes, pod
lifecycle phases, harvest resizes, heartbeats — as a flat list of
timestamped events that can be replayed offline or opened in a trace
viewer (Perfetto / ``chrome://tracing``).

Design constraints, both from the reproduction's charter:

* **Deterministic.**  Timestamps come from a :class:`SimClock` that the
  simulator advances — never from wall time — so two runs with the same
  seed produce byte-identical traces.
* **Free when off.**  The disabled path is :class:`NullTracer`, whose
  methods are empty and whose ``enabled`` flag lets hot call sites skip
  even argument construction (``if tracer.enabled: ...``).

Event vocabulary (a subset of the Chrome trace-event phases):

========  =======================================================
``B``/``E``  nested duration span (``span()`` context manager)
``i``        instant event (a point in time, e.g. an OOM kill)
``b``/``e``  async span keyed by id (pod lifecycles, which overlap)
``C``        counter track (cluster utilization, queue depth)
========  =======================================================
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

__all__ = ["SimClock", "Tracer", "NullTracer", "TraceError"]


class TraceError(RuntimeError):
    """Raised on invalid tracer use (e.g. ``end()`` without ``begin()``)."""


class SimClock:
    """A settable simulation clock shared by every observability sink.

    The simulator (or event loop) writes ``clock.now`` as it advances;
    tracer/audit records read it.  Keeping one mutable cell avoids
    threading ``now`` through every instrumented call signature.
    """

    __slots__ = ("now",)

    def __init__(self, now: float = 0.0) -> None:
        self.now = float(now)


class Tracer:
    """Collects structured trace events against a :class:`SimClock`."""

    enabled: bool = True

    def __init__(self, clock: SimClock | None = None, process: str = "repro") -> None:
        self.clock = clock or SimClock()
        self.process = process
        self.events: list[dict[str, Any]] = []
        self._stack: list[str] = []    # open B/E span names, for nesting checks
        #: Optional owner-thread guard
        #: (:class:`repro.analysis.racedetect.ThreadAffinity`).  The
        #: span stack and event list are single-threaded by contract;
        #: with a guard installed, a foreign-thread emit reports an
        #: ``owner_thread`` violation instead of corrupting the stack.
        self.guard = None

    # -- core emitters ------------------------------------------------------

    def _ts(self, ts: float | None) -> float:
        return self.clock.now if ts is None else float(ts)

    def instant(
        self, name: str, cat: str = "sim", args: dict | None = None, ts: float | None = None
    ) -> None:
        """A point event (``ph: i``)."""
        ev: dict[str, Any] = {"name": name, "cat": cat, "ph": "i", "ts": self._ts(ts), "s": "t"}
        if args:
            ev["args"] = args
        self.events.append(ev)

    def begin(
        self, name: str, cat: str = "sim", args: dict | None = None, ts: float | None = None
    ) -> None:
        """Open a nested duration span (``ph: B``)."""
        if self.guard is not None:
            self.guard.check("begin")
        ev: dict[str, Any] = {"name": name, "cat": cat, "ph": "B", "ts": self._ts(ts)}
        if args:
            ev["args"] = args
        self.events.append(ev)
        self._stack.append(name)

    def end(self, args: dict | None = None, ts: float | None = None) -> None:
        """Close the innermost open span (``ph: E``)."""
        if self.guard is not None:
            self.guard.check("end")
        if not self._stack:
            raise TraceError("end() with no open span")
        name = self._stack.pop()
        ev: dict[str, Any] = {"name": name, "cat": "sim", "ph": "E", "ts": self._ts(ts)}
        if args:
            ev["args"] = args
        self.events.append(ev)

    @contextmanager
    def span(
        self, name: str, cat: str = "sim", args: dict | None = None
    ) -> Iterator[None]:
        """``with tracer.span("scheduling_pass"): ...`` — B/E pair."""
        self.begin(name, cat, args)
        try:
            yield
        finally:
            self.end()

    def async_begin(
        self, name: str, id_: str, cat: str = "pod", args: dict | None = None,
        ts: float | None = None,
    ) -> None:
        """Open an async span (``ph: b``) — overlapping lifecycles."""
        ev: dict[str, Any] = {
            "name": name, "cat": cat, "ph": "b", "id": id_, "ts": self._ts(ts),
        }
        if args:
            ev["args"] = args
        self.events.append(ev)

    def async_end(
        self, name: str, id_: str, cat: str = "pod", args: dict | None = None,
        ts: float | None = None,
    ) -> None:
        """Close an async span (``ph: e``) opened with the same id."""
        ev: dict[str, Any] = {
            "name": name, "cat": cat, "ph": "e", "id": id_, "ts": self._ts(ts),
        }
        if args:
            ev["args"] = args
        self.events.append(ev)

    def counter(self, name: str, values: dict[str, float], ts: float | None = None) -> None:
        """A counter-track sample (``ph: C``) — renders as a stacked area."""
        self.events.append(
            {"name": name, "cat": "sim", "ph": "C", "ts": self._ts(ts), "args": dict(values)}
        )

    # -- introspection ------------------------------------------------------

    @property
    def depth(self) -> int:
        """Current B/E nesting depth (0 = no open span)."""
        return len(self._stack)

    def open_spans(self) -> list[str]:
        return list(self._stack)

    def __len__(self) -> int:
        return len(self.events)

    # -- exporters ----------------------------------------------------------

    def to_chrome(self, path: str | Path) -> int:
        """Write Chrome trace-event JSON (openable in Perfetto).

        Sim time is milliseconds; the trace-event format wants
        microseconds, so timestamps are scaled by 1000 on the way out.
        Returns the number of events written.
        """
        trace_events = []
        for ev in self.events:
            out = dict(ev)
            out["ts"] = ev["ts"] * 1_000.0
            out.setdefault("pid", 0)
            out.setdefault("tid", 0)
            trace_events.append(out)
        payload = {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"process": self.process, "format": "kube-knots-repro/trace", "version": 1},
        }
        Path(path).write_text(json.dumps(payload))
        return len(trace_events)

    def to_jsonl(self, path: str | Path) -> int:
        """Write one raw event per line (sim-time timestamps, ms)."""
        with Path(path).open("w") as fh:
            for ev in self.events:
                fh.write(json.dumps(ev))
                fh.write("\n")
        return len(self.events)


class _NullContext:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_CTX = _NullContext()


class NullTracer(Tracer):
    """The disabled tracer: every emitter is a no-op.

    ``enabled`` is False so hot paths can skip argument construction
    entirely; calling the emitters anyway is still safe (and cheap).
    """

    enabled = False

    def __init__(self, clock: SimClock | None = None) -> None:
        super().__init__(clock)

    def instant(self, *a: Any, **kw: Any) -> None:
        pass

    def begin(self, *a: Any, **kw: Any) -> None:
        pass

    def end(self, *a: Any, **kw: Any) -> None:
        pass

    def span(self, *a: Any, **kw: Any) -> _NullContext:  # type: ignore[override]
        return _NULL_CTX

    def async_begin(self, *a: Any, **kw: Any) -> None:
        pass

    def async_end(self, *a: Any, **kw: Any) -> None:
        pass

    def counter(self, *a: Any, **kw: Any) -> None:
        pass
