"""The observability bundle threaded through the stack.

One :class:`Observability` object carries the three sinks — tracer,
metrics registry, decision audit log — plus the shared
:class:`~repro.obs.tracer.SimClock` they all stamp from.  Components
accept it as an optional constructor argument defaulting to
:data:`NOOP`, the module-level disabled bundle, so instrumentation
costs one attribute check (``obs.enabled``) or one empty method call
when observability is off.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.audit import DecisionAuditLog, NullAuditLog
from repro.obs.metrics import MetricsRegistry, NullMetricsRegistry
from repro.obs.tracer import NullTracer, SimClock, Tracer

__all__ = ["Observability", "NOOP"]


class Observability:
    """Tracer + metrics + audit log (+ sanitizer, + race detector)
    sharing one sim clock."""

    __slots__ = ("clock", "tracer", "metrics", "audit", "sanitizer", "race", "enabled")

    def __init__(
        self,
        trace: bool = True,
        metrics: bool = True,
        audit: bool = True,
        clock: SimClock | None = None,
        sanitize: bool = False,
        halt_on_violation: bool = True,
        race_detect: bool = False,
        halt_on_race: bool = False,
    ) -> None:
        self.clock = clock or SimClock()
        self.tracer = Tracer(self.clock) if trace else NullTracer(self.clock)
        self.metrics = MetricsRegistry() if metrics else NullMetricsRegistry()
        # Sanitizer and race-detector violations must land somewhere
        # visible, so either checker brings a real audit log along.
        use_audit = bool(audit or sanitize or race_detect)
        self.audit = DecisionAuditLog(self.clock) if use_audit else NullAuditLog(self.clock)
        if sanitize:
            from repro.analysis.sanitizer import Sanitizer

            self.sanitizer: "Sanitizer | None" = Sanitizer(
                audit=self.audit, clock=self.clock, halt=halt_on_violation
            )
        else:
            self.sanitizer = None
        if race_detect:
            from repro.analysis.racedetect import RaceDetector

            self.race: "RaceDetector | None" = RaceDetector(
                audit=self.audit, clock=self.clock, halt=halt_on_race
            )
        else:
            self.race = None
        self.enabled = bool(trace or metrics or use_audit)

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(trace=False, metrics=False, audit=False)

    def tick(self, now: float) -> None:
        """Advance the shared clock (the simulator calls this)."""
        self.clock.now = now

    # -- convenience exporters ----------------------------------------------

    def export(
        self,
        trace_path: str | Path | None = None,
        metrics_path: str | Path | None = None,
        audit_path: str | Path | None = None,
    ) -> dict[str, int]:
        """Write whichever sinks were requested; returns written counts."""
        written: dict[str, int] = {}
        if trace_path is not None:
            written["trace_events"] = self.tracer.to_chrome(trace_path)
        if metrics_path is not None:
            self.metrics.write(metrics_path)
            written["metrics"] = len(self.metrics.names())
        if audit_path is not None:
            written["audit_records"] = self.audit.to_jsonl(audit_path)
        return written


#: The shared disabled bundle every component defaults to.
NOOP = Observability.disabled()
