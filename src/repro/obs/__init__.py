"""``repro.obs`` — tracing, metrics, and scheduler decision auditing.

Zero-dependency observability for the reproduction: a structured
:class:`Tracer` (Chrome trace-event / JSONL exporters), a
:class:`MetricsRegistry` (Prometheus text exposition), and a
:class:`DecisionAuditLog` that records the evidence behind every
placement, rejection and harvest resize.  All three are deterministic
(timestamps come from the simulation clock) and free when disabled —
the default :data:`NOOP` bundle short-circuits every call site.
"""

from repro.obs.audit import DecisionAuditLog, DecisionRecord, NullAuditLog
from repro.obs.context import NOOP, Observability
from repro.obs.metrics import (
    DEFAULT_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.obs.tracer import NullTracer, SimClock, TraceError, Tracer

__all__ = [
    "Observability",
    "NOOP",
    "SimClock",
    "Tracer",
    "NullTracer",
    "TraceError",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS_MS",
    "DecisionAuditLog",
    "NullAuditLog",
    "DecisionRecord",
]
