"""Scheduler decision audit log: one typed record per decision.

The paper's schedulers act on telemetry — CBP gates co-location on
Spearman correlations, PP admits through an ARIMA peak forecast — and
end-of-run aggregates cannot answer *why* a specific pod landed (or
queued) at t=X.  The audit log makes every decision first-class: each
placement, rejection and harvest resize becomes a
:class:`DecisionRecord` carrying the evidence the policy actually used:

* ``correlations`` — the per-resident-image Spearman ρ values the CBP
  gate evaluated (image → ρ);
* ``forecast`` — PP's predicted peak memory utilization and the free
  memory it implied, plus the safety factor applied;
* ``attempts`` — per-candidate-device outcomes (which fit/admission
  check failed where), i.e. the candidate scores;
* ``queue_depth`` — pending pods at decision time.

Records are grouped into *passes* (one scheduler invocation); within a
pass every pending pod yields exactly one bind-or-reject record and
every harvest action one resize record.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.obs.tracer import SimClock

__all__ = ["DecisionRecord", "DecisionAuditLog", "NullAuditLog", "KINDS"]

#: The decision vocabulary.  ``bind``/``reject``/``resize`` are the
#: per-pod scheduling decisions; ``sleep``/``wake`` are the power ones;
#: ``violation`` records a runtime-sanitizer invariant breach
#: (:mod:`repro.analysis.sanitizer`).
KINDS = ("bind", "reject", "resize", "sleep", "wake", "violation")


@dataclass(frozen=True)
class DecisionRecord:
    """One scheduler decision, with the evidence behind it."""

    kind: str                      # one of KINDS
    ts: float                      # sim time (ms) of the scheduling pass
    pass_id: int                   # which scheduler invocation
    scheduler: str                 # policy name ("cbp", "peak-prediction", ...)
    pod_uid: str | None            # None for device-level decisions
    image: str | None
    qos: str | None                # "latency-critical" | "batch"
    gpu_id: str | None             # chosen device (bind/resize), None on reject
    alloc_mb: float | None         # reservation granted / new size
    queue_depth: int               # pending pods when the decision was made
    evidence: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "ts": self.ts,
            "pass_id": self.pass_id,
            "scheduler": self.scheduler,
            "pod_uid": self.pod_uid,
            "image": self.image,
            "qos": self.qos,
            "gpu_id": self.gpu_id,
            "alloc_mb": self.alloc_mb,
            "queue_depth": self.queue_depth,
            "evidence": self.evidence,
        }


class DecisionAuditLog:
    """Append-only store of :class:`DecisionRecord` with query helpers."""

    enabled: bool = True

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock or SimClock()
        self.records: list[DecisionRecord] = []
        self._pass_id = -1
        self._scheduler = "unknown"

    # -- recording ----------------------------------------------------------

    def begin_pass(self, scheduler: str, ts: float | None = None) -> int:
        """Mark the start of one scheduler invocation; returns its id."""
        self._pass_id += 1
        self._scheduler = scheduler
        if ts is not None:
            self.clock.now = float(ts)
        return self._pass_id

    @property
    def pass_id(self) -> int:
        return self._pass_id

    def record(
        self,
        kind: str,
        *,
        pod_uid: str | None = None,
        image: str | None = None,
        qos: str | None = None,
        gpu_id: str | None = None,
        alloc_mb: float | None = None,
        queue_depth: int = 0,
        evidence: dict[str, Any] | None = None,
    ) -> DecisionRecord:
        if kind not in KINDS:
            raise ValueError(f"unknown decision kind {kind!r}; known: {KINDS}")
        rec = DecisionRecord(
            kind=kind,
            ts=self.clock.now,
            pass_id=self._pass_id,
            scheduler=self._scheduler,
            pod_uid=pod_uid,
            image=image,
            qos=qos,
            gpu_id=gpu_id,
            alloc_mb=None if alloc_mb is None else float(alloc_mb),
            queue_depth=queue_depth,
            evidence=evidence or {},
        )
        self.records.append(rec)
        return rec

    # -- queries ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def of_kind(self, kind: str) -> list[DecisionRecord]:
        return [r for r in self.records if r.kind == kind]

    def binds(self) -> list[DecisionRecord]:
        return self.of_kind("bind")

    def rejections(self) -> list[DecisionRecord]:
        return self.of_kind("reject")

    def resizes(self) -> list[DecisionRecord]:
        return self.of_kind("resize")

    def for_pod(self, pod_uid: str) -> list[DecisionRecord]:
        return [r for r in self.records if r.pod_uid == pod_uid]

    def passes(self) -> dict[int, list[DecisionRecord]]:
        out: dict[int, list[DecisionRecord]] = {}
        for r in self.records:
            out.setdefault(r.pass_id, []).append(r)
        return out

    def summary(self) -> dict[str, int]:
        """Decision counts by kind (only kinds that occurred)."""
        out: dict[str, int] = {}
        for r in self.records:
            out[r.kind] = out.get(r.kind, 0) + 1
        return out

    def violations(self) -> list[DecisionRecord]:
        """Sanitizer invariant breaches recorded into this log."""
        return self.of_kind("violation")

    def forecast_admits(self) -> list[DecisionRecord]:
        """Binds that went through PP's ARIMA branch (carry a forecast)."""
        return [r for r in self.binds() if "forecast" in r.evidence]

    # -- export -------------------------------------------------------------

    def to_jsonl(self, path: str | Path) -> int:
        """One JSON record per line.  Returns the record count."""
        with Path(path).open("w") as fh:
            for rec in self.records:
                fh.write(json.dumps(rec.to_dict()))
                fh.write("\n")
        return len(self.records)

    @staticmethod
    def read_jsonl(path: str | Path) -> list[DecisionRecord]:
        """Load records written by :meth:`to_jsonl` (for offline analysis)."""
        records = []
        with Path(path).open() as fh:
            for line in fh:
                if not line.strip():
                    continue
                d = json.loads(line)
                records.append(DecisionRecord(**d))
        return records


class NullAuditLog(DecisionAuditLog):
    """Disabled audit log: recording is a no-op, queries stay empty."""

    enabled = False

    def begin_pass(self, scheduler: str, ts: float | None = None) -> int:
        return -1

    def record(self, kind: str, **kw: Any) -> None:  # type: ignore[override]
        return None
