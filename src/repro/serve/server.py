"""Knots as a long-running service: front door, paced loop, drain.

Threading model (three threads, one hand-off point):

* **front-door thread** — an asyncio loop (``asyncio.start_server``)
  parsing HTTP/1.1 out of the stdlib, translating ``POST /v1/pods``
  JSON into :class:`~repro.kube.pod.PodSpec` objects and offering them
  to the :class:`~repro.serve.queue.AdmissionQueue`; a full queue is a
  ``429`` + ``Retry-After``, a draining one a ``503``.
* **load-generator thread** (optional) — the trace-driven
  :class:`~repro.serve.loadgen.LoadGenerator` offering synthesized
  arrivals through the *same* admission path, so backpressure and SLO
  accounting are identical whether traffic is external or synthetic.
* **service thread** (the caller of :meth:`KnotsService.run`, normally
  the main thread) — the same :class:`~repro.sim.engine.EventLoop` +
  :class:`~repro.sim.harness.TickHarness` substrate the offline
  simulators run on, paced against the host clock by
  :class:`WallClockPacer` via the engine's ``run_paced`` hook.  Each
  tick drains the queue into the API server, steps kubelets, heartbeats
  the Knots monitoring plane, and runs scheduling passes whose ``Bind``
  actions close the admission→placement latency measurement.

Shutdown: :meth:`KnotsService.request_stop` (wired to SIGINT) closes
the queue, unpaces the loop and lets the tick chain drain — every
accepted request is submitted and given a bounded window to receive a
placement decision before the loop stops.  A second request hard-stops
the engine (`EventLoop.stop` is idempotent and thread-safe for exactly
this path).
"""

from __future__ import annotations

import asyncio
import json
import math
import signal
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.cluster.cluster import make_paper_cluster
from repro.core.orchestrator import KubeKnots
from repro.core.schedulers import make_scheduler
from repro.core.schedulers.base import Bind
from repro.kube.pod import PodSpec, reset_uid_counter
from repro.obs.context import Observability
from repro.serve.loadgen import LoadGenerator, synthesize_workload
from repro.serve.queue import OFFER_ACCEPTED, OFFER_FULL, AdmissionQueue
from repro.serve.slo import SLOTracker
from repro.sim.engine import EventLoop
from repro.sim.harness import PHASE_SUBMIT, PhaseGate, TickHarness
from repro.workloads.djinn_tonic import (
    DJINN_TONIC_PROFILES,
    QOS_THRESHOLD_MS,
    make_inference_trace,
)
from repro.workloads.rodinia import RODINIA_PROFILES, make_rodinia_trace

__all__ = [
    "ServeConfig",
    "ServeReport",
    "WallClockPacer",
    "KnotsService",
    "FrontDoor",
    "spec_from_json",
    "run_serve",
]


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``python -m repro serve`` can turn."""

    scheduler: str = "peak-prediction"
    mix: str = "app-mix-1"
    nodes: int = 32                   # paper scale: 32 nodes x 8 GPUs
    gpus_per_node: int = 8
    queue_capacity: int = 1_024
    tick_ms: float = 10.0
    schedule_interval_ms: float = 20.0
    #: Arrival-window length (sim ms == wall ms at speed 1).  ``None``
    #: runs until :meth:`KnotsService.request_stop`.
    duration_s: float | None = 10.0
    qps: float = 0.0                  # 0 = no in-process load generator
    mode: str = "open"                # load-generator mode: open | closed
    concurrency: int = 64             # closed-loop outstanding limit
    #: Sim ms advanced per wall ms (1.0 = real time).  ``paced=False``
    #: runs flat out (benchmarks, CI).
    speed: float = 1.0
    paced: bool = True
    drain_grace_ms: float = 30_000.0  # sim-ms budget for pending decisions
    status_interval_s: float = 1.0    # 0 = no status line
    host: str = "127.0.0.1"
    port: int = 0                     # 0 = ephemeral
    http: bool = True
    sanitize: bool = False
    #: Run under the lock-order/owner-thread race detector
    #: (:mod:`repro.analysis.racedetect`); violations are collected and
    #: reported at end of run (CLI exit code 5).
    race_detect: bool = False
    seed: int = 1


@dataclass
class ServeReport:
    """End-of-run summary (also the CLI table's source)."""

    wall_s: float
    sim_ms: float
    events_fired: int
    counts: dict[str, int]
    offered: int                       # requests presented to the front door
    offered_qps: float
    p50_wall_ms: float
    p95_wall_ms: float
    p99_wall_ms: float
    p50_sim_ms: float
    p99_sim_ms: float
    gpu_util_pct: float
    undecided: int = 0
    loadgen_behind: int = 0

    def rows(self) -> list[tuple[str, str]]:
        c = self.counts
        return [
            ("wall time", f"{self.wall_s:.1f} s"),
            ("sim time", f"{self.sim_ms / 1_000.0:.1f} s"),
            ("offered / accepted / rejected",
             f"{self.offered} / {c['accepted']} / {c['rejected']}"),
            ("offered rate", f"{self.offered_qps:.0f} req/s"),
            ("submitted / placed / dropped",
             f"{c['submitted']} / {c['placed']} / {c['dropped']}"),
            ("undecided at shutdown", str(self.undecided)),
            ("decision latency p50/p95/p99",
             f"{self.p50_wall_ms:.1f} / {self.p95_wall_ms:.1f} / "
             f"{self.p99_wall_ms:.1f} ms"),
            ("decision latency p50/p99 (sim)",
             f"{self.p50_sim_ms:.1f} / {self.p99_sim_ms:.1f} ms"),
            ("mean GPU utilization", f"{self.gpu_util_pct:.1f} %"),
            ("engine events fired", str(self.events_fired)),
        ]


class WallClockPacer:
    """Block each event until its sim time is due on the host clock.

    ``speed`` is sim ms per wall ms.  The origin is pinned at the first
    call, so sim t=0 maps to pacing start.  :meth:`wake` (registered as
    an engine stop hook) interrupts a sleep; :meth:`unpace` turns all
    subsequent calls into no-ops — the drain path runs flat out.

    A lagging simulation (events due in the past) is *not* an error:
    the pacer simply stops sleeping and the sim runs as fast as it can,
    which surfaces as queue growth → 429s, exactly the overload
    behaviour a real control plane exhibits.
    """

    def __init__(
        self,
        speed: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        self.speed = float(speed)
        self.clock = clock
        self._origin: float | None = None
        self._wake = threading.Event()
        self._fast = False

    def wake(self) -> None:
        self._wake.set()

    def unpace(self) -> None:
        self._fast = True
        self._wake.set()

    def lag_s(self, sim_now_ms: float) -> float:
        """How far wall clock is ahead of the sim (>0 = sim lagging)."""
        if self._origin is None:
            return 0.0
        return (self.clock() - self._origin) - sim_now_ms / (1_000.0 * self.speed)

    def __call__(self, when_ms: float) -> None:
        if self._fast:
            return
        if self._origin is None:
            self._origin = self.clock()
        target = self._origin + when_ms / (1_000.0 * self.speed)
        while not self._fast:
            delay = target - self.clock()
            if delay <= 0.0:
                return
            if self._wake.wait(min(delay, 0.5)):
                self._wake.clear()
                return  # stop/unpace: hand control back to the engine


def _unpaced(_when_ms: float) -> None:
    """The flat-out pacer (benchmarks, CI, drain)."""


class KnotsService:
    """The serving session: admission queue → EventLoop → scheduler."""

    def __init__(
        self,
        config: ServeConfig | None = None,
        obs: Observability | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or ServeConfig()
        cfg = self.config
        # Serving always exports metrics; tracing stays off (unbounded
        # growth over a long-running service).
        self.obs = obs or Observability(
            trace=False, metrics=True, audit=True, sanitize=cfg.sanitize,
            race_detect=cfg.race_detect,
        )
        self.clock = clock
        self.cluster = make_paper_cluster(
            num_nodes=cfg.nodes, gpus_per_node=cfg.gpus_per_node
        )
        self.orchestrator = KubeKnots(
            self.cluster, make_scheduler(cfg.scheduler), obs=self.obs
        )
        race = self.obs.race
        self.queue = AdmissionQueue(
            cfg.queue_capacity,
            clock=clock,
            lock=race.tracked("AdmissionQueue._lock") if race is not None else None,
        )
        self.slo = SLOTracker(
            self.obs.metrics,
            lock=race.tracked("SLOTracker._lock") if race is not None else None,
        )
        if race is not None:
            # Single-threaded-by-contract structures get owner-thread
            # guards: every node-local TSDB plus the tracer's span stack.
            guard = race.affinity("TSDB")
            for monitor in self.orchestrator.knots.monitors.values():
                monitor.tsdb.guard = guard
            self.obs.tracer.guard = race.affinity("Tracer")
        self.pacer = WallClockPacer(cfg.speed, clock) if cfg.paced else None
        #: Called once per resolved submission (bind or shed) — the
        #: closed-loop load generator's slot release.
        self.decision_listener: Callable[[], None] | None = None

        self.loop = EventLoop(obs=self.obs)
        if self.pacer is not None:
            self.loop.add_stop_hook(self.pacer.wake)
        self._harness = TickHarness(self.loop, cfg.tick_ms, self._on_tick)
        knots_cfg = self.orchestrator.knots.config
        self._hb = PhaseGate(knots_cfg.heartbeat_ms, start_due=0.0)
        self._sched = PhaseGate(cfg.schedule_interval_ms, start_due=0.0)
        self._status = (
            PhaseGate(cfg.status_interval_s * 1_000.0, start_due=cfg.status_interval_s * 1_000.0)
            if cfg.status_interval_s > 0
            else None
        )
        self._horizon_ms = None if cfg.duration_s is None else cfg.duration_s * 1_000.0
        #: pod uid -> (wall accept time, sim submit time) awaiting a bind.
        self._undecided: dict[str, tuple[float, float]] = {}
        self._stop_event = threading.Event()
        self._draining = False
        self._drain_deadline = math.inf
        self.events_fired = 0
        self._wall_start: float | None = None
        self._wall_end: float | None = None

    # -- admission (any thread) ----------------------------------------------

    def submit_spec(self, spec: PodSpec) -> tuple[str, float]:
        """Offer one pod spec; returns ``(outcome, retry_after_s)``."""
        outcome, retry_after = self.queue.offer((self.clock(), spec))
        if outcome == OFFER_ACCEPTED:
            self.slo.accepted()
        elif outcome == OFFER_FULL:
            self.slo.rejected()
            self._notify_decision()   # a shed request is a resolved one
        else:
            self.slo.refused_closed()
            self._notify_decision()
        return outcome, retry_after

    def _notify_decision(self) -> None:
        listener = self.decision_listener
        if listener is not None:
            listener()

    # -- sim-side injection (benchmarks, tests) ------------------------------

    def inject_workload(self, items: list[tuple[float, PodSpec]]) -> None:
        """Schedule arrivals as sim-time events through the admission
        path — the deterministic, unpaced substitute for the wall-clock
        load generator (used by ``repro.bench.serve`` and tests)."""
        for arrival_ms, spec in items:
            self.loop.schedule_at(
                max(arrival_ms, 0.0),
                self._inject_one,
                spec,
                priority=PHASE_SUBMIT,
            )

    def _inject_one(self, spec: PodSpec) -> None:
        self.submit_spec(spec)

    # -- lifecycle ------------------------------------------------------------

    def request_stop(self) -> None:
        """Begin a graceful drain (idempotent, any thread / signal
        handler).  A second call hard-stops the engine."""
        if self._stop_event.is_set():
            self.loop.stop()
            return
        self._stop_event.set()
        self.queue.close()
        if self.pacer is not None:
            self.pacer.unpace()

    def run(self) -> ServeReport:
        """Drive the loop until drained/stopped; returns the report."""
        reset_uid_counter()
        self._wall_start = self.clock()
        pacer = self.pacer if self.pacer is not None else _unpaced
        self.events_fired = self.loop.run_paced(pacer)
        self._wall_end = self.clock()
        self._finalize()
        return self.report()

    # -- the tick -------------------------------------------------------------

    def _on_tick(self, now: float) -> None:
        orch = self.orchestrator
        cfg = self.config
        batch = self.queue.take_all()
        if batch:
            api = orch.api
            for wall_ts, spec in batch:
                pod = api.submit(spec, now)
                self._undecided[pod.uid] = (wall_ts, now)
            self.slo.submitted(len(batch))
        orch.step_kubelets(now, cfg.tick_ms)
        if self._hb.due(now):
            orch.heartbeat(now)
        if self._sched.due(now):
            actions = orch.scheduling_pass(now)
            if actions and self._undecided:
                wall_now = self.clock()
                undecided = self._undecided
                for action in actions:
                    if type(action) is Bind:
                        meta = undecided.pop(action.pod_uid, None)
                        if meta is not None:
                            self.slo.decision(
                                (wall_now - meta[0]) * 1_000.0, now - meta[1]
                            )
                            self._notify_decision()
        if self._status is not None and self._status.due(now):
            self._emit_status(now)
        self._check_termination(now)

    def _check_termination(self, now: float) -> None:
        if not self._draining:
            horizon_hit = self._horizon_ms is not None and now >= self._horizon_ms
            if horizon_hit or self._stop_event.is_set():
                self._begin_drain(now)
            return
        if now >= self._drain_deadline or (
            len(self.queue) == 0 and not self._undecided
        ):
            self.loop.stop()

    def _begin_drain(self, now: float) -> None:
        self._draining = True
        self._drain_deadline = now + self.config.drain_grace_ms
        self.queue.close()
        if self.pacer is not None:
            self.pacer.unpace()     # drain flat out

    def _finalize(self) -> None:
        # Anything still queued after the loop stopped was accepted but
        # never submitted — only reachable via a hard stop.  Account it
        # so `serve_dropped_total` makes the loss visible.
        leftovers = self.queue.take_all()
        if leftovers:
            self.slo.dropped(len(leftovers))
        self.slo.update_gauges(0, self._gpu_util_pct())

    # -- status/statistics ----------------------------------------------------

    def _gpu_util_pct(self) -> float:
        samples = [g.last_sample.sm_util for g in self.cluster.gpus()]
        return float(np.mean(samples)) if samples else 0.0

    def _emit_status(self, now: float) -> None:
        depth = len(self.queue)
        util = self._gpu_util_pct()
        self.slo.update_gauges(depth, util)
        c = self.slo.counts()
        p50, _p95, p99 = self.slo.wall_ms.percentiles((50.0, 95.0, 99.0))
        lag = self.pacer.lag_s(now) if self.pacer is not None else 0.0
        print(
            f"[serve] t={now / 1_000.0:7.1f}s q={depth:4d} "
            f"acc={c['accepted']} rej={c['rejected']} sub={c['submitted']} "
            f"placed={c['placed']} p50={p50:.1f}ms p99={p99:.1f}ms "
            f"util={util:.1f}% lag={lag:+.2f}s",
            file=sys.stderr,
            flush=True,
        )

    def stats(self) -> dict[str, Any]:
        """The ``/v1/stats`` payload (any thread)."""
        c = self.slo.counts()
        p50, p95, p99 = self.slo.wall_ms.percentiles((50.0, 95.0, 99.0))
        sp50, sp99 = self.slo.sim_ms.percentiles((50.0, 99.0))

        def _nan_none(v: float) -> float | None:
            return None if math.isnan(v) else v

        return {
            "counts": c,
            "queue_depth": len(self.queue),
            "queue_capacity": self.queue.capacity,
            "draining": self._draining or self.queue.closed,
            "decision_latency_ms": {
                "p50": _nan_none(p50), "p95": _nan_none(p95), "p99": _nan_none(p99),
            },
            "decision_latency_sim_ms": {
                "p50": _nan_none(sp50), "p99": _nan_none(sp99),
            },
            "gpu_util_pct": self._gpu_util_pct(),
            "scheduler": self.orchestrator.scheduler.name,
            "cluster": {
                "nodes": self.config.nodes,
                "gpus_per_node": self.config.gpus_per_node,
            },
        }

    def report(self) -> ServeReport:
        c = self.slo.counts()
        wall_s = (
            (self._wall_end or self.clock()) - (self._wall_start or self.clock())
        )
        offered = c["accepted"] + c["rejected"] + c["draining"]
        # Rate over the arrival window — the drain tail offers nothing,
        # so including it would understate the sustained load.
        window_s = wall_s
        if self.config.duration_s is not None and wall_s > 0:
            window_s = min(wall_s, self.config.duration_s)
        p50, p95, p99 = self.slo.wall_ms.percentiles((50.0, 95.0, 99.0))
        sp50, sp99 = self.slo.sim_ms.percentiles((50.0, 99.0))
        return ServeReport(
            wall_s=wall_s,
            sim_ms=self.loop.now,
            events_fired=self.events_fired,
            counts=c,
            offered=offered,
            offered_qps=offered / window_s if window_s > 0 else 0.0,
            p50_wall_ms=p50,
            p95_wall_ms=p95,
            p99_wall_ms=p99,
            p50_sim_ms=sp50,
            p99_sim_ms=sp99,
            gpu_util_pct=self._gpu_util_pct(),
            undecided=len(self._undecided),
        )


# -- request validation ------------------------------------------------------


def spec_from_json(payload: dict[str, Any]) -> PodSpec:
    """Build a :class:`PodSpec` from a ``POST /v1/pods`` body.

    The image selects the workload family exactly like the offline
    mixes: ``rodinia/<app>`` is a batch pod, ``djinn/<query>`` a
    latency-critical inference pod.  Per-request ``seed`` pins the
    synthesized trace, so a replayed request is bit-identical.
    Raises ``ValueError`` on anything malformed (the front door's 400).
    """
    if not isinstance(payload, dict):
        raise ValueError("request body must be a JSON object")
    image = payload.get("image")
    if not isinstance(image, str) or "/" not in image:
        raise ValueError("'image' must look like 'rodinia/<app>' or 'djinn/<query>'")
    family, _, app = image.partition("/")
    seed = int(payload.get("seed", 0))
    rng = np.random.default_rng(seed)
    if family == "rodinia":
        if app not in RODINIA_PROFILES:
            raise ValueError(
                f"unknown rodinia app {app!r}; known: {sorted(RODINIA_PROFILES)}"
            )
        trace = make_rodinia_trace(
            app,
            rng,
            scale=float(payload.get("scale", 40.0)),
            requested_headroom=float(payload.get("headroom", 1.25)),
        )
        qos_ms = None
    elif family == "djinn":
        if app not in DJINN_TONIC_PROFILES:
            raise ValueError(
                f"unknown djinn query {app!r}; known: {sorted(DJINN_TONIC_PROFILES)}"
            )
        trace = make_inference_trace(
            app,
            rng,
            batch_size=int(payload.get("batch_size", 1)),
            tf_managed=bool(payload.get("tf_managed", False)),
        )
        qos_ms = float(payload.get("qos_threshold_ms", QOS_THRESHOLD_MS))
    else:
        raise ValueError(f"unknown image family {family!r} (rodinia | djinn)")
    name = payload.get("name") or f"{family}-{app}"
    if not isinstance(name, str):
        raise ValueError("'name' must be a string")
    return PodSpec(name=name, image=image, trace=trace, qos_threshold_ms=qos_ms)


# -- the asyncio front door --------------------------------------------------

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class FrontDoor:
    """Stdlib-only HTTP/1.1 server on its own asyncio thread.

    Routes::

        POST /v1/pods   submit a pod        202 | 400 | 429 | 503
        GET  /metrics   Prometheus text     200
        GET  /v1/stats  JSON status         200
        GET  /healthz   liveness            200
    """

    def __init__(self, service: KnotsService, host: str = "127.0.0.1", port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port          # resolved to the bound port on start()
        # Lifecycle state (_aio/_server/_thread) is written by the
        # serve thread during startup and by the caller's thread during
        # stop(); one small lock makes the hand-off explicit (lint rule
        # KK005 — cross-thread writes without a lock).
        self._state_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._aio: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "FrontDoor":
        if self._thread is not None:
            raise RuntimeError("front door already started")
        thread = threading.Thread(
            target=self._serve_thread, name="repro-serve-http", daemon=True
        )
        with self._state_lock:
            self._thread = thread
        thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("front door failed to start within 10s")
        if self._startup_error is not None:
            raise RuntimeError(f"front door failed to bind: {self._startup_error}")
        return self

    def stop(self) -> None:
        with self._state_lock:
            aio = self._aio
            thread = self._thread
        if aio is None:
            return
        aio.call_soon_threadsafe(self._shutdown)
        if thread is not None:
            thread.join(timeout=10.0)
        with self._state_lock:
            self._aio = None
            self._thread = None

    def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
        assert self._aio is not None
        self._aio.stop()

    def _serve_thread(self) -> None:
        aio = asyncio.new_event_loop()
        with self._state_lock:
            self._aio = aio
        asyncio.set_event_loop(aio)
        try:
            server = aio.run_until_complete(
                asyncio.start_server(self._handle, self.host, self.port)
            )
            with self._state_lock:
                self._server = server
            self.port = server.sockets[0].getsockname()[1]
        except BaseException as exc:   # bind failure -> surface in start()
            self._startup_error = exc
            self._ready.set()
            aio.close()
            return
        self._ready.set()
        try:
            aio.run_forever()
        finally:
            aio.run_until_complete(aio.shutdown_asyncgens())
            aio.close()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request handling ----------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, ctype, body, extra = await self._respond(reader)
        except Exception:
            status, ctype, body, extra = 500, "text/plain", b"internal error\n", {}
        headers = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        headers += [f"{k}: {v}" for k, v in extra.items()]
        try:
            writer.write(("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, str, bytes, dict[str, str]]:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return 400, "text/plain", b"malformed request line\n", {}
            method, path = parts[0], parts[1]
            content_length = 0
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=10.0)
                if line in (b"\r\n", b"\n", b""):
                    break
                key, _, value = line.decode("latin-1").partition(":")
                if key.strip().lower() == "content-length":
                    content_length = int(value.strip())
            body = (
                await asyncio.wait_for(reader.readexactly(content_length), timeout=10.0)
                if content_length
                else b""
            )
        except (asyncio.TimeoutError, asyncio.IncompleteReadError, ValueError):
            return 400, "text/plain", b"malformed request\n", {}
        return self._route(method, path, body)

    def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, str, bytes, dict[str, str]]:
        if path == "/v1/pods":
            if method != "POST":
                return 405, "text/plain", b"POST only\n", {}
            return self._submit(body)
        if method != "GET":
            return 405, "text/plain", b"GET only\n", {}
        if path == "/metrics":
            return 200, "text/plain; version=0.0.4", self._render_metrics(), {}
        if path == "/healthz":
            return 200, "text/plain", b"ok\n", {}
        if path == "/v1/stats":
            payload = json.dumps(self.service.stats(), sort_keys=True).encode()
            return 200, "application/json", payload + b"\n", {}
        return 404, "text/plain", b"not found\n", {}

    def _submit(self, body: bytes) -> tuple[int, str, bytes, dict[str, str]]:
        try:
            spec = spec_from_json(json.loads(body.decode("utf-8") or "null"))
        except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
            self.service.slo.invalid()
            msg = json.dumps({"error": str(exc)}).encode()
            return 400, "application/json", msg + b"\n", {}
        outcome, retry_after = self.service.submit_spec(spec)
        if outcome == OFFER_ACCEPTED:
            payload = json.dumps(
                {"status": "accepted", "name": spec.name, "queued": len(self.service.queue)}
            ).encode()
            return 202, "application/json", payload + b"\n", {}
        if outcome == OFFER_FULL:
            payload = json.dumps(
                {"error": "admission queue full", "retry_after_s": retry_after}
            ).encode()
            return (
                429,
                "application/json",
                payload + b"\n",
                {"Retry-After": str(max(int(math.ceil(retry_after)), 1))},
            )
        payload = json.dumps({"error": "service is draining"}).encode()
        return 503, "application/json", payload + b"\n", {}

    def _render_metrics(self) -> bytes:
        # The registry is mutated by the service thread; rendering takes
        # a point-in-time sorted snapshot of each instrument's dict, and
        # a resize racing that snapshot raises RuntimeError.  Retry — a
        # consistent scrape is one quiet interval away.
        for _ in range(8):
            try:
                return self.service.obs.metrics.render().encode()
            except RuntimeError:
                time.sleep(0.002)
        return self.service.obs.metrics.render().encode()


# -- entry point -------------------------------------------------------------


def run_serve(
    config: ServeConfig, service: KnotsService | None = None
) -> ServeReport:
    """Build the service, front door and load generator; run to drain.

    SIGINT begins a graceful drain (second SIGINT hard-stops) when
    running on the main thread; otherwise callers use
    :meth:`KnotsService.request_stop` directly.  Pass a pre-built
    ``service`` to keep a handle on its observability sinks.
    """
    if service is None:
        service = KnotsService(config)
    front = FrontDoor(service, config.host, config.port) if config.http else None
    generator: LoadGenerator | None = None
    if front is not None:
        front.start()
        print(f"[serve] listening on {front.address}", file=sys.stderr, flush=True)
    if config.qps > 0:
        if config.duration_s is None:
            raise ValueError("an in-process load generator needs --duration")
        items = synthesize_workload(
            config.qps, config.duration_s, seed=config.seed, mix=config.mix
        )
        generator = LoadGenerator(
            items,
            lambda spec: service.submit_spec(spec)[0],
            mode=config.mode,
            concurrency=config.concurrency,
            clock=service.clock,
        )
        if config.mode == "closed":
            service.decision_listener = generator.on_decision

    previous_handler: Any = None
    on_main = threading.current_thread() is threading.main_thread()
    if on_main:
        def _on_sigint(_signum: int, _frame: Any) -> None:
            print("[serve] SIGINT: draining (^C again to force stop)",
                  file=sys.stderr, flush=True)
            service.request_stop()

        previous_handler = signal.signal(signal.SIGINT, _on_sigint)
    try:
        if generator is not None:
            generator.start()
        report = service.run()
    finally:
        if generator is not None:
            generator.stop()
            generator.join(timeout=5.0)
        if front is not None:
            front.stop()
        if on_main and previous_handler is not None:
            signal.signal(signal.SIGINT, previous_handler)
    if generator is not None:
        report.loadgen_behind = generator.stats.behind_schedule
    return report
