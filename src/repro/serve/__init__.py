"""Kube-Knots as a long-running service.

The serving layer puts the orchestration stack behind an asyncio HTTP
front door: pod submissions arrive over the wire (or from the built-in
trace-driven load generator), pass a bounded admission queue with
explicit backpressure, and land as events on the same
:class:`~repro.sim.engine.EventLoop` the offline simulators use —
driven at wall clock instead of virtual time.  See ``docs/serving.md``.
"""

from repro.serve.loadgen import LoadGenerator, LoadGenStats, synthesize_workload
from repro.serve.queue import (
    OFFER_ACCEPTED,
    OFFER_CLOSED,
    OFFER_FULL,
    AdmissionQueue,
)
from repro.serve.server import (
    FrontDoor,
    KnotsService,
    ServeConfig,
    ServeReport,
    WallClockPacer,
    run_serve,
    spec_from_json,
)
from repro.serve.slo import DECISION_BUCKETS_MS, RingHistogram, SLOTracker

__all__ = [
    "AdmissionQueue",
    "OFFER_ACCEPTED",
    "OFFER_FULL",
    "OFFER_CLOSED",
    "LoadGenerator",
    "LoadGenStats",
    "synthesize_workload",
    "RingHistogram",
    "SLOTracker",
    "DECISION_BUCKETS_MS",
    "ServeConfig",
    "ServeReport",
    "KnotsService",
    "FrontDoor",
    "WallClockPacer",
    "spec_from_json",
    "run_serve",
]
