"""Bounded admission queue between the front door and the event loop.

The HTTP front door (and the in-process load generator) run on their
own threads at wall clock; the Knots service drains the queue into the
simulation's API server from the tick chain.  The queue is therefore
the *only* cross-thread hand-off in the serving path, and it carries
the backpressure contract:

* :meth:`AdmissionQueue.offer` is non-blocking — a full queue returns
  ``False`` immediately, which the front door turns into ``429 Too Many
  Requests`` with a ``Retry-After`` derived from the observed drain
  rate.  Shedding at admission keeps the decision-latency SLO of the
  accepted requests intact instead of letting everyone queue forever.
* :meth:`close` flips the queue into drain mode: new offers are
  refused (the front door answers ``503``) while the service keeps
  draining what was already accepted — the graceful-shutdown half of
  the contract.  Every accepted item is eventually taken; nothing is
  dropped.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable

__all__ = ["AdmissionQueue", "Offer", "OFFER_ACCEPTED", "OFFER_FULL", "OFFER_CLOSED"]

#: :meth:`AdmissionQueue.offer` outcomes.
OFFER_ACCEPTED = "accepted"
OFFER_FULL = "full"
OFFER_CLOSED = "closed"

#: One admission verdict: outcome plus the Retry-After hint (seconds)
#: the front door should send on ``full``.
Offer = tuple[str, float]


class AdmissionQueue:
    """Thread-safe bounded FIFO with drain-rate-based Retry-After hints."""

    def __init__(
        self,
        capacity: int,
        clock: Callable[[], float] = time.monotonic,
        lock: Any | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"queue capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._clock = clock
        # ``lock`` is injectable so ``--race-detect`` can substitute a
        # repro.analysis.racedetect.TrackedLock and fold this queue into
        # the lock-order graph.
        self._lock = lock if lock is not None else threading.Lock()
        self._items: deque[Any] = deque()
        self._closed = False
        self.accepted_total = 0
        self.rejected_total = 0
        self.taken_total = 0
        # EWMA of the drain rate (items/s), updated on every non-empty
        # take; seeds the Retry-After estimate before any drain happens.
        self._drain_rate = 0.0
        self._last_take: float | None = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def offer(self, item: Any) -> Offer:
        """Try to enqueue ``item``; never blocks.

        Returns ``(outcome, retry_after_s)`` — ``retry_after_s`` is only
        meaningful on :data:`OFFER_FULL`.
        """
        with self._lock:
            if self._closed:
                return OFFER_CLOSED, 0.0
            if len(self._items) >= self.capacity:
                self.rejected_total += 1
                return OFFER_FULL, self._retry_after_locked()
            self._items.append(item)
            self.accepted_total += 1
            return OFFER_ACCEPTED, 0.0

    def take_all(self) -> list[Any]:
        """Drain everything currently queued (the tick chain's batch)."""
        now = self._clock()
        with self._lock:
            if not self._items:
                return []
            batch = list(self._items)
            self._items.clear()
            self.taken_total += len(batch)
            if self._last_take is not None:
                dt = now - self._last_take
                if dt > 0.0:
                    rate = len(batch) / dt
                    self._drain_rate = (
                        rate if self._drain_rate == 0.0
                        else 0.8 * self._drain_rate + 0.2 * rate
                    )
            self._last_take = now
            return batch

    def close(self) -> None:
        """Refuse new offers; queued items stay takeable.  Idempotent."""
        with self._lock:
            self._closed = True

    def _retry_after_locked(self) -> float:
        """Seconds until roughly half the queue should have drained —
        long enough that an immediate retry won't bounce again, short
        enough that capacity freed by a burst ending is not wasted."""
        if self._drain_rate <= 0.0:
            return 1.0
        return min(max(0.5 * self.capacity / self._drain_rate, 0.05), 30.0)

    def retry_after_s(self) -> float:
        with self._lock:
            return self._retry_after_locked()
