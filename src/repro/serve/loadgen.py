"""Trace-driven load generator for the serving mode.

Arrivals are synthesized by the exact machinery the offline experiments
use — the Alibaba-style doubly-stochastic
:class:`~repro.workloads.alibaba.ArrivalProcess`, the 80/20 Pareto
short/long split, and the Table-I app-mix pod population — rescaled so
the mix's base arrival rate hits a configurable target QPS.  A fixed
seed produces a byte-identical arrival sequence (times, names, images),
which is what lets the serve benchmark and the smoke tests pin their
numbers.

Two driving modes:

* **open loop** — arrivals fire on their wall-clock schedule no matter
  what the service answers; the offered load is independent of service
  state, so a saturated admission queue sheds the excess as 429s.  This
  is how production traffic behaves and the default.
* **closed loop** — at most ``concurrency`` submissions are undecided
  at once; the next arrival is held until a decision (placement or
  rejection) frees a slot.  Offered load adapts to service capacity —
  the classic load-testing mode for measuring latency without
  coordinated omission from a backlog.

The generator only *submits*; admission verdicts and SLO accounting
live with the service (:mod:`repro.serve.server`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.workloads.appmix import APP_MIXES, WorkloadItem, generate_appmix_workload

__all__ = ["synthesize_workload", "LoadGenerator", "LoadGenStats"]


def synthesize_workload(
    qps: float,
    duration_s: float,
    seed: int = 1,
    mix: str = "app-mix-1",
) -> list[WorkloadItem]:
    """Deterministic serving workload: ``(arrival_ms, PodSpec)`` items.

    The app-mix's base arrival rate is rescaled by ``load_factor`` so
    the long-run arrival rate equals ``qps`` (the diurnal modulation
    and burstiness of the mix are preserved — a "500 QPS" stream still
    has the trace's bursts, which is exactly what exercises the
    admission queue).
    """
    if qps <= 0:
        raise ValueError(f"qps must be positive, got {qps}")
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    base = APP_MIXES[mix].arrival_rate_per_s
    return generate_appmix_workload(
        mix, duration_s=duration_s, seed=seed, load_factor=qps / base
    )


@dataclass
class LoadGenStats:
    """What the generator actually offered."""

    submitted: int = 0
    behind_schedule: int = 0   # open loop: arrivals fired late (catch-up)


class LoadGenerator:
    """Drive ``submit(spec)`` from a precomputed arrival schedule.

    ``submit`` is called from the generator's own thread and must be
    thread-safe (the service's admission path is).  In closed-loop mode
    the service must call :meth:`on_decision` once per resolved
    submission — placements *and* rejections both free a slot.
    """

    def __init__(
        self,
        items: list[WorkloadItem],
        submit: Callable[[object], str],
        mode: str = "open",
        concurrency: int = 64,
        clock: Callable[[], float] = time.monotonic,
        stop_event: threading.Event | None = None,
    ) -> None:
        if mode not in ("open", "closed"):
            raise ValueError(f"mode must be 'open' or 'closed', got {mode!r}")
        if concurrency <= 0:
            raise ValueError(f"concurrency must be positive, got {concurrency}")
        self.items = items
        self.submit = submit
        self.mode = mode
        self.clock = clock
        self.stop_event = stop_event or threading.Event()
        self.stats = LoadGenStats()
        self._slots = threading.Semaphore(concurrency)
        self._thread: threading.Thread | None = None

    # -- service callback (closed loop) -------------------------------------

    def on_decision(self) -> None:
        """A submission was resolved; free a closed-loop slot."""
        if self.mode == "closed":
            self._slots.release()

    # -- driving -------------------------------------------------------------

    def run(self) -> LoadGenStats:
        """Walk the schedule until exhausted or stopped (blocking)."""
        start = self.clock()
        stop = self.stop_event
        for arrival_ms, spec in self.items:
            if stop.is_set():
                break
            if self.mode == "closed":
                # Wait for a slot, staying responsive to stop.
                while not self._slots.acquire(timeout=0.05):
                    if stop.is_set():
                        return self.stats
            due = start + arrival_ms / 1_000.0
            while True:
                delay = due - self.clock()
                if delay <= 0.0:
                    break
                if stop.wait(min(delay, 0.5)):
                    return self.stats
            if delay < -0.05:
                self.stats.behind_schedule += 1
            self.submit(spec)
            self.stats.submitted += 1
        return self.stats

    def start(self) -> threading.Thread:
        """Run the schedule on a daemon thread; returns the thread."""
        if self._thread is not None:
            raise RuntimeError("load generator already started")
        self._thread = threading.Thread(
            target=self.run, name="repro-serve-loadgen", daemon=True
        )
        self._thread.start()
        return self._thread

    def stop(self) -> None:
        self.stop_event.set()

    def join(self, timeout: float | None = None) -> None:
        if self._thread is not None:
            self._thread.join(timeout)
