"""SLO instrumentation for the serving layer.

Two complementary views of the same signal:

* a Prometheus :class:`~repro.obs.metrics.Histogram`
  (``serve_decision_latency_ms``) with fixed buckets — what a scraper
  aggregates across restarts;
* a :class:`RingHistogram` of the most recent samples, from which exact
  p50/p95/p99 are computed and exported as gauges
  (``serve_decision_latency_p50_ms`` …) plus surfaced in the periodic
  status line.  Fixed buckets quantize tail quantiles badly at serving
  latencies (sub-millisecond to tens of milliseconds); the ring keeps
  the raw values, bounded in memory, and a quantile over "the last N
  decisions" is exactly the sliding-window SLO a pager would watch.

Decision latency is recorded twice per placement: **wall** latency
(admission at the front door → the scheduler binding the pod, host
clock) is the service-level number; **sim** latency (submission tick →
bind tick, sim clock) is deterministic for a fixed seed and is what the
serve benchmark gates on.

The tracker also owns the cluster-side serving gauges: queue depth,
harvested GPU utilization (mean SM utilization over the fleet — the
quantity Kube-Knots exists to raise), and the accepted / rejected /
submitted / placed counters the smoke tests assert on.

Thread-safety: front-door threads record admissions while the tick
chain records decisions; every mutation of shared state happens under
one small lock.
"""

from __future__ import annotations

import math
import threading
from typing import Any

from repro.obs.metrics import MetricsRegistry

__all__ = ["RingHistogram", "SLOTracker", "DECISION_BUCKETS_MS"]

#: Decision-latency buckets (ms): serving decisions run sub-ms to
#: seconds once the admission queue backs up.
DECISION_BUCKETS_MS: tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0,
)


class RingHistogram:
    """Fixed-capacity ring of raw samples with exact quantiles.

    O(1) insert; quantiles sort a snapshot copy (capacity is a few
    thousand floats — microseconds, and only on the status/export
    cadence, never per decision).
    """

    __slots__ = ("_ring", "_capacity", "_next", "_filled", "count", "total")

    def __init__(self, capacity: int = 8_192) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive, got {capacity}")
        self._capacity = int(capacity)
        self._ring: list[float] = [0.0] * self._capacity
        self._next = 0
        self._filled = 0
        #: Lifetime observations (not capped by capacity).
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self._ring[self._next] = float(value)
        self._next = (self._next + 1) % self._capacity
        if self._filled < self._capacity:
            self._filled += 1
        self.count += 1
        self.total += value

    def __len__(self) -> int:
        """Samples currently held (≤ capacity)."""
        return self._filled

    def snapshot(self) -> list[float]:
        return self._ring[: self._filled]

    def percentile(self, q: float) -> float:
        """Exact q-quantile (0–100) of the retained window; NaN when empty."""
        return self.percentiles((q,))[0]

    def percentiles(self, qs: tuple[float, ...] = (50.0, 95.0, 99.0)) -> list[float]:
        """One sort, many quantiles (nearest-rank)."""
        if not self._filled:
            return [math.nan] * len(qs)
        data = sorted(self._ring[: self._filled])
        n = self._filled
        out = []
        for q in qs:
            if not (0.0 <= q <= 100.0):
                raise ValueError(f"percentile must be in [0, 100], got {q}")
            rank = max(int(math.ceil(q / 100.0 * n)), 1) - 1
            out.append(data[min(rank, n - 1)])
        return out


class SLOTracker:
    """Serving SLO metrics: admission counters, decision latency, gauges."""

    def __init__(
        self,
        metrics: MetricsRegistry,
        ring_capacity: int = 8_192,
        lock: Any | None = None,
    ) -> None:
        # ``lock`` is injectable so ``--race-detect`` can substitute a
        # repro.analysis.racedetect.TrackedLock and fold the tracker
        # into the lock-order graph.
        self._lock = lock if lock is not None else threading.Lock()
        self.wall_ms = RingHistogram(ring_capacity)
        self.sim_ms = RingHistogram(ring_capacity)
        self._m_requests = metrics.counter(
            "serve_requests_total",
            "Pod-submission requests at the front door, by outcome",
            labelnames=("outcome",),
        )
        self._m_decision = metrics.histogram(
            "serve_decision_latency_ms",
            "Wall-clock admission-to-placement decision latency",
            buckets=DECISION_BUCKETS_MS,
        )
        self._m_p50 = metrics.gauge(
            "serve_decision_latency_p50_ms",
            "p50 wall decision latency over the recent-decision window",
        )
        self._m_p95 = metrics.gauge(
            "serve_decision_latency_p95_ms",
            "p95 wall decision latency over the recent-decision window",
        )
        self._m_p99 = metrics.gauge(
            "serve_decision_latency_p99_ms",
            "p99 wall decision latency over the recent-decision window",
        )
        self._m_depth = metrics.gauge(
            "serve_queue_depth", "Admission-queue depth at last status update"
        )
        self._m_util = metrics.gauge(
            "serve_cluster_gpu_util",
            "Mean GPU SM utilization (%) — the harvested capacity signal",
        )
        self._m_submitted = metrics.counter(
            "serve_submitted_total", "Accepted requests handed to the API server"
        )
        self._m_placed = metrics.counter(
            "serve_placed_total", "Accepted requests that received a bind decision"
        )
        self._m_dropped = metrics.counter(
            "serve_dropped_total",
            "Accepted requests lost before submission (must stay 0)",
        )

    # -- admission outcomes (front-door threads) ----------------------------

    def accepted(self) -> None:
        with self._lock:
            self._m_requests.inc(outcome="accepted")

    def rejected(self) -> None:
        with self._lock:
            self._m_requests.inc(outcome="rejected")

    def refused_closed(self) -> None:
        with self._lock:
            self._m_requests.inc(outcome="draining")

    def invalid(self) -> None:
        with self._lock:
            self._m_requests.inc(outcome="invalid")

    # -- service-side events (tick chain) -----------------------------------

    def submitted(self, n: int = 1) -> None:
        with self._lock:
            self._m_submitted.inc(n)

    def dropped(self, n: int = 1) -> None:
        with self._lock:
            self._m_dropped.inc(n)

    def decision(self, wall_latency_ms: float, sim_latency_ms: float) -> None:
        with self._lock:
            self.wall_ms.observe(wall_latency_ms)
            self.sim_ms.observe(sim_latency_ms)
            self._m_decision.observe(wall_latency_ms)
            self._m_placed.inc()

    # -- gauges / quantile export -------------------------------------------

    def update_gauges(self, queue_depth: int, gpu_util_pct: float) -> None:
        """Refresh depth/utilization gauges and the quantile gauges —
        called on the status cadence and once at shutdown, so exported
        quantiles are never staler than one status interval."""
        with self._lock:
            self._m_depth.set(float(queue_depth))
            self._m_util.set(float(gpu_util_pct))
            p50, p95, p99 = self.wall_ms.percentiles((50.0, 95.0, 99.0))
            if not math.isnan(p50):
                self._m_p50.set(p50)
                self._m_p95.set(p95)
                self._m_p99.set(p99)

    def counts(self) -> dict[str, int]:
        with self._lock:
            return {
                "accepted": int(self._m_requests.value(outcome="accepted")),
                "rejected": int(self._m_requests.value(outcome="rejected")),
                "draining": int(self._m_requests.value(outcome="draining")),
                "invalid": int(self._m_requests.value(outcome="invalid")),
                "submitted": int(self._m_submitted.value()),
                "placed": int(self._m_placed.value()),
                "dropped": int(self._m_dropped.value()),
            }
