"""Pod model: spec, phases, status timestamps.

The paper uses Google's "pod" and "container" interchangeably (its
footnote 1); so do we.  A :class:`PodSpec` is what a user submits —
image, resource request, the workload it runs.  A :class:`Pod` is the
tracked object: lifecycle phase, placement, progress, restart count,
and the timestamps every metric in the evaluation (JCT, queueing
delay, QoS violations) is derived from.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from enum import Enum

from repro.workloads.base import QoSClass, WorkloadTrace

__all__ = ["PodPhase", "GangSpec", "PodSpec", "Pod", "reset_uid_counter"]


class _UidState(threading.local):
    """Per-thread UID sequence.

    A process-global counter would interleave when two simulations run
    on different threads of one process (e.g. concurrent ``run_tasks``
    callers with in-process execution), making pod UIDs — and thus the
    results — depend on thread timing.
    """

    def __init__(self) -> None:
        self.counter = itertools.count(1)


_uids = _UidState()


def reset_uid_counter() -> None:
    """Restart pod UIDs at ``pod-1`` for the calling thread.

    Each simulator run calls this before creating pods so a run's UIDs
    are a function of the run alone, not of how many simulations the
    process (or thread) happened to execute earlier — which is what
    lets the sweep fabric pin serial, pooled and cached results
    bit-identical.  UIDs are therefore unique within one run, not
    across runs.
    """
    _uids.counter = itertools.count(1)


class PodPhase(Enum):
    """Kubernetes-style lifecycle phases (plus OOM-kill, which we track)."""

    PENDING = "Pending"
    SCHEDULED = "Scheduled"     # bound to a node, image pull may be underway
    RUNNING = "Running"
    SUCCEEDED = "Succeeded"
    OOM_KILLED = "OOMKilled"    # capacity violation victim; will be requeued
    EVICTED = "Evicted"         # lost its device (hardware failure)


@dataclass(frozen=True)
class GangSpec:
    """Membership of a multi-GPU gang job.

    A gang's member pods (one device each) are submitted at the same
    instant and placed all-or-nothing: either every pending member gets
    a distinct device in one scheduling pass, or none does.  When one
    member is evicted the orchestrator co-evicts its still-hosted
    siblings, so the gang requeues — and later replaces — as a unit.
    """

    gang_id: str
    size: int
    rank: int


@dataclass(frozen=True)
class PodSpec:
    """Immutable submission-time description of a pod."""

    name: str
    image: str                     # docker image; keys cold-start and profiles
    trace: WorkloadTrace
    qos_threshold_ms: float | None = None  # only for latency-critical pods
    gang: GangSpec | None = None   # set on multi-GPU gang members

    @property
    def qos_class(self) -> QoSClass:
        return self.trace.qos_class

    @property
    def requested_mem_mb(self) -> float:
        return self.trace.requested_mem_mb


@dataclass
class Pod:
    """A tracked pod instance."""

    spec: PodSpec
    uid: str = field(default_factory=lambda: f"pod-{next(_uids.counter)}")
    phase: PodPhase = PodPhase.PENDING

    # placement
    node_id: str | None = None
    gpu_id: str | None = None
    alloc_mb: float = 0.0          # current reservation (resizable)

    # execution state
    progress_ms: float = 0.0       # work completed (trace-time)
    restart_count: int = 0

    # timestamps (simulation ms); None until the transition happens
    submitted_ms: float | None = None
    scheduled_ms: float | None = None
    started_ms: float | None = None
    finished_ms: float | None = None

    def remaining_ms(self) -> float:
        return max(self.spec.trace.total_ms - self.progress_ms, 0.0)

    @property
    def done(self) -> bool:
        return self.phase is PodPhase.SUCCEEDED

    # -- derived metrics ---------------------------------------------------

    def jct_ms(self) -> float:
        """Job completion time: submission to completion."""
        if self.submitted_ms is None or self.finished_ms is None:
            raise ValueError(f"{self.uid} has not completed")
        return self.finished_ms - self.submitted_ms

    def queueing_ms(self) -> float:
        """Time spent pending before (last) placement."""
        if self.submitted_ms is None or self.scheduled_ms is None:
            raise ValueError(f"{self.uid} was never scheduled")
        return self.scheduled_ms - self.submitted_ms

    def violates_qos(self) -> bool:
        """True if a latency-critical pod exceeded its end-to-end SLO."""
        if self.spec.qos_class is not QoSClass.LATENCY_CRITICAL:
            return False
        if self.spec.qos_threshold_ms is None or self.finished_ms is None:
            return False
        return self.jct_ms() > self.spec.qos_threshold_ms

    # -- lifecycle transitions (called by API server / kubelet) ------------

    def mark_submitted(self, now: float) -> None:
        if self.submitted_ms is None:
            self.submitted_ms = now
        self.phase = PodPhase.PENDING

    def mark_scheduled(self, now: float, node_id: str, gpu_id: str, alloc_mb: float) -> None:
        self.phase = PodPhase.SCHEDULED
        self.scheduled_ms = now
        self.node_id = node_id
        self.gpu_id = gpu_id
        self.alloc_mb = alloc_mb

    def mark_running(self, now: float) -> None:
        self.phase = PodPhase.RUNNING
        if self.started_ms is None:
            self.started_ms = now

    def mark_succeeded(self, now: float) -> None:
        self.phase = PodPhase.SUCCEEDED
        self.finished_ms = now

    def mark_oom_killed(self) -> None:
        """Capacity-violation victim: loses placement and progress.

        The paper notes relaunched tasks "cannot be prioritized over
        tasks of other pods that are already ahead on the queue", which
        is how OOM kills inflate tail JCT.  GPU work is lost on kill
        (no preemption/checkpoint support — Sec. I), so progress resets.
        """
        self.phase = PodPhase.OOM_KILLED
        self._lose_placement()

    def mark_evicted(self) -> None:
        """Device failure: the pod loses its placement and its progress."""
        self.phase = PodPhase.EVICTED
        self._lose_placement()

    def _lose_placement(self) -> None:
        self.node_id = None
        self.gpu_id = None
        self.alloc_mb = 0.0
        self.progress_ms = 0.0
        self.restart_count += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pod({self.uid}, {self.spec.image}, {self.phase.value})"
