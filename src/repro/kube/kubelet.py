"""Kubelet: the per-node agent executing pods on GPUs.

Responsibilities mirrored from the paper's setup (Sec. V-B):

* **image pulls** — the first pod of an image on a node pays a
  cold-start pull latency (dependent docker layers such as TensorFlow);
  later pods of the same image start warm.  Host->GPU data transfer is
  *not* hidden: it is the load phase of every workload trace.
* **execution** — each tick the kubelet collects the instantaneous
  demand of every running pod from its trace, lets the GPU arbitrate
  (time-shared SM, space-shared memory), and advances each pod's
  progress by the share it was granted.
* **OOM handling** — a capacity violation kills the victim container;
  the kubelet frees it and reports the kill so the API server requeues
  the pod at the back of the line.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.node import GpuNode
from repro.kube.api import APIServer
from repro.kube.device_plugin import SharedGPUDevicePlugin
from repro.kube.pod import Pod, PodPhase
from repro.obs.context import NOOP, Observability
from repro.obs.metrics import DEFAULT_BUCKETS_MS

__all__ = ["Kubelet", "KubeletConfig"]


@dataclass(frozen=True)
class KubeletConfig:
    """Node-agent timing knobs."""

    image_pull_ms: float = 2_000.0   # cold-start docker pull ("order of seconds")
    warm_start_ms: float = 20.0      # container create/start when layers cached
    #: Hardware power management: a device with nothing resident for
    #: this long drops to its deepest performance state (p_state 12)
    #: on its own — the driver does this regardless of scheduler.
    auto_pstate_idle_ms: float = 2_000.0


class Kubelet:
    """Node agent for one :class:`GpuNode`."""

    def __init__(
        self,
        node: GpuNode,
        api: APIServer,
        plugin: SharedGPUDevicePlugin | None = None,
        config: KubeletConfig | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.node = node
        self.api = api
        self.plugin = plugin or SharedGPUDevicePlugin(node)
        self.config = config or KubeletConfig()
        self.obs = obs or NOOP
        #: Optional shared network fabric (scenario runs): when set,
        #: cold image pulls are charged per-link transfer costs instead
        #: of the constant ``image_pull_ms``.
        self.network = None
        #: Optional vectorized execution quantum
        #: (:class:`repro.cluster.quantum.QuantumEngine`).  When set,
        #: admit/start/release/resize write through so the engine's
        #: pod-major arrays mirror the dicts below — the dicts stay the
        #: source of truth either way.
        self.engine = None
        self._image_cache: set[str] = set()
        self._pods: dict[str, Pod] = {}
        self._start_deadline: dict[str, float] = {}
        self._idle_since: dict[str, float] = {g.gpu_id: 0.0 for g in node.gpus}
        #: Devices that were asleep (and healthy) at the end of the last
        #: executed step — see the ``prev_now`` refresh in :meth:`step`.
        self._asleep_refresh: list[str] = []
        metrics = self.obs.metrics
        self._m_admitted = metrics.counter("pods_admitted_total", "Pods admitted onto a node")
        self._m_completed = metrics.counter("pods_completed_total", "Pods that ran to completion")
        self._m_oom = metrics.counter("pods_oom_killed_total", "Pods killed by capacity violations")
        self._m_evicted = metrics.counter("pods_evicted_total", "Pods evicted by device failures")
        self._m_resizes = metrics.counter("pod_resizes_total", "Container reservation resizes (harvests)")
        self._m_queue_wait = metrics.histogram(
            "pod_queue_wait_ms", "Submit-to-admit queueing delay", buckets=DEFAULT_BUCKETS_MS
        )

    # -- admission (called right after the scheduler binds a pod) ----------

    def admit(self, pod: Pod, now: float) -> None:
        """Take ownership of a bound pod: allocate GPU memory, start pull."""
        if pod.node_id != self.node.node_id:
            raise ValueError(f"{pod.uid} bound to {pod.node_id}, not {self.node.node_id}")
        if pod.gpu_id is None:
            raise ValueError(f"{pod.uid} has no GPU assignment")
        self.plugin.allocate(pod.gpu_id, pod.uid, pod.alloc_mb)
        san = self.obs.sanitizer
        if san is not None:
            san.check_gpu(self.node.find_gpu(pod.gpu_id))
        cold = pod.spec.image not in self._image_cache
        if cold and self.network is not None:
            delay = self.network.pull_ms(self.node.node_id, now)
        else:
            delay = self.config.image_pull_ms if cold else self.config.warm_start_ms
        self._image_cache.add(pod.spec.image)
        self._pods[pod.uid] = pod
        deadline = now + delay
        self._start_deadline[pod.uid] = deadline
        if self.engine is not None:
            self.engine.on_admit(pod, deadline)
        if self.obs.enabled:
            self._m_admitted.inc()
            self._m_queue_wait.observe(max(now - pod.submitted_ms, 0.0))
            tracer = self.obs.tracer
            if tracer.enabled:
                tracer.async_begin(
                    f"pod:{pod.spec.image}", pod.uid, cat="pod",
                    args={"gpu": pod.gpu_id, "alloc_mb": pod.alloc_mb, "cold_pull": cold},
                    ts=now,
                )

    def resize(self, pod: Pod, new_alloc_mb: float, now: float) -> float:
        """Resize a hosted pod's reservation (harvesting hook)."""
        if pod.uid not in self._pods:
            raise KeyError(f"{pod.uid} not hosted on {self.node.node_id}")
        delta = self.plugin.resize(pod.gpu_id, pod.uid, new_alloc_mb)
        san = self.obs.sanitizer
        if san is not None:
            san.check_gpu(self.node.find_gpu(pod.gpu_id))
        self.api.notify_resized(pod, new_alloc_mb, now)
        if self.engine is not None:
            self.engine.on_resize(pod.uid, float(new_alloc_mb))
        if self.obs.enabled:
            self._m_resizes.inc()
            tracer = self.obs.tracer
            if tracer.enabled:
                tracer.instant(
                    "resize", cat="harvest",
                    args={"pod": pod.uid, "gpu": pod.gpu_id, "new_alloc_mb": new_alloc_mb},
                    ts=now,
                )
        return delta

    # -- execution ----------------------------------------------------------

    def step(self, now: float, dt_ms: float, prev_now: float | None = None) -> list[Pod]:
        """Advance all hosted pods by one tick.

        Returns pods OOM-killed this tick (already freed and reported).

        ``prev_now`` is the previous tick's timestamp, passed by the
        orchestrator when intermediate ticks may have been skipped
        (see :meth:`quiet_horizon`): a sleeping device has its
        ``idle_since`` refreshed every tick it stays asleep, so after a
        skip the refresh is replayed once here.  Any device that
        changed state since the last executed step did so after
        ``prev_now`` (a state change re-arms stepping immediately), so
        the end-of-last-step snapshot is exact.
        """
        if prev_now is not None:
            for gpu_id in self._asleep_refresh:
                self._idle_since[gpu_id] = prev_now
        if self._start_deadline:
            self.start_due_pods(now)

        victims: list[Pod] = []
        san = self.obs.sanitizer
        for gpu in self.node.gpus:
            self.step_device(gpu, now, dt_ms, victims, san)
        return victims

    def start_due_pods(self, now: float) -> None:
        """Start every pod whose image pull deadline has passed.

        Also the vectorized quantum's entry point: the engine calls it
        only for nodes its pull-deadline mask flagged, so the common
        all-pods-running tick never scans the dict.
        """
        engine = self.engine
        for uid, deadline in list(self._start_deadline.items()):
            if now >= deadline:
                pod = self._pods[uid]
                self.api.notify_started(pod, now)
                del self._start_deadline[uid]
                if engine is not None:
                    engine.on_pod_started(pod)

    def step_device(
        self, gpu, now: float, dt_ms: float, victims: list[Pod], san=None
    ) -> None:
        """Advance one device by one tick (the object execution path).

        The single per-device implementation: :meth:`step` calls it for
        every device, and the vectorized quantum replays it verbatim
        for devices hit by a rare event (OOM, completion, failure), so
        both modes share one set of semantics.  OOM/eviction victims
        are appended to ``victims``.
        """
        pods = self._pods
        if gpu.failed:
            # The device fell off the bus: every hosted pod dies.
            if pods:
                engine = self.engine
                for pod in [p for p in pods.values() if p.gpu_id == gpu.gpu_id]:
                    del pods[pod.uid]
                    self._start_deadline.pop(pod.uid, None)
                    if engine is not None:
                        engine.on_release(pod.uid)
                    self.api.notify_evicted(pod, now)
                    victims.append(pod)
                    if self.obs.enabled:
                        self._m_evicted.inc()
                        self._pod_trace_end(pod, "evicted", now)
            gpu.last_sample = gpu.idle_sample()
            return
        running = (
            [
                p
                for p in pods.values()
                if p.gpu_id == gpu.gpu_id and p.phase is PodPhase.RUNNING
            ]
            if pods
            else ()
        )
        if san is None and not running and not gpu.containers:
            # Idle device: ``arbitrate({})`` reduces to the idle
            # sample (every sum is empty, the power model sees the
            # same ``asleep`` flag), so write that directly — and
            # only when the memoized sample isn't already in place.
            sample = gpu.idle_sample()
            if gpu.last_sample is not sample:
                gpu.last_sample = sample
            if gpu.containers or gpu.asleep:
                self._idle_since[gpu.gpu_id] = now
            elif now - self._idle_since[gpu.gpu_id] >= self.config.auto_pstate_idle_ms:
                gpu.sleep()
            return
        demands = {p.uid: p.spec.trace.demand_at(p.progress_ms) for p in running}
        shares, _sample, violation = gpu.arbitrate(demands)
        if san is not None:
            san.check_shares(gpu.gpu_id, shares)

        if violation is not None:
            victim = self._pods[violation.victim_uid]
            self._release(victim)
            self.api.notify_oom_killed(victim, now)
            victims.append(victim)
            if self.obs.enabled:
                self._m_oom.inc()
                tracer = self.obs.tracer
                if tracer.enabled:
                    tracer.instant(
                        "oom_kill", cat="pod",
                        args={"pod": victim.uid, "gpu": gpu.gpu_id}, ts=now,
                    )
                self._pod_trace_end(victim, "oom-killed", now)

        for pod in running:
            if pod.uid == (violation.victim_uid if violation else None):
                continue
            pod.progress_ms += dt_ms * shares[pod.uid]
            if pod.progress_ms >= pod.spec.trace.total_ms:
                self._release(pod)
                self.api.notify_succeeded(pod, now)
                if self.obs.enabled:
                    self._m_completed.inc()
                    self._pod_trace_end(pod, "succeeded", now)

        if san is not None:
            san.check_gpu(gpu)
        # Hardware power management: devices idle long enough fall
        # into deep sleep on their own (attach() wakes them).
        if gpu.containers or gpu.asleep:
            self._idle_since[gpu.gpu_id] = now
        elif now - self._idle_since[gpu.gpu_id] >= self.config.auto_pstate_idle_ms:
            gpu.sleep()

    def quiet_horizon(self, now: float, dt_ms: float) -> float:
        """Absolute time before which :meth:`step` is a proven no-op.

        With no hosted pods, a step only (a) re-arbitrates empty devices
        — whose ``last_sample`` is already at the idle fixed point — and
        (b) fires the auto-pstate transition once an awake device has
        idled long enough.  So until the earliest such transition the
        whole step can be skipped without changing any observable state.
        Returns ``-inf`` when the node must step every tick, ``+inf``
        when no timed transition is pending (external mutations bump the
        node epoch, which re-arms stepping).

        The transition estimate backs off half a tick (``step`` compares
        ``now - idle_since`` while we compare ``now`` against
        ``idle_since + auto``; the two can disagree by one ulp) and
        always lies at least half a tick ahead, so a conservative
        wake-up re-runs the exact legacy check and still makes progress.
        """
        self._asleep_refresh = [
            g.gpu_id for g in self.node.gpus if g.asleep and not g.failed
        ]
        if self._pods:
            return float("-inf")
        t_min = float("inf")
        auto_ms = self.config.auto_pstate_idle_ms
        idle_since = self._idle_since
        for gpu in self.node.gpus:
            if gpu.containers:
                return float("-inf")
            if gpu.failed or gpu.asleep:
                continue
            t = idle_since[gpu.gpu_id] + auto_ms
            if t < t_min:
                t_min = t
        if t_min == float("inf"):
            return t_min
        return max(t_min - 0.5 * dt_ms, now + 0.5 * dt_ms)

    def _release(self, pod: Pod) -> None:
        self.plugin.free(pod.gpu_id, pod.uid)
        del self._pods[pod.uid]
        self._start_deadline.pop(pod.uid, None)
        if self.engine is not None:
            self.engine.on_release(pod.uid)

    # -- forced eviction (capacity reclaim, gang co-eviction) ---------------

    def evict_pod(self, uid: str, now: float) -> Pod | None:
        """Evict one hosted pod (freed, reported, requeued).

        Used when a node is reclaimed out from under its pods and when a
        gang member dies elsewhere and its siblings must requeue with
        it.  Returns the evicted pod, or ``None`` if ``uid`` is not
        hosted here (it may have completed in the same tick).
        """
        pod = self._pods.get(uid)
        if pod is None:
            return None
        self._release(pod)
        self.api.notify_evicted(pod, now)
        if self.obs.enabled:
            self._m_evicted.inc()
            self._pod_trace_end(pod, "evicted", now)
        return pod

    def _pod_trace_end(self, pod: Pod, outcome: str, now: float) -> None:
        tracer = self.obs.tracer
        if tracer.enabled:
            tracer.async_end(
                f"pod:{pod.spec.image}", pod.uid, cat="pod",
                args={"outcome": outcome}, ts=now,
            )

    # -- introspection used by schedulers/orchestrator ----------------------

    def hosted_pods(self, gpu_id: str | None = None) -> list[Pod]:
        pods = list(self._pods.values())
        if gpu_id is not None:
            pods = [p for p in pods if p.gpu_id == gpu_id]
        return pods

    def num_hosted(self) -> int:
        return len(self._pods)

    def hosted_map(self) -> dict[str, Pod]:
        """Live uid -> pod mapping (the pass assembler's read-only view;
        cheaper than the :meth:`hosted_pods` list copy on wide clusters)."""
        return self._pods

    def has_image(self, image: str) -> bool:
        return image in self._image_cache

    def prewarm(self, images: set[str] | list[str]) -> None:
        """Pre-populate the image cache (steady-state experiments).

        The paper's evaluation excludes the one-time docker-pull cost:
        "the subsequent queries using the same image do not incur this
        cold-start latency" (Sec. V-B) — prewarming models a cluster
        that has been serving these images for a while.
        """
        self._image_cache.update(images)
