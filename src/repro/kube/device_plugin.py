"""Shared-GPU device plugin.

Kubernetes' stock Nvidia device plugin hands out whole GPUs
exclusively.  The paper modifies it so multiple pods can share a
device — compute time-shared, memory space-shared — and adds the
dynamic-resize hook Kube-Knots' harvesting uses (`nvidia-docker`
resize in the paper).  This class is the per-node allocation gate: the
kubelet routes every attach/detach/resize through it, and exclusive
mode reproduces the stock behaviour for the Uniform baseline.
"""

from __future__ import annotations

from repro.cluster.node import GpuNode

__all__ = ["DevicePluginError", "InvalidResizeError", "SharedGPUDevicePlugin"]


class DevicePluginError(RuntimeError):
    """Allocation request the device cannot satisfy."""


class InvalidResizeError(DevicePluginError, ValueError):
    """Resize to a negative or over-capacity reservation.

    Subclasses :class:`ValueError` as well so callers that predate the
    typed error (``except ValueError``) keep working.
    """


class SharedGPUDevicePlugin:
    """Allocation gate for one node's GPUs."""

    def __init__(self, node: GpuNode, sharing_enabled: bool = True) -> None:
        self.node = node
        self.sharing_enabled = sharing_enabled

    def allocatable(self, gpu_id: str, mem_mb: float) -> bool:
        """Can ``mem_mb`` be reserved on the device right now?"""
        gpu = self.node.find_gpu(gpu_id)
        exclusive = not self.sharing_enabled
        return gpu.can_fit(mem_mb, exclusive=exclusive)

    def allocate(self, gpu_id: str, pod_uid: str, mem_mb: float) -> None:
        """Reserve memory for a pod; exclusive when sharing is disabled."""
        gpu = self.node.find_gpu(gpu_id)
        exclusive = not self.sharing_enabled
        if not gpu.can_fit(mem_mb, exclusive=exclusive):
            raise DevicePluginError(
                f"{gpu_id}: cannot allocate {mem_mb:.0f} MB for {pod_uid} "
                f"(free {gpu.free_mem_mb:.0f} MB, sharing={self.sharing_enabled})"
            )
        gpu.attach(pod_uid, mem_mb, exclusive=exclusive)

    def free(self, gpu_id: str, pod_uid: str) -> None:
        self.node.find_gpu(gpu_id).detach(pod_uid)

    def resize(self, gpu_id: str, pod_uid: str, new_mem_mb: float) -> float:
        """Dynamically resize a container's reservation.

        Returns the harvested (positive) or granted (negative) MB.
        Only legal when sharing is enabled — the stock plugin has no
        resize path.  A negative target or a grow beyond free capacity
        raises :class:`InvalidResizeError` — never a silent clamp, so
        per-device accounting cannot drift.
        """
        if not self.sharing_enabled:
            raise DevicePluginError("resize requires the shared-GPU plugin")
        if new_mem_mb < 0:
            raise InvalidResizeError(
                f"{gpu_id}: cannot resize {pod_uid} to {new_mem_mb:.0f} MB "
                "(reservations must be non-negative)"
            )
        try:
            return self.node.find_gpu(gpu_id).resize(pod_uid, new_mem_mb)
        except ValueError as exc:
            raise InvalidResizeError(str(exc)) from exc
