"""API server: pod store, pending queue, binding, event log.

A deliberately small slice of the Kubernetes control plane — exactly
the surface Kube-Knots touches: submit pods, list pending pods, bind a
pod to a node ("ship the container via the python client API call" in
Algorithm 1), observe lifecycle events.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from repro.kube.pod import Pod, PodPhase, PodSpec

__all__ = ["EventType", "PodEvent", "APIServer"]


class EventType(Enum):
    SUBMITTED = "submitted"
    BOUND = "bound"
    STARTED = "started"
    SUCCEEDED = "succeeded"
    OOM_KILLED = "oom-killed"
    EVICTED = "evicted"
    REQUEUED = "requeued"
    RESIZED = "resized"


@dataclass(frozen=True)
class PodEvent:
    time: float
    type: EventType
    pod_uid: str
    detail: str = ""


class APIServer:
    """Cluster-wide pod bookkeeping."""

    def __init__(self) -> None:
        self._pods: dict[str, Pod] = {}
        self._pending: deque[str] = deque()
        self.events: list[PodEvent] = []
        # Pods not yet SUCCEEDED, maintained on submit/succeed so the
        # per-tick ``all_done`` termination check is O(1) instead of a
        # scan over every pod ever submitted.
        self._n_unfinished = 0
        # Completions since the last ``drain_succeeded`` call, plus each
        # pod's submission rank — the orchestrator's per-tick profile
        # recording used to diff two full scans of every pod ever
        # submitted, which dominates dense ticks at cluster scale.
        self._succ_fresh: list[Pod] = []
        self._order: dict[str, int] = {}
        # Gang membership: gang_id -> member uids, in submission order.
        self._gangs: dict[str, list[str]] = {}

    # -- submission ---------------------------------------------------------

    def submit(self, spec: PodSpec, now: float) -> Pod:
        """Create a pod from a spec and enqueue it."""
        pod = Pod(spec=spec)
        pod.mark_submitted(now)
        self._pods[pod.uid] = pod
        self._order[pod.uid] = len(self._order)
        self._n_unfinished += 1
        if spec.gang is not None:
            self._gangs.setdefault(spec.gang.gang_id, []).append(pod.uid)
        self._pending.append(pod.uid)
        self._log(now, EventType.SUBMITTED, pod.uid)
        return pod

    def requeue(self, pod: Pod, now: float) -> None:
        """Put an OOM-killed pod at the back of the pending queue."""
        if pod.uid not in self._pods:
            raise KeyError(f"unknown pod {pod.uid}")
        pod.phase = PodPhase.PENDING
        self._pending.append(pod.uid)
        self._log(now, EventType.REQUEUED, pod.uid, f"restart #{pod.restart_count}")

    # -- queries --------------------------------------------------------------

    def pod(self, uid: str) -> Pod:
        return self._pods[uid]

    def pods(self) -> list[Pod]:
        return list(self._pods.values())

    def pending_pods(self) -> list[Pod]:
        """Pods awaiting placement, in FIFO (submission/requeue) order."""
        return [self._pods[uid] for uid in self._pending]

    def num_pending(self) -> int:
        return len(self._pending)

    def unfinished(self) -> list[Pod]:
        return [p for p in self._pods.values() if p.phase is not PodPhase.SUCCEEDED]

    def gang_members(self, gang_id: str) -> list[Pod]:
        """All submitted members of a gang, in submission order."""
        return [self._pods[uid] for uid in self._gangs.get(gang_id, [])]

    def all_done(self) -> bool:
        return self._n_unfinished == 0

    def drain_succeeded(self) -> list[Pod]:
        """Pods that reached SUCCEEDED since the last drain.

        Returned in submission order — the same order a scan over
        :meth:`pods` would visit them — so order-sensitive consumers
        (the profile store's running means) see identical sequences.
        """
        fresh = self._succ_fresh
        if not fresh:
            return fresh
        self._succ_fresh = []
        order = self._order
        fresh.sort(key=lambda p: order[p.uid])
        return fresh

    # -- binding (scheduler -> node) -----------------------------------------

    def bind(self, pod: Pod, node_id: str, gpu_id: str, alloc_mb: float, now: float) -> None:
        """Bind a pending pod to a device with a memory reservation."""
        if pod.phase is not PodPhase.PENDING:
            raise ValueError(f"cannot bind {pod.uid} in phase {pod.phase}")
        try:
            self._pending.remove(pod.uid)
        except ValueError:
            raise ValueError(f"{pod.uid} not in pending queue") from None
        pod.mark_scheduled(now, node_id, gpu_id, alloc_mb)
        self._log(now, EventType.BOUND, pod.uid, f"{gpu_id} alloc={alloc_mb:.0f}MB")

    # -- status updates (kubelet -> API) ---------------------------------------

    def notify_started(self, pod: Pod, now: float) -> None:
        pod.mark_running(now)
        self._log(now, EventType.STARTED, pod.uid)

    def notify_succeeded(self, pod: Pod, now: float) -> None:
        if pod.phase is not PodPhase.SUCCEEDED:
            self._n_unfinished -= 1
            self._succ_fresh.append(pod)
        pod.mark_succeeded(now)
        self._log(now, EventType.SUCCEEDED, pod.uid)

    def notify_oom_killed(self, pod: Pod, now: float) -> None:
        pod.mark_oom_killed()
        self._log(now, EventType.OOM_KILLED, pod.uid)
        self.requeue(pod, now)

    def notify_evicted(self, pod: Pod, now: float) -> None:
        """Device-failure eviction: back of the queue, like an OOM kill."""
        pod.mark_evicted()
        self._log(now, EventType.EVICTED, pod.uid)
        self.requeue(pod, now)

    def notify_resized(self, pod: Pod, new_alloc_mb: float, now: float) -> None:
        old = pod.alloc_mb
        pod.alloc_mb = new_alloc_mb
        self._log(now, EventType.RESIZED, pod.uid, f"{old:.0f} -> {new_alloc_mb:.0f} MB")

    def _log(self, time: float, type_: EventType, uid: str, detail: str = "") -> None:
        self.events.append(PodEvent(time, type_, uid, detail))

    def events_of(self, type_: EventType) -> list[PodEvent]:
        return [e for e in self.events if e.type is type_]
