"""Kubernetes-like orchestration substrate."""

from repro.kube.api import APIServer, EventType, PodEvent
from repro.kube.device_plugin import DevicePluginError, SharedGPUDevicePlugin
from repro.kube.kubelet import Kubelet, KubeletConfig
from repro.kube.pod import Pod, PodPhase, PodSpec

__all__ = [
    "APIServer",
    "EventType",
    "PodEvent",
    "SharedGPUDevicePlugin",
    "DevicePluginError",
    "Kubelet",
    "KubeletConfig",
    "Pod",
    "PodPhase",
    "PodSpec",
]
