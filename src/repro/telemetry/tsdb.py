"""Node-local time-series database (InfluxDB stand-in).

Each worker runs one :class:`TimeSeriesDB` into which the Knots monitor
writes one point per metric per heartbeat.  The store is a set of
fixed-capacity ring buffers (one per series), so memory stays bounded
for arbitrarily long simulations and the hot query — "the last *d*
seconds of metric *m*" — is two array slices with no copies beyond the
returned view assembly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = ["SeriesWindow", "TimeSeriesDB"]


@dataclass(frozen=True)
class SeriesWindow:
    """A queried chunk of one series: parallel time/value arrays."""

    times: np.ndarray
    values: np.ndarray

    def __len__(self) -> int:
        return len(self.times)

    def latest(self) -> float:
        """Most recent value in the window."""
        if len(self.values) == 0:
            raise ValueError("empty window has no latest value")
        return float(self.values[-1])

    def mean(self) -> float:
        return float(self.values.mean()) if len(self.values) else float("nan")


class _RingSeries:
    """Fixed-capacity ring buffer of (time, value) points."""

    __slots__ = ("times", "values", "capacity", "head", "count")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.times = np.empty(capacity, dtype=np.float64)
        self.values = np.empty(capacity, dtype=np.float64)
        self.head = 0   # next write slot
        self.count = 0

    def append(self, t: float, v: float) -> None:
        self.times[self.head] = t
        self.values[self.head] = v
        self.head = (self.head + 1) % self.capacity
        if self.count < self.capacity:
            self.count += 1

    def ordered(self) -> tuple[np.ndarray, np.ndarray]:
        """Time-ordered copies of the stored points (oldest first)."""
        if self.count < self.capacity:
            return self.times[: self.count].copy(), self.values[: self.count].copy()
        idx = np.concatenate([np.arange(self.head, self.capacity), np.arange(0, self.head)])
        return self.times[idx], self.values[idx]


class TimeSeriesDB:
    """Per-node metric store with windowed queries."""

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._series: dict[str, _RingSeries] = {}

    def write(self, metric: str, t: float, value: float) -> None:
        """Append one point to ``metric`` (created on first write)."""
        series = self._series.get(metric)
        if series is None:
            series = self._series[metric] = _RingSeries(self._capacity)
        series.append(t, value)

    def write_many(self, t: float, values: dict[str, float]) -> None:
        """Append one point per metric at a shared timestamp."""
        for metric, v in values.items():
            self.write(metric, t, v)

    def metrics(self) -> list[str]:
        return sorted(self._series)

    def __contains__(self, metric: str) -> bool:
        return metric in self._series

    def query(self, metric: str, since: float | None = None, until: float | None = None) -> SeriesWindow:
        """Return points of ``metric`` with ``since <= t <= until``.

        An unknown metric yields an empty window (matching how a fresh
        node looks to the aggregator before its first heartbeat).
        """
        series = self._series.get(metric)
        if series is None:
            empty = np.empty(0)
            return SeriesWindow(empty, empty)
        times, values = series.ordered()
        lo = 0 if since is None else int(np.searchsorted(times, since, side="left"))
        hi = len(times) if until is None else int(np.searchsorted(times, until, side="right"))
        return SeriesWindow(times[lo:hi], values[lo:hi])

    def last_window(self, metric: str, window: float, now: float) -> SeriesWindow:
        """The last ``window`` time units of ``metric``, ending at ``now``.

        This is the query shape the PP scheduler issues every heartbeat
        (a five-second sliding window in the paper).
        """
        return self.query(metric, since=now - window, until=now)

    def latest(self, metric: str) -> tuple[float, float] | None:
        """Most recent (time, value) for ``metric``, or None if unseen."""
        series = self._series.get(metric)
        if series is None or series.count == 0:
            return None
        idx = (series.head - 1) % series.capacity
        return float(series.times[idx]), float(series.values[idx])
