"""Node-local time-series database (InfluxDB stand-in).

Each worker runs one :class:`TimeSeriesDB` into which the Knots monitor
writes one point per metric per heartbeat.  The store is a set of
fixed-capacity ring buffers (one per series), and the hot query — "the
last *d* seconds of metric *m*" — is served without materializing the
ring:

* timestamps are appended monotonically (enforced by :meth:`write`), so
  window boundaries are found by binary search *inside* the ring — two
  ``searchsorted`` calls over the ring's two physical segments;
* the returned :class:`SeriesWindow` wraps **zero-copy read-only
  views** of the ring whenever the window is physically contiguous
  (always true before wraparound, and for most windows after); only a
  window that straddles the ring seam is assembled by copying — and
  then at most the requested window, never the whole ring;
* every series carries a **version counter** (one tick per append) and
  a one-entry query cache, so repeated queries of an unchanged window
  — e.g. the five metric windows a scheduler pass reads several times —
  are served without touching the ring at all.

:meth:`query_many` / :meth:`last_windows` resolve a batch of metrics in
one call, which is how the aggregator's ``query_node_stats`` fetches
Algorithm 1's five windows per device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SeriesWindow", "TimeSeriesDB"]

#: Shared empty array used by every empty window (read-only).
_EMPTY = np.empty(0)
_EMPTY.flags.writeable = False


def _readonly(a: np.ndarray) -> np.ndarray:
    """Mark an array (or view) immutable; windows are shared telemetry."""
    a.flags.writeable = False
    return a


@dataclass(frozen=True)
class SeriesWindow:
    """A queried chunk of one series: parallel time/value arrays.

    The arrays are read-only: a window is a *view* of shared telemetry
    (zero-copy where physically contiguous), and mutating it in place
    would corrupt every other consumer's reads (lint rule KK003).
    """

    times: np.ndarray
    values: np.ndarray

    def __len__(self) -> int:
        return len(self.times)

    def latest(self) -> float:
        """Most recent value in the window."""
        if len(self.values) == 0:
            raise ValueError("empty window has no latest value")
        return float(self.values[-1])

    def mean(self) -> float:
        return float(self.values.mean()) if len(self.values) else float("nan")


#: The one shared empty window (immutable, so sharing is safe).
_EMPTY_WINDOW = SeriesWindow(_EMPTY, _EMPTY)


class _RingSeries:
    """Fixed-capacity ring buffer of (time, value) points.

    Appends must be time-monotonic (non-decreasing): the windowed-query
    fast path binary-searches the ring in place, which is only sound on
    sorted timestamps.
    """

    __slots__ = ("times", "values", "capacity", "head", "count", "version",
                 "last_t", "_cache_key", "_cache_window")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.times = np.empty(capacity, dtype=np.float64)
        self.values = np.empty(capacity, dtype=np.float64)
        self.head = 0   # next write slot
        self.count = 0
        #: Bumped on every append; keys the one-entry query cache and
        #: lets downstream caches (ranks, AR(1) stats) detect staleness.
        self.version = 0
        self.last_t = -np.inf
        self._cache_key: tuple[int, float | None, float | None] | None = None
        self._cache_window: SeriesWindow = _EMPTY_WINDOW

    def append(self, t: float, v: float) -> None:
        if t < self.last_t:
            raise ValueError(
                f"non-monotonic append: t={t!r} is before the series' last "
                f"timestamp {self.last_t!r}; out-of-order points would corrupt "
                "binary-searched window queries"
            )
        self.times[self.head] = t
        self.values[self.head] = v
        self.head = (self.head + 1) % self.capacity
        if self.count < self.capacity:
            self.count += 1
        self.last_t = t
        self.version += 1

    # -- reference path ----------------------------------------------------

    def ordered(self) -> tuple[np.ndarray, np.ndarray]:
        """Time-ordered copies of the stored points (oldest first).

        The original copy-then-slice query path materialized this on
        every query; it is kept as the reference implementation for the
        equivalence property tests and the before/after benchmark.
        """
        if self.count < self.capacity:
            return self.times[: self.count].copy(), self.values[: self.count].copy()
        idx = np.concatenate([np.arange(self.head, self.capacity), np.arange(0, self.head)])
        return self.times[idx], self.values[idx]

    # -- in-ring fast path -------------------------------------------------

    def _logical_searchsorted(self, t: float, side: str) -> int:
        """``searchsorted`` over the time-ordered view, without building it.

        The ring holds at most two physically contiguous, individually
        sorted segments — ``times[head:]`` (older) then ``times[:head]``
        (newer) once full, or just ``times[:count]`` before that — and
        monotonic appends guarantee every older-segment timestamp is
        ``<=`` every newer-segment timestamp.
        """
        if self.count < self.capacity:
            return int(np.searchsorted(self.times[: self.count], t, side=side))
        older = self.times[self.head:]
        pos = int(np.searchsorted(older, t, side=side))
        if pos < len(older):
            return pos
        return len(older) + int(np.searchsorted(self.times[: self.head], t, side=side))

    def _slice(self, lo: int, hi: int) -> SeriesWindow:
        """Logical index range ``[lo, hi)`` as a window, copying only if
        the range straddles the ring seam (and then only ``hi - lo``
        points, never the whole ring)."""
        n = hi - lo
        if n <= 0:
            return _EMPTY_WINDOW
        if self.count < self.capacity:
            return SeriesWindow(
                _readonly(self.times[lo:hi]), _readonly(self.values[lo:hi])
            )
        start = self.head + lo
        end = start + n
        if start >= self.capacity:               # entirely in the newer segment
            start -= self.capacity
            end -= self.capacity
            return SeriesWindow(
                _readonly(self.times[start:end]), _readonly(self.values[start:end])
            )
        if end <= self.capacity:                 # entirely in the older segment
            return SeriesWindow(
                _readonly(self.times[start:end]), _readonly(self.values[start:end])
            )
        wrap = end - self.capacity               # straddles the seam: bounded copy
        times = np.concatenate([self.times[start:], self.times[:wrap]])
        values = np.concatenate([self.values[start:], self.values[:wrap]])
        return SeriesWindow(_readonly(times), _readonly(values))

    def window(self, since: float | None, until: float | None) -> SeriesWindow:
        """Points with ``since <= t <= until`` — cached, zero-copy."""
        key = (self.version, since, until)
        if key == self._cache_key:
            return self._cache_window
        lo = 0 if since is None else self._logical_searchsorted(since, "left")
        hi = self.count if until is None else self._logical_searchsorted(until, "right")
        window = self._slice(lo, hi)
        self._cache_key = key
        self._cache_window = window
        return window


class TimeSeriesDB:
    """Per-node metric store with windowed queries."""

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._series: dict[str, _RingSeries] = {}
        #: Optional owner-thread guard
        #: (:class:`repro.analysis.racedetect.ThreadAffinity`).  The
        #: store is lock-free by design — one writer, same-thread
        #: readers — and the guard makes that contract checkable: when
        #: installed (``--race-detect``), a touch from a foreign thread
        #: reports an ``owner_thread`` violation.
        self.guard = None

    def write(self, metric: str, t: float, value: float) -> None:
        """Append one point to ``metric`` (created on first write).

        Timestamps must be non-decreasing per series; an out-of-order
        point raises ``ValueError`` instead of silently corrupting the
        binary-searched query path.
        """
        if self.guard is not None:
            self.guard.check("write")
        series = self._series.get(metric)
        if series is None:
            series = self._series[metric] = _RingSeries(self._capacity)
        series.append(t, value)

    def write_many(self, t: float, values: dict[str, float]) -> None:
        """Append one point per metric at a shared timestamp."""
        for metric, v in values.items():
            self.write(metric, t, v)

    def metrics(self) -> list[str]:
        return sorted(self._series)

    def __contains__(self, metric: str) -> bool:
        return metric in self._series

    def version(self, metric: str) -> int:
        """Monotonic write counter for ``metric`` (0 if unseen).

        Anything caching derived state for a series (rank vectors,
        AR(1) sufficient statistics, ...) can key on this to detect
        staleness without comparing array contents.
        """
        series = self._series.get(metric)
        return 0 if series is None else series.version

    def query(self, metric: str, since: float | None = None, until: float | None = None) -> SeriesWindow:
        """Return points of ``metric`` with ``since <= t <= until``.

        An unknown metric yields an empty window (matching how a fresh
        node looks to the aggregator before its first heartbeat).
        """
        if self.guard is not None:
            self.guard.check("query")
        series = self._series.get(metric)
        if series is None:
            return _EMPTY_WINDOW
        return series.window(since, until)

    def query_many(
        self,
        metrics: list[str] | tuple[str, ...],
        since: float | None = None,
        until: float | None = None,
    ) -> dict[str, SeriesWindow]:
        """One-pass batch of :meth:`query` over several metrics.

        This is the shape ``query_node_stats`` uses: all five metric
        windows of a device resolved in a single call.
        """
        if self.guard is not None:
            self.guard.check("query_many")
        out: dict[str, SeriesWindow] = {}
        get = self._series.get
        for metric in metrics:
            series = get(metric)
            out[metric] = _EMPTY_WINDOW if series is None else series.window(since, until)
        return out

    def last_window(self, metric: str, window: float, now: float) -> SeriesWindow:
        """The last ``window`` time units of ``metric``, ending at ``now``.

        This is the query shape the PP scheduler issues every heartbeat
        (a five-second sliding window in the paper).
        """
        return self.query(metric, since=now - window, until=now)

    def last_windows(
        self, metrics: list[str] | tuple[str, ...], window: float, now: float
    ) -> dict[str, SeriesWindow]:
        """Batch :meth:`last_window` over several metrics."""
        return self.query_many(metrics, since=now - window, until=now)

    def latest(self, metric: str) -> tuple[float, float] | None:
        """Most recent (time, value) for ``metric``, or None if unseen."""
        series = self._series.get(metric)
        if series is None or series.count == 0:
            return None
        idx = (series.head - 1) % series.capacity
        return float(series.times[idx]), float(series.values[idx])
