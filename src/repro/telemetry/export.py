"""Telemetry and result persistence (CSV / JSON).

Real Knots deployments keep their telemetry in InfluxDB and analyze it
offline; the reproduction equivalent is exporting a run's telemetry
series and pod records to plain files that pandas/R/gnuplot can load.
Everything round-trips: an exported run can be re-imported for offline
metric computation without re-simulating.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.telemetry.tsdb import TimeSeriesDB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import SimResult

__all__ = [
    "tsdb_to_rows",
    "export_tsdb_csv",
    "import_tsdb_csv",
    "export_result_json",
    "import_result_series",
    "export_dl_result_json",
]


def tsdb_to_rows(db: TimeSeriesDB) -> list[tuple[str, float, float]]:
    """Flatten a TSDB into (metric, time, value) rows, time-ordered."""
    rows: list[tuple[str, float, float]] = []
    for metric in db.metrics():
        window = db.query(metric)
        rows.extend((metric, float(t), float(v)) for t, v in zip(window.times, window.values))
    rows.sort(key=lambda r: (r[0], r[1]))
    return rows


def export_tsdb_csv(db: TimeSeriesDB, path: str | Path) -> int:
    """Write a TSDB to CSV (``metric,time,value``).  Returns row count."""
    rows = tsdb_to_rows(db)
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["metric", "time", "value"])
        writer.writerows(rows)
    return len(rows)


def import_tsdb_csv(path: str | Path, capacity: int = 65_536) -> TimeSeriesDB:
    """Load a CSV written by :func:`export_tsdb_csv` back into a TSDB."""
    db = TimeSeriesDB(capacity=capacity)
    with Path(path).open(newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames != ["metric", "time", "value"]:
            raise ValueError(
                f"unexpected CSV header {reader.fieldnames}; "
                "expected ['metric', 'time', 'value']"
            )
        for row in reader:
            db.write(row["metric"], float(row["time"]), float(row["value"]))
    return db


def export_result_json(result: "SimResult", path: str | Path) -> None:
    """Persist a simulation run: pod records + telemetry series.

    The JSON is self-describing and versioned so downstream analysis
    scripts can detect incompatible exports.
    """
    pods = []
    for pod in result.pods:
        pods.append(
            {
                "uid": pod.uid,
                "name": pod.spec.name,
                "image": pod.spec.image,
                "qos_class": pod.spec.qos_class.value,
                "qos_threshold_ms": pod.spec.qos_threshold_ms,
                "requested_mem_mb": pod.spec.requested_mem_mb,
                "phase": pod.phase.value,
                "restart_count": pod.restart_count,
                "submitted_ms": pod.submitted_ms,
                "scheduled_ms": pod.scheduled_ms,
                "started_ms": pod.started_ms,
                "finished_ms": pod.finished_ms,
                "gpu_id": pod.gpu_id,
                "alloc_mb": pod.alloc_mb,
            }
        )
    payload = {
        "format": "kube-knots-repro/run",
        "version": 1,
        "scheduler": result.scheduler,
        "makespan_ms": result.makespan_ms,
        "oom_kills": result.oom_kills,
        "evictions": result.evictions,
        "resizes": result.resizes,
        "energy_j_per_gpu": result.energy_j_per_gpu,
        "sample_times_ms": np.asarray(result.sample_times_ms).tolist(),
        "gpu_util_series": {k: np.asarray(v).tolist() for k, v in result.gpu_util_series.items()},
        "gpu_mem_series": {k: np.asarray(v).tolist() for k, v in result.gpu_mem_series.items()},
        "pods": pods,
    }
    Path(path).write_text(json.dumps(payload))


def export_dl_result_json(result, path: str | Path) -> None:
    """Persist a DL-cluster run (:class:`repro.sim.dlsim.DLSimResult`)."""
    jobs = []
    for j in result.jobs:
        jobs.append(
            {
                "job_id": j.job_id,
                "kind": j.kind.value,
                "arrival_s": j.arrival_s,
                "num_gpus": j.num_gpus,
                "service_s": j.service_s,
                "qos_threshold_s": j.qos_threshold_s,
                "start_s": j.start_s,
                "finish_s": j.finish_s,
                "preemptions": j.preemptions,
                "migrations": j.migrations,
            }
        )
    payload = {
        "format": "kube-knots-repro/dl-run",
        "version": 1,
        "policy": result.policy,
        "horizon_s": result.horizon_s,
        "jobs": jobs,
    }
    Path(path).write_text(json.dumps(payload))


def import_result_series(path: str | Path) -> dict:
    """Load the analyzable parts of an exported run.

    Returns a dict with ``scheduler``, ``makespan_ms``, counters,
    ``sample_times_ms`` / ``gpu_util_series`` / ``gpu_mem_series`` as
    NumPy arrays, and the raw ``pods`` records.  (Pods come back as
    dicts, not live objects — exports are for analysis, not resume.)
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "kube-knots-repro/run":
        raise ValueError(f"not a kube-knots-repro run export: {path}")
    if payload.get("version") != 1:
        raise ValueError(f"unsupported export version {payload.get('version')}")
    payload["sample_times_ms"] = np.asarray(payload["sample_times_ms"])
    payload["gpu_util_series"] = {
        k: np.asarray(v) for k, v in payload["gpu_util_series"].items()
    }
    payload["gpu_mem_series"] = {
        k: np.asarray(v) for k, v in payload["gpu_mem_series"].items()
    }
    return payload
