"""Cluster-wide matrix telemetry: one ring of `(rows, gpus)` metric matrices.

The per-node :class:`~repro.telemetry.tsdb.TimeSeriesDB` stores one ring
per (gpu, metric) series and the monitor writes them point by point —
five Python-level ring appends per device per heartbeat.  At 32x8 that
is 1,280 appends per heartbeat; at 1024x8 it is 41k, and the heartbeat
becomes the simulation's dominant cost.

:class:`MatrixTelemetry` replaces the *storage* with struct-of-arrays:

* one shared time ring ``times[rows]`` (every series is written every
  heartbeat, so all series share timestamps), and
* one ``(rows, gpus)`` float64 matrix per metric,

so a heartbeat is five vectorized row writes from the
:class:`~repro.cluster.state.ClusterState` sample mirrors.  The NVML
quantization of the legacy path (percent scaling, byte-granular memory,
milliwatt power, KB/s PCIe — see :mod:`repro.telemetry.nvml`) is applied
elementwise with the exact same operations, so stored values are
bit-identical to what the per-object sampler produces.

Reads keep the node-local TSDB *surface*: each node's monitor holds a
:class:`TsdbFacade` that resolves ``"<gpu_id>.<metric>"`` queries to a
column window of the shared ring (zero-copy read-only views, binary
search over the ring's two physical segments — the same query shape as
``_RingSeries``).

**Direct writes** (tests seed telemetry with ``tsdb.write``) flip the
facade's node into *override* mode: the matrix history for that node is
backfilled into a private real :class:`TimeSeriesDB`, the write is
applied there, and from then on that node's reads and heartbeats use
the override store — byte-for-byte the legacy behaviour, paid only by
nodes that are written to directly.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.nvml import METRICS
from repro.telemetry.tsdb import SeriesWindow, TimeSeriesDB, _EMPTY_WINDOW, _readonly

__all__ = ["MatrixTelemetry", "TsdbFacade"]

#: Extra ring rows beyond one query window: covers the sanitizer's
#: staleness slack and the fast-forward observable-tail replay.
_MARGIN_ROWS = 64


class MatrixTelemetry:
    """Shared telemetry ring over every GPU of a cluster."""

    def __init__(self, state, heartbeat_ms: float, window_ms: float) -> None:
        self.state = state
        n = len(state)
        rows = int(window_ms / heartbeat_ms) + 1 + _MARGIN_ROWS
        self.capacity = max(rows, 256)
        self.times = np.empty(self.capacity)
        self.data = {m: np.empty((self.capacity, n)) for m in METRICS}
        #: Quantized value of every device's *current* sample, kept hot
        #: across appends so a sparse heartbeat only requantizes the
        #: devices whose samples moved, then bulk-copies one row.
        self._cur = {m: np.empty(n) for m in METRICS}
        self.head = 0          # next write row
        self.count = 0
        self.version = 0       # total appends (== legacy per-series version)
        self.last_t = -np.inf
        #: Nodes that received a direct ``write`` and now live in their
        #: facade's override store (see :class:`TsdbFacade`).
        self.dirty_nodes: set[str] = set()
        #: Facade guards (``--race-detect``), checked on each append.
        self.guards: dict[str, object] = {}

    # -- writes -------------------------------------------------------------

    def append_from_state(self, now: float) -> None:
        """One heartbeat: quantized sample row per metric, vectorized.

        Each expression mirrors the legacy NVML round trip exactly:
        percent scaling for utilizations, truncation to bytes/milliwatts
        (``np.floor`` == ``int()`` for non-negative values), KB/s PCIe.
        """
        for guard in self.guards.values():
            guard.check("write")
        if now < self.last_t:
            raise ValueError(
                f"non-monotonic heartbeat: t={now!r} is before the ring's last "
                f"timestamp {self.last_t!r}"
            )
        s = self.state
        n = len(s.gpu_ids)
        row = self.head
        self.times[row] = now
        data = self.data
        cur = self._cur
        dirty = s.sample_dirty
        if self.version > 0 and len(dirty) * 8 < n:
            # Sparse heartbeat: a non-dirty device's mirror is unchanged
            # since the previous append, so its quantized value in the
            # hot ``_cur`` row is still exact — requantize only the
            # devices whose samples moved (the same elementwise IEEE
            # ops, over the dirty index vector).
            if dirty:
                idx = np.fromiter(dirty, dtype=np.intp, count=len(dirty))
                cur["sm_util"][idx] = (s.sm_util[idx] * 100.0) / 100.0
                cur["mem_util"][idx] = (
                    np.floor(s.mem_used_mb[idx] * 1048576.0) / s.cap_total_bytes[idx]
                )
                cur["power_w"][idx] = np.floor(s.power_w[idx] * 1000.0) / 1000.0
                cur["tx_mbps"][idx] = (s.tx_mbps[idx] * 1024.0) / 1024.0
                cur["rx_mbps"][idx] = (s.rx_mbps[idx] * 1024.0) / 1024.0
        else:
            # Full requantization into the hot row: the same elementwise
            # IEEE ops as the scalar NVML round trip, without 64 KB
            # temporaries per metric at the 8k-GPU scale.
            r = cur["sm_util"]
            np.multiply(s.sm_util, 100.0, out=r)
            r /= 100.0
            r = cur["mem_util"]
            np.multiply(s.mem_used_mb, 1048576.0, out=r)
            np.floor(r, out=r)
            r /= s.cap_total_bytes
            r = cur["power_w"]
            np.multiply(s.power_w, 1000.0, out=r)
            np.floor(r, out=r)
            r /= 1000.0
            r = cur["tx_mbps"]
            np.multiply(s.tx_mbps, 1024.0, out=r)
            r /= 1024.0
            r = cur["rx_mbps"]
            np.multiply(s.rx_mbps, 1024.0, out=r)
            r /= 1024.0
        dirty.clear()
        for metric in METRICS:
            np.copyto(data[metric][row], cur[metric])
        self.head = (row + 1) % self.capacity
        if self.count < self.capacity:
            self.count += 1
        self.last_t = now
        self.version += 1

    # -- ring search (same shape as _RingSeries) ----------------------------

    def _logical_searchsorted(self, t: float, side: str) -> int:
        if self.count < self.capacity:
            return int(np.searchsorted(self.times[: self.count], t, side=side))
        older = self.times[self.head:]
        pos = int(np.searchsorted(older, t, side=side))
        if pos < len(older):
            return pos
        return len(older) + int(np.searchsorted(self.times[: self.head], t, side=side))

    def window_bounds(self, since: float | None, until: float | None) -> tuple[int, int]:
        """Logical row range [lo, hi) with ``since <= t <= until``."""
        lo = 0 if since is None else self._logical_searchsorted(since, "left")
        hi = self.count if until is None else self._logical_searchsorted(until, "right")
        return lo, hi

    def column_window(self, metric: str, col: int, lo: int, hi: int) -> SeriesWindow:
        """Rows [lo, hi) of one device's series as a (times, values) window.

        Zero-copy read-only views when the range is physically
        contiguous; a seam-straddling range copies at most ``hi - lo``
        points of the one column, never the ring.
        """
        n = hi - lo
        if n <= 0:
            return _EMPTY_WINDOW
        values = self.data[metric]
        if self.count < self.capacity:
            return SeriesWindow(
                _readonly(self.times[lo:hi]), _readonly(values[lo:hi, col])
            )
        start = self.head + lo
        end = start + n
        if start >= self.capacity:               # entirely in the newer segment
            start -= self.capacity
            end -= self.capacity
        elif end > self.capacity:                # straddles the seam: bounded copy
            wrap = end - self.capacity
            times = np.concatenate([self.times[start:], self.times[:wrap]])
            vals = np.concatenate([values[start:, col], values[:wrap, col]])
            return SeriesWindow(_readonly(times), _readonly(vals))
        return SeriesWindow(
            _readonly(self.times[start:end]), _readonly(values[start:end, col])
        )


class TsdbFacade:
    """One node's :class:`TimeSeriesDB`-compatible view of the matrix."""

    def __init__(self, matrix: MatrixTelemetry, node) -> None:
        self._matrix = matrix
        self._node_id = node.node_id
        #: ``"<gpu_id>.<metric>" -> (metric, column)``.
        self._series: dict[str, tuple[str, int]] = {}
        for gpu in node.gpus:
            col = matrix.state.index[gpu.gpu_id]
            for metric in METRICS:
                self._series[f"{gpu.gpu_id}.{metric}"] = (metric, col)
        self._override: TimeSeriesDB | None = None
        self._cache: dict[str, tuple[tuple, SeriesWindow]] = {}
        self._guard = None

    # The race detector installs ``monitor.tsdb.guard``; mirror it into
    # the matrix so the vectorized heartbeat append is checked too.
    @property
    def guard(self):
        return self._guard

    @guard.setter
    def guard(self, value) -> None:
        self._guard = value
        if value is None:
            self._matrix.guards.pop(self._node_id, None)
        else:
            self._matrix.guards[self._node_id] = value

    # -- override promotion -------------------------------------------------

    def _promote(self) -> TimeSeriesDB:
        """First direct write: replay this node's matrix history into a
        private store, then serve the node from it (legacy semantics)."""
        store = TimeSeriesDB()
        m = self._matrix
        lo, hi = m.window_bounds(None, None)
        for name, (metric, col) in self._series.items():
            w = m.column_window(metric, col, lo, hi)
            for t, v in zip(w.times, w.values):
                store.write(name, float(t), float(v))
        self._override = store
        self._cache.clear()
        m.dirty_nodes.add(self._node_id)
        return store

    # -- TimeSeriesDB surface ----------------------------------------------

    def write(self, metric: str, t: float, value: float) -> None:
        if self._guard is not None:
            self._guard.check("write")
        store = self._override
        if store is None:
            store = self._promote()
        store.write(metric, t, value)

    def write_many(self, t: float, values: dict[str, float]) -> None:
        for metric, v in values.items():
            self.write(metric, t, v)

    def metrics(self) -> list[str]:
        if self._override is not None:
            return self._override.metrics()
        if self._matrix.count == 0:
            return []
        return sorted(self._series)

    def __contains__(self, metric: str) -> bool:
        if self._override is not None:
            return metric in self._override
        return self._matrix.count > 0 and metric in self._series

    def version(self, metric: str) -> int:
        if self._override is not None:
            return self._override.version(metric)
        if metric not in self._series:
            return 0
        return self._matrix.version

    def query(
        self, metric: str, since: float | None = None, until: float | None = None
    ) -> SeriesWindow:
        if self._guard is not None:
            self._guard.check("query")
        if self._override is not None:
            return self._override.query(metric, since, until)
        series = self._series.get(metric)
        if series is None:
            return _EMPTY_WINDOW
        m = self._matrix
        key = (m.version, since, until)
        cached = self._cache.get(metric)
        if cached is not None and cached[0] == key:
            return cached[1]
        lo, hi = m.window_bounds(since, until)
        window = m.column_window(series[0], series[1], lo, hi)
        self._cache[metric] = (key, window)
        return window

    def query_many(
        self,
        metrics: list[str] | tuple[str, ...],
        since: float | None = None,
        until: float | None = None,
    ) -> dict[str, SeriesWindow]:
        if self._guard is not None:
            self._guard.check("query_many")
        if self._override is not None:
            return self._override.query_many(metrics, since, until)
        out: dict[str, SeriesWindow] = {}
        m = self._matrix
        bounds: tuple[int, int] | None = None
        for metric in metrics:
            series = self._series.get(metric)
            if series is None:
                out[metric] = _EMPTY_WINDOW
                continue
            key = (m.version, since, until)
            cached = self._cache.get(metric)
            if cached is not None and cached[0] == key:
                out[metric] = cached[1]
                continue
            if bounds is None:
                bounds = m.window_bounds(since, until)
            window = m.column_window(series[0], series[1], bounds[0], bounds[1])
            self._cache[metric] = (key, window)
            out[metric] = window
        return out

    def last_window(self, metric: str, window: float, now: float) -> SeriesWindow:
        return self.query(metric, since=now - window, until=now)

    def last_windows(
        self, metrics: list[str] | tuple[str, ...], window: float, now: float
    ) -> dict[str, SeriesWindow]:
        return self.query_many(metrics, since=now - window, until=now)

    def latest(self, metric: str) -> tuple[float, float] | None:
        if self._override is not None:
            return self._override.latest(metric)
        series = self._series.get(metric)
        m = self._matrix
        if series is None or m.count == 0:
            return None
        row = (m.head - 1) % m.capacity
        return float(m.times[row]), float(m.data[series[0]][row, series[1]])
