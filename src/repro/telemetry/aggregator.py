"""Node monitors and the head-node utilization aggregator.

Two pieces mirror the paper's Fig. 5 data path:

* :class:`NodeMonitor` — runs on every worker; each *heartbeat* it reads
  the node's GPUs through the NVML layer and writes one point per
  (GPU, metric) into the node-local TSDB.
* :class:`UtilizationAggregator` — runs on the head node; on demand it
  queries every worker's TSDB for the recent window of any metric and
  produces the cluster-wide view the schedulers consume (free memory
  per GPU, recent utilization windows, sorted node lists).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.cluster.node import GpuNode
from repro.obs.context import NOOP, Observability
from repro.telemetry.nvml import METRICS, NvmlSampler
from repro.telemetry.tsdb import SeriesWindow, TimeSeriesDB

__all__ = ["NodeMonitor", "GpuView", "UtilizationAggregator"]


class NodeMonitor:
    """Per-worker Knots monitor: NVML -> node TSDB, once per heartbeat."""

    def __init__(self, node: GpuNode, tsdb: TimeSeriesDB | None = None) -> None:
        self.node = node
        self.tsdb = tsdb or TimeSeriesDB()
        self._sampler = NvmlSampler(node.gpus)

    def heartbeat(self, now: float) -> None:
        """Sample all devices and log one point per (gpu, metric)."""
        for gpu_id, metrics in self._sampler.sample().items():
            for metric, value in metrics.items():
                self.tsdb.write(f"{gpu_id}.{metric}", now, value)

    def series(self, gpu_id: str, metric: str, window: float, now: float) -> SeriesWindow:
        return self.tsdb.last_window(f"{gpu_id}.{metric}", window, now)

    def series_many(
        self, gpu_id: str, metrics: Sequence[str], window: float, now: float
    ) -> dict[str, SeriesWindow]:
        """All of ``metrics`` for one device in a single TSDB pass."""
        keys = [f"{gpu_id}.{m}" for m in metrics]
        windows = self.tsdb.last_windows(keys, window, now)
        return {m: windows[k] for m, k in zip(metrics, keys)}


@dataclass(frozen=True)
class GpuView:
    """Aggregator's snapshot of one device at query time."""

    gpu_id: str
    node_id: str
    mem_capacity_mb: float
    free_alloc_mb: float      # unreserved memory (admission headroom)
    mem_used_mb: float        # physically used right now (telemetry)
    sm_util: float
    num_containers: int
    asleep: bool
    failed: bool = False
    cordoned: bool = False    # drained: residents run, no new placements

    @property
    def free_physical_mb(self) -> float:
        """Physically unused memory — what harvesting can reclaim."""
        return self.mem_capacity_mb - self.mem_used_mb


class UtilizationAggregator:
    """Head-node aggregator over all worker TSDBs (Fig. 5).

    The aggregator is the only path through which schedulers observe the
    cluster — they never touch simulator internals directly, exactly as
    Kube-Knots' schedulers only see what Knots reports.
    """

    def __init__(
        self, monitors: Sequence[NodeMonitor], obs: Observability | None = None
    ) -> None:
        if not monitors:
            raise ValueError("aggregator needs at least one node monitor")
        self._monitors = {m.node.node_id: m for m in monitors}
        obs = obs or NOOP
        self._san = obs.sanitizer
        self._m_queries = obs.metrics.counter(
            "aggregator_queries_total", "Windowed telemetry queries served", labelnames=("metric",)
        )
        self._m_snapshots = obs.metrics.counter(
            "aggregator_snapshots_total", "Instantaneous cluster snapshots served"
        )

    @property
    def node_ids(self) -> list[str]:
        return sorted(self._monitors)

    def monitor(self, node_id: str) -> NodeMonitor:
        return self._monitors[node_id]

    # -- windowed series queries (PP's five-second sliding window) --------

    def query(self, gpu_id: str, metric: str, window: float, now: float) -> SeriesWindow:
        """Last ``window`` units of one metric for one GPU."""
        node_id = gpu_id.split("/", 1)[0]
        mon = self._monitors.get(node_id)
        if mon is None:
            raise KeyError(f"no monitor for node {node_id!r}")
        self._m_queries.inc(metric=metric)
        return mon.series(gpu_id, metric, window, now)

    def query_node_stats(self, gpu_id: str, window: float, now: float) -> dict[str, SeriesWindow]:
        """Algorithm 1's ``QUERY``: all five metric windows for a device.

        Resolved as one batched TSDB pass (:meth:`NodeMonitor.series_many`)
        rather than five independent query round-trips.
        """
        node_id = gpu_id.split("/", 1)[0]
        mon = self._monitors.get(node_id)
        if mon is None:
            raise KeyError(f"no monitor for node {node_id!r}")
        for metric in METRICS:
            self._m_queries.inc(metric=metric)
        return mon.series_many(gpu_id, METRICS, window, now)

    # -- instantaneous cluster snapshot ------------------------------------

    def snapshot(self) -> list[GpuView]:
        """Current view of every device, from the latest telemetry."""
        self._m_snapshots.inc()
        views: list[GpuView] = []
        for node_id in self.node_ids:
            node = self._monitors[node_id].node
            for gpu in node.gpus:
                s = gpu.last_sample
                views.append(
                    GpuView(
                        gpu_id=gpu.gpu_id,
                        node_id=node_id,
                        mem_capacity_mb=gpu.mem_capacity_mb,
                        free_alloc_mb=gpu.free_mem_mb,
                        mem_used_mb=s.mem_used_mb,
                        sm_util=s.sm_util,
                        num_containers=len(gpu.containers),
                        asleep=gpu.asleep,
                        failed=gpu.failed,
                        cordoned=gpu.cordoned,
                    )
                )
        if self._san is not None:
            for view in views:
                self._san.check_view(view)
        return views

    def active_views(self) -> list[GpuView]:
        """Awake, healthy devices only (Algorithm 1 skips deep-sleep
        GPUs; failed devices are invisible until repaired, cordoned
        devices take no new placements)."""
        return [
            v for v in self.snapshot()
            if not v.asleep and not v.failed and not v.cordoned
        ]

    def sorted_by_free_memory(self, active_only: bool = True) -> list[GpuView]:
        """Devices sorted by free (unreserved) memory, descending.

        This is ``Sort_by_Free_Memory`` in Algorithm 1.  Ties break by
        gpu_id so the order — and therefore every experiment — is
        deterministic.
        """
        if active_only:
            views = self.active_views()
        else:
            views = [v for v in self.snapshot() if not v.failed and not v.cordoned]
        return sorted(views, key=lambda v: (-v.free_alloc_mb, v.gpu_id))

    def cluster_utilization(self, window: float, now: float, metric: str = "sm_util") -> np.ndarray:
        """Stacked per-device series for a metric, shape (n_gpus, n_pts).

        Series are aligned by truncating to the shortest window, which
        only matters in the first seconds of a run.  Each node's TSDB is
        visited once through the batch query API, and the aligned
        series land directly in one preallocated matrix (no per-device
        re-query, no intermediate Python list-of-copies).
        """
        series: list[np.ndarray] = []
        for node_id in self.node_ids:
            mon = self._monitors[node_id]
            gpu_ids = [gpu.gpu_id for gpu in mon.node.gpus]
            windows = mon.tsdb.last_windows(
                [f"{gid}.{metric}" for gid in gpu_ids], window, now
            )
            for _ in gpu_ids:
                self._m_queries.inc(metric=metric)
            series.extend(w.values for w in windows.values())
        if not series:
            return np.empty((0, 0))
        n = min(len(s) for s in series)
        out = np.empty((len(series), n))
        if n == 0:
            return out
        for i, s in enumerate(series):
            out[i] = s[len(s) - n:]
        return out
