"""pyNVML-compatible sampling layer over the simulated GPUs.

The paper's Knots monitor calls pyNVML on every worker to read the five
device metrics.  This module provides the same surface against
:class:`repro.cluster.gpu.GPU` objects, so the monitoring code is
written exactly as it would be against real hardware — a thin handle
API (`device_get_handle_by_index`, `device_get_utilization_rates`, ...)
plus the :class:`NvmlSampler` convenience used by Knots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cluster.gpu import GPU, GpuSample

__all__ = [
    "NVMLError",
    "DeviceHandle",
    "NvmlContext",
    "NvmlSampler",
    "METRICS",
]

#: The five metrics Knots logs each heartbeat (Sec. IV-A).
METRICS = ("sm_util", "mem_util", "power_w", "tx_mbps", "rx_mbps")


class NVMLError(RuntimeError):
    """Mirror of pynvml.NVMLError for invalid handle use."""


@dataclass(frozen=True)
class UtilizationRates:
    """Analog of ``nvmlUtilization_t``: busy percentages."""

    gpu: float   # SM busy, percent
    memory: float  # memory-controller busy proxy, percent


@dataclass(frozen=True)
class MemoryInfo:
    """Analog of ``nvmlMemory_t`` (bytes)."""

    total: int
    used: int
    free: int


class DeviceHandle:
    """Opaque per-device handle, as in pyNVML."""

    __slots__ = ("_gpu",)

    def __init__(self, gpu: GPU) -> None:
        self._gpu = gpu


class NvmlContext:
    """A pyNVML-like session bound to one node's devices.

    >>> ctx = NvmlContext([gpu0, gpu1])            # doctest: +SKIP
    >>> h = ctx.device_get_handle_by_index(0)      # doctest: +SKIP
    >>> ctx.device_get_utilization_rates(h).gpu    # doctest: +SKIP
    """

    def __init__(self, gpus: Sequence[GPU]) -> None:
        self._gpus = list(gpus)
        self._initialized = True

    def shutdown(self) -> None:
        self._initialized = False

    def _check(self) -> None:
        if not self._initialized:
            raise NVMLError("NVML not initialized (shutdown() already called)")

    def device_get_count(self) -> int:
        self._check()
        return len(self._gpus)

    def device_get_handle_by_index(self, index: int) -> DeviceHandle:
        self._check()
        if not (0 <= index < len(self._gpus)):
            raise NVMLError(f"invalid device index {index}")
        return DeviceHandle(self._gpus[index])

    def device_get_utilization_rates(self, handle: DeviceHandle) -> UtilizationRates:
        self._check()
        s = handle._gpu.last_sample
        return UtilizationRates(gpu=s.sm_util * 100.0, memory=s.mem_util * 100.0)

    def device_get_memory_info(self, handle: DeviceHandle) -> MemoryInfo:
        self._check()
        gpu = handle._gpu
        used = int(gpu.last_sample.mem_used_mb * 1024 * 1024)
        total = int(gpu.mem_capacity_mb * 1024 * 1024)
        return MemoryInfo(total=total, used=used, free=total - used)

    def device_get_power_usage(self, handle: DeviceHandle) -> int:
        """Power draw in milliwatts (pyNVML convention)."""
        self._check()
        return int(handle._gpu.last_sample.power_w * 1000)

    def device_get_pcie_throughput(self, handle: DeviceHandle) -> tuple[float, float]:
        """(tx, rx) throughput in KB/s (pyNVML convention)."""
        self._check()
        s = handle._gpu.last_sample
        return s.tx_mbps * 1024.0, s.rx_mbps * 1024.0


class NvmlSampler:
    """Knots' per-node sampler: one call returns all five metrics per GPU."""

    def __init__(self, gpus: Sequence[GPU]) -> None:
        self._ctx = NvmlContext(gpus)
        self._gpus = list(gpus)

    def sample(self) -> dict[str, dict[str, float]]:
        """Read every device; returns ``gpu_id -> {metric: value}``.

        Utilizations are fractions in [0, 1]; power in watts; bandwidth
        in MB/s — i.e. the normalized units the TSDB stores.
        """
        out: dict[str, dict[str, float]] = {}
        for i, gpu in enumerate(self._gpus):
            handle = self._ctx.device_get_handle_by_index(i)
            rates = self._ctx.device_get_utilization_rates(handle)
            mem = self._ctx.device_get_memory_info(handle)
            power_mw = self._ctx.device_get_power_usage(handle)
            tx_kbps, rx_kbps = self._ctx.device_get_pcie_throughput(handle)
            out[gpu.gpu_id] = {
                "sm_util": rates.gpu / 100.0,
                "mem_util": mem.used / mem.total,
                "power_w": power_mw / 1000.0,
                "tx_mbps": tx_kbps / 1024.0,
                "rx_mbps": rx_kbps / 1024.0,
            }
        return out
