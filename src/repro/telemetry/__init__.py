"""Knots telemetry plane: NVML sampler, per-node TSDB, aggregator."""

from repro.telemetry.aggregator import GpuView, NodeMonitor, UtilizationAggregator
from repro.telemetry.nvml import METRICS, NvmlContext, NvmlSampler
from repro.telemetry.tsdb import SeriesWindow, TimeSeriesDB

__all__ = [
    "NodeMonitor",
    "UtilizationAggregator",
    "GpuView",
    "NvmlContext",
    "NvmlSampler",
    "METRICS",
    "TimeSeriesDB",
    "SeriesWindow",
]
