"""Cluster energy accounting (Fig. 11a).

The simulator integrates each device's instantaneous power over time;
this module reduces those integrals to the paper's presentation:
per-scheduler cluster energy normalized to the most expensive policy
(the Uniform baseline draws the most because it keeps one pod per
device and every device awake).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EnergySummary", "summarize_energy", "normalize_energy"]


@dataclass(frozen=True)
class EnergySummary:
    total_j: float
    per_gpu_j: dict[str, float]
    makespan_ms: float

    @property
    def mean_power_w(self) -> float:
        """Cluster-average power over the run."""
        if self.makespan_ms <= 0:
            return 0.0
        return self.total_j / (self.makespan_ms / 1_000.0)


def summarize_energy(energy_j_per_gpu: dict[str, float], makespan_ms: float) -> EnergySummary:
    return EnergySummary(
        total_j=float(sum(energy_j_per_gpu.values())),
        per_gpu_j=dict(energy_j_per_gpu),
        makespan_ms=makespan_ms,
    )


def normalize_energy(totals_j: dict[str, float], reference: str | None = None) -> dict[str, float]:
    """Normalize per-scheduler energy totals (Fig. 11a's y-axis).

    With ``reference=None``, normalizes to the maximum (so the worst
    policy reads 1.0, as in the paper's normalized cluster power plot).
    """
    if not totals_j:
        return {}
    if reference is not None:
        base = totals_j[reference]
    else:
        base = max(totals_j.values())
    if base <= 0:
        raise ValueError("reference energy must be positive")
    return {k: v / base for k, v in totals_j.items()}
