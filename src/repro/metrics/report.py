"""Plain-text table rendering for experiment output.

Every experiment module prints its figure/table through these helpers
so `python -m repro.experiments.figN` output is uniform and diffable
(EXPERIMENTS.md records these tables verbatim).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "print_table"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned ASCII table."""
    str_rows: list[list[str]] = []
    for row in rows:
        str_rows.append(
            [float_fmt.format(c) if isinstance(c, float) else str(c) for c in row]
        )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(headers))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float], float_fmt: str = "{:.3f}") -> str:
    """One labelled x->y series as two aligned columns."""
    rows = [(x, float(y)) for x, y in zip(xs, ys)]
    return format_table(["x", name], rows, float_fmt=float_fmt)


def print_table(*args, **kwargs) -> None:  # pragma: no cover - console helper
    print(format_table(*args, **kwargs))
