"""QoS violation accounting (Figs. 10a, 12b).

A latency-critical query violates its SLO when its end-to-end latency
(submission to completion, i.e. including every queueing, cold-start,
relaunch and interference delay) exceeds the threshold — 150 ms for
the Djinn & Tonic services (Sec. VI-B) and per-model budgets for the
DL inference tasks of Sec. VI-E.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.kube.pod import Pod
from repro.workloads.base import QoSClass

__all__ = ["QoSReport", "qos_report", "violations_per_kilo", "violations_per_hour"]


@dataclass(frozen=True)
class QoSReport:
    """Violation statistics over one run's latency-critical pods."""

    total_queries: int
    violations: int
    mean_latency_ms: float
    p99_latency_ms: float

    @property
    def violation_rate(self) -> float:
        return self.violations / self.total_queries if self.total_queries else 0.0

    @property
    def per_kilo(self) -> float:
        """Violations per 1000 queries (Fig. 10a's y-axis)."""
        return 1_000.0 * self.violation_rate


def qos_report(pods: Iterable[Pod]) -> QoSReport:
    """Summarize the completed latency-critical pods of a run."""
    lats = []
    violations = 0
    for pod in pods:
        if pod.spec.qos_class is not QoSClass.LATENCY_CRITICAL or not pod.done:
            continue
        lats.append(pod.jct_ms())
        if pod.violates_qos():
            violations += 1
    if not lats:
        return QoSReport(0, 0, float("nan"), float("nan"))
    arr = np.asarray(lats)
    return QoSReport(
        total_queries=len(arr),
        violations=violations,
        mean_latency_ms=float(arr.mean()),
        p99_latency_ms=float(np.percentile(arr, 99)),
    )


def violations_per_kilo(pods: Iterable[Pod]) -> float:
    return qos_report(pods).per_kilo


def violations_per_hour(n_violations: int, horizon_s: float) -> float:
    """Fig. 12b's unit: average violations per wall-clock hour."""
    if horizon_s <= 0:
        raise ValueError("horizon must be positive")
    return n_violations * 3_600.0 / horizon_s
