"""Coefficient-of-variation metrics (Figs. 7, 11b).

COV = sigma / mu of a node's utilization.  The paper uses it twice:

* **Fig. 7** — per-node COV, sorted ascending, for each app-mix under
  the baseline: mixes 1-2 sit below 1 (predictable), mix 3 exceeds 1
  (heavy-tailed; co-location there risks noisy-neighbour violations).
* **Fig. 11b** — the *pairwise* COV of load across GPU pairs under
  CBP+PP, showing load balancing: values collapse to 0-0.2.
"""

from __future__ import annotations

import numpy as np

__all__ = ["coefficient_of_variation", "node_covs_sorted", "pairwise_load_cov"]


def coefficient_of_variation(series: np.ndarray) -> float:
    """sigma/mu of a series; 0.0 for empty or zero-mean series."""
    s = np.asarray(series, dtype=float)
    if s.size == 0:
        return 0.0
    mu = s.mean()
    if mu <= 1e-12:
        return 0.0
    return float(s.std() / mu)


def node_covs_sorted(series_by_gpu: dict[str, np.ndarray], trim_idle_edges: bool = True) -> np.ndarray:
    """Per-device COV over each device's busy window, sorted ascending."""
    covs = []
    for series in series_by_gpu.values():
        s = np.asarray(series, dtype=float)
        if trim_idle_edges and s.size:
            busy = np.nonzero(s > 0.0)[0]
            s = s[busy[0] : busy[-1] + 1] if busy.size else s[:0]
        covs.append(coefficient_of_variation(s))
    return np.sort(np.asarray(covs))


def _smooth(x: np.ndarray, window: int) -> np.ndarray:
    if window <= 1 or len(x) < window:
        return x
    kernel = np.full(window, 1.0 / window)
    return np.convolve(x, kernel, mode="valid")


def pairwise_load_cov(
    series_by_gpu: dict[str, np.ndarray], smooth_samples: int = 100
) -> tuple[list[str], np.ndarray]:
    """Fig. 11b's matrix: pairwise load *imbalance* between GPUs.

    For devices i and j, the entry is the COV across the pair —
    ``std([u_i, u_j]) / mean([u_i, u_j])`` — averaged over the ticks
    where the pair carries load.  Each series is first smoothed over
    ``smooth_samples`` (one second at the default telemetry cadence):
    *load* is a windowed quantity, and instantaneous samples would
    compare unrelated kernel phases rather than placement balance.
    Zero means the scheduler kept the two devices' loads identical; the
    paper reports 0-0.2 under CBP+PP against 0.1-0.7 per-node COV under
    the baseline.  The lower triangle is NaN, as the paper omits it for
    clarity.
    """
    ids = sorted(series_by_gpu)
    n = len(ids)
    if n == 0:
        return [], np.empty((0, 0))
    length = min(len(series_by_gpu[g]) for g in ids)
    stack = np.vstack(
        [
            _smooth(np.asarray(series_by_gpu[g][:length], dtype=float), smooth_samples)
            for g in ids
        ]
    )
    mat = np.full((n, n), np.nan)
    for i in range(n):
        mat[i, i] = 0.0
        for j in range(i + 1, n):
            a, b = stack[i], stack[j]
            mean = (a + b) / 2.0
            busy = mean > 1e-9
            if not busy.any():
                mat[i, j] = 0.0
                continue
            # std of a 2-sample set is |a-b|/2
            cov_t = (np.abs(a[busy] - b[busy]) / 2.0) / mean[busy]
            mat[i, j] = float(cov_t.mean())
    return ids, mat
