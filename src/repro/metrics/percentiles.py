"""Percentile utilization statistics (Figs. 6, 8, 9).

The paper plots per-node 50th/90th/99th-percentile and maximum GPU
utilization, and cluster-wide aggregates of the same.  Utilization
percentiles are computed over each device's *busy window* — from its
first to its last non-idle sample — so a node that was consolidated
away (left idle by design) reports near-zero, which is exactly how the
paper's Fig. 8c shows minimally-used nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["UtilPercentiles", "node_percentiles", "cluster_percentiles", "PERCENTILE_LABELS"]

PERCENTILE_LABELS = ("50%le", "90%le", "99%le", "Max")


@dataclass(frozen=True)
class UtilPercentiles:
    """p50/p90/p99/max of a utilization series, in percent [0, 100]."""

    p50: float
    p90: float
    p99: float
    max: float

    def as_tuple(self) -> tuple[float, float, float, float]:
        return (self.p50, self.p90, self.p99, self.max)


def _percentiles(series: np.ndarray) -> UtilPercentiles:
    if len(series) == 0:
        return UtilPercentiles(0.0, 0.0, 0.0, 0.0)
    s = np.asarray(series, dtype=float) * 100.0
    return UtilPercentiles(
        p50=float(np.percentile(s, 50)),
        p90=float(np.percentile(s, 90)),
        p99=float(np.percentile(s, 99)),
        max=float(s.max()),
    )


def node_percentiles(series: np.ndarray, trim_idle_edges: bool = True) -> UtilPercentiles:
    """Percentiles of one device's utilization series (fractions in [0,1])."""
    s = np.asarray(series, dtype=float)
    if trim_idle_edges and s.size:
        busy = np.nonzero(s > 0.0)[0]
        if busy.size:
            s = s[busy[0] : busy[-1] + 1]
        else:
            s = s[:0]
    return _percentiles(s)


def cluster_percentiles(series_by_gpu: dict[str, np.ndarray]) -> UtilPercentiles:
    """Cluster-wide percentiles: pool every device's busy-window samples."""
    pooled: list[np.ndarray] = []
    for series in series_by_gpu.values():
        s = np.asarray(series, dtype=float)
        busy = np.nonzero(s > 0.0)[0]
        if busy.size:
            pooled.append(s[busy[0] : busy[-1] + 1])
    if not pooled:
        return UtilPercentiles(0.0, 0.0, 0.0, 0.0)
    return _percentiles(np.concatenate(pooled))
