"""Terminal visualization: sparklines and horizontal bar charts.

The environment is matplotlib-free, so the experiment modules render
into Unicode.  These helpers are intentionally tiny and dependency-free
but honest about scaling (shared axes, explicit ranges), so side-by-side
series are actually comparable.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["sparkline", "sparkline_table", "hbar_chart", "timeline"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: float | None = None, hi: float | None = None) -> str:
    """One-line Unicode sparkline of a series.

    ``lo``/``hi`` pin the scale (pass the same values to make several
    sparklines comparable); default to the series' own range.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return ""
    lo = float(arr.min()) if lo is None else lo
    hi = float(arr.max()) if hi is None else hi
    if hi <= lo:
        return _BLOCKS[1] * arr.size
    idx = np.clip(((arr - lo) / (hi - lo)) * (len(_BLOCKS) - 1), 0, len(_BLOCKS) - 1)
    return "".join(_BLOCKS[int(round(i))] for i in idx)


def _downsample(values: np.ndarray, width: int) -> np.ndarray:
    """Mean-pool a series into at most ``width`` buckets."""
    if len(values) <= width:
        return values
    edges = np.linspace(0, len(values), width + 1).astype(int)
    return np.asarray([values[a:b].mean() if b > a else values[min(a, len(values) - 1)]
                       for a, b in zip(edges[:-1], edges[1:])])


def sparkline_table(
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """Labelled sparklines on a shared scale, downsampled to ``width``."""
    if not series:
        return ""
    arrays = {k: np.asarray(v, dtype=float) for k, v in series.items()}
    pool = np.concatenate([a for a in arrays.values() if a.size]) if arrays else np.array([])
    lo = float(pool.min()) if lo is None and pool.size else (lo or 0.0)
    hi = float(pool.max()) if hi is None and pool.size else (hi or 1.0)
    label_w = max(len(k) for k in arrays)
    lines = []
    for name, arr in arrays.items():
        spark = sparkline(_downsample(arr, width), lo, hi)
        lines.append(f"{name.ljust(label_w)}  {spark}")
    lines.append(f"{''.ljust(label_w)}  scale: {lo:.2f} .. {hi:.2f}")
    return "\n".join(lines)


def hbar_chart(
    values: Mapping[str, float],
    width: int = 40,
    unit: str = "",
    max_value: float | None = None,
) -> str:
    """Horizontal bar chart with aligned labels and printed values."""
    if not values:
        return ""
    top = max(values.values()) if max_value is None else max_value
    top = max(top, 1e-12)
    label_w = max(len(k) for k in values)
    lines = []
    for name, v in values.items():
        n = int(round(width * min(v / top, 1.0)))
        lines.append(f"{name.ljust(label_w)}  {'█' * n}{'·' * (width - n)}  {v:.2f}{unit}")
    return "\n".join(lines)


def timeline(
    times: Sequence[float],
    values: Sequence[float],
    width: int = 70,
    label: str = "",
) -> str:
    """A sparkline with a time axis underneath (start/mid/end ticks)."""
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.size == 0:
        return ""
    spark = sparkline(_downsample(values, width))
    t0, t1 = times[0], times[-1]
    axis = f"{t0:g}".ljust(width // 2) + f"{(t0 + t1) / 2:g}".ljust(width - width // 2 - 1) + f"{t1:g}"
    header = f"{label}\n" if label else ""
    return f"{header}{spark}\n{axis}"
