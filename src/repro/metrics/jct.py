"""Job-completion-time statistics (Fig. 12a, Table IV).

JCT is measured submission-to-completion.  Table IV reports each
baseline's average / median / 99th-percentile JCT *normalized by
CBP+PP's* — values above 1 mean the baseline is slower.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["JctStats", "jct_stats", "normalized_jct", "jct_cdf"]


@dataclass(frozen=True)
class JctStats:
    mean: float
    median: float
    p99: float
    n: int

    def normalized_by(self, base: "JctStats") -> tuple[float, float, float]:
        """(avg, median, p99) ratios vs a reference (Table IV rows)."""
        return (self.mean / base.mean, self.median / base.median, self.p99 / base.p99)


def jct_stats(jcts: np.ndarray) -> JctStats:
    arr = np.asarray(jcts, dtype=float)
    if arr.size == 0:
        return JctStats(float("nan"), float("nan"), float("nan"), 0)
    return JctStats(
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        p99=float(np.percentile(arr, 99)),
        n=int(arr.size),
    )


def normalized_jct(scheduler_jcts: dict[str, np.ndarray], reference: str) -> dict[str, tuple[float, float, float]]:
    """Table IV: every scheduler's (avg, median, p99) over the reference's."""
    if reference not in scheduler_jcts:
        raise KeyError(f"reference {reference!r} not in {sorted(scheduler_jcts)}")
    base = jct_stats(scheduler_jcts[reference])
    return {name: jct_stats(v).normalized_by(base) for name, v in scheduler_jcts.items()}


def jct_cdf(jcts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF (x sorted ascending, F in (0, 1]) — Fig. 12a."""
    x = np.sort(np.asarray(jcts, dtype=float))
    if x.size == 0:
        return x, x
    return x, np.arange(1, x.size + 1) / x.size
