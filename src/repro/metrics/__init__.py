"""Evaluation metrics: percentiles, COV, QoS, JCT, energy, reports."""

from repro.metrics.cov import coefficient_of_variation, node_covs_sorted, pairwise_load_cov
from repro.metrics.energy import EnergySummary, normalize_energy, summarize_energy
from repro.metrics.jct import JctStats, jct_cdf, jct_stats, normalized_jct
from repro.metrics.percentiles import UtilPercentiles, cluster_percentiles, node_percentiles
from repro.metrics.qos import QoSReport, qos_report, violations_per_hour, violations_per_kilo
from repro.metrics.report import format_table, print_table

__all__ = [
    "UtilPercentiles",
    "node_percentiles",
    "cluster_percentiles",
    "coefficient_of_variation",
    "node_covs_sorted",
    "pairwise_load_cov",
    "QoSReport",
    "qos_report",
    "violations_per_kilo",
    "violations_per_hour",
    "JctStats",
    "jct_stats",
    "normalized_jct",
    "jct_cdf",
    "EnergySummary",
    "summarize_energy",
    "normalize_energy",
    "format_table",
    "print_table",
]
