"""Fig. 1 — energy efficiency of CPU and GPU vs utilization.

Regenerates the motivation figure: normalized energy efficiency (to the
value at 100 % utilization) for a GPU and two CPU generations, in 10 %
utilization steps.  The paper's reading: the GPU curve is linear (peak
efficiency only at full utilization), while CPUs peak at 60-80 % — the
"high energy proportionality zone" sits in the interior.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.power import SANDY_BRIDGE, WESTMERE, energy_proportionality_zone, gpu_energy_efficiency
from repro.metrics.report import format_table

__all__ = ["run_fig1", "main"]


def run_fig1(points: int = 10) -> dict:
    """Return the three efficiency series of Fig. 1.

    ``utilization`` is in percent; each series is normalized to its
    value at 100 % utilization, as in the paper.
    """
    u = np.linspace(0.1, 1.0, points)
    sandy = SANDY_BRIDGE.efficiency_curve(u)
    west = WESTMERE.efficiency_curve(u)
    return {
        "utilization_pct": u * 100.0,
        "GPU": np.asarray(gpu_energy_efficiency(u)),
        "Intel-Sandybridge": sandy,
        "Intel-Westmere": west,
        "sandybridge_peak_util": SANDY_BRIDGE.peak_efficiency_utilization(),
        "westmere_peak_util": WESTMERE.peak_efficiency_utilization(),
        "sandybridge_zone": energy_proportionality_zone(SANDY_BRIDGE),
    }


def main() -> str:
    data = run_fig1()
    rows = [
        (int(u), float(g), float(s), float(w))
        for u, g, s, w in zip(
            data["utilization_pct"], data["GPU"], data["Intel-Sandybridge"], data["Intel-Westmere"]
        )
    ]
    out = format_table(
        ["Util %", "GPU", "Sandybridge", "Westmere"],
        rows,
        title="Fig. 1: normalized energy efficiency vs device utilization",
    )
    out += (
        f"\n\nCPU peak-efficiency utilization: Sandybridge "
        f"{data['sandybridge_peak_util'] * 100:.0f} %, Westmere "
        f"{data['westmere_peak_util'] * 100:.0f} % (GPU: 100 % by linearity)"
    )
    return out


if __name__ == "__main__":
    print(main())
