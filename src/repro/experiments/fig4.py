"""Fig. 4 — DNN inference memory footprint vs batch size.

For each Djinn & Tonic query class, the percentage of a 16 GB P100's
memory actually needed at batch sizes 1-128, against the flat ~99 %
line TensorFlow's default allocator earmarks regardless of demand.
The two facts the paper reads off: single queries need <10 %, and even
at batch 128 most classes stay under 50 % — so the TF earmark wastes
half the device or more (internal fragmentation, Observation 5).
"""

from __future__ import annotations

import numpy as np

from repro.metrics.report import format_table
from repro.workloads.djinn_tonic import (
    DEVICE_MEM_MB,
    DJINN_TONIC_PROFILES,
    inference_memory_mb,
    tf_managed_memory_mb,
)

__all__ = ["BATCH_SIZES", "run_fig4", "main"]

BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64, 128)


def run_fig4() -> dict:
    """Return per-class memory percentages for every batch size."""
    series: dict[str, np.ndarray] = {}
    for name in sorted(DJINN_TONIC_PROFILES):
        series[name] = np.asarray(
            [100.0 * inference_memory_mb(name, b) / DEVICE_MEM_MB for b in BATCH_SIZES]
        )
    series["TF"] = np.full(len(BATCH_SIZES), 100.0 * tf_managed_memory_mb() / DEVICE_MEM_MB)
    return {
        "batch_sizes": BATCH_SIZES,
        "series": series,
        "single_query_max_pct": max(float(v[0]) for k, v in series.items() if k != "TF"),
        "batch128_under_50pct": sum(
            1 for k, v in series.items() if k != "TF" and v[-1] < 50.0
        ),
    }


def main() -> str:
    data = run_fig4()
    names = sorted(data["series"])
    rows = []
    for i, b in enumerate(data["batch_sizes"]):
        rows.append(tuple([b] + [float(data["series"][n][i]) for n in names]))
    out = format_table(
        ["batch"] + names,
        rows,
        title="Fig. 4: % of GPU memory used by DNN inference queries",
        float_fmt="{:.1f}",
    )
    out += (
        f"\n\nlargest single-query footprint: {data['single_query_max_pct']:.1f} % "
        f"(paper: <10 %); classes under 50 % at batch 128: "
        f"{data['batch128_under_50pct']}/{len(names) - 1}"
    )
    return out


if __name__ == "__main__":
    print(main())
