"""Fig. 8 — per-node utilization percentiles under Peak Prediction.

The same plot as Fig. 6 with the PP scheduler: consolidation pulls the
low-demand mixes onto a minimal set of active devices (several nodes
show near-zero medians in mixes 2-3 because they were left asleep),
while the nodes that are used run far hotter than under Res-Ag.
"""

from __future__ import annotations

from repro.experiments import fig6
from repro.experiments.runner import DEFAULT_SETTINGS, ExperimentSettings

__all__ = ["run_fig8", "main"]


def run_fig8(settings: ExperimentSettings = DEFAULT_SETTINGS) -> dict:
    """Per-node percentiles for all mixes under PP."""
    return fig6.run_fig6(scheduler="peak-prediction", settings=settings)


def main() -> str:
    return fig6.main(scheduler="peak-prediction", title="Fig. 8")


if __name__ == "__main__":
    print(main())
