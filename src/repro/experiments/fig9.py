"""Fig. 9 — cluster-wide GPU utilization: PP vs CBP vs Res-Ag.

(The Kubernetes default scheduler is included as a fourth column for
context: the paper's "up to 80 %" improvement is against GPU-agnostic
scheduling, and our Res-Ag — an aggressive blind consolidator — is a
stronger utilization baseline than the exclusive default.)

Pooled 50th/90th/99th percentile and maximum utilization across the
whole cluster for each app-mix.  The paper's headline: PP improves both
median and tail utilization in every mix — by up to ~80 % over Res-Ag
in app-mix-1 — because harvesting + forecasting pack more pods onto
fewer, hotter devices.
"""

from __future__ import annotations

from repro.experiments.runner import DEFAULT_SETTINGS, MIX_ORDER, ExperimentSettings, mix_grid
from repro.metrics.percentiles import UtilPercentiles, cluster_percentiles
from repro.metrics.report import format_table

__all__ = ["run_fig9", "main"]

SCHEDULERS = ("peak-prediction", "cbp", "res-ag", "uniform")


def run_fig9(settings: ExperimentSettings = DEFAULT_SETTINGS) -> dict[str, dict[str, UtilPercentiles]]:
    """``{mix: {scheduler: UtilPercentiles}}`` for the three-way comparison."""
    grid = mix_grid(schedulers=SCHEDULERS, settings=settings)
    return {
        mix: {
            sched: cluster_percentiles(grid[(mix, sched)].gpu_util_series)
            for sched in SCHEDULERS
        }
        for mix in MIX_ORDER
    }


def improvement(data: dict, mix: str, which: str = "p50", baseline: str = "res-ag") -> float:
    """PP's relative utilization improvement over a baseline, in percent."""
    pp = getattr(data[mix]["peak-prediction"], which)
    ra = getattr(data[mix][baseline], which)
    if ra <= 0:
        return float("inf") if pp > 0 else 0.0
    return 100.0 * (pp - ra) / ra


def main() -> str:
    data = run_fig9()
    parts = []
    for mix, per_sched in data.items():
        rows = [
            (s, p.p50, p.p90, p.p99, p.max) for s, p in per_sched.items()
        ]
        parts.append(
            format_table(
                ["scheduler", "50%le", "90%le", "99%le", "Max"],
                rows,
                title=f"Fig. 9: cluster-wide GPU utilization %, {mix}",
                float_fmt="{:.1f}",
            )
        )
        parts.append(
            f"PP median improvement ({mix}): {improvement(data, mix):+.0f} % vs Res-Ag, "
            f"{improvement(data, mix, baseline='uniform'):+.0f} % vs the Kubernetes default "
            f"(paper: up to +80 % vs GPU-agnostic scheduling)"
        )
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(main())
