"""Fig. 11 — cluster power and load balance.

**(a)** Mean cluster power per scheduler per mix, normalized to the
most expensive policy.  Paper shape: Uniform draws the most (every
device awake, one pod each); the sharing policies all save
substantially (~33 % cluster-wide energy for Kube-Knots); CBP draws
more than PP (correlation-gated spreading keeps more devices active)
while PP consolidates onto few hot devices and deep-sleeps the rest.

**(b)** Pairwise COV of SM load across active devices under CBP+PP for
app-mix-1: values collapse into 0-0.2 (vs 0.1-0.7 per-node COV under
the baseline, Fig. 7a) — the scheduler load-balances under high load
even while consolidating under low load.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import DEFAULT_SETTINGS, MIX_ORDER, ExperimentSettings, mix_grid, mix_run
from repro.metrics.cov import pairwise_load_cov
from repro.metrics.energy import normalize_energy
from repro.metrics.report import format_table

__all__ = ["run_fig11a", "run_fig11b", "main"]

SCHEDULERS = ("res-ag", "cbp", "peak-prediction", "uniform")


def run_fig11a(settings: ExperimentSettings = DEFAULT_SETTINGS) -> dict[str, dict[str, float]]:
    """``{mix: {scheduler: normalized mean cluster power}}``."""
    grid = mix_grid(schedulers=SCHEDULERS, settings=settings)
    out: dict[str, dict[str, float]] = {}
    for mix in MIX_ORDER:
        powers = {
            sched: grid[(mix, sched)].total_energy_j()
            / (grid[(mix, sched)].makespan_ms / 1_000.0)
            for sched in SCHEDULERS
        }
        out[mix] = normalize_energy(powers)
    return out


def run_fig11b(
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    mix: str = "app-mix-1",
    scheduler: str = "peak-prediction",
) -> tuple[list[str], np.ndarray]:
    """Pairwise SM-load COV matrix for one mix (CBP+PP in the paper)."""
    result = mix_run(mix, scheduler, settings)
    # The paper's axes are "Active GPU ids": only the devices actually
    # carrying the consolidated load participate.  Devices that merely
    # hosted a transient query (or were woken once and re-slept) are
    # not part of the balanced working set.
    means = {gid: float(np.asarray(s).mean()) for gid, s in result.gpu_util_series.items()}
    cutoff = 0.25 * max(means.values()) if means else 0.0
    active = {
        gid: series
        for gid, series in result.gpu_util_series.items()
        if means[gid] >= cutoff and means[gid] > 0
    }
    return pairwise_load_cov(active)


def main() -> str:
    parts = []
    a = run_fig11a()
    rows = [tuple([mix] + [float(a[mix][s]) for s in SCHEDULERS]) for mix in sorted(a)]
    parts.append(
        format_table(
            ["mix"] + list(SCHEDULERS),
            rows,
            title="Fig. 11a: normalized mean cluster power",
        )
    )
    ids, mat = run_fig11b()
    upper = mat[np.triu_indices(len(ids), k=1)] if len(ids) > 1 else np.array([])
    parts.append(
        f"Fig. 11b: pairwise SM-load COV under CBP+PP (app-mix-1) across "
        f"{len(ids)} active GPUs: min {np.nanmin(upper) if upper.size else 0:.3f}, "
        f"max {np.nanmax(upper) if upper.size else 0:.3f} (paper: 0-0.2)"
    )
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(main())
