"""Paper-figure regeneration harness.

One module per evaluation artifact: ``fig1`` ... ``fig12``, ``table4``,
``ablation``.  Each exposes ``run_*`` functions returning plain data
structures plus a ``main()`` that renders the figure as an ASCII table;
``python -m repro.experiments.figN`` prints it.
"""

__all__ = [
    "fig1",
    "hetero",
    "ablation_dl",
    "sensitivity",
    "fig2",
    "fig3",
    "fig4",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table4",
    "ablation",
    "runner",
    "scenarios",
]
