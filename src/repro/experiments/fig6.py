"""Fig. 6 — per-node utilization percentiles under the Res-Ag baseline.

For each Table-I app-mix, the 50th/90th/99th percentile and maximum
GPU utilization of every node in the ten-node cluster when scheduled
by the GPU-agnostic sharing baseline.  The shapes the paper reads:

* app-mix-1 (high, steady load): median close to the tail — sustained
  utilization;
* app-mix-2: percentiles evenly spread (medium, variable load);
* app-mix-3 (low, bursty): medians near zero with tall maxima.
"""

from __future__ import annotations

from repro.experiments.runner import DEFAULT_SETTINGS, MIX_ORDER, ExperimentSettings, mix_grid
from repro.metrics.percentiles import node_percentiles
from repro.metrics.report import format_table

__all__ = ["run_fig6", "main"]


def run_fig6(
    scheduler: str = "res-ag",
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> dict:
    """Per-node utilization percentiles for all three mixes.

    Returns ``{mix: {gpu_id: UtilPercentiles}}``.  ``scheduler`` is a
    parameter so Fig. 8 (same plot under PP) can share the code path.
    """
    grid = mix_grid(schedulers=(scheduler,), settings=settings)
    out: dict[str, dict] = {}
    for mix in MIX_ORDER:
        result = grid[(mix, scheduler)]
        out[mix] = {
            gpu_id: node_percentiles(series)
            for gpu_id, series in sorted(result.gpu_util_series.items())
        }
    return out


def main(scheduler: str = "res-ag", title: str = "Fig. 6") -> str:
    data = run_fig6(scheduler)
    parts = []
    for mix, nodes in data.items():
        rows = [
            (gpu_id, p.p50, p.p90, p.p99, p.max) for gpu_id, p in nodes.items()
        ]
        parts.append(
            format_table(
                ["node", "50%le", "90%le", "99%le", "Max"],
                rows,
                title=f"{title}: per-node GPU utilization % under {scheduler}, {mix}",
                float_fmt="{:.1f}",
            )
        )
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(main())
