"""Table IV — JCT improvements normalized by CBP+PP.

Average / median / 99th-percentile JCT of each baseline divided by
CBP+PP's, over the full DL workload.  Paper values:

==================  =======  ======  =====
Scheduler           Average  Median  99 %
==================  =======  ======  =====
Resource-Agnostic   1.63x    1.67x   1.47x
Gandiva             1.36x    1.30x   1.11x
Tiresias            1.07x    1.11x   0.91x
==================  =======  ======  =====
"""

from __future__ import annotations

from repro.experiments.fig12 import dl_results
from repro.metrics.jct import normalized_jct
from repro.metrics.report import format_table
from repro.workloads.dlt import DLWorkloadConfig

__all__ = ["run_table4", "main"]


def run_table4(seed: int = 1, config: DLWorkloadConfig | None = None) -> dict[str, tuple[float, float, float]]:
    """``{policy: (avg_ratio, median_ratio, p99_ratio)}`` vs CBP+PP."""
    results = dl_results(seed, config)
    jcts = {name: r.jcts_s() for name, r in results.items()}
    return normalized_jct(jcts, reference="cbp-pp")


def main() -> str:
    data = run_table4()
    rows = [
        (name, *[float(v) for v in data[name]])
        for name in ("res-ag", "gandiva", "tiresias", "cbp-pp")
    ]
    return format_table(
        ["scheduler", "Average", "Median", "99%"],
        rows,
        title="Table IV: JCT normalized by CBP+PP",
    )


if __name__ == "__main__":
    print(main())
