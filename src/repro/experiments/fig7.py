"""Fig. 7 — coefficient of variation across GPU nodes per app-mix.

Sorted per-node COV of GPU utilization under the baseline scheduler.
The paper's reading: mixes 1 and 2 sit below COV=1 (consistent load —
safe to co-locate onto), mix 3 exceeds 1 (heavy-tailed — co-location
there risks noisy-neighbour capacity violations unless the scheduler
watches real-time utilization).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import DEFAULT_SETTINGS, MIX_ORDER, ExperimentSettings, mix_grid
from repro.metrics.cov import node_covs_sorted
from repro.metrics.report import format_table

__all__ = ["run_fig7", "main"]


def run_fig7(
    scheduler: str = "res-ag",
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> dict[str, np.ndarray]:
    """Sorted per-node COV arrays, one per app-mix."""
    grid = mix_grid(schedulers=(scheduler,), settings=settings)
    return {mix: node_covs_sorted(grid[(mix, scheduler)].gpu_util_series) for mix in MIX_ORDER}


def main() -> str:
    data = run_fig7()
    rows = []
    n = max(len(v) for v in data.values())
    for i in range(n):
        rows.append(
            tuple(
                [i + 1]
                + [float(data[m][i]) if i < len(data[m]) else float("nan") for m in sorted(data)]
            )
        )
    out = format_table(
        ["node rank"] + sorted(data),
        rows,
        title="Fig. 7: sorted per-node COV of GPU utilization (res-ag)",
        float_fmt="{:.2f}",
    )
    for mix, covs in sorted(data.items()):
        out += f"\n{mix}: max COV {covs.max():.2f} ({'>1' if covs.max() > 1 else '<=1'})"
    return out


if __name__ == "__main__":
    print(main())
