"""Shared experiment driver over the sweep fabric.

Figures 6-11 all consume the same grid of (app-mix x scheduler) cluster
runs; running each figure's module independently must not re-simulate
what another figure already produced.  :func:`mix_run` and
:func:`mix_grid` are thin views over :func:`repro.sweep.run_tasks`,
which resolves each (mix, scheduler, settings) triple through an
in-process memo, then the persistent content-addressed store in
``.repro-cache/``, and only then a simulation — fanned across a
process pool when more than one worker is configured (``python -m
repro sweep --jobs N`` / ``repro.sweep.configure``).

Cached, pooled and freshly simulated results are bit-identical; the
cache invalidates itself on ``repro.__version__`` or schema-tag bumps
and can be dropped explicitly with :func:`clear`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.simulator import SimResult
from repro.sweep import MixTask, run_tasks

__all__ = [
    "ExperimentSettings",
    "DEFAULT_SETTINGS",
    "QUICK_SETTINGS",
    "SCHEDULER_ORDER",
    "MIX_ORDER",
    "mix_run",
    "mix_grid",
    "clear",
]

#: Scheduler names in the order the paper's figures list them.
SCHEDULER_ORDER = ("res-ag", "cbp", "peak-prediction", "uniform")
MIX_ORDER = ("app-mix-1", "app-mix-2", "app-mix-3")


@dataclass(frozen=True)
class ExperimentSettings:
    """Workload sizing shared by all app-mix experiments."""

    duration_s: float = 30.0
    seed: int = 1
    num_nodes: int = 10
    gpus_per_node: int = 1
    load_factor: float = 1.0
    #: Idle fast-forward in the event-driven core.  Outputs are pinned
    #: bit-identical either way; turning it off only changes wall-clock.
    fast_forward: bool = True


#: Full-size runs used for EXPERIMENTS.md numbers.
DEFAULT_SETTINGS = ExperimentSettings()

#: Small runs for the pytest-benchmark harness.
QUICK_SETTINGS = ExperimentSettings(duration_s=8.0)


def mix_run(
    mix: str, scheduler: str, settings: ExperimentSettings = DEFAULT_SETTINGS
) -> SimResult:
    """One (mix, scheduler) cluster simulation via the sweep fabric."""
    return run_tasks([MixTask(mix, scheduler, settings)])[0]


def mix_grid(
    schedulers: tuple[str, ...] = SCHEDULER_ORDER,
    mixes: tuple[str, ...] = MIX_ORDER,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    jobs: int | None = None,
) -> dict[tuple[str, str], SimResult]:
    """The full (mix, scheduler) result grid in one sweep.

    All cache misses of the grid fan out across the process pool
    together, so a cold ``mix_grid`` costs one batch of parallel
    simulations rather than ``len(mixes) * len(schedulers)`` serial
    ones.
    """
    pairs = [(m, s) for m in mixes for s in schedulers]
    results = run_tasks([MixTask(m, s, settings) for m, s in pairs], jobs=jobs)
    return dict(zip(pairs, results))


def clear(disk: bool = False) -> None:
    """Invalidate cached experiment results.

    Drops the in-process memo; ``disk=True`` also deletes the
    persistent ``.repro-cache/`` store.  This is the supported
    invalidation API — reach for it after editing simulator code in a
    live session, or to reclaim the cache directory.
    """
    from repro.sweep import clear as _sweep_clear

    _sweep_clear(disk=disk)
