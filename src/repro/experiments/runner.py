"""Shared experiment driver with in-process result caching.

Figures 6-11 all consume the same grid of (app-mix x scheduler) cluster
runs; running each figure's module independently must not re-simulate
what another figure already produced, so results are memoised on the
full parameter tuple.  The cache is per-process (no files), which keeps
benchmark runs honest — each pytest-benchmark process pays for its own
simulations once.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.schedulers import make_scheduler
from repro.sim.simulator import SimConfig, SimResult, run_appmix

__all__ = ["ExperimentSettings", "DEFAULT_SETTINGS", "QUICK_SETTINGS", "mix_run", "mix_grid"]

#: Scheduler names in the order the paper's figures list them.
SCHEDULER_ORDER = ("res-ag", "cbp", "peak-prediction", "uniform")
MIX_ORDER = ("app-mix-1", "app-mix-2", "app-mix-3")


@dataclass(frozen=True)
class ExperimentSettings:
    """Workload sizing shared by all app-mix experiments."""

    duration_s: float = 30.0
    seed: int = 1
    num_nodes: int = 10
    load_factor: float = 1.0
    #: Idle fast-forward in the event-driven core.  Outputs are pinned
    #: bit-identical either way; turning it off only changes wall-clock.
    fast_forward: bool = True


#: Full-size runs used for EXPERIMENTS.md numbers.
DEFAULT_SETTINGS = ExperimentSettings()

#: Small runs for the pytest-benchmark harness.
QUICK_SETTINGS = ExperimentSettings(duration_s=8.0)


@lru_cache(maxsize=64)
def mix_run(mix: str, scheduler: str, settings: ExperimentSettings = DEFAULT_SETTINGS) -> SimResult:
    """One cached (mix, scheduler) cluster simulation."""
    return run_appmix(
        mix,
        make_scheduler(scheduler),
        duration_s=settings.duration_s,
        seed=settings.seed,
        num_nodes=settings.num_nodes,
        config=SimConfig(fast_forward=settings.fast_forward),
        load_factor=settings.load_factor,
    )


def mix_grid(
    schedulers: tuple[str, ...] = SCHEDULER_ORDER,
    mixes: tuple[str, ...] = MIX_ORDER,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
) -> dict[tuple[str, str], SimResult]:
    """The full (mix, scheduler) result grid, cached per entry."""
    return {(m, s): mix_run(m, s, settings) for m in mixes for s in schedulers}
