"""Fig. 12 — DL-cluster comparison against Gandiva and Tiresias.

**(a)** JCT CDF over the 520-DLT + 1400-DLI workload on 32 nodes x 8
GPUs for Tiresias / Res-Ag / Gandiva / CBP+PP.  Paper shape: CBP+PP's
CDF jumps to ~60-70 % almost immediately (the inference tasks it
schedules without queueing, preemption or migration), and stays ahead
on average.

**(b)** Average DLI QoS violations per hour: Res-Ag worst (blind
first-fit piles bursts onto one device), then Gandiva (time-slice
stretch + migration stalls), then Tiresias (preemption latency), with
CBP+PP near zero.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.jct import jct_cdf
from repro.metrics.report import format_table
from repro.sim.dlsim import DLSimResult
from repro.sweep import DLTask, run_tasks
from repro.workloads.dlt import DLWorkloadConfig

__all__ = ["dl_results", "run_fig12a", "run_fig12b", "main"]

POLICY_ORDER = ("tiresias", "res-ag", "gandiva", "cbp-pp")

#: Result-dict order of the four-policy comparison (the order
#: ``run_dl_comparison`` historically produced).
COMPARISON_ORDER = ("res-ag", "gandiva", "tiresias", "cbp-pp")


def dl_results(seed: int = 1, config: DLWorkloadConfig | None = None) -> dict[str, DLSimResult]:
    """The four-policy comparison on one paired workload, via the sweep
    fabric: each policy's run is cached independently in
    ``.repro-cache/`` and cache misses fan out across the process
    pool."""
    tasks = [DLTask(policy=p, jobs_seed=seed, config=config) for p in COMPARISON_ORDER]
    return dict(zip(COMPARISON_ORDER, run_tasks(tasks)))


def run_fig12a(seed: int = 1, config: DLWorkloadConfig | None = None) -> dict[str, tuple[np.ndarray, np.ndarray]]:
    """``{policy: (jct_hours_sorted, cdf)}``."""
    results = dl_results(seed, config)
    return {name: jct_cdf(r.jcts_s() / 3_600.0) for name, r in results.items()}


def run_fig12b(seed: int = 1, config: DLWorkloadConfig | None = None) -> dict[str, float]:
    """Average DLI QoS violations per hour of the 12 h trace window."""
    results = dl_results(seed, config)
    window_h = (config or DLWorkloadConfig()).window_s / 3_600.0
    return {name: r.qos_violations() / window_h for name, r in results.items()}


def main() -> str:
    cdfs = run_fig12a()
    rows = []
    for frac in (0.25, 0.50, 0.60, 0.75, 0.90, 0.99):
        row = [f"{int(frac * 100)}%"]
        for name in POLICY_ORDER:
            x, f = cdfs[name]
            row.append(float(np.interp(frac, f, x)))
        rows.append(tuple(row))
    parts = [
        format_table(
            ["jobs done"] + list(POLICY_ORDER),
            rows,
            title="Fig. 12a: JCT (hours) at CDF fractions",
            float_fmt="{:.3f}",
        )
    ]
    viol = run_fig12b()
    parts.append(
        format_table(
            ["policy", "violations/hr"],
            [(name, float(viol[name])) for name in POLICY_ORDER],
            title="Fig. 12b: average DLI QoS violations per hour",
        )
    )
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(main())
