"""Load-sensitivity study: where do the paper's claims hold?

The evaluation reports three load points (the Table-I mixes); this
experiment sweeps a continuous load factor over app-mix-1 and tracks
each scheduler's QoS, utilization and power.  It answers the questions
a deployer would ask before adopting Kube-Knots:

* At what load does the exclusive default start violating SLOs (its
  HOL-blocking knee)?
* Does the agnostic packer's QoS cliff move with load, and do CBP/PP
  hold their near-zero violation rate across the sweep?
* How does PP's consolidation energy saving shrink as the cluster
  fills (less to consolidate)?
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentSettings
from repro.metrics.percentiles import cluster_percentiles
from repro.metrics.report import format_table
from repro.sweep import MixTask, run_tasks

__all__ = ["LOAD_FACTORS", "run_sensitivity", "main"]

LOAD_FACTORS = (0.5, 1.0, 1.5)
SCHEDULERS = ("uniform", "res-ag", "peak-prediction")


def run_sensitivity(
    load_factors: tuple[float, ...] = LOAD_FACTORS,
    schedulers: tuple[str, ...] = SCHEDULERS,
    mix: str = "app-mix-1",
    duration_s: float = 15.0,
    seed: int = 1,
) -> list[dict]:
    """One row per (load factor, scheduler); the whole grid is one sweep."""
    points = [(load, name) for load in load_factors for name in schedulers]
    tasks = [
        MixTask(
            mix, name,
            ExperimentSettings(duration_s=duration_s, seed=seed, load_factor=load),
        )
        for load, name in points
    ]
    rows = []
    for (load, name), result in zip(points, run_tasks(tasks)):
        util = cluster_percentiles(result.gpu_util_series)
        rows.append(
            {
                "load_factor": load,
                "scheduler": name,
                "util_p50": util.p50,
                "qos_per_kilo": result.qos_violations_per_kilo(),
                "oom_kills": result.oom_kills,
                "mean_power_w": result.total_energy_j() / (result.makespan_ms / 1_000.0),
            }
        )
    return rows


def main() -> str:
    rows = run_sensitivity()
    table = format_table(
        ["load", "scheduler", "util p50 %", "QoS/kilo", "OOM", "power W"],
        [
            (r["load_factor"], r["scheduler"], r["util_p50"], r["qos_per_kilo"],
             r["oom_kills"], r["mean_power_w"])
            for r in rows
        ],
        title="Load sensitivity, app-mix-1 (Table-I HIGH bin scaled)",
    )
    by = {(r["load_factor"], r["scheduler"]): r for r in rows}
    hi = max(LOAD_FACTORS)
    note = (
        f"\nAt {hi}x load: PP holds QoS at "
        f"{by[(hi, 'peak-prediction')]['qos_per_kilo']:.0f}/kilo while the "
        f"baselines reach {by[(hi, 'uniform')]['qos_per_kilo']:.0f} (uniform) "
        f"and {by[(hi, 'res-ag')]['qos_per_kilo']:.0f} (res-ag)."
    )
    return table + note


if __name__ == "__main__":
    print(main())
