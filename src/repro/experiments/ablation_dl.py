"""Ablations for the DL-cluster baselines' key knobs.

The Gandiva and Tiresias implementations carry the mechanisms the paper
credits for their behaviour; these sweeps confirm each mechanism
actually drives the outcome (and quantify how sensitive the Fig. 12 /
Table IV comparison is to our parameter choices):

* **Gandiva migration interval** — faster rebalancing packs better but
  each migration pauses the job; too slow and the trial-and-error
  placement never converges.
* **Tiresias queue threshold** — the attained-GPU-time boundary between
  the priority queues: tiny thresholds demote everything (long jobs
  starve), huge thresholds degrade LAS to FIFO.
* **CBP+PP co-location cap** — how many harvested inference tasks may
  share one training device before interference erases the queueing
  win.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.report import format_table
from repro.sweep import DLTask, run_tasks
from repro.workloads.dlt import DLJobKind, DLWorkloadConfig

__all__ = [
    "ABLATION_CONFIG",
    "sweep_gandiva_migration",
    "sweep_tiresias_threshold",
    "sweep_cbp_pp_colocation",
    "main",
]

#: Reduced workload: big enough to contend, small enough to sweep.
ABLATION_CONFIG = DLWorkloadConfig(
    n_training=120, n_inference=350, window_s=4 * 3_600.0, dlt_median_s=4_000.0, dlt_sigma=0.9
)


def _sweep(policy: str, knob: str, values, seed: int) -> list:
    """One DL run per knob value, fanned out through the sweep fabric."""
    tasks = [
        DLTask(policy, jobs_seed=seed, config=ABLATION_CONFIG,
               policy_kwargs=((knob, value),))
        for value in values
    ]
    return run_tasks(tasks)


def sweep_gandiva_migration(
    intervals_s: tuple[float, ...] = (120.0, 600.0, 3_600.0),
    seed: int = 2,
) -> list[dict]:
    rows = []
    for interval, result in zip(
        intervals_s, _sweep("gandiva", "migration_interval_s", intervals_s, seed)
    ):
        dlt = result.jcts_s(DLJobKind.TRAINING)
        rows.append(
            {
                "interval_s": interval,
                "dlt_mean_jct_h": float(dlt.mean() / 3_600.0),
                "migrations": sum(j.migrations for j in result.jobs),
                "violations": result.qos_violations(),
            }
        )
    return rows


def sweep_tiresias_threshold(
    thresholds_gpu_s: tuple[float, ...] = (1_000.0, 10_000.0, 100_000.0),
    seed: int = 2,
) -> list[dict]:
    rows = []
    for threshold, result in zip(
        thresholds_gpu_s, _sweep("tiresias", "queue_threshold_gpu_s", thresholds_gpu_s, seed)
    ):
        jct = result.jcts_s()
        rows.append(
            {
                "threshold_gpu_s": threshold,
                "mean_jct_h": float(jct.mean() / 3_600.0),
                "p99_jct_h": float(np.percentile(jct, 99) / 3_600.0),
                "preemptions": sum(j.preemptions for j in result.jobs),
                "violations": result.qos_violations(),
            }
        )
    return rows


def sweep_cbp_pp_colocation(
    caps: tuple[int, ...] = (1, 4, 16),
    seed: int = 2,
) -> list[dict]:
    rows = []
    for cap, result in zip(caps, _sweep("cbp-pp", "max_dli_per_gpu", caps, seed)):
        dli = result.jcts_s(DLJobKind.INFERENCE)
        rows.append(
            {
                "max_dli_per_gpu": cap,
                "dli_median_ms": float(np.median(dli) * 1_000.0),
                "dli_p99_ms": float(np.percentile(dli, 99) * 1_000.0),
                "violations": result.qos_violations(),
            }
        )
    return rows


def main() -> str:
    parts = []
    g = sweep_gandiva_migration()
    parts.append(
        format_table(
            ["interval s", "DLT mean JCT h", "migrations", "SLO viol"],
            [(r["interval_s"], r["dlt_mean_jct_h"], r["migrations"], r["violations"]) for r in g],
            title="Ablation: Gandiva migration interval",
        )
    )
    t = sweep_tiresias_threshold()
    parts.append(
        format_table(
            ["threshold gpu-s", "mean JCT h", "p99 JCT h", "preemptions", "SLO viol"],
            [
                (r["threshold_gpu_s"], r["mean_jct_h"], r["p99_jct_h"], r["preemptions"], r["violations"])
                for r in t
            ],
            title="Ablation: Tiresias queue threshold (2DAS boundary)",
        )
    )
    c = sweep_cbp_pp_colocation()
    parts.append(
        format_table(
            ["max DLI/GPU", "DLI median ms", "DLI p99 ms", "SLO viol"],
            [(r["max_dli_per_gpu"], r["dli_median_ms"], r["dli_p99_ms"], r["violations"]) for r in c],
            title="Ablation: CBP+PP inference co-location cap",
        )
    )
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(main())
