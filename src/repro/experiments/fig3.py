"""Fig. 3 — Rodinia suite resource consumption on one P100.

Runs the eight-application suite back to back and reports, per app, the
bandwidth / SM / memory statistics whose shapes the paper reads off the
timeline: low median consumption, rare surges (the ~90x SM and ~400x
bandwidth median-to-peak gaps), and peak residency only a few percent
of runtime.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.report import format_table
from repro.workloads.rodinia import RODINIA_SUITE_ORDER, suite_timeline

__all__ = ["run_fig3", "main"]


def run_fig3(seed: int = 42, step_ms: float = 0.25) -> dict:
    """Return the Fig. 3 timeline plus per-app and suite statistics."""
    timeline = suite_timeline(np.random.default_rng(seed), step_ms=step_ms)
    bounds = timeline["boundaries_ms"]
    per_app = []
    for i, name in enumerate(RODINIA_SUITE_ORDER):
        lo = np.searchsorted(timeline["time_ms"], bounds[i])
        hi = np.searchsorted(timeline["time_ms"], bounds[i + 1])
        sm = timeline["sm_util"][lo:hi]
        mem = timeline["mem_used_mb"][lo:hi]
        rx = timeline["rx_mbps"][lo:hi]
        per_app.append(
            {
                "app": name,
                "duration_ms": float(bounds[i + 1] - bounds[i]),
                "sm_median": float(np.median(sm)),
                "sm_peak": float(sm.max()),
                "mem_peak_mb": float(mem.max()),
                "rx_peak_mbps": float(rx.max()),
            }
        )
    sm = timeline["sm_util"]
    bw = timeline["rx_mbps"] + timeline["tx_mbps"]
    mem = timeline["mem_used_mb"]
    stats = {
        "sm_median_to_peak": float(sm.max() / max(np.median(sm), 1e-6)),
        "bw_median_to_peak": float(bw.max() / max(np.median(bw), 1e-6)),
        "peak_residency_fraction": float(np.mean(mem > 0.8 * mem.max())),
        "total_ms": float(bounds[-1]),
    }
    return {"timeline": timeline, "per_app": per_app, "stats": stats}


def main() -> str:
    data = run_fig3()
    rows = [
        (
            a["app"],
            a["duration_ms"],
            a["sm_median"] * 100.0,
            a["sm_peak"] * 100.0,
            a["mem_peak_mb"],
            a["rx_peak_mbps"],
        )
        for a in data["per_app"]
    ]
    out = format_table(
        ["app", "ms", "SM med %", "SM peak %", "mem peak MB", "rx peak MB/s"],
        rows,
        title="Fig. 3: Rodinia suite per-application resource profile",
    )
    s = data["stats"]
    out += (
        f"\n\nsuite SM median-to-peak: {s['sm_median_to_peak']:.0f}x (paper ~90x); "
        f"bandwidth median-to-peak: {s['bw_median_to_peak']:.0f}x (paper ~400x); "
        f"time at >80% of peak memory: {s['peak_residency_fraction'] * 100:.1f} % (paper ~6 %)"
    )
    return out


if __name__ == "__main__":
    print(main())
