"""Fig. 2 — Alibaba trace analysis.

Three panels over the synthesized production populations:

* **(a)** Spearman heatmap across eight latency-critical container
  metrics — weak, patternless correlations (short-lived tasks give no
  early markers).
* **(b)** CDFs of average/maximum CPU and memory utilization — jobs
  overstate their requirements: average CPU ~47 %, half of pods under
  ~45 % of provisioned memory.
* **(c)** Spearman heatmap across six batch-job metrics — strong
  positive core/memory/load correlations (plus the negative disk pair),
  the signal CBP harvests on.
"""

from __future__ import annotations

import numpy as np

from repro.forecast.correlation import correlation_matrix
from repro.metrics.report import format_table
from repro.workloads.alibaba import (
    synthesize_batch_jobs,
    synthesize_latency_containers,
    utilization_cdfs,
)

__all__ = ["run_fig2", "main"]


def run_fig2(
    n_latency: int = 11_089,
    n_batch: int = 12_951,
    seed: int = 0,
) -> dict:
    """Return heatmaps (a, c) and CDF series (b) for Fig. 2."""
    rng_lc = np.random.default_rng(seed)
    rng_b = np.random.default_rng(seed + 1)
    lc = synthesize_latency_containers(n_latency, rng_lc)
    batch = synthesize_batch_jobs(n_batch, rng_b)

    lc_names, lc_mat = correlation_matrix({k: np.asarray(v) for k, v in lc.items()})
    b_names, b_mat = correlation_matrix({k: np.asarray(v) for k, v in batch.items()})
    return {
        "latency_metrics": lc_names,
        "latency_corr": lc_mat,
        "batch_metrics": b_names,
        "batch_corr": b_mat,
        "cdfs": utilization_cdfs(lc),
        "avg_cpu_mean": float(np.mean(lc["cpu_avg"])),
        "avg_mem_median": float(np.median(lc["mem_avg"])),
        "max_mem_mean": float(np.mean(lc["mem_max"])),
    }


def _heatmap_rows(names: list[str], mat: np.ndarray) -> list[tuple]:
    return [tuple([names[i]] + [float(v) for v in mat[i]]) for i in range(len(names))]


def main() -> str:
    data = run_fig2()
    parts = [
        format_table(
            ["metric"] + data["latency_metrics"],
            _heatmap_rows(data["latency_metrics"], data["latency_corr"]),
            title="Fig. 2a: Spearman correlation, latency-critical containers",
        ),
        format_table(
            ["metric"] + data["batch_metrics"],
            _heatmap_rows(data["batch_metrics"], data["batch_corr"]),
            title="Fig. 2c: Spearman correlation, batch jobs",
        ),
    ]
    cdf_rows = []
    for q in (0.25, 0.50, 0.75, 0.90):
        row = [f"p{int(q * 100)}"]
        for label in ("avg_cpu", "max_cpu", "avg_mem", "max_mem"):
            x, f = data["cdfs"][label]
            row.append(float(np.interp(q, f, x)) * 100.0)
        cdf_rows.append(tuple(row))
    parts.append(
        format_table(
            ["quantile", "avg CPU %", "max CPU %", "avg mem %", "max mem %"],
            cdf_rows,
            title="Fig. 2b: utilization distribution quantiles",
        )
    )
    parts.append(
        f"mean average-CPU utilization: {data['avg_cpu_mean'] * 100:.1f} % "
        f"(paper: ~47 %); median average-memory: {data['avg_mem_median'] * 100:.1f} % "
        f"(paper: ~45 %)"
    )
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(main())
