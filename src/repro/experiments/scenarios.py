"""Scenario study — CBP/PP under capacity, network and gang scenarios.

Runs one Table-I app mix under CBP and peak-prediction for every
scenario in the catalog (:data:`repro.scenario.spec.SCENARIOS`):
``default`` (the stack's historical assumptions: fixed capacity, free
network, single-GPU pods), ``diurnal`` and ``spot`` time-varying
capacity, a ``gang`` multi-GPU mix, and the combined ``diurnal-gang``
stress scenario.  For each run it reports QoS violations per
kilo-query, mean utilization, free-memory fragmentation, and the
disruption counters (OOM kills, evictions) — the axes along which
harvesting either holds up or degrades when the cluster stops being a
static box of identical single-GPU nodes.

Fragmentation is ``1 - largest free block / total free`` averaged over
sample instants: 0 when all free memory sits on one device (a gang or
a big pod can still land), approaching 1 when the same total free is
shredded into slivers no multi-GPU gang can use.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import DEFAULT_SETTINGS, ExperimentSettings
from repro.metrics.report import format_table
from repro.sim.simulator import SimResult
from repro.sweep import ScenarioTask, run_tasks

__all__ = [
    "SCENARIO_ORDER",
    "SCHEDULERS",
    "MIX",
    "fragmentation",
    "run_scenarios",
    "main",
]

SCENARIO_ORDER = ("default", "diurnal", "spot", "gang", "diurnal-gang")
SCHEDULERS = ("cbp", "peak-prediction")
MIX = "app-mix-1"


def fragmentation(result: SimResult) -> float:
    """Mean over time of ``1 - largest free block / total free``."""
    series = [result.gpu_mem_series[g] for g in sorted(result.gpu_mem_series)]
    if not series or len(series[0]) == 0:
        return 0.0
    free = np.clip(1.0 - np.vstack(series), 0.0, None)  # devices x samples
    total = free.sum(axis=0)
    largest = free.max(axis=0)
    frag = np.where(total > 1e-9, 1.0 - largest / np.maximum(total, 1e-9), 0.0)
    return float(frag.mean())


def mean_utilization_pct(result: SimResult) -> float:
    series = [s for s in result.gpu_util_series.values() if len(s)]
    if not series:
        return 0.0
    return float(np.mean(np.vstack(series)) * 100.0)


def run_scenarios(
    scenarios: tuple[str, ...] = SCENARIO_ORDER,
    schedulers: tuple[str, ...] = SCHEDULERS,
    settings: ExperimentSettings = DEFAULT_SETTINGS,
    jobs: int | None = None,
) -> dict[tuple[str, str], SimResult]:
    """``{(scenario, scheduler): result}`` over the full grid.

    One batch through the sweep fabric: every (scenario, scheduler)
    cell is an independent :class:`~repro.sweep.ScenarioTask`, so cache
    misses fan out across the process pool together and reruns are
    content-addressed cache hits.
    """
    pairs = [(sc, s) for sc in scenarios for s in schedulers]
    results = run_tasks(
        [ScenarioTask(sc, MIX, s, settings) for sc, s in pairs], jobs=jobs
    )
    return dict(zip(pairs, results))


def main() -> str:
    grid = run_scenarios()
    rows = []
    for (scenario, sched), r in grid.items():
        rows.append(
            (
                scenario,
                sched,
                f"{len(r.completed())}/{len(r.pods)}",
                float(r.qos_violations_per_kilo()),
                float(mean_utilization_pct(r)),
                float(fragmentation(r)),
                r.oom_kills,
                r.evictions,
            )
        )
    return format_table(
        ["scenario", "scheduler", "done", "QoS/kq", "util %", "frag", "OOM", "evict"],
        rows,
        title=f"Scenario study: {MIX}, QoS/utilization/fragmentation",
        float_fmt="{:.2f}",
    )


if __name__ == "__main__":
    print(main())
