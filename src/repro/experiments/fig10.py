"""Fig. 10 — QoS guarantees and prediction accuracy.

**(a)** Average QoS violations per 1000 inference queries for the four
schedulers on each app-mix.  Paper shape: Res-Ag worst (interference,
crashes, TF fragmentation), Uniform ~18 % from HOL blocking, CBP and
PP near zero.

**(b)** Peak-prediction accuracy as the aggregator's heartbeat is
varied from 1000 ms down to 0.1 ms, for the ARIMA-based CBP+PP
predictor against Theil-Sen, SGD and MLP regressors.  Accuracy rises
as finer sampling resolves the workload's short peaks (36 % -> ~84 %
at 1 ms in the paper) and falls past the optimum where the window
maximum drowns in NVML read noise — and the fancier models do not
beat the simple statistical one on a five-second window.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import DEFAULT_SETTINGS, MIX_ORDER, ExperimentSettings, mix_grid
from repro.forecast.regressors import FORECASTERS
from repro.forecast.window import evaluate_peak_predictor
from repro.metrics.report import format_table
from repro.workloads.rodinia import suite_timeline

__all__ = ["run_fig10a", "run_fig10b", "HEARTBEATS_MS", "main"]

SCHEDULERS = ("res-ag", "cbp", "peak-prediction", "uniform")
HEARTBEATS_MS = (1000.0, 500.0, 100.0, 10.0, 1.0, 0.1)

#: NVML read-noise scale: counters integrate over ~100 ms internally,
#: so sampling faster returns jittery, aliased values.  std ~ s0/sqrt(hb).
NOISE_SCALE = 0.008


def run_fig10a(settings: ExperimentSettings = DEFAULT_SETTINGS) -> dict[str, dict[str, float]]:
    """``{mix: {scheduler: violations per kilo-inference}}``."""
    grid = mix_grid(schedulers=SCHEDULERS, settings=settings)
    return {
        mix: {sched: grid[(mix, sched)].qos_violations_per_kilo() for sched in SCHEDULERS}
        for mix in MIX_ORDER
    }


def ground_truth_utilization(
    seed: int = 7, step_ms: float = 0.25, scale: float = 60.0
) -> tuple[np.ndarray, np.ndarray]:
    """Ground truth for the accuracy sweep: a real workload signal.

    The SM-utilization timeline of the Rodinia suite scaled so compute
    iterations recur roughly every second with peaks lasting tens of
    milliseconds — the phase structure whose *peaks* PP must predict
    (Sec. IV-D).
    """
    timeline = suite_timeline(np.random.default_rng(seed), step_ms=step_ms, scale=scale)
    return timeline["time_ms"], timeline["sm_util"]


def run_fig10b(
    heartbeats_ms: tuple[float, ...] = HEARTBEATS_MS,
    forecasters: tuple[str, ...] = ("arima", "theil-sen", "sgd", "mlp"),
    window_ms: float = 5_000.0,
    horizon_ms: float = 1_000.0,
    seed: int = 7,
    max_windows: int = 40,
    signal_scale: float = 60.0,
) -> dict[str, dict[float, float]]:
    """Peak-prediction accuracy sweep: ``{forecaster: {heartbeat: %}}``.

    The predictor estimates the next second's peak utilization from the
    five-second window (Sec. VI-D); accuracy is the fraction of
    predictions within tolerance of the true peak.  Coarse heartbeats
    alias the peaks away; sub-millisecond heartbeats bury the window
    maximum in read noise — accuracy peaks in between, at the paper's
    1 ms operating point.
    """
    times, values = ground_truth_utilization(seed=seed, scale=signal_scale)

    out: dict[str, dict[float, float]] = {name: {} for name in forecasters}
    for hb in heartbeats_ms:
        noise = NOISE_SCALE / np.sqrt(hb)
        for name in forecasters:
            report = evaluate_peak_predictor(
                times,
                values,
                heartbeat_ms=hb,
                forecaster=FORECASTERS[name],
                window_ms=window_ms,
                horizon_ms=horizon_ms,
                max_windows=max_windows,
                noise_floor=noise,
                rng=np.random.default_rng(seed + 2),
            )
            out[name][hb] = report.accuracy_pct
    return out


def main() -> str:
    parts = []
    a = run_fig10a()
    rows = [
        tuple([mix] + [float(a[mix][s]) for s in SCHEDULERS]) for mix in sorted(a)
    ]
    parts.append(
        format_table(
            ["mix"] + list(SCHEDULERS),
            rows,
            title="Fig. 10a: QoS violations per 1000 inference queries",
            float_fmt="{:.1f}",
        )
    )
    b = run_fig10b()
    rows_b = []
    for hb in HEARTBEATS_MS:
        rows_b.append(tuple([hb] + [float(b[name][hb]) for name in sorted(b)]))
    parts.append(
        format_table(
            ["heartbeat ms"] + sorted(b),
            rows_b,
            title="Fig. 10b: prediction accuracy % vs heartbeat interval",
            float_fmt="{:.1f}",
        )
    )
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(main())
