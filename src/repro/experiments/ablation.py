"""Ablation studies for Kube-Knots' design choices (DESIGN.md list).

* **Provisioning percentile** — the paper resizes to the 80th
  percentile and argues 50/60 cause constant docker resizes while 100
  (peak) forfeits harvesting.  We sweep the percentile and report
  utilization, resize churn, OOM kills and QoS.
* **Correlation threshold** — CBP's co-location gate fires at rho>=0.5;
  sweeping it trades packing density against capacity-violation risk.
* **Request clipping (Res-Ag)** — the utilization-agnostic packer with
  and without clipping oversized requests into leftover headroom:
  clipping packs denser but converts fragmentation into OOM storms.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentSettings
from repro.metrics.percentiles import cluster_percentiles
from repro.metrics.report import format_table
from repro.sweep import MixTask, run_tasks

__all__ = [
    "sweep_percentile",
    "sweep_correlation_threshold",
    "sweep_resag_clipping",
    "sweep_heartbeat",
    "main",
]


def _settings(duration_s: float, seed: int) -> ExperimentSettings:
    return ExperimentSettings(duration_s=duration_s, seed=seed)


def sweep_percentile(
    percentiles: tuple[float, ...] = (50.0, 60.0, 80.0, 90.0, 100.0),
    mix: str = "app-mix-1",
    duration_s: float = 12.0,
    seed: int = 1,
) -> list[dict]:
    """Resize-target sweep for PP."""
    tasks = [
        MixTask(mix, "peak-prediction", _settings(duration_s, seed),
                scheduler_kwargs=(("percentile", float(q)),))
        for q in percentiles
    ]
    rows = []
    for q, result in zip(percentiles, run_tasks(tasks)):
        util = cluster_percentiles(result.gpu_util_series)
        rows.append(
            {
                "percentile": q,
                "util_p50": util.p50,
                "qos_per_kilo": result.qos_violations_per_kilo(),
                "oom_kills": result.oom_kills,
                "resizes": result.resizes,
                "energy_j": result.total_energy_j(),
            }
        )
    return rows


def sweep_correlation_threshold(
    thresholds: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9),
    mix: str = "app-mix-1",
    duration_s: float = 12.0,
    seed: int = 1,
) -> list[dict]:
    """Co-location gate sweep for CBP."""
    tasks = [
        MixTask(mix, "cbp", _settings(duration_s, seed),
                scheduler_kwargs=(("correlation_threshold", float(t)),))
        for t in thresholds
    ]
    rows = []
    for t, result in zip(thresholds, run_tasks(tasks)):
        util = cluster_percentiles(result.gpu_util_series)
        rows.append(
            {
                "threshold": t,
                "util_p50": util.p50,
                "qos_per_kilo": result.qos_violations_per_kilo(),
                "oom_kills": result.oom_kills,
            }
        )
    return rows


def sweep_resag_clipping(
    mix: str = "app-mix-1", duration_s: float = 12.0, seed: int = 1
) -> list[dict]:
    """Res-Ag with/without request clipping."""
    clips = (False, True)
    tasks = [
        MixTask(mix, "res-ag", _settings(duration_s, seed),
                scheduler_kwargs=(("clip_requests", clip),))
        for clip in clips
    ]
    rows = []
    for clip, result in zip(clips, run_tasks(tasks)):
        util = cluster_percentiles(result.gpu_util_series)
        rows.append(
            {
                "clip_requests": clip,
                "util_p50": util.p50,
                "qos_per_kilo": result.qos_violations_per_kilo(),
                "oom_kills": result.oom_kills,
            }
        )
    return rows


def sweep_heartbeat(
    heartbeats_ms: tuple[float, ...] = (10.0, 100.0, 500.0, 2_000.0),
    mix: str = "app-mix-1",
    duration_s: float = 12.0,
    seed: int = 1,
) -> list[dict]:
    """Knots heartbeat sweep: how stale telemetry degrades PP.

    The aggregator's polling cadence bounds how fresh the utilization
    windows feeding the forecasts and placement decisions are; at
    multi-second heartbeats the scheduler effectively flies blind
    between samples (Sec. VI-D's cluster-level counterpart).
    """
    tasks = [
        MixTask(mix, "peak-prediction", _settings(duration_s, seed), heartbeat_ms=float(hb))
        for hb in heartbeats_ms
    ]
    rows = []
    for hb, result in zip(heartbeats_ms, run_tasks(tasks)):
        util = cluster_percentiles(result.gpu_util_series)
        rows.append(
            {
                "heartbeat_ms": hb,
                "util_p50": util.p50,
                "qos_per_kilo": result.qos_violations_per_kilo(),
                "oom_kills": result.oom_kills,
            }
        )
    return rows


def main() -> str:
    parts = []
    pct = sweep_percentile()
    parts.append(
        format_table(
            ["percentile", "util p50 %", "QoS/kilo", "OOM", "resizes", "energy J"],
            [(r["percentile"], r["util_p50"], r["qos_per_kilo"], r["oom_kills"], r["resizes"], r["energy_j"]) for r in pct],
            title="Ablation: PP provisioning percentile (app-mix-1)",
        )
    )
    corr = sweep_correlation_threshold()
    parts.append(
        format_table(
            ["rho threshold", "util p50 %", "QoS/kilo", "OOM"],
            [(r["threshold"], r["util_p50"], r["qos_per_kilo"], r["oom_kills"]) for r in corr],
            title="Ablation: CBP correlation threshold (app-mix-1)",
        )
    )
    hb = sweep_heartbeat()
    parts.append(
        format_table(
            ["heartbeat ms", "util p50 %", "QoS/kilo", "OOM"],
            [(r["heartbeat_ms"], r["util_p50"], r["qos_per_kilo"], r["oom_kills"]) for r in hb],
            title="Ablation: Knots heartbeat interval under PP (app-mix-1)",
        )
    )
    clip = sweep_resag_clipping()
    parts.append(
        format_table(
            ["clip requests", "util p50 %", "QoS/kilo", "OOM"],
            [(str(r["clip_requests"]), r["util_p50"], r["qos_per_kilo"], r["oom_kills"]) for r in clip],
            title="Ablation: Res-Ag request clipping (app-mix-1)",
        )
    )
    return "\n\n".join(parts)


if __name__ == "__main__":
    print(main())
