"""Extension experiment: scheduling on a heterogeneous GPU cluster.

The Kube-Knots design figure (Fig. 5) shows a mixed P100/M40/V100/K80
cluster, but the paper evaluates on uniform P100s.  This experiment
runs a working-set-diverse workload — small batch pods that fit any
device next to large ones whose peak only fits the 16/32 GB models —
on the Fig. 5 cluster under plain PP and the heterogeneity-aware
extension, and reports what capacity awareness buys:

* **OOM kills** — plain PP happily parks a harvested (2 GB reservation,
  13 GB peak) pod on a 12 GB K80; the first peak kills it.  Hetero-PP's
  spill protection never routes a pod to a device its peak cannot fit.
* **Large-pod JCT** — best-capacity-fit keeps the 16/32 GB devices
  clear of small pods, so large pods spend less time queueing.
"""

from __future__ import annotations

import numpy as np

from repro.kube.pod import PodSpec
from repro.metrics.report import format_table
from repro.sim.simulator import SimResult
from repro.workloads.base import Phase, QoSClass, ResourceDemand, WorkloadTrace
from repro.workloads.djinn_tonic import QOS_THRESHOLD_MS, make_inference_trace

__all__ = ["build_hetero_workload", "run_hetero", "main"]

#: The device mix pictured in the paper's design figure.
FIG5_MODELS = ("P100", "P100", "M40", "V100", "K80", "K80")


def _batch_trace(name: str, duration_ms: float, steady_mb: float, peak_mb: float,
                 sm: float, rng: np.random.Generator) -> WorkloadTrace:
    """Phased batch pod: long steady body, short high-memory peaks."""
    jitter = rng.uniform(0.9, 1.1)
    body = Phase(duration_ms * 0.45 * jitter, ResourceDemand(sm, steady_mb, 10.0, 10.0))
    surge = Phase(duration_ms * 0.05, ResourceDemand(min(sm * 1.5, 1.0), peak_mb, 20.0, 30.0))
    return WorkloadTrace(name, [body, surge, body, surge], requested_mem_mb=peak_mb * 1.2)


def build_hetero_workload(seed: int = 0, n_small: int = 12, n_big_wave: int = 4, n_queries: int = 24):
    """Small pods (fit anything), big pods (16 GB+ only), plus queries.

    Big pods arrive in two waves.  The first wave runs at the user's
    request (no profile yet) — requests only fit the 16/32 GB devices,
    so both schedulers behave identically.  The *second* wave arrives
    after the first has completed and been profiled: harvesting shrinks
    their reservations to ~3 GB, which now *would* fit a 12 GB device —
    the trap that spill protection exists to avoid.
    """
    rng = np.random.default_rng(seed)
    items = []
    t = 0.0
    for i in range(n_small):
        items.append(
            (t, PodSpec(f"small-{i}", "hetero/small",
                        _batch_trace("small", 2_500.0, 800.0, 2_800.0, 0.25, rng)))
        )
        t += 250.0
    for i in range(n_big_wave):
        items.append(
            (t, PodSpec(f"big-a{i}", "hetero/big",
                        _batch_trace("big", 4_000.0, 3_000.0, 13_000.0, 0.45, rng)))
        )
        t += 600.0
    for i in range(n_queries):
        query = ("face", "ner")[i % 2]
        items.append(
            (t, PodSpec(f"q-{i}", f"djinn/{query}",
                        make_inference_trace(query, rng, batch_size=2),
                        qos_threshold_ms=QOS_THRESHOLD_MS))
        )
        t += 120.0
    # Second wave: arrives with profiles in place.  Also keep the small
    # pods flowing so the big devices are contended.
    t = max(t, 14_000.0)
    for i in range(n_big_wave):
        items.append(
            (t, PodSpec(f"big-b{i}", "hetero/big",
                        _batch_trace("big", 4_000.0, 3_000.0, 13_000.0, 0.45, rng)))
        )
        items.append(
            (t + 100.0, PodSpec(f"small-b{i}", "hetero/small",
                                _batch_trace("small", 2_500.0, 800.0, 2_800.0, 0.25, rng)))
        )
        t += 500.0
    return items


def run_hetero(seed: int = 0) -> dict[str, SimResult]:
    """Paired comparison: plain PP vs hetero-PP on the Fig. 5 cluster."""
    from repro.sweep import HeteroTask, run_tasks

    names = ("peak-prediction", "hetero-pp")
    return dict(zip(names, run_tasks([HeteroTask(name, seed) for name in names])))


def main() -> str:
    results = run_hetero()
    rows = []
    for name, r in results.items():
        big_jcts = [p.jct_ms() / 1_000.0 for p in r.completed() if p.spec.image == "hetero/big"]
        rows.append(
            (
                name,
                f"{len(r.completed())}/{len(r.pods)}",
                r.oom_kills,
                float(np.mean(big_jcts)) if big_jcts else float("nan"),
                r.qos_violations_per_kilo(),
            )
        )
    out = format_table(
        ["scheduler", "completed", "OOM kills", "big-pod mean JCT s", "QoS/kilo"],
        rows,
        title="Extension: heterogeneous cluster (2xP100, M40, V100, 2xK80)",
    )
    out += (
        "\n\nHetero-PP's spill protection keeps 13 GB-peak pods off the 12 GB\n"
        "devices (fewer OOM relaunches) and best-capacity-fit keeps the big\n"
        "devices clear of small pods (lower large-pod JCT)."
    )
    return out


if __name__ == "__main__":
    print(main())
