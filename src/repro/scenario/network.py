"""Runtime network fabric: per-link bandwidth/latency with contention.

Helix-style (SNIPPETS.md snippet 1) first-class link objects: every
node owns a NIC, every rack of ``rack_size`` nodes shares one uplink.
A transfer charges the latency of both hops plus its size over the
*currently shared* bandwidth of the narrower link — each link tracks
the end times of its in-flight transfers, so concurrent image pulls on
one rack genuinely slow each other down instead of hiding behind the
old per-pod ``image_pull_ms`` constant.

The fabric is deterministic: "in flight" is evaluated against the sim
clock passed in by the caller, and expired transfers are pruned lazily.
"""

from __future__ import annotations

from typing import Sequence

from repro.scenario.spec import NetworkModel

__all__ = ["NetworkFabric"]


class NetworkFabric:
    """Charges transfer costs against shared node/rack links."""

    def __init__(self, model: NetworkModel, node_ids: Sequence[str]) -> None:
        self.model = model
        ordered = list(node_ids)
        #: Node -> rack index (consecutive nodes share a rack).
        self.rack_of = {
            node: i // max(model.rack_size, 1) for i, node in enumerate(ordered)
        }
        # End times (sim ms) of in-flight transfers per link.
        self._nic_busy: dict[str, list[float]] = {}
        self._uplink_busy: dict[int, list[float]] = {}

    # -- link sharing --------------------------------------------------------

    @staticmethod
    def _active(in_flight: list[float], now: float) -> int:
        """Prune finished transfers; return the count still moving."""
        if in_flight:
            in_flight[:] = [end for end in in_flight if end > now]
        return len(in_flight)

    def in_flight(self, node_id: str, now: float) -> int:
        """Transfers currently occupying ``node_id``'s NIC."""
        return self._active(self._nic_busy.setdefault(node_id, []), now)

    # -- costs ---------------------------------------------------------------

    def transfer_ms(self, node_id: str, now: float, size_mb: float) -> float:
        """Start one transfer to ``node_id`` and return its duration.

        The transfer occupies the node NIC and the rack uplink until it
        completes; its bandwidth is the narrower link's fair share
        given everything already in flight when it starts.
        """
        nic = self._nic_busy.setdefault(node_id, [])
        uplink = self._uplink_busy.setdefault(self.rack_of.get(node_id, 0), [])
        nic_share = self.model.nic.bandwidth_mbps / (1 + self._active(nic, now))
        up_share = self.model.uplink.bandwidth_mbps / (1 + self._active(uplink, now))
        bandwidth = min(nic_share, up_share)
        duration = (
            self.model.nic.latency_ms
            + self.model.uplink.latency_ms
            + size_mb / bandwidth * 1_000.0
        )
        end = now + duration
        nic.append(end)
        uplink.append(end)
        return duration

    def pull_ms(self, node_id: str, now: float) -> float:
        """Cost of pulling the container image to ``node_id`` now."""
        return self.transfer_ms(node_id, now, self.model.image_size_mb)

    def migration_pause_s(self, num_gpus: int) -> float:
        """Uncontended checkpoint+restore time for a ``num_gpus`` gang
        migration, in seconds (the dlsim baselines' pause cost)."""
        size_mb = self.model.checkpoint_mb_per_gpu * max(num_gpus, 1)
        bandwidth = min(self.model.nic.bandwidth_mbps, self.model.uplink.bandwidth_mbps)
        latency_s = (self.model.nic.latency_ms + self.model.uplink.latency_ms) / 1_000.0
        return latency_s + size_mb / bandwidth

    def locality_penalty(self) -> float:
        """Per-extra-node gang sync tax for the DL simulator, derived
        from round-trip link latency (capped so a slow wire degrades
        rather than stalls cross-node gangs)."""
        rtt_ms = self.model.nic.latency_ms + self.model.uplink.latency_ms
        return min(0.25, rtt_ms / 20.0)
