"""Compile a :class:`CapacityPattern` into a schedule of node events.

This module is pure computation: given a pattern, the node inventory
and a horizon it returns a sorted tuple of :class:`CapacityEvent`
values.  The *runtime* that executes them — scheduling each event on
the tick grid, calling into the orchestrator — is
:class:`repro.sim.harness.CapacityPlan`, which accepts these events
duck-typed so the layer contract stays clean (``scenario`` never
imports ``sim``).

Event kinds:

``drain``
    Cordon the node: existing pods keep running, no new placements.
``reclaim``
    Take the node away: cordon, evict every hosted pod (requeued, like
    a device failure), mark the devices failed.
``restore``
    Bring the node back: repair devices, uncordon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.scenario.spec import CapacityPattern

__all__ = ["CapacityEvent", "build_capacity_events", "split_spares"]

#: Same-instant ordering: drains and reclaims land in the fault phase,
#: restores in the repair phase (matching FaultPlan's fault-then-repair
#: order when both hit one instant).
_KIND_ORDER = {"drain": 0, "reclaim": 1, "restore": 2}


@dataclass(frozen=True)
class CapacityEvent:
    """One scheduled node transition."""

    at_ms: float
    node_id: str
    kind: str  # "drain" | "reclaim" | "restore"


def split_spares(
    node_ids: Sequence[str], pattern: CapacityPattern
) -> tuple[list[str], list[str]]:
    """``(regular, spares)`` — spares come off the tail of the fleet."""
    ids = list(node_ids)
    n_spare = min(max(pattern.spare_nodes, 0), max(len(ids) - 1, 0))
    if n_spare == 0:
        return ids, []
    return ids[:-n_spare], ids[-n_spare:]


def build_capacity_events(
    pattern: CapacityPattern, node_ids: Sequence[str], horizon_ms: float
) -> tuple[CapacityEvent, ...]:
    """The full event schedule for one run, sorted and deterministic."""
    regular, spares = split_spares(node_ids, pattern)
    events: list[CapacityEvent] = []
    # Spares start cordoned: they are reserve capacity, not regular fleet.
    for node in spares:
        events.append(CapacityEvent(0.0, node, "drain"))

    if pattern.kind == "diurnal":
        windows = _diurnal_windows(pattern, regular, horizon_ms)
    elif pattern.kind == "spot":
        windows = _spot_windows(pattern, regular, horizon_ms)
    else:
        raise ValueError(
            f"unknown capacity pattern kind {pattern.kind!r}; known: diurnal, spot"
        )

    for start_ms, end_ms, nodes in windows:
        for node in nodes:
            events.append(CapacityEvent(max(start_ms - pattern.drain_ms, 0.0), node, "drain"))
            events.append(CapacityEvent(start_ms, node, "reclaim"))
            events.append(CapacityEvent(end_ms, node, "restore"))
        # Spares swap in for the window, then return to reserve.
        for node in spares[: len(nodes)]:
            events.append(CapacityEvent(start_ms, node, "restore"))
            events.append(CapacityEvent(end_ms, node, "drain"))

    events.sort(key=lambda e: (e.at_ms, _KIND_ORDER[e.kind], e.node_id))
    return tuple(events)


def _diurnal_windows(
    pattern: CapacityPattern, regular: Sequence[str], horizon_ms: float
) -> list[tuple[float, float, list[str]]]:
    """Reclaim windows covering the second half of each period, with a
    rotating node selection so the dip moves around the fleet."""
    if not regular or pattern.amplitude <= 0.0:
        return []
    k = max(1, min(len(regular), round(pattern.amplitude * len(regular))))
    windows = []
    period = 0
    while True:
        start = period * pattern.period_ms + pattern.period_ms / 2.0
        if start >= horizon_ms:
            break
        end = (period + 1) * pattern.period_ms
        chosen: list[str] = []
        for j in range(k):
            node = regular[(period * k + j) % len(regular)]
            if node not in chosen:
                chosen.append(node)
        windows.append((start, end, chosen))
        period += 1
    return windows


def _spot_windows(
    pattern: CapacityPattern, regular: Sequence[str], horizon_ms: float
) -> list[tuple[float, float, list[str]]]:
    """Single-node reclaims at seeded exponential arrivals, each lasting
    a seeded fraction of one period."""
    if not regular:
        return []
    rng = np.random.default_rng(pattern.seed)
    windows = []
    t = 0.0
    i = 0
    while True:
        t += float(rng.exponential(pattern.period_ms))
        if t >= horizon_ms:
            break
        duration = pattern.period_ms * (0.25 + 0.5 * float(rng.random()))
        windows.append((t, t + duration, [regular[i % len(regular)]]))
        i += 1
    return windows
