"""The frozen scenario vocabulary.

Every type here follows the sweep-fabric task rules
(:mod:`repro.sweep.tasks`): frozen, holding only primitives and other
frozen dataclasses, so a scenario is picklable across the process pool
and its auto-generated ``repr`` is canonical — a
:class:`~repro.sweep.tasks.ScenarioTask` embeds the scenario *name* and
the registry resolves it identically in every worker.

``None`` fields mean "the hard-coded pre-scenario behavior": no
capacity events, the prewarm/constant-delay image model, single-GPU
pods.  :meth:`Scenario.is_default` gates every new code path, which is
what keeps default runs bit-identical to pre-scenario output.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LinkSpec",
    "NetworkModel",
    "CapacityPattern",
    "GangMix",
    "Scenario",
    "SCENARIOS",
    "make_scenario",
]


@dataclass(frozen=True)
class LinkSpec:
    """One link class: bandwidth in MB/s (the package's ``mbps``
    convention, see ``PCIE_LINK_MBPS``) plus a fixed latency."""

    bandwidth_mbps: float
    latency_ms: float


@dataclass(frozen=True)
class NetworkModel:
    """Per-link network topology: every node owns a NIC, every rack of
    ``rack_size`` nodes shares one uplink.  Transfers charge latency plus
    size over the *currently shared* bandwidth of the narrower link —
    concurrent pulls on one rack genuinely slow each other down."""

    rack_size: int = 8
    #: Node NIC: 10 GbE ≈ 1250 MB/s.
    nic: LinkSpec = LinkSpec(bandwidth_mbps=1_250.0, latency_ms=0.2)
    #: Rack uplink (shared by ``rack_size`` NICs): 40 GbE ≈ 5000 MB/s.
    uplink: LinkSpec = LinkSpec(bandwidth_mbps=5_000.0, latency_ms=0.5)
    #: Container image size charged on a cold pull.
    image_size_mb: float = 2_000.0
    #: Checkpoint traffic per GPU for a job migration (dlsim baselines).
    checkpoint_mb_per_gpu: float = 4_000.0


@dataclass(frozen=True)
class CapacityPattern:
    """Time-varying fleet capacity (litosly's pattern/period idiom).

    ``diurnal`` reclaims ``amplitude`` of the regular nodes during the
    second half of every ``period_ms`` (the trough) and restores them at
    the period boundary, rotating which nodes dip.  ``spot`` reclaims
    single nodes at seeded exponential arrivals for roughly half a
    period.  Both drain (cordon, no new placements) ``drain_ms`` before
    reclaiming, and both can hold ``spare_nodes`` in a cordoned reserve
    pool that comes online exactly while regular capacity is reclaimed.
    """

    kind: str = "diurnal"
    period_ms: float = 8_000.0
    #: Fraction of the regular (non-spare) fleet reclaimed at the trough.
    amplitude: float = 0.25
    #: Nodes held in reserve, swapped in during reclaim windows.
    spare_nodes: int = 0
    #: Cordon lead time before each reclaim.
    drain_ms: float = 500.0
    #: Seed for the ``spot`` arrival process.
    seed: int = 0


@dataclass(frozen=True)
class GangMix:
    """Convert a seeded fraction of batch arrivals into multi-GPU gangs.

    Each converted arrival becomes ``size`` member pods (one GPU each)
    submitted at the same instant and placed all-or-nothing with
    ``prefer`` locality (``"node"`` packs a gang onto one node when it
    fits, falling back to one rack, then to spanning).
    """

    fraction: float = 0.3
    sizes: tuple[int, ...] = (2, 4)
    probs: tuple[float, ...] = (0.7, 0.3)
    prefer: str = "node"
    seed: int = 0


@dataclass(frozen=True)
class Scenario:
    """One complete scenario: capacity pattern + network + gang mix."""

    name: str = "default"
    capacity: CapacityPattern | None = None
    network: NetworkModel | None = None
    gangs: GangMix | None = None

    def is_default(self) -> bool:
        """True when every axis is the hard-coded pre-scenario behavior."""
        return self.capacity is None and self.network is None and self.gangs is None


#: The named scenario registry — what ``--scenario`` and
#: :class:`~repro.sweep.tasks.ScenarioTask` resolve through.
SCENARIOS: dict[str, Scenario] = {
    "default": Scenario(),
    "diurnal": Scenario(name="diurnal", capacity=CapacityPattern(kind="diurnal")),
    "spot": Scenario(name="spot", capacity=CapacityPattern(kind="spot")),
    "gang": Scenario(name="gang", gangs=GangMix()),
    "diurnal-gang": Scenario(
        name="diurnal-gang",
        capacity=CapacityPattern(kind="diurnal", spare_nodes=1),
        network=NetworkModel(),
        gangs=GangMix(),
    ),
}


def make_scenario(name: str) -> Scenario:
    """Resolve a registry name; raises ``KeyError`` with the catalog."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None
