"""Gang-scheduled multi-GPU jobs: workload conversion + placement.

Two pieces:

* :func:`apply_gang_mix` rewrites a seeded fraction of a workload's
  batch arrivals into gangs — ``size`` member pods (one device each)
  submitted at the same instant, linked by a
  :class:`~repro.kube.pod.GangSpec`.
* :class:`GangScheduler` wraps any base policy with all-or-nothing gang
  placement and topology preference (same node, then same rack, then
  spanning).  Passes with no pending gang members delegate to the inner
  policy with an untouched context, so a workload without gangs runs
  bit-identical to the unwrapped policy.

Placement uses full reservations (``requested_mem_mb``) — gangs are
synchronized training jobs, the one class the paper does *not* harvest.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.schedulers.base import Action, Bind, Scheduler, SchedulingContext
from repro.kube.pod import GangSpec, Pod, PodSpec
from repro.scenario.spec import GangMix
from repro.workloads.base import QoSClass

__all__ = ["apply_gang_mix", "GangScheduler"]

#: A workload item, as produced by the generators.
_WorkloadItem = tuple[float, PodSpec]


def apply_gang_mix(
    workload: list[_WorkloadItem], mix: GangMix
) -> list[_WorkloadItem]:
    """Convert a seeded fraction of batch arrivals into gang members.

    Latency-critical pods are never converted.  Each converted arrival
    becomes ``size`` members sharing the original trace (synchronized
    data-parallel work), submitted at the original arrival instant.
    """
    rng = np.random.default_rng(mix.seed)
    probs = np.asarray(mix.probs, dtype=float)
    probs = probs / probs.sum()
    out: list[_WorkloadItem] = []
    gang_no = 0
    for at_ms, spec in workload:
        if spec.qos_class is not QoSClass.BATCH or rng.random() >= mix.fraction:
            out.append((at_ms, spec))
            continue
        size = int(rng.choice(np.asarray(mix.sizes), p=probs))
        gang_id = f"gang-{gang_no}"
        gang_no += 1
        for rank in range(size):
            member = replace(
                spec,
                name=f"{spec.name}:g{rank}",
                gang=GangSpec(gang_id=gang_id, size=size, rank=rank),
            )
            out.append((at_ms, member))
    return out


class GangScheduler(Scheduler):
    """All-or-nothing gang placement wrapped around a base policy.

    A pass with pending gang members first tries to place each complete
    gang (queue order) onto distinct devices, preferring one node, then
    one rack, then a greedy span.  If any gang landed, only those binds
    are returned — the inner policy's per-pass bookkeeping never sees
    them, so mixing both in one pass can't double-book a device;
    singles get the next pass.  Otherwise singles are delegated to the
    inner policy.
    """

    def __init__(self, inner: Scheduler, rack_size: int = 8, prefer: str = "node") -> None:
        self.inner = inner
        self.rack_size = max(int(rack_size), 1)
        self.prefer = prefer
        self.name = f"gang+{inner.name}"
        self.requires_sharing = inner.requires_sharing

    def bind_observability(self, obs) -> None:
        super().bind_observability(obs)
        self.inner.bind_observability(obs)

    def quantum_ok(self) -> bool:
        """Gang placement reads only allocation-derived view fields
        (free memory, node id, failed/cordoned) — all object-synced —
        so the vectorized quantum is safe exactly when the inner
        policy's own telemetry reads are."""
        return self.inner.quantum_ok()

    # -- the pass ------------------------------------------------------------

    def schedule(self, ctx: SchedulingContext) -> list[Action]:
        gang_pending = [p for p in ctx.pending if p.spec.gang is not None]
        if not gang_pending:
            return self.inner.schedule(ctx)
        actions = self._place_gangs(ctx, gang_pending)
        if actions:
            return actions
        singles = [p for p in ctx.pending if p.spec.gang is None]
        if not singles:
            return []
        sub = SchedulingContext(
            now=ctx.now, pending=singles, knots=ctx.knots, residents=ctx.residents
        )
        return self.inner.schedule(sub)

    def _place_gangs(self, ctx: SchedulingContext, gang_pending: list[Pod]) -> list[Action]:
        views = ctx.knots.all_gpus_by_free_memory()
        free: dict[str, float] = {}
        node_of: dict[str, str] = {}
        for v in views:
            # Sleeping devices are candidates (a bind wakes them on
            # admit); failed/cordoned devices never are.
            if v.failed or getattr(v, "cordoned", False):
                continue
            free[v.gpu_id] = v.free_alloc_mb
            node_of[v.gpu_id] = v.node_id
        rack_of = {
            node: i // self.rack_size
            for i, node in enumerate(sorted({v.node_id for v in views}))
        }

        groups: dict[str, list[Pod]] = {}
        arrival_order: dict[str, int] = {}
        for i, pod in enumerate(gang_pending):
            gid = pod.spec.gang.gang_id
            groups.setdefault(gid, []).append(pod)
            arrival_order.setdefault(gid, i)

        actions: list[Action] = []
        for gid in sorted(groups, key=lambda g: arrival_order[g]):
            members = sorted(groups[gid], key=lambda p: (p.spec.gang.rank, p.uid))
            need = max(p.spec.requested_mem_mb for p in members)
            chosen = self._pick_devices(len(members), need, free, node_of, rack_of)
            if chosen is None:
                continue  # all-or-nothing: the whole gang waits
            for pod, gpu_id in zip(members, chosen):
                alloc = pod.spec.requested_mem_mb
                free[gpu_id] -= alloc
                actions.append(Bind(pod_uid=pod.uid, gpu_id=gpu_id, alloc_mb=alloc))
                self._audit_bind(
                    pod, gpu_id, alloc, queue_depth=len(ctx.pending),
                    evidence={"gang": gid, "size": len(members)},
                )
        return actions

    def _pick_devices(
        self,
        k: int,
        need_mb: float,
        free: dict[str, float],
        node_of: dict[str, str],
        rack_of: dict[str, int],
    ) -> list[str] | None:
        """``k`` distinct fitting devices with locality preference, or
        ``None``.  All tie-breaks are lexicographic for determinism."""
        by_node: dict[str, list[str]] = {}
        for gpu_id in sorted(g for g, f in free.items() if f >= need_mb):
            by_node.setdefault(node_of[gpu_id], []).append(gpu_id)
        if sum(len(g) for g in by_node.values()) < k:
            return None

        # Tier 1: one node — the tightest node that fits the whole gang.
        if self.prefer == "node":
            nodes = [n for n, gpus in by_node.items() if len(gpus) >= k]
            if nodes:
                best = min(nodes, key=lambda n: (len(by_node[n]), n))
                return by_node[best][:k]

        # Tier 2: one rack — the tightest rack, filled densest-node-first.
        by_rack: dict[int, list[str]] = {}
        for node in by_node:
            by_rack.setdefault(rack_of.get(node, 0), []).append(node)
        racks = [
            r for r, nodes in by_rack.items()
            if sum(len(by_node[n]) for n in nodes) >= k
        ]
        if racks:
            best_rack = min(
                racks, key=lambda r: (sum(len(by_node[n]) for n in by_rack[r]), r)
            )
            return self._fill(k, by_node, by_rack[best_rack])

        # Tier 3: span — greedy over the densest nodes anywhere.
        return self._fill(k, by_node, list(by_node))

    @staticmethod
    def _fill(k: int, by_node: dict[str, list[str]], nodes: list[str]) -> list[str]:
        chosen: list[str] = []
        for node in sorted(nodes, key=lambda n: (-len(by_node[n]), n)):
            take = min(k - len(chosen), len(by_node[node]))
            chosen.extend(by_node[node][:take])
            if len(chosen) == k:
                break
        return chosen
