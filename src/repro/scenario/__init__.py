"""Scenario engine: capacity patterns, network topology, gang-job mixes.

A :class:`Scenario` is a frozen, picklable description of everything
about a run that is *not* the workload mix or the scheduler: how the
fleet's capacity varies over time (diurnal dips, spot reclaims, spare
pools), what the wire between nodes looks like (per-link bandwidth and
latency, rack fan-in), and how many jobs arrive as multi-GPU gangs.
The default scenario — static capacity, free network, single-GPU pods —
is exactly the hard-coded world every earlier PR assumed, so default
runs stay bit-identical.

Layering: ``scenario`` sits beside ``sim``.  It describes *what* should
happen (frozen specs, pure event/cost computations) and never imports
the simulators; ``sim`` imports ``scenario`` and owns *when* (the event
loop, the ticks).  ``cluster`` and ``core`` never import it.
"""

from repro.scenario.capacity import CapacityEvent, build_capacity_events
from repro.scenario.gangs import GangScheduler, apply_gang_mix
from repro.scenario.network import NetworkFabric
from repro.scenario.spec import (
    SCENARIOS,
    CapacityPattern,
    GangMix,
    LinkSpec,
    NetworkModel,
    Scenario,
    make_scenario,
)

__all__ = [
    "CapacityEvent",
    "CapacityPattern",
    "GangMix",
    "GangScheduler",
    "LinkSpec",
    "NetworkFabric",
    "NetworkModel",
    "SCENARIOS",
    "Scenario",
    "apply_gang_mix",
    "build_capacity_events",
    "make_scenario",
]
