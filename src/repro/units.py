"""Time-unit conversion helpers for the ms/s package boundary.

The discrete-event engine and the cluster simulator keep time in
**milliseconds**; the DL-cluster simulator (:mod:`repro.sim.dlsim`)
keeps it in **seconds**, matching the Tiresias simulator it replaces.
Crossing that boundary must be explicit: either multiply/divide by
``1_000.0`` in place, or call these helpers.  The KK002 lint rule
(:mod:`repro.analysis.lint.rules`) recognises both spellings and flags
every other crossing.
"""

from __future__ import annotations

__all__ = ["MS_PER_S", "s_to_ms", "ms_to_s"]

#: Milliseconds per second — the only scale factor at the boundary.
MS_PER_S = 1_000.0


def s_to_ms(seconds: float) -> float:
    """Seconds -> milliseconds (the engine/tracer convention)."""
    return seconds * MS_PER_S


def ms_to_s(millis: float) -> float:
    """Milliseconds -> seconds (the DL-simulator convention)."""
    return millis / MS_PER_S
