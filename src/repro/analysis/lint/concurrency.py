"""Thread-safety lint rules (``KK005``–``KK008``).

The serving layer gave the repo real threads: an HTTP front door and a
load generator at wall clock on one side, the simulation tick chain on
the other.  These rules encode the resulting concurrency conventions
the same way KK001–KK004 encode the determinism ones — conservative,
AST-provable patterns, suppressible in place with ``# kk: disable``.

The analysis is *class-scoped*: a method is "thread-side" when the
class hands it to a thread (``threading.Thread(target=self.m)`` /
``Timer``), registers it as a cross-thread callback
(``call_soon_threadsafe(self.m)``, ``add_stop_hook(self.m)``), or is
reachable from such a method through ``self.m()`` calls.  Everything
else in the class is "loop-side" (the constructing/driving thread).
A ``with`` block whose context expression mentions ``lock`` (e.g.
``with self._lock:``, ``with _state_lock:``) counts as holding a lock.

The runtime complement to these static rules is
:mod:`repro.analysis.racedetect` (``--race-detect``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.framework import FileContext, Finding, Rule, register
from repro.analysis.lint.rules import _module_aliases

__all__ = [
    "UnlockedSharedWriteRule",
    "BlockingUnderLockRule",
    "BareAcquireRule",
    "CrossThreadLoopMutationRule",
]

#: Constructors that put a ``self.<m>`` target on another thread.
_THREAD_FACTORIES = frozenset({"Thread", "Timer"})
#: Registrars whose ``self.<m>`` arguments run on a foreign thread.
_CALLBACK_REGISTRARS = frozenset({"call_soon_threadsafe", "add_stop_hook"})
#: Methods whose construction-time writes happen-before any thread start.
_CONSTRUCTORS = frozenset({"__init__", "__new__", "__post_init__"})


def _is_self_attr(node: ast.AST) -> bool:
    """``self.<attr>`` exactly (not ``self.a.b``)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_lock_with(node: ast.With) -> bool:
    """Does any ``with`` item look like a lock (name mentions "lock")?"""
    return any("lock" in ast.unparse(item.context_expr).lower() for item in node.items)


def _class_methods(cls: ast.ClassDef) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    return {
        stmt.name: stmt
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _thread_side_methods(cls: ast.ClassDef) -> set[str]:
    """Method names that run on a foreign thread, with transitive closure
    over ``self.m()`` calls (a helper called from a thread target is
    thread-side too)."""
    entries: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name in _THREAD_FACTORIES:
            for kw in node.keywords:
                if kw.arg == "target" and _is_self_attr(kw.value):
                    entries.add(kw.value.attr)  # type: ignore[attr-defined]
        elif name in _CALLBACK_REGISTRARS:
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if _is_self_attr(arg):
                    entries.add(arg.attr)  # type: ignore[attr-defined]
    if not entries:
        return entries

    methods = _class_methods(cls)
    calls: dict[str, set[str]] = {}
    for name, fn in methods.items():
        out: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and _is_self_attr(node.func):
                out.add(node.func.attr)  # type: ignore[attr-defined]
        calls[name] = out

    frontier = [m for m in entries if m in methods]
    closed = set(entries)
    while frontier:
        current = frontier.pop()
        for callee in calls.get(current, ()):
            if callee in methods and callee not in closed:
                closed.add(callee)
                frontier.append(callee)
    return closed


def _self_attr_writes(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[tuple[str, bool, ast.stmt]]:
    """Every ``self.<attr> = ...`` in ``fn`` as (attr, under_lock, stmt)."""
    writes: list[tuple[str, bool, ast.stmt]] = []

    def visit(node: ast.AST, locked: bool) -> None:
        if isinstance(node, ast.With):
            inner = locked or _is_lock_with(node)
            for item in node.items:
                visit(item.context_expr, locked)
            for child in node.body:
                visit(child, inner)
            return
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if _is_self_attr(target):
                    writes.append((target.attr, locked, node))  # type: ignore[attr-defined]
        for child in ast.iter_child_nodes(node):
            visit(child, locked)

    for stmt in fn.body:
        visit(stmt, False)
    return writes


# -- KK005 ------------------------------------------------------------------


@register
class UnlockedSharedWriteRule(Rule):
    """KK005 — attribute written from both sides of a thread boundary
    without a lock.

    When a class both runs methods on a foreign thread and writes the
    same ``self.<attr>`` from its loop-side methods, every one of those
    writes must happen under a lock — a lock on only one side protects
    nothing.  Construction (``__init__``) is exempt: ``Thread.start()``
    establishes a happens-before edge for everything written earlier.
    """

    id = "KK005"
    name = "unlocked-shared-write"
    summary = "attribute written from both a thread target and loop code without a lock"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            thread_side = _thread_side_methods(cls)
            if not thread_side:
                continue
            methods = _class_methods(cls)
            thread_writes: dict[str, list[tuple[bool, ast.stmt]]] = {}
            loop_writes: dict[str, list[tuple[bool, ast.stmt]]] = {}
            for name, fn in methods.items():
                if name in _CONSTRUCTORS:
                    continue
                bucket = thread_writes if name in thread_side else loop_writes
                for attr, locked, stmt in _self_attr_writes(fn):
                    bucket.setdefault(attr, []).append((locked, stmt))
            for attr in sorted(set(thread_writes) & set(loop_writes)):
                all_writes = thread_writes[attr] + loop_writes[attr]
                unlocked = [stmt for locked, stmt in all_writes if not locked]
                if not unlocked:
                    continue
                node = min(unlocked, key=lambda s: (s.lineno, s.col_offset))
                yield self.finding(
                    ctx, node,
                    f"`self.{attr}` of `{cls.name}` is written from both a "
                    "thread-side method and loop-side code; guard every write "
                    "with one shared lock",
                )


# -- KK006 ------------------------------------------------------------------

#: Attribute calls that block on the network regardless of receiver.
_SOCKET_BLOCKERS = frozenset({"accept", "recv", "recvfrom", "recv_into"})


@register
class BlockingUnderLockRule(Rule):
    """KK006 — blocking call while holding a lock.

    Sleeping or waiting on I/O inside ``with <lock>:`` serializes every
    other thread behind a wait that has nothing to do with the guarded
    state — the admission queue's contract is that its lock is held for
    dict/deque touches only.  Flags ``time.sleep``, socket
    ``accept``/``recv``, untimed ``queue.get()`` and ``select.select``
    inside a lock-holding ``with`` block.
    """

    id = "KK006"
    name = "blocking-under-lock"
    summary = "sleep / socket wait / untimed queue.get while holding a lock"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        tree = ctx.tree
        time_aliases = _module_aliases(tree, "time")
        select_aliases = _module_aliases(tree, "select")
        bare: set[str] = set()   # `from time import sleep`, `from select import select`
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module in {"time", "select"}:
                for alias in node.names:
                    if alias.name in {"sleep", "select"}:
                        bare.add(alias.asname or alias.name)

        findings: list[Finding] = []

        def blocking_reason(node: ast.Call) -> str | None:
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in bare:
                    return f"`{func.id}(...)` blocks"
                return None
            if not isinstance(func, ast.Attribute):
                return None
            base = func.value
            if func.attr == "sleep" and isinstance(base, ast.Name) and base.id in time_aliases:
                return f"`{base.id}.sleep(...)` blocks"
            if func.attr == "select" and isinstance(base, ast.Name) and base.id in select_aliases:
                return f"`{base.id}.select(...)` blocks"
            if func.attr in _SOCKET_BLOCKERS:
                return f"`.{func.attr}()` waits on the network"
            if (
                func.attr == "get"
                and not node.args
                and not node.keywords
                and "queue" in ast.unparse(base).lower()
            ):
                return "untimed `.get()` blocks until an item arrives"
            return None

        def visit(node: ast.AST, locked: bool) -> None:
            if isinstance(node, ast.With):
                inner = locked or _is_lock_with(node)
                for item in node.items:
                    visit(item.context_expr, locked)
                for child in node.body:
                    visit(child, inner)
                return
            if locked and isinstance(node, ast.Call):
                reason = blocking_reason(node)
                if reason is not None:
                    findings.append(
                        self.finding(
                            ctx, node,
                            f"{reason} while a lock is held; move the wait outside "
                            "the critical section",
                        )
                    )
            for child in ast.iter_child_nodes(node):
                visit(child, locked)

        visit(tree, False)
        yield from findings


# -- KK007 ------------------------------------------------------------------


def _releases(stmts: list[ast.stmt], receiver: str) -> bool:
    """Does any statement call ``<receiver>.release()``?"""
    for stmt in stmts:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "release"
                and ast.unparse(node.func.value) == receiver
            ):
                return True
    return False


@register
class BareAcquireRule(Rule):
    """KK007 — ``lock.acquire()`` without ``with`` or ``try/finally``.

    A bare acquire leaks the lock on any exception between acquire and
    release, deadlocking every later waiter.  Statement-level
    ``<lock>.acquire()`` must either be immediately followed by a
    ``try`` whose ``finally`` releases the same lock, or sit inside
    one.  (Non-statement acquires — ``while not lock.acquire(timeout=..)``
    — manage the result explicitly and are not flagged; use ``with``
    where possible.)
    """

    id = "KK007"
    name = "bare-acquire"
    summary = "Lock.acquire() outside `with` and without a try/finally release"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: list[Finding] = []

        def bare_acquire(stmt: ast.stmt) -> str | None:
            """The receiver source if ``stmt`` is ``<lock>.acquire(...)``."""
            if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)):
                return None
            func = stmt.value.func
            if not (isinstance(func, ast.Attribute) and func.attr == "acquire"):
                return None
            receiver = ast.unparse(func.value)
            return receiver if "lock" in receiver.lower() else None

        def visit(stmts: list[ast.stmt], protected: frozenset[str]) -> None:
            for i, stmt in enumerate(stmts):
                receiver = bare_acquire(stmt)
                if receiver is not None and receiver not in protected:
                    nxt = stmts[i + 1] if i + 1 < len(stmts) else None
                    if not (isinstance(nxt, ast.Try) and _releases(nxt.finalbody, receiver)):
                        findings.append(
                            self.finding(
                                ctx, stmt,
                                f"bare `{receiver}.acquire()` leaks the lock on any "
                                "exception before release; use `with` or follow "
                                "immediately with try/finally release",
                            )
                        )
                if isinstance(stmt, ast.Try):
                    inner = protected
                    for node in ast.walk(ast.Module(body=stmt.finalbody, type_ignores=[])):
                        if (
                            isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)
                            and node.func.attr == "release"
                        ):
                            inner = inner | {ast.unparse(node.func.value)}
                    visit(stmt.body, inner)
                    for handler in stmt.handlers:
                        visit(handler.body, protected)
                    visit(stmt.orelse, protected)
                    visit(stmt.finalbody, protected)
                    continue
                for field in ("body", "orelse", "finalbody"):
                    child = getattr(stmt, field, None)
                    if isinstance(child, list) and child and isinstance(child[0], ast.stmt):
                        visit(child, protected)
                for handler in getattr(stmt, "handlers", []):
                    visit(handler.body, protected)

        module = ctx.tree
        if isinstance(module, ast.Module):
            visit(module.body, frozenset())
        yield from findings


# -- KK008 ------------------------------------------------------------------

#: EventLoop methods that mutate loop state and are owner-thread-only.
_LOOP_MUTATORS = frozenset(
    {"schedule", "schedule_at", "every", "run", "run_paced", "run_until_idle", "step"}
)


@register
class CrossThreadLoopMutationRule(Rule):
    """KK008 — EventLoop mutated from a foreign thread.

    The event loop is single-owner: exactly one thread runs it and
    schedules onto it.  The sanctioned cross-thread surface is
    ``stop()`` / ``add_stop_hook()`` / ``stop_requested()`` / ``now``;
    anything else (``schedule``, ``schedule_at``, ``every``, ``run*``,
    ``step``) from a thread-side method corrupts the heap mid-pop.
    Hand work across via the admission queue, then schedule from the
    tick chain.
    """

    id = "KK008"
    name = "cross-thread-loop-mutation"
    summary = "EventLoop schedule/run call from a thread-side method"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            thread_side = _thread_side_methods(cls)
            if not thread_side:
                continue
            methods = _class_methods(cls)
            for name in sorted(thread_side):
                fn = methods.get(name)
                if fn is None:
                    continue
                for node in ast.walk(fn):
                    if not (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _LOOP_MUTATORS
                    ):
                        continue
                    receiver = ast.unparse(node.func.value).lower()
                    if "loop" in receiver or "engine" in receiver:
                        yield self.finding(
                            ctx, node,
                            f"`.{node.func.attr}()` on the event loop from "
                            f"thread-side method `{name}`; only stop()/"
                            "add_stop_hook() may be called cross-thread — hand "
                            "work over via the admission queue",
                        )
