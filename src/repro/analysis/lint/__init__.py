"""``repro.analysis.lint`` — the Kube-Knots static lint pass.

Public surface: :func:`lint_paths` / :func:`lint_source` (programmatic),
:func:`main` (the ``python -m repro lint`` entry point), and the rule
catalog via :func:`all_rules`.
"""

from __future__ import annotations

import json
import sys
from typing import Sequence

from repro.analysis.lint.framework import (
    DOCS_URL,
    FileContext,
    Finding,
    Rule,
    all_rules,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.analysis.lint import rules as _rules  # noqa: F401  (registers KK001-KK004)
from repro.analysis.lint import concurrency as _concurrency  # noqa: F401  (KK005-KK008)

__all__ = [
    "DOCS_URL",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "main",
]


def render_catalog() -> str:
    """One line per registered rule: id, name, summary, docs anchor."""
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.id}  {rule.name:<24} {rule.summary}  [{DOCS_URL}#{rule.id.lower()}]")
    return "\n".join(lines)


def main(
    paths: Sequence[str],
    select: Sequence[str] | None = None,
    list_rules: bool = False,
    fmt: str = "text",
    out=None,
) -> int:
    """Lint ``paths``; print findings; return a shell exit code.

    0 = clean, 1 = findings, 2 = usage error (nothing to lint / bad
    rule selection / unknown format).  ``fmt="json"`` emits one
    machine-readable document instead of the line-per-finding text.
    """
    out = out or sys.stdout
    if fmt not in ("text", "json"):
        print(f"repro lint: unknown format {fmt!r} (expected text or json)", file=sys.stderr)
        return 2
    if list_rules:
        print(render_catalog(), file=out)
        return 0
    if not paths:
        print("repro lint: no paths given", file=sys.stderr)
        return 2
    files = list(iter_python_files(paths))
    if not files:
        print(f"repro lint: no python files under {list(paths)}", file=sys.stderr)
        return 2
    try:
        findings = lint_paths(paths, select=select)
    except KeyError as exc:
        print(f"repro lint: {exc.args[0]}", file=sys.stderr)
        return 2
    if fmt == "json":
        doc = {
            "files": len(files),
            "findings": [f.to_dict() for f in findings],
            "clean": not findings,
        }
        print(json.dumps(doc, indent=2, sort_keys=True), file=out)
        return 1 if findings else 0
    for finding in findings:
        print(finding.render(), file=out)
    tally = f"{len(findings)} finding{'s' if len(findings) != 1 else ''}"
    print(f"repro lint: {len(files)} files, {tally}", file=out)
    return 1 if findings else 0
