"""AST rule framework for the ``repro lint`` static pass.

The framework is deliberately small: a :class:`Rule` visits one parsed
file (a :class:`FileContext`) and yields :class:`Finding` objects; the
driver (:func:`lint_paths`) walks the target files, parses each once,
runs every registered rule, and filters the result through the
per-line suppression pragma::

    something_suspicious()   # kk: disable=KK001
    another_thing()          # kk: disable=KK002,KK004
    whatever()               # kk: disable=all

Rules are registered with the :func:`register` decorator, carry a
stable ``id`` (``KKnnn``), a one-line summary and a docs anchor, and
scope themselves to parts of the tree through :meth:`Rule.applies_to`
(e.g. KK001 only fires inside the simulation-critical packages).

Findings are deterministic and ordered (path, line, col, rule id) so
lint output — like everything else in this repo — is byte-stable.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "DOCS_URL",
    "Finding",
    "FileContext",
    "Rule",
    "register",
    "all_rules",
    "lint_source",
    "lint_paths",
    "iter_python_files",
]

#: Base of every rule's documentation link (anchors are ``#kk001`` ...).
DOCS_URL = "docs/static-analysis.md"

#: ``# kk: disable=KK001,KK002`` or ``# kk: disable=all``.
_PRAGMA = re.compile(r"#\s*kk:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    @property
    def docs_url(self) -> str:
        return f"{DOCS_URL}#{self.rule_id.lower()}"

    def render(self) -> str:
        """``path:line:col: KKnnn message (docs url)`` — one line."""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message} "
            f"[{self.docs_url}]"
        )

    def to_dict(self) -> dict:
        """JSON-ready form (``--format=json`` and editor integrations)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "docs": self.docs_url,
        }

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)


@dataclass
class FileContext:
    """One parsed file plus everything rules need to inspect it."""

    path: str                     # as reported in findings (may be virtual)
    source: str
    tree: ast.AST
    lines: list[str] = field(default_factory=list)
    #: line number -> set of disabled rule ids ({"all"} disables every rule)
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, source: str, path: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        lines = source.splitlines()
        suppressions: dict[int, set[str]] = {}
        for i, line in enumerate(lines, start=1):
            m = _PRAGMA.search(line)
            if m:
                ids = {tok.strip().upper() for tok in m.group(1).split(",") if tok.strip()}
                suppressions[i] = {("ALL" if t == "ALL" else t) for t in ids}
        return cls(path=path, source=source, tree=tree, lines=lines, suppressions=suppressions)

    @property
    def parts(self) -> tuple[str, ...]:
        """Path components, used by rules to scope themselves."""
        return Path(self.path).parts

    def in_package(self, names: Iterable[str]) -> bool:
        """Does the path cross any directory named in ``names``?"""
        wanted = set(names)
        return any(part in wanted for part in self.parts[:-1])

    def suppressed(self, rule_id: str, line: int) -> bool:
        ids = self.suppressions.get(line)
        if not ids:
            return False
        return "ALL" in ids or rule_id.upper() in ids


class Rule:
    """Base class for one lint rule."""

    id: str = "KK000"
    name: str = "base-rule"
    summary: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.id,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of ``cls`` to the registry."""
    rule = cls()
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Registered rules, ordered by id."""
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def _select(select: Sequence[str] | None) -> list[Rule]:
    rules = all_rules()
    if select is None:
        return rules
    wanted = {s.upper() for s in select}
    unknown = wanted - {r.id for r in rules}
    if unknown:
        raise KeyError(f"unknown rule ids: {sorted(unknown)}; known: {[r.id for r in rules]}")
    return [r for r in rules if r.id in wanted]


def lint_source(
    source: str, path: str = "<string>", select: Sequence[str] | None = None
) -> list[Finding]:
    """Lint one source string under a (possibly virtual) path.

    The path matters: scoped rules such as KK001 decide applicability
    from the directory components (``.../sim/...`` etc.), which is also
    how the fixture corpus under ``tests/fixtures/lint/`` is laid out.
    """
    try:
        ctx = FileContext.parse(source, path)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id="KK000",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
            )
        ]
    findings: list[Finding] = []
    for rule in _select(select):
        if not rule.applies_to(ctx):
            continue
        for f in rule.check(ctx):
            if not ctx.suppressed(f.rule_id, f.line):
                findings.append(f)
    return sorted(findings, key=Finding.sort_key)


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``.py`` files."""
    seen: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            candidates = [p]
        else:
            candidates = []
        for c in candidates:
            if c not in seen:
                seen.add(c)
                yield c


def lint_paths(
    paths: Iterable[str | Path], select: Sequence[str] | None = None
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; returns sorted findings."""
    findings: list[Finding] = []
    for file in iter_python_files(paths):
        findings.extend(lint_source(file.read_text(), str(file), select=select))
    return sorted(findings, key=Finding.sort_key)
