"""The Kube-Knots lint rules (``KK001``–``KK004``).

Each rule encodes one convention the simulator's determinism or
accounting depends on.  They are conservative by design: a rule only
fires on patterns it can prove from the AST, and every finding can be
silenced in place with ``# kk: disable=KKnnn`` (see
``docs/static-analysis.md`` for the catalog and rationale).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.framework import FileContext, Finding, Rule, register

__all__ = [
    "NoWallClockRule",
    "UnitBoundaryRule",
    "EventHandlerHygieneRule",
    "ApiHygieneRule",
]

#: Directory components marking the simulation-critical packages: code
#: under any of these must be bit-deterministic (KK001's scope).  The
#: set covers everything the seeded replay path executes: the event
#: loop and harness (``sim``), the simulators and schedulers
#: (``core``), the control plane (``kube``), telemetry, forecasting,
#: cluster topology, workload synthesis, and scenario definitions
#: (``scenario``: capacity plans, network model, gang mixes).
SIM_CRITICAL_PACKAGES = frozenset(
    {"sim", "core", "kube", "telemetry", "forecast", "cluster", "workloads", "scenario"}
)

# -- import-alias helpers ---------------------------------------------------


def _module_aliases(tree: ast.AST, module: str) -> set[str]:
    """Local names bound to ``module`` by ``import`` statements."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    names.add(alias.asname or alias.name.split(".")[0])
    return names


# -- KK001 ------------------------------------------------------------------

#: ``time`` module functions reading the host clock.
_WALL_CLOCK_FNS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
     "perf_counter_ns", "process_time", "process_time_ns", "clock_gettime"}
)
#: ``datetime``/``date`` constructors reading the host clock.
_DATETIME_NOW_FNS = frozenset({"now", "utcnow", "today"})
#: The only attributes of ``random`` that produce *seedable* state.
_RANDOM_OK = frozenset({"Random"})
#: Seeded construction entry points of ``numpy.random``.
_NP_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "MT19937"})


@register
class NoWallClockRule(Rule):
    """KK001 — no wall-clock or unseeded RNG in simulation-critical code.

    Simulation time comes from the event loop / ``SimClock``; randomness
    comes from a seeded ``np.random.default_rng`` / ``random.Random``
    threaded through the call chain.  Touching the host clock
    (``time.time``, ``datetime.now``) or process-global RNG state
    (``random.random``, ``np.random.rand``) breaks bit-stable replays.
    """

    id = "KK001"
    name = "no-wall-clock"
    summary = "wall-clock or unseeded process-global RNG inside sim-critical packages"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package(SIM_CRITICAL_PACKAGES)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        tree = ctx.tree
        time_aliases = _module_aliases(tree, "time")
        random_aliases = _module_aliases(tree, "random")
        datetime_aliases = _module_aliases(tree, "datetime")
        numpy_aliases = _module_aliases(tree, "numpy")

        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "time":
                    for alias in node.names:
                        if alias.name in _WALL_CLOCK_FNS:
                            yield self.finding(
                                ctx, node,
                                f"`from time import {alias.name}` pulls the host clock into "
                                "sim code; use the simulation clock instead",
                            )
                elif node.module == "random":
                    for alias in node.names:
                        if alias.name not in _RANDOM_OK:
                            yield self.finding(
                                ctx, node,
                                f"`from random import {alias.name}` is process-global RNG "
                                "state; construct a seeded `random.Random(seed)`",
                            )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            # time.<wall-clock fn>()
            if (
                isinstance(base, ast.Name)
                and base.id in time_aliases
                and func.attr in _WALL_CLOCK_FNS
            ):
                yield self.finding(
                    ctx, node,
                    f"`{base.id}.{func.attr}()` reads the host clock; sim code must take "
                    "time from the event loop / SimClock",
                )
            # datetime.now() / date.today() after `from datetime import datetime`
            elif (
                isinstance(base, ast.Name)
                and base.id in {"datetime", "date"}
                and func.attr in _DATETIME_NOW_FNS
            ):
                yield self.finding(
                    ctx, node,
                    f"`{base.id}.{func.attr}()` reads the host clock; sim code must take "
                    "time from the event loop / SimClock",
                )
            # datetime.datetime.now() after `import datetime`
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id in datetime_aliases
                and func.attr in _DATETIME_NOW_FNS
            ):
                yield self.finding(
                    ctx, node,
                    f"`{base.value.id}.{base.attr}.{func.attr}()` reads the host clock",
                )
            # random.<fn>() on the module (unseeded global state)
            elif (
                isinstance(base, ast.Name)
                and base.id in random_aliases
                and func.attr not in _RANDOM_OK
            ):
                yield self.finding(
                    ctx, node,
                    f"`{base.id}.{func.attr}()` uses process-global RNG state; construct "
                    "a seeded `random.Random(seed)` and thread it through",
                )
            # np.random.<fn>() legacy global-state API
            elif (
                isinstance(base, ast.Attribute)
                and base.attr == "random"
                and isinstance(base.value, ast.Name)
                and base.value.id in numpy_aliases
                and func.attr not in _NP_RANDOM_OK
            ):
                yield self.finding(
                    ctx, node,
                    f"`{base.value.id}.random.{func.attr}()` is numpy's unseeded global "
                    "RNG; use `np.random.default_rng(seed)`",
                )


# -- KK002 ------------------------------------------------------------------

_S_SUFFIXES = ("_s", "_sec", "_secs", "_seconds")
_MS_SUFFIXES = ("_ms", "_millis")
#: Conversion helpers whose *return* unit is known (repro.units).
_CONVERTERS = {"ms_to_s": "s", "s_to_ms": "ms"}
#: Scale constants that mark an explicit conversion at a boundary.
_SCALE_CONSTANTS = frozenset({1_000, 1_000.0, 1e3, 1 / 1_000, 0.001})


def _name_unit(name: str | None) -> str | None:
    if not name:
        return None
    if name.endswith(_MS_SUFFIXES):
        return "ms"
    if name.endswith(_S_SUFFIXES):
        return "s"
    return None


def _is_scale_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value in _SCALE_CONSTANTS


def _expr_unit(node: ast.AST) -> str | None:
    """Best-effort unit of an expression: 'ms', 's', or None (unknown).

    Multiplying or dividing by 1000 (or calling a ``repro.units``
    helper) counts as an explicit conversion, after which the
    expression is trusted.
    """
    if isinstance(node, ast.Name):
        return _name_unit(node.id)
    if isinstance(node, ast.Attribute):
        return _name_unit(node.attr)
    if isinstance(node, ast.Call):
        func = node.func
        fname = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if fname in _CONVERTERS:
            return _CONVERTERS[fname]
        return _name_unit(fname)
    if isinstance(node, ast.UnaryOp):
        return _expr_unit(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, (ast.Mult, ast.Div)) and (
            _is_scale_constant(node.left) or _is_scale_constant(node.right)
        ):
            return None          # explicit conversion — trusted
        if isinstance(node.op, (ast.Add, ast.Sub)):
            lu, ru = _expr_unit(node.left), _expr_unit(node.right)
            if lu and ru:
                return lu if lu == ru else "mixed"
            return lu or ru
        return None
    return None


@register
class UnitBoundaryRule(Rule):
    """KK002 — ms/s unit-boundary hygiene.

    The engine runs in milliseconds; the DL simulator in seconds.
    Values may only cross that boundary through an explicitly named
    conversion (``* 1_000.0`` / ``/ 1_000.0`` or ``repro.units``
    helpers).  The rule flags a ``_s``-suffixed value flowing into a
    ``_ms``-suffixed slot (and vice versa), and arithmetic or
    comparisons mixing the two.
    """

    id = "KK002"
    name = "unit-boundary"
    summary = "second-suffixed value crossing into a millisecond slot (or vice versa)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    declared = _name_unit(kw.arg)
                    if declared is None:
                        continue
                    actual = _expr_unit(kw.value)
                    if actual is not None and actual != declared:
                        yield self.finding(
                            ctx, kw.value,
                            f"argument `{kw.arg}` expects {declared} but receives a value "
                            f"in {actual}; convert explicitly (e.g. `* 1_000.0` or "
                            "repro.units helpers)",
                        )
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                value = node.value
                if value is None:
                    continue
                actual = _expr_unit(value)
                if actual is None:
                    continue
                for target in targets:
                    declared = _expr_unit(target) if isinstance(
                        target, (ast.Name, ast.Attribute)
                    ) else None
                    if declared is not None and declared != actual and "mixed" not in (
                        declared, actual
                    ):
                        name = ast.unparse(target)
                        yield self.finding(
                            ctx, node,
                            f"assigning a {actual} value to `{name}` ({declared}); "
                            "convert explicitly at the boundary",
                        )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                lu, ru = _expr_unit(node.left), _expr_unit(node.right)
                if lu in ("ms", "s") and ru in ("ms", "s") and lu != ru:
                    yield self.finding(
                        ctx, node,
                        f"arithmetic mixes {lu} and {ru} operands; convert one side "
                        "explicitly",
                    )
            elif isinstance(node, ast.Compare):
                lu = _expr_unit(node.left)
                for comparator in node.comparators:
                    ru = _expr_unit(comparator)
                    if lu in ("ms", "s") and ru in ("ms", "s") and lu != ru:
                        yield self.finding(
                            ctx, node,
                            f"comparison mixes {lu} and {ru} operands; convert one side "
                            "explicitly",
                        )


# -- KK003 ------------------------------------------------------------------

#: Aggregator/TSDB query methods returning (dicts of) SeriesWindow.
_WINDOW_QUERIES = frozenset({"query", "last_window", "memory_window", "query_node_stats"})
#: In-place numpy mutators that would corrupt a shared window.
_ARRAY_MUTATORS = frozenset({"sort", "fill", "put", "resize", "partition", "itemset", "setfield"})


def _negative_constant(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return isinstance(node.operand, ast.Constant) and isinstance(
            node.operand.value, (int, float)
        )
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and node.value < 0
    )


def _is_now_expr(node: ast.AST) -> bool:
    """``now``, ``self._now``, ``loop.now`` — a current-time read."""
    if isinstance(node, ast.Name):
        return node.id in {"now", "t"}
    if isinstance(node, ast.Attribute):
        return node.attr in {"now", "_now"}
    return False


@register
class EventHandlerHygieneRule(Rule):
    """KK003 — event handlers must not rewrite the past or shared telemetry.

    Two classes of corruption: scheduling behind the event loop's clock
    (``schedule(-5, ...)``, ``schedule_at(now - x, ...)``), and mutating
    the arrays inside a :class:`SeriesWindow` returned by a TSDB query —
    those arrays are views over the ring buffer every other consumer
    reads.
    """

    id = "KK003"
    name = "event-handler-hygiene"
    summary = "scheduling in the past or mutating a queried SeriesWindow in place"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # schedule / schedule_at misuse (whole file).
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            attr = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if attr == "schedule" and _negative_constant(node.args[0]):
                yield self.finding(
                    ctx, node,
                    "`schedule()` with a negative delay fires in the past; "
                    "events must be scheduled at t >= now",
                )
            elif attr == "schedule_at":
                when = node.args[0]
                if (
                    isinstance(when, ast.BinOp)
                    and isinstance(when.op, ast.Sub)
                    and _is_now_expr(when.left)
                ):
                    yield self.finding(
                        ctx, node,
                        "`schedule_at(now - ...)` targets a time before the current "
                        "clock; events must be scheduled at t >= now",
                    )

        # SeriesWindow mutation (per-function local dataflow).
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            tracked: set[str] = set()
            for node in ast.walk(fn):
                if isinstance(node, ast.Assign) and self._is_window_call(node.value):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            tracked.add(target.id)
            for node in ast.walk(fn):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                    for target in targets:
                        if isinstance(target, ast.Subscript) and self._is_window_array(
                            target.value, tracked
                        ):
                            yield self.finding(
                                ctx, node,
                                "writing into a SeriesWindow's arrays mutates the shared "
                                "TSDB view; copy before modifying",
                            )
                elif isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _ARRAY_MUTATORS
                        and self._is_window_array(func.value, tracked)
                    ):
                        yield self.finding(
                            ctx, node,
                            f"`.{func.attr}()` mutates a SeriesWindow's array in place; "
                            "copy before modifying",
                        )

    @staticmethod
    def _is_window_call(node: ast.AST | None) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _WINDOW_QUERIES
        )

    @classmethod
    def _is_window_array(cls, node: ast.AST, tracked: set[str]) -> bool:
        """Is ``node`` (the thing being mutated) ``<window>.values/.times``?"""
        if not (isinstance(node, ast.Attribute) and node.attr in {"values", "times"}):
            return False
        base = node.value
        if isinstance(base, ast.Name):
            return base.id in tracked
        if isinstance(base, ast.Subscript):   # query_node_stats()[metric].values
            inner = base.value
            return isinstance(inner, ast.Name) and inner.id in tracked
        return cls._is_window_call(base)      # direct: knots.memory_window(...).values


# -- KK004 ------------------------------------------------------------------

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "deque", "defaultdict"})


def _is_mutable_default(node: ast.AST | None) -> bool:
    if node is None:
        return False
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else None
        )
        if name == "dataclass":
            return dec
    return None


@register
class ApiHygieneRule(Rule):
    """KK004 — public-API hygiene: no shared mutable state by accident.

    Mutable default arguments alias one object across every call; a
    non-frozen ``*Config`` dataclass invites mid-run mutation of knobs
    the simulator read at construction time.  Both undermine paired
    scheduler comparisons.
    """

    id = "KK004"
    name = "api-hygiene"
    summary = "mutable default argument or non-frozen Config dataclass in a public API"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name.startswith("_"):
                    continue
                defaults = list(node.args.defaults) + [
                    d for d in node.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if _is_mutable_default(default):
                        yield self.finding(
                            ctx, default,
                            f"mutable default argument in public function `{node.name}`; "
                            "use None and construct inside",
                        )
            elif isinstance(node, ast.ClassDef):
                if node.name.startswith("_") or not node.name.endswith("Config"):
                    continue
                dec = _dataclass_decorator(node)
                if dec is None:
                    continue
                frozen = isinstance(dec, ast.Call) and any(
                    kw.arg == "frozen"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in dec.keywords
                )
                if not frozen:
                    yield self.finding(
                        ctx, node,
                        f"config dataclass `{node.name}` is not frozen; declare "
                        "`@dataclass(frozen=True)` so runs cannot mutate knobs mid-flight",
                    )
