"""Import-graph layer contract checker (``python -m repro lint --layers``).

The repo's architecture is layered: the deterministic simulation stack
at the bottom, the drivers on top.

::

    cli ──▶ serve ──▶ sim/core/kube/...        (drivers import down)
     │        │
     └─▶ sweep ─▶ experiments ─▶ core ─▶ ...
                      ▲
              never the other way

Concretely the contract is:

* ``sim``, ``core``, ``forecast`` and ``cluster`` never import from
  ``serve``, ``sweep`` or ``cli`` — the simulation stack must stay
  runnable (and testable) without any driver;
* ``scenario`` sits *beside* ``sim``: it describes **what** a run looks
  like (capacity pattern, topology, gang mix) and never imports ``sim``
  (which owns **when** things happen), ``serve``, ``sweep`` or ``cli``;
  conversely ``core``, ``cluster``, ``forecast``, ``kube`` and
  ``workloads`` never import ``scenario`` — only the simulation drivers
  in ``sim`` thread a scenario through the stack;
* ``experiments`` never imports ``serve`` — figure modules go through
  the sweep fabric, not the live service;
* the module-scope import graph is acyclic — a cycle means two modules
  can't be reasoned about (or reloaded) independently.

Only module-scope imports build the DAG: imports inside function
bodies are deliberate lazy edges (cost or optional-dependency gating),
and ``if TYPE_CHECKING:`` blocks never execute.  A genuinely intended
exception is exempted in place by putting ``# kk: disable=layers`` on
the import line.

The checker is pure stdlib ``ast`` over ``src/repro`` — no imports are
executed — and the report is deterministic (sorted modules, sorted
edges) like every other artifact in the repo.
"""

from __future__ import annotations

import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = [
    "FORBIDDEN_LAYER_IMPORTS",
    "ImportEdge",
    "LayerReport",
    "build_import_graph",
    "check_layers",
    "layer_of",
    "main",
]

#: Layer -> layers it must never import.  Keys/values are the second
#: dotted component of a module name (``repro.sim.engine`` -> ``sim``).
FORBIDDEN_LAYER_IMPORTS: dict[str, frozenset[str]] = {
    "sim": frozenset({"serve", "sweep", "cli"}),
    "core": frozenset({"serve", "sweep", "cli", "scenario"}),
    "forecast": frozenset({"serve", "sweep", "cli", "scenario"}),
    "cluster": frozenset({"serve", "sweep", "cli", "scenario"}),
    "scenario": frozenset({"serve", "sweep", "cli", "sim"}),
    "kube": frozenset({"serve", "sweep", "cli", "scenario"}),
    "workloads": frozenset({"serve", "sweep", "cli", "scenario"}),
    "experiments": frozenset({"serve"}),
}

#: ``# kk: disable=layers`` (or ``=all``) on the import line.
_PRAGMA = re.compile(r"#\s*kk:\s*disable=([A-Za-z0-9_,\s]+)")


def _exempted(line: str) -> bool:
    m = _PRAGMA.search(line)
    if not m:
        return False
    tokens = {tok.strip().lower() for tok in m.group(1).split(",")}
    return "layers" in tokens or "all" in tokens


@dataclass(frozen=True)
class ImportEdge:
    """One module-scope import: ``src`` imports ``dst`` at ``line``."""

    src: str
    dst: str
    line: int


def layer_of(module: str) -> str:
    """The layer (top-level subpackage) of a dotted module name.

    ``repro.sim.engine`` -> ``sim``; top-level modules (``repro.cli``,
    ``repro.units``) are their own layer; the root package is ``""``.
    """
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else ""


def _module_name(py: Path, root: Path, package: str) -> str:
    rel = py.relative_to(root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package, *parts]) if parts else package


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _module_scope_imports(tree: ast.Module) -> Iterator[ast.Import | ast.ImportFrom]:
    """Imports executed at import time: module body plus module-level
    ``if``/``try``/``with`` blocks — but not function/class bodies and
    not ``if TYPE_CHECKING:``."""
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            yield stmt
        elif isinstance(stmt, ast.If):
            if not _is_type_checking_test(stmt.test):
                stack.extend(stmt.body)
            stack.extend(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
            stack.extend(stmt.finalbody)
            for handler in stmt.handlers:
                stack.extend(handler.body)
        elif isinstance(stmt, ast.With):
            stack.extend(stmt.body)


def _resolve_targets(
    node: ast.Import | ast.ImportFrom, current: str, package: str, modules: set[str]
) -> Iterator[str]:
    """Internal modules referenced by one import statement."""
    if isinstance(node, ast.Import):
        for alias in node.names:
            name = alias.name
            if name == package or name.startswith(package + "."):
                yield _closest_module(name, modules)
        return
    # ImportFrom: resolve relative levels against the current module.
    if node.level:
        base_parts = current.split(".")
        # Importing from inside ``repro.a.b`` (a module): level 1 is the
        # containing package ``repro.a``.
        if current in modules and not _is_package(current, modules):
            base_parts = base_parts[:-1]
        cut = len(base_parts) - (node.level - 1)
        if cut <= 0:
            return
        prefix = ".".join(base_parts[:cut])
        base = f"{prefix}.{node.module}" if node.module else prefix
    else:
        base = node.module or ""
    if not (base == package or base.startswith(package + ".")):
        return
    for alias in node.names:
        candidate = f"{base}.{alias.name}"
        yield _closest_module(candidate if candidate in modules else base, modules)


def _is_package(module: str, modules: set[str]) -> bool:
    prefix = module + "."
    return any(m.startswith(prefix) for m in modules)


def _closest_module(name: str, modules: set[str]) -> str:
    """Trim dotted components until ``name`` is a known module."""
    while name and name not in modules:
        if "." not in name:
            return name
        name = name.rsplit(".", 1)[0]
    return name


def build_import_graph(
    root: str | Path, package: str = "repro"
) -> tuple[dict[str, list[ImportEdge]], dict[str, list[ImportEdge]]]:
    """Parse every ``.py`` under ``root`` (the ``repro`` package dir).

    Returns ``(static, lazy)``: module-scope edges (these build the
    DAG) and function-body edges (checked against the layer contract
    but allowed to form cycles — lazy imports exist to break them).
    Edges carrying a ``# kk: disable=layers`` pragma are dropped here,
    so every downstream check sees the exempted graph.
    """
    root = Path(root)
    files = {py: _module_name(py, root, package) for py in sorted(root.rglob("*.py"))}
    modules = set(files.values())
    static: dict[str, list[ImportEdge]] = {m: [] for m in sorted(modules)}
    lazy: dict[str, list[ImportEdge]] = {m: [] for m in sorted(modules)}

    for py, module in files.items():
        source = py.read_text()
        lines = source.splitlines()
        tree = ast.parse(source, filename=str(py))
        scoped = set(_module_scope_imports(tree))
        for node in ast.walk(tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            line_text = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
            if _exempted(line_text):
                continue
            bucket = static if node in scoped else lazy
            for target in _resolve_targets(node, module, package, modules):
                if target in modules and target != module:
                    bucket[module].append(ImportEdge(module, target, node.lineno))
    return static, lazy


@dataclass
class LayerReport:
    """Everything the CLI / CI gate needs from one check."""

    modules: int
    edges: int
    layer_violations: list[dict] = field(default_factory=list)
    cycles: list[list[str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.layer_violations and not self.cycles

    def to_dict(self) -> dict:
        return {
            "modules": self.modules,
            "edges": self.edges,
            "layer_violations": self.layer_violations,
            "cycles": self.cycles,
            "clean": self.clean,
        }

    def render(self) -> str:
        out = []
        for v in self.layer_violations:
            out.append(
                f"{v['src']}:{v['line']}: layer `{v['src_layer']}` must not import "
                f"layer `{v['dst_layer']}` (imports {v['dst']}) "
                "[docs/static-analysis.md#layer-contract]"
            )
        for cycle in self.cycles:
            out.append(
                "import cycle: " + " -> ".join([*cycle, cycle[0]])
                + " [docs/static-analysis.md#layer-contract]"
            )
        status = "clean" if self.clean else (
            f"{len(self.layer_violations)} layer violation(s), {len(self.cycles)} cycle(s)"
        )
        out.append(f"repro lint --layers: {self.modules} modules, {self.edges} edges, {status}")
        return "\n".join(out)


def _strongly_connected(graph: dict[str, list[str]]) -> list[list[str]]:
    """Tarjan SCCs (iterative); returns components of size > 1, plus
    self-loops, each sorted — the cycle report."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = [0]

    for start in sorted(graph):
        if start in index:
            continue
        work: list[tuple[str, int]] = [(start, 0)]
        while work:
            node, pi = work[-1]
            if pi == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            targets = sorted(set(graph.get(node, [])))
            while pi < len(targets):
                succ = targets[pi]
                pi += 1
                if succ not in index:
                    work[-1] = (node, pi)
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                comp = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    comp.append(member)
                    if member == node:
                        break
                if len(comp) > 1 or node in graph.get(node, []):
                    sccs.append(sorted(comp))
    return sorted(sccs)


def check_layers(root: str | Path | None = None, package: str = "repro") -> LayerReport:
    """Run the full contract over the package at ``root``.

    ``root`` defaults to the installed ``repro`` package directory, so
    the CLI works from any cwd.
    """
    if root is None:
        root = Path(__file__).resolve().parent.parent
    static, lazy = build_import_graph(root, package)

    violations: list[dict] = []
    for src in sorted(static):
        src_layer = layer_of(src)
        forbidden = FORBIDDEN_LAYER_IMPORTS.get(src_layer)
        if not forbidden:
            continue
        for edge in sorted(
            static[src] + lazy[src], key=lambda e: (e.line, e.dst)
        ):
            dst_layer = layer_of(edge.dst)
            if dst_layer in forbidden:
                violations.append(
                    {
                        "kind": "layer",
                        "src": edge.src,
                        "dst": edge.dst,
                        "src_layer": src_layer,
                        "dst_layer": dst_layer,
                        "line": edge.line,
                    }
                )

    adjacency = {m: [e.dst for e in edges] for m, edges in static.items()}
    cycles = _strongly_connected(adjacency)
    n_edges = sum(len(set((e.src, e.dst) for e in edges)) for edges in static.values())
    return LayerReport(
        modules=len(static),
        edges=n_edges,
        layer_violations=violations,
        cycles=cycles,
    )


def main(root: str | None = None, fmt: str = "text", out=None) -> int:
    """CLI entry: print the report, return 0 (clean) / 1 (violations)."""
    out = out or sys.stdout
    if fmt not in ("text", "json"):
        print(
            f"repro lint --layers: unknown format {fmt!r} (expected text or json)",
            file=sys.stderr,
        )
        return 2
    report = check_layers(root)
    if fmt == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True), file=out)
    else:
        print(report.render(), file=out)
    return 0 if report.clean else 1
