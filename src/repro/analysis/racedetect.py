"""Runtime lock-order / race detector — TSan for the serving layer.

The static concurrency rules (KK005–KK008, :mod:`repro.analysis.lint`)
prove what they can from one file's AST; this module checks the two
properties that only exist at runtime, across threads:

``lock_order``
    Every thread acquires tracked locks in a globally consistent
    order.  Each acquisition of lock *B* while holding lock *A* adds
    the edge ``A -> B`` to a process-wide lock-order graph; a new edge
    that closes a cycle (``A -> B`` recorded after ``B -> A``) is a
    *potential deadlock* — two threads interleaving those paths can
    block each other forever — and is reported even if the deadlock
    never actually fired in this run.
``owner_thread``
    Single-threaded resources (the :class:`~repro.sim.engine.EventLoop`
    while running, each node-local TSDB, the tracer's span stack) are
    only touched by the thread that owns them.  Ownership binds to the
    first touching thread (or is rebound explicitly at sanctioned
    hand-off points, e.g. :meth:`EventLoop.run` entry); any other
    thread touching the resource is a data race even if it "worked" —
    none of those structures take locks on their hot paths, by design.

Wiring mirrors the runtime :class:`~repro.analysis.sanitizer.Sanitizer`:
a :class:`RaceDetector` rides on the observability bundle
(``Observability(race_detect=True)``, CLI ``--race-detect``), records
every breach into the decision audit log (kind ``"violation"``) and
either raises :class:`RaceError` (``halt=True``, the unit-test mode) or
collects into :attr:`RaceDetector.violations` for an end-of-run report
(the serving default — killing a live service mid-drain from an
arbitrary thread would lose accepted requests; the CLI instead exits
with the distinct code 5).

Overhead when off is one ``is None`` check per instrumented call site;
:class:`TrackedLock` only exists when the detector built it.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Iterator

from repro.analysis.sanitizer import Violation

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.obs.audit import DecisionAuditLog

__all__ = [
    "RACE_INVARIANTS",
    "RaceError",
    "ThreadAffinity",
    "TrackedLock",
    "RaceDetector",
]

#: The detector's invariant vocabulary (disjoint from the sanitizer's
#: :data:`repro.analysis.sanitizer.INVARIANTS` — both report through
#: the same audit-log "violation" channel).
RACE_INVARIANTS = ("lock_order", "owner_thread")


class RaceError(RuntimeError):
    """Raised at the first breach when the detector halts."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(violation.render())
        self.violation = violation


class ThreadAffinity:
    """Owner-thread guard for a resource that must stay single-threaded.

    The first thread to :meth:`check` becomes the owner; a later check
    from any other thread reports an ``owner_thread`` violation.
    :meth:`rebind` transfers ownership to the calling thread — the
    sanctioned hand-off used at :meth:`EventLoop.run` entry, where the
    loop legitimately moves from its constructing thread to the thread
    that drives it.
    """

    __slots__ = ("detector", "resource", "_owner", "_owner_name")

    def __init__(self, detector: "RaceDetector", resource: str) -> None:
        self.detector = detector
        self.resource = resource
        self._owner: int | None = None
        self._owner_name = ""

    def rebind(self) -> None:
        """Make the calling thread the owner (a sanctioned hand-off)."""
        t = threading.current_thread()
        self._owner = t.ident
        self._owner_name = t.name

    def check(self, operation: str) -> None:
        """Verify the calling thread owns the resource (binds on first use)."""
        t = threading.current_thread()
        owner = self._owner
        if owner is None:
            self._owner = t.ident
            self._owner_name = t.name
            return
        if t.ident != owner:
            self.detector.violation(
                "owner_thread",
                f"{self.resource}.{operation} called from thread "
                f"{t.name!r} but owned by {self._owner_name!r}",
                resource=self.resource,
                operation=operation,
                owner=self._owner_name,
                intruder=t.name,
            )


class TrackedLock:
    """A ``threading.Lock`` shim feeding the lock-order graph.

    Drop-in for the subset of the ``Lock`` API this repo uses
    (``acquire``/``release``/context manager/``locked``); every
    successful acquisition reports the set of locks the calling thread
    already holds, which is where lock-order edges come from.
    """

    __slots__ = ("name", "detector", "_lock")

    def __init__(self, name: str, detector: "RaceDetector") -> None:
        self.name = name
        self.detector = detector
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._lock.acquire(blocking, timeout)
        if got:
            self.detector._on_acquire(self.name)
        return got

    def release(self) -> None:
        self.detector._on_release(self.name)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrackedLock({self.name!r}, locked={self.locked()})"


class _HeldStack(threading.local):
    """Per-thread stack of currently held tracked-lock names."""

    def __init__(self) -> None:
        self.names: list[str] = []


class RaceDetector:
    """Process-wide lock-order graph plus owner-thread affinity guards.

    Parameters
    ----------
    audit:
        Decision audit log violations are recorded into (kind
        ``"violation"``); optional.
    clock:
        Shared sim clock violations are stamped from; optional.
    halt:
        Raise :class:`RaceError` at the first breach.  The default is
        ``False`` (collect) — the serving CLI reports at end of run and
        exits 5, because aborting a live drain from whichever thread
        happened to trip the check would drop accepted requests.
    """

    def __init__(
        self,
        audit: "DecisionAuditLog | None" = None,
        clock=None,
        halt: bool = False,
    ) -> None:
        self.audit = audit
        self.clock = clock
        self.halt = halt
        self.violations: list[Violation] = []
        self.acquisitions = 0
        #: lock name -> names acquired at least once while holding it.
        self._graph: dict[str, set[str]] = {}
        self._held = _HeldStack()
        #: Guards the graph and the violation list (a plain lock — the
        #: detector must not feed its own bookkeeping into the graph).
        self._meta = threading.Lock()
        self._reported_edges: set[tuple[str, str]] = set()
        self._affinities: dict[str, ThreadAffinity] = {}

    # -- construction of instrumented primitives -----------------------------

    def tracked(self, name: str) -> TrackedLock:
        """A new :class:`TrackedLock` participating in order tracking."""
        return TrackedLock(name, self)

    def affinity(self, resource: str) -> ThreadAffinity:
        """The (shared) owner-thread guard for ``resource``."""
        with self._meta:
            guard = self._affinities.get(resource)
            if guard is None:
                guard = self._affinities[resource] = ThreadAffinity(self, resource)
            return guard

    # -- lock-order bookkeeping ----------------------------------------------

    def _on_acquire(self, name: str) -> None:
        held = self._held.names
        cycle: list[str] | None = None
        with self._meta:
            self.acquisitions += 1
            edges = self._graph
            for prior in held:
                targets = edges.setdefault(prior, set())
                if name not in targets:
                    targets.add(name)
                    # Only a *new* edge can close a new cycle.
                    path = self._find_path(name, prior)
                    if path is not None and (prior, name) not in self._reported_edges:
                        self._reported_edges.add((prior, name))
                        cycle = [prior] + path
        held.append(name)
        if cycle is not None:
            self.violation(
                "lock_order",
                "lock-order cycle (potential deadlock): "
                + " -> ".join(cycle),
                cycle=cycle,
                thread=threading.current_thread().name,
            )

    def _on_release(self, name: str) -> None:
        held = self._held.names
        # Locks are almost always released LIFO; tolerate out-of-order
        # release (remove the most recent matching entry).
        for i in range(len(held) - 1, -1, -1):
            if held[i] == name:
                del held[i]
                return

    def _find_path(self, src: str, dst: str) -> list[str] | None:
        """DFS path ``src -> ... -> dst`` in the order graph (caller
        holds ``_meta``).  Returns the node list including both ends."""
        stack = [(src, [src])]
        seen = {src}
        while stack:
            node, path = stack.pop()
            if node == dst:
                return path
            for nxt in self._graph.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    def held_by_current_thread(self) -> tuple[str, ...]:
        """Names of tracked locks the calling thread holds (debugging)."""
        return tuple(self._held.names)

    def edges(self) -> dict[str, tuple[str, ...]]:
        """A snapshot of the lock-order graph."""
        with self._meta:
            return {k: tuple(sorted(v)) for k, v in self._graph.items()}

    # -- reporting ------------------------------------------------------------

    @property
    def now(self) -> float:
        return float(self.clock.now) if self.clock is not None else 0.0

    def violation(self, invariant: str, message: str, **details: Any) -> None:
        """Record one breach; raise when halting."""
        if invariant not in RACE_INVARIANTS:
            raise ValueError(
                f"unknown race invariant {invariant!r}; known: {RACE_INVARIANTS}"
            )
        v = Violation(invariant=invariant, ts=self.now, message=message, details=details)
        with self._meta:
            self.violations.append(v)
        if self.audit is not None:
            self.audit.record(
                "violation",
                evidence={"invariant": invariant, "message": message, **details},
            )
        if self.halt:
            raise RaceError(v)

    def summary(self) -> dict[str, int]:
        """``{invariant: count}`` over recorded violations."""
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.invariant] = out.get(v.invariant, 0) + 1
        return out

    def iter_violations(self) -> Iterator[Violation]:
        return iter(list(self.violations))
