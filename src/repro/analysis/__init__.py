"""``repro.analysis`` — correctness tooling for the reproduction.

Two halves guard the properties every experiment in this repo depends
on (bit-stable runs, conserved per-GPU accounting):

* :mod:`repro.analysis.lint` — an AST-based static lint pass with
  Kube-Knots-specific rules (``KK001``–``KK004``), run as
  ``python -m repro lint`` and as a CI gate;
* :mod:`repro.analysis.sanitizer` — an ASan-style runtime sanitizer
  wired into the event loop, kubelets, Knots and the aggregator,
  enabled with ``--sanitize`` on ``simulate``/``dlsim`` or the
  ``sanitized_obs`` pytest fixture.

See ``docs/static-analysis.md`` for the rule catalog and the sanitizer
invariant table.
"""

from repro.analysis.lint import Finding, lint_paths, lint_source
from repro.analysis.sanitizer import INVARIANTS, Sanitizer, SanitizerError, Violation

__all__ = [
    "Finding",
    "lint_paths",
    "lint_source",
    "Sanitizer",
    "SanitizerError",
    "Violation",
    "INVARIANTS",
]
