"""``repro.analysis`` — correctness tooling for the reproduction.

Four pieces guard the properties every experiment in this repo depends
on (bit-stable runs, conserved per-GPU accounting, a race-free serving
path, a layered architecture):

* :mod:`repro.analysis.lint` — an AST-based static lint pass with
  Kube-Knots-specific rules: determinism/hygiene (``KK001``–``KK004``)
  and thread-safety (``KK005``–``KK008``), run as
  ``python -m repro lint`` and as a CI gate;
* :mod:`repro.analysis.layers` — the import-graph layer contract
  (simulation stack never imports drivers; no module cycles), run as
  ``python -m repro lint --layers``;
* :mod:`repro.analysis.sanitizer` — an ASan-style runtime sanitizer
  wired into the event loop, kubelets, Knots and the aggregator,
  enabled with ``--sanitize`` on ``simulate``/``dlsim`` or the
  ``sanitized_obs`` pytest fixture;
* :mod:`repro.analysis.racedetect` — a TSan-style runtime lock-order /
  owner-thread detector over the serving path, enabled with
  ``--race-detect`` on ``serve``.

See ``docs/static-analysis.md`` for the rule catalog, the layer
diagram, and the sanitizer/race-detector invariant tables.
"""

from repro.analysis.layers import LayerReport, check_layers
from repro.analysis.lint import Finding, lint_paths, lint_source
from repro.analysis.racedetect import RACE_INVARIANTS, RaceDetector, RaceError, TrackedLock
from repro.analysis.sanitizer import INVARIANTS, Sanitizer, SanitizerError, Violation

__all__ = [
    "Finding",
    "lint_paths",
    "lint_source",
    "LayerReport",
    "check_layers",
    "RaceDetector",
    "RaceError",
    "TrackedLock",
    "RACE_INVARIANTS",
    "Sanitizer",
    "SanitizerError",
    "Violation",
    "INVARIANTS",
]
