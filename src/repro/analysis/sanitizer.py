"""Runtime simulation sanitizer — ASan for the Kube-Knots simulators.

The lint pass (:mod:`repro.analysis.lint`) proves what it can from the
AST; everything else — conservation of per-GPU memory, sane SM shares,
a monotone event clock, fresh telemetry — is checked *while the
simulation runs* by this module.  The checks are the invariants the
paper's results silently rely on:

``memory_conservation``
    After every admit/resize/release: per-device
    Σ allocations <= capacity, free memory >= 0, no negative
    reservation.
``sm_shares``
    Every share granted by ``GPU.arbitrate`` lies in [0, 1].
``schedule_in_past``
    No event is scheduled at ``t < now`` (the engine's own guard,
    routed through the sanitizer so the violation is audited).
``time_monotonicity``
    The event loop never fires an event behind its clock, and the
    DL simulator's advance-and-recompute step never moves backwards.
``heap_consistency``
    The event loop's O(1) live-event counter agrees with the heap.
``telemetry_staleness``
    A scheduler never acts on a telemetry window whose newest sample
    is older than one heartbeat (plus slack) — the Fig. 5 data path
    must be live, not a stale cache.
``pool_accounting``
    The DL pool's per-device training/inference counters never go
    negative.
``fast_forward_quiescence``
    The cluster simulator only fast-forwards its tick chains when the
    cluster is provably quiescent (every submitted pod finished, every
    device asleep or failed) and only to a strictly later time.
``capacity_conservation``
    After a capacity transition (cordon/reclaim/restore): no failed
    device still holds allocations, per-node Σ allocations fits the
    node's *live* (post-reclaim) capacity, and every accepted,
    unfinished pod is still accounted for — pending or hosted, never
    silently dropped.

A :class:`Sanitizer` rides on the :class:`repro.obs.Observability`
bundle (``Observability(sanitize=True)``); every instrumented call site
costs one ``is None`` check when sanitizing is off.  Violations are
recorded into the decision audit log (kind ``"violation"``) and then
raised as :class:`SanitizerError` (set ``halt=False`` to collect
instead of raising).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.cluster.gpu import GPU
    from repro.obs.audit import DecisionAuditLog
    from repro.telemetry.tsdb import SeriesWindow

__all__ = ["INVARIANTS", "Violation", "SanitizerError", "Sanitizer"]

#: The sanitizer's invariant vocabulary.
INVARIANTS = (
    "memory_conservation",
    "sm_shares",
    "schedule_in_past",
    "time_monotonicity",
    "heap_consistency",
    "telemetry_staleness",
    "pool_accounting",
    "fast_forward_quiescence",
    "capacity_conservation",
)

_EPS = 1e-6


@dataclass(frozen=True)
class Violation:
    """One invariant breach, with the evidence at the point of failure."""

    invariant: str
    ts: float
    message: str
    details: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        extras = ", ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"[{self.invariant}] t={self.ts:g}: {self.message}" + (
            f" ({extras})" if extras else ""
        )


class SanitizerError(RuntimeError):
    """Raised at the first invariant breach (when ``halt`` is set)."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(violation.render())
        self.violation = violation

    def __reduce__(self):
        # Default exception pickling would replay __init__ with the
        # *rendered message* instead of the Violation, so a breach
        # raised inside a sweep worker would cross the process-pool
        # boundary as a TypeError.  Rebuild from the Violation itself.
        return (SanitizerError, (self.violation,))


class Sanitizer:
    """Invariant checker threaded through the simulators via ``obs``.

    Parameters
    ----------
    audit:
        Decision audit log to record violations into (kind
        ``"violation"``); optional.
    clock:
        Shared sim clock violations are stamped from; optional.
    halt:
        Raise :class:`SanitizerError` at the first breach (default).
        With ``halt=False`` violations accumulate in ``self.violations``
        — the collection mode the fault-injection tests use.
    staleness_slack:
        Telemetry windows may lag by ``slack * heartbeat`` before the
        staleness invariant trips (heartbeat and scheduling passes are
        not phase-locked).
    """

    def __init__(
        self,
        audit: "DecisionAuditLog | None" = None,
        clock=None,
        halt: bool = True,
        staleness_slack: float = 2.0,
    ) -> None:
        self.audit = audit
        self.clock = clock
        self.halt = halt
        self.staleness_slack = float(staleness_slack)
        self.violations: list[Violation] = []
        self.checks = 0
        #: Engine heap audits are O(pending); run one every this many steps.
        self.heap_audit_interval = 64

    # -- reporting ----------------------------------------------------------

    @property
    def now(self) -> float:
        return float(self.clock.now) if self.clock is not None else 0.0

    def violation(self, invariant: str, message: str, **details: Any) -> None:
        """Record one breach; raise when halting."""
        if invariant not in INVARIANTS:
            raise ValueError(f"unknown invariant {invariant!r}; known: {INVARIANTS}")
        v = Violation(invariant=invariant, ts=self.now, message=message, details=details)
        self.violations.append(v)
        if self.audit is not None:
            self.audit.record(
                "violation",
                evidence={"invariant": invariant, "message": message, **details},
            )
        if self.halt:
            raise SanitizerError(v)

    def summary(self) -> dict[str, int]:
        """``{invariant: count}`` over recorded violations, plus totals."""
        out: dict[str, int] = {}
        for v in self.violations:
            out[v.invariant] = out.get(v.invariant, 0) + 1
        return out

    # -- GPU / node accounting ----------------------------------------------

    def check_gpu(self, gpu: "GPU") -> None:
        """Memory conservation on one device (after admit/resize/release)."""
        self.checks += 1
        allocated = 0.0
        for alloc in gpu.containers.values():
            if alloc.alloc_mb < -_EPS:
                self.violation(
                    "memory_conservation",
                    f"negative reservation on {gpu.gpu_id}",
                    gpu=gpu.gpu_id, pod=alloc.pod_uid, alloc_mb=alloc.alloc_mb,
                )
            allocated += alloc.alloc_mb
        if allocated > gpu.mem_capacity_mb + _EPS:
            self.violation(
                "memory_conservation",
                f"allocations exceed capacity on {gpu.gpu_id}",
                gpu=gpu.gpu_id,
                allocated_mb=allocated,
                capacity_mb=gpu.mem_capacity_mb,
            )
        if gpu.free_mem_mb < -_EPS:
            self.violation(
                "memory_conservation",
                f"negative free memory on {gpu.gpu_id}",
                gpu=gpu.gpu_id, free_mb=gpu.free_mem_mb,
            )

    def check_node(self, node) -> None:
        for gpu in node.gpus:
            self.check_gpu(gpu)

    def check_view(self, view) -> None:
        """Aggregator snapshot consistency: the head-node's view of a
        device must itself conserve memory (Fig. 5's data path can only
        corrupt a scheduler if the *view* is wrong)."""
        self.checks += 1
        if view.free_alloc_mb < -_EPS:
            self.violation(
                "memory_conservation",
                f"aggregator view reports negative free memory for {view.gpu_id}",
                gpu=view.gpu_id, free_alloc_mb=view.free_alloc_mb,
            )
        if view.mem_used_mb > view.mem_capacity_mb + _EPS:
            self.violation(
                "memory_conservation",
                f"aggregator view reports usage above capacity for {view.gpu_id}",
                gpu=view.gpu_id,
                mem_used_mb=view.mem_used_mb,
                capacity_mb=view.mem_capacity_mb,
            )

    def check_shares(self, gpu_id: str, shares: Mapping[str, float]) -> None:
        """Every granted SM share lies in [0, 1]."""
        self.checks += 1
        for uid, share in shares.items():
            if share < -_EPS or share > 1.0 + _EPS:
                self.violation(
                    "sm_shares",
                    f"share outside [0, 1] on {gpu_id}",
                    gpu=gpu_id, pod=uid, share=share,
                )

    # -- capacity transitions -------------------------------------------------

    def check_node_capacity(self, node) -> None:
        """Capacity conservation after a cordon/reclaim/restore: a failed
        (reclaimed) device holds no allocations and the node's total
        allocation fits its *live* capacity."""
        self.checks += 1
        live_capacity = 0.0
        allocated = 0.0
        for gpu in node.gpus:
            dev_alloc = sum(a.alloc_mb for a in gpu.containers.values())
            if gpu.failed:
                if dev_alloc > _EPS:
                    self.violation(
                        "capacity_conservation",
                        f"reclaimed device {gpu.gpu_id} still holds allocations",
                        gpu=gpu.gpu_id, allocated_mb=dev_alloc,
                    )
            else:
                live_capacity += gpu.mem_capacity_mb
            allocated += dev_alloc
        if allocated > live_capacity + _EPS:
            self.violation(
                "capacity_conservation",
                f"allocations exceed live capacity on {node.node_id}",
                node=node.node_id,
                allocated_mb=allocated,
                live_capacity_mb=live_capacity,
            )

    def check_pod_tracking(
        self, unfinished: set, pending: set, hosted: set
    ) -> None:
        """No accepted pod is silently dropped across a capacity
        transition: every unfinished pod is pending or hosted."""
        self.checks += 1
        lost = unfinished - pending - hosted
        if lost:
            self.violation(
                "capacity_conservation",
                "unfinished pods neither pending nor hosted after a capacity transition",
                lost=sorted(lost)[:8], count=len(lost),
            )

    # -- event-loop invariants ----------------------------------------------

    def check_schedule(self, now: float, when: float) -> None:
        """No event may target a time before the loop's clock."""
        self.checks += 1
        if when < now - _EPS:
            self.violation(
                "schedule_in_past",
                "event scheduled before current time",
                now=now, when=when,
            )

    def check_event_time(self, now: float, event_time: float) -> None:
        """The loop's clock never moves backwards across fired events."""
        self.checks += 1
        if event_time < now - _EPS:
            self.violation(
                "time_monotonicity",
                "event fires behind the loop clock",
                now=now, event_time=event_time,
            )

    def check_heap(self, pending_counter: int, live_in_heap: int) -> None:
        """O(1) live counter vs an actual heap census."""
        self.checks += 1
        if pending_counter != live_in_heap:
            self.violation(
                "heap_consistency",
                "live-event counter disagrees with heap census",
                counter=pending_counter, heap=live_in_heap,
            )

    # -- telemetry freshness -------------------------------------------------

    def check_window_fresh(
        self, gpu_id: str, metric: str, window: "SeriesWindow", now: float, heartbeat: float
    ) -> None:
        """The newest sample must be at most ``slack`` heartbeats old.

        Empty windows are exempt: a fresh node legitimately looks empty
        to the aggregator before its first heartbeat, and schedulers
        handle that case explicitly.
        """
        self.checks += 1
        if len(window) == 0:
            return
        age = now - float(window.times[-1])
        if age > self.staleness_slack * heartbeat + _EPS:
            self.violation(
                "telemetry_staleness",
                f"scheduler read a stale {metric} window for {gpu_id}",
                gpu=gpu_id, metric=metric, age=age, heartbeat=heartbeat,
            )

    # -- DL pool accounting --------------------------------------------------

    def check_dl_pool(self, load: Iterable[int], dli: Iterable[int]) -> None:
        """Per-device job counters never go negative."""
        self.checks += 1
        for g, n in enumerate(load):
            if n < 0:
                self.violation(
                    "pool_accounting", "negative training load", gpu=g, load=int(n)
                )
        for g, n in enumerate(dli):
            if n < 0:
                self.violation(
                    "pool_accounting", "negative inference count", gpu=g, dli=int(n)
                )

    def check_dl_time(self, now: float, t_next: float) -> None:
        """The DL simulator's advance step never moves backwards."""
        self.checks += 1
        if t_next < now - _EPS:
            self.violation(
                "time_monotonicity",
                "DL simulator stepping backwards",
                now=now, t_next=t_next,
            )

    # -- idle fast-forward ----------------------------------------------------

    def check_fast_forward(
        self, now: float, target: float, all_done: bool, devices_parked: bool
    ) -> None:
        """A fast-forward must jump strictly forward and only from a
        quiescent cluster (all pods finished, all devices asleep or
        failed) — otherwise skipped ticks would not have been no-ops."""
        self.checks += 1
        if target <= now + _EPS:
            self.violation(
                "fast_forward_quiescence",
                "fast-forward target not ahead of current time",
                now=now, target=target,
            )
        if not (all_done and devices_parked):
            self.violation(
                "fast_forward_quiescence",
                "fast-forward attempted on a non-quiescent cluster",
                all_done=all_done, devices_parked=devices_parked,
            )
