"""Bench: regenerate Fig. 4 (inference memory vs batch size)."""

from repro.experiments import fig4


def test_bench_fig4(benchmark):
    data = benchmark(fig4.run_fig4)
    assert data["single_query_max_pct"] < 10.0      # <10 % single queries
    assert data["batch128_under_50pct"] == 6        # all classes under 50 %
    assert float(data["series"]["TF"][0]) > 95.0    # TF earmark
