"""Bench: regenerate Fig. 8 (per-node percentiles under PP)."""

from benchmarks.conftest import BENCH_SETTINGS, run_once
from repro.experiments import fig8


def test_bench_fig8(benchmark):
    data = run_once(benchmark, fig8.run_fig8, BENCH_SETTINGS)
    # consolidation: in the low-load mix some devices are left unused
    mix3 = data["app-mix-3"]
    unused = [p for p in mix3.values() if p.max == 0.0]
    assert len(unused) >= 1
