"""Shared configuration for the figure-regeneration benchmarks.

Every benchmark regenerates one of the paper's evaluation artifacts at
reduced scale (so ``pytest benchmarks/ --benchmark-only`` completes in
minutes) and asserts the artifact's headline *shape* — the benches are
simultaneously the reproduction's acceptance harness and a performance
regression net for the simulators.

Full-scale regeneration is ``python -m repro.experiments.figN``; the
numbers recorded in EXPERIMENTS.md come from those runs.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import ExperimentSettings
from repro.workloads.dlt import DLWorkloadConfig

#: Cluster-simulation sizing used by the benchmark harness.
BENCH_SETTINGS = ExperimentSettings(duration_s=12.0, seed=1)

#: DL-simulation sizing used by the benchmark harness.
BENCH_DL_CONFIG = DLWorkloadConfig(
    n_training=80,
    n_inference=250,
    window_s=3_600.0,
    dlt_median_s=2_500.0,
    dlt_sigma=0.9,
)


@pytest.fixture
def bench_settings() -> ExperimentSettings:
    return BENCH_SETTINGS


@pytest.fixture
def bench_dl_config() -> DLWorkloadConfig:
    return BENCH_DL_CONFIG


def run_once(benchmark, fn, *args, **kwargs):
    """Run an expensive experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
