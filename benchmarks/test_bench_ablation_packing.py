"""Ablation bench: Res-Ag request handling (honour vs clip)."""

from benchmarks.conftest import run_once
from repro.experiments import ablation


def test_bench_ablation_packing(benchmark):
    rows = run_once(benchmark, ablation.sweep_resag_clipping, "app-mix-1", 8.0, 1)
    honour = next(r for r in rows if not r["clip_requests"])
    clip = next(r for r in rows if r["clip_requests"])
    # clipping packs denser (utilization) at the cost of more OOM risk
    assert clip["util_p50"] >= honour["util_p50"] * 0.8
    assert clip["oom_kills"] >= honour["oom_kills"]
