"""Bench: regenerate Fig. 6 (per-node percentiles under Res-Ag)."""

from benchmarks.conftest import BENCH_SETTINGS, run_once
from repro.experiments import fig6


def test_bench_fig6(benchmark):
    data = run_once(benchmark, fig6.run_fig6, "res-ag", BENCH_SETTINGS)
    assert set(data) == {"app-mix-1", "app-mix-2", "app-mix-3"}
    # high-load mix busier than low-load mix at the median, cluster-wide
    med = lambda mix: sum(p.p50 for p in data[mix].values())
    assert med("app-mix-1") > med("app-mix-3")
