"""Bench: regenerate Fig. 1 (energy efficiency vs utilization)."""

import numpy as np

from repro.experiments import fig1


def test_bench_fig1(benchmark):
    data = benchmark(fig1.run_fig1, 50)
    gpu = data["GPU"]
    # the GPU curve is linear-monotone; the CPU curves peak interior
    assert np.all(np.diff(gpu) > 0)
    assert data["Intel-Sandybridge"].max() > 1.0
    assert 0.5 < data["sandybridge_peak_util"] < 0.9
