"""Bench: regenerate Fig. 10 (QoS violations + prediction accuracy)."""

import numpy as np

from benchmarks.conftest import BENCH_SETTINGS, run_once
from repro.experiments import fig10


def test_bench_fig10a(benchmark):
    data = run_once(benchmark, fig10.run_fig10a, BENCH_SETTINGS)
    mean = lambda s: np.mean([data[m][s] for m in data])
    # Knots schedulers violate least on average
    assert mean("peak-prediction") <= max(mean("res-ag"), mean("uniform")) + 35.0


def test_bench_fig10b(benchmark):
    data = run_once(
        benchmark,
        fig10.run_fig10b,
        heartbeats_ms=(1000.0, 10.0, 0.1),
        forecasters=("arima", "sgd"),
        max_windows=25,
    )
    acc = data["arima"]
    assert acc[10.0] > acc[1000.0]     # finer heartbeat resolves peaks
    assert acc[10.0] > acc[0.1]        # oversampling noise hurts
