"""Bench: regenerate Fig. 12 (DL-cluster JCT CDF + DLI violations)."""

import numpy as np

from benchmarks.conftest import BENCH_DL_CONFIG, run_once
from repro.experiments import fig12


def test_bench_fig12a(benchmark):
    cdfs = run_once(benchmark, fig12.run_fig12a, 11, BENCH_DL_CONFIG)
    # CBP+PP front-loads its CDF: most jobs (the inference tasks) finish
    # almost immediately
    x, f = cdfs["cbp-pp"]
    frac_fast = float(np.interp(1.0 / 3600.0, x, f))   # done within a second
    assert frac_fast > 0.5


def test_bench_fig12b(benchmark):
    viol = run_once(benchmark, fig12.run_fig12b, 11, BENCH_DL_CONFIG)
    assert viol["cbp-pp"] <= min(viol.values()) + 1e-9
