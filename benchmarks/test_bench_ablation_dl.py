"""Ablation bench: DL-baseline parameter sensitivity."""

from benchmarks.conftest import run_once
from repro.experiments import ablation_dl


def test_bench_ablation_dl_tiresias(benchmark):
    rows = run_once(benchmark, ablation_dl.sweep_tiresias_threshold, (1_000.0, 100_000.0))
    by_thr = {r["threshold_gpu_s"]: r for r in rows}
    # lower demotion threshold -> more preemption churn
    assert by_thr[1_000.0]["preemptions"] >= by_thr[100_000.0]["preemptions"]


def test_bench_ablation_dl_gandiva(benchmark):
    rows = run_once(benchmark, ablation_dl.sweep_gandiva_migration, (120.0, 3_600.0))
    by_int = {r["interval_s"]: r for r in rows}
    # more frequent rebalancing -> more migrations
    assert by_int[120.0]["migrations"] >= by_int[3_600.0]["migrations"]
