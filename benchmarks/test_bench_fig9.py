"""Bench: regenerate Fig. 9 (cluster-wide utilization comparison)."""

from benchmarks.conftest import BENCH_SETTINGS, run_once
from repro.experiments import fig9


def test_bench_fig9(benchmark):
    data = run_once(benchmark, fig9.run_fig9, BENCH_SETTINGS)
    mix1 = data["app-mix-1"]
    # the paper's headline: PP's utilization leads Res-Ag's
    assert mix1["peak-prediction"].p50 >= mix1["res-ag"].p50
