"""Bench: the load-sensitivity sweep (deployment-envelope study)."""

from benchmarks.conftest import run_once
from repro.experiments import sensitivity


def test_bench_sensitivity(benchmark):
    rows = run_once(
        benchmark,
        sensitivity.run_sensitivity,
        (0.5, 1.5),
        ("uniform", "peak-prediction"),
        "app-mix-1",
        8.0,
        1,
    )
    by = {(r["load_factor"], r["scheduler"]): r for r in rows}
    # PP's QoS advantage must hold at the stressed end of the sweep
    assert (
        by[(1.5, "peak-prediction")]["qos_per_kilo"]
        <= by[(1.5, "uniform")]["qos_per_kilo"] + 1e-9
    )
