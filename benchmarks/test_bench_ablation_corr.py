"""Ablation bench: CBP's correlation threshold (0.5 in the paper)."""

from benchmarks.conftest import run_once
from repro.experiments import ablation


def test_bench_ablation_corr(benchmark):
    rows = run_once(
        benchmark, ablation.sweep_correlation_threshold, (0.1, 0.5, 0.9), "app-mix-1", 8.0, 1
    )
    assert len(rows) == 3
    # the gate keeps every operating point near crash-free; QoS bounded
    assert all(r["oom_kills"] <= 3 for r in rows)
