"""Bench: the runtime sanitizer's cost model.

Two claims are enforced:

* **off = free (within noise)** — with ``sanitize=False`` every
  instrumented call site reduces to one ``is None`` check, so the
  Fig. 9-style appmix run must cost the same as it did before the
  sanitizer existed.  The benchmark records the off-path run under
  pytest-benchmark (regressions show up against saved baselines like
  every other bench), and additionally times an identical second
  off-path run in-process: two runs of the same seeded simulation must
  agree within a generous noise factor, which would not hold if the
  instrumentation had data-dependent cost.
* **on = bounded** — arming the sanitizer may not blow the run up by
  more than ``MAX_SANITIZE_OVERHEAD``x (it is meant to be left on in
  CI smoke runs).
"""

from __future__ import annotations

import time

from benchmarks.conftest import run_once
from repro.core.schedulers import make_scheduler
from repro.obs.context import Observability
from repro.sim.simulator import run_appmix

#: Paired same-seed off-path runs must agree within this factor.
NOISE_FACTOR = 1.5
#: Sanitize-on may cost at most this much relative to sanitize-off.
MAX_SANITIZE_OVERHEAD = 3.0


def _timed_run(obs=None):
    t0 = time.perf_counter()
    result = run_appmix("app-mix-1", make_scheduler("peak-prediction"),
                        duration_s=6.0, seed=3, num_nodes=4, obs=obs)
    return time.perf_counter() - t0, result


def test_bench_sanitizer_off_is_noise(benchmark):
    elapsed_a, result_a = run_once(benchmark, _timed_run)
    elapsed_b, result_b = _timed_run()
    assert result_a.makespan_ms == result_b.makespan_ms  # same seed, same run
    lo, hi = sorted((elapsed_a, elapsed_b))
    assert hi <= lo * NOISE_FACTOR, (
        f"off-path runtime unstable: {lo:.3f}s vs {hi:.3f}s"
    )


def test_bench_sanitize_on_overhead_is_bounded():
    elapsed_off, _ = _timed_run()
    obs = Observability(trace=False, metrics=False, audit=False, sanitize=True)
    elapsed_on, _ = _timed_run(obs=obs)
    assert obs.sanitizer.checks > 0
    assert obs.sanitizer.violations == []
    assert elapsed_on <= elapsed_off * MAX_SANITIZE_OVERHEAD, (
        f"sanitizer overhead too high: {elapsed_off:.3f}s off, {elapsed_on:.3f}s on"
    )
