"""Hot-path micro-benchmarks under pytest-benchmark.

The ``python -m repro bench`` harness is the tracked before/after
suite (it emits ``BENCH_hotpath.json``); these benches put the same
inner loops under pytest-benchmark so ``pytest benchmarks/
--benchmark-only`` tracks them alongside the figure regenerations —
and they double as shape assertions on the harness output.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.hotpath import bench_ar1, bench_correlation_matrix, bench_tsdb_query
from repro.forecast.arima import Ar1Cache, fit_ar1
from repro.forecast.correlation import correlation_matrix
from repro.telemetry.tsdb import TimeSeriesDB


def test_tsdb_query_bench(benchmark):
    db = TimeSeriesDB(capacity=4_096)
    for i in range(5_000):
        db.write("gpu0.mem_util", i * 0.01, (i % 89) / 89.0)
    now = 4_999 * 0.01

    window = benchmark(db.last_window, "gpu0.mem_util", 5.0, now)
    assert len(window) == 501
    assert not window.values.flags.writeable

    # Harness cross-check: the fast path must beat the legacy path.
    report = bench_tsdb_query(quick=True)
    assert report["speedup"] > 1.0


def test_correlation_matrix_bench(benchmark):
    rng = np.random.default_rng(3)
    series = {f"s{i:02d}": rng.random(64) for i in range(48)}

    names, mat = benchmark(correlation_matrix, series)
    assert len(names) == 48 and mat.shape == (48, 48)
    assert np.allclose(np.diag(mat), 1.0)


def test_correlation_matrix_harness_speedup():
    report = bench_correlation_matrix(quick=True)
    assert report["speedup"] > 3.0


def test_ar1_incremental_bench(benchmark):
    rng = np.random.default_rng(5)
    n = 2_000
    values = rng.random(n)
    times = np.arange(n) * 0.01

    def slide_fit():
        cache = Ar1Cache()
        model = None
        for i in range(n - 500):
            model = cache.fit("g", times[i : i + 500], values[i : i + 500])
        return cache, model

    cache, model = benchmark.pedantic(slide_fit, rounds=1, iterations=1)
    assert cache.slides > 0
    assert abs(model.phi) <= 1.0


def test_ar1_harness_equivalence_and_speedup():
    report = bench_ar1(quick=True)
    assert report["speedup"] > 1.0
    # Spot-check model equivalence on the bench's own signal shape.
    rng = np.random.default_rng(11)
    values = np.clip(rng.normal(0.5, 0.2, 800), 0.0, 1.0)
    times = np.arange(800) * 0.01
    cache = Ar1Cache()
    for i in range(300):
        incremental = cache.fit("g", times[i : i + 500], values[i : i + 500])
        batch = fit_ar1(values[i : i + 500])
        assert incremental.phi == pytest.approx(batch.phi, abs=1e-9)
        assert incremental.mu == pytest.approx(batch.mu, abs=1e-9)
