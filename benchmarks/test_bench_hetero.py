"""Bench: the heterogeneous-cluster extension experiment."""

from benchmarks.conftest import run_once
from repro.experiments import hetero


def test_bench_hetero(benchmark):
    results = run_once(benchmark, hetero.run_hetero, 0)
    # spill protection: capacity awareness eliminates the OOM relaunches
    assert results["hetero-pp"].oom_kills <= results["peak-prediction"].oom_kills
    for r in results.values():
        assert len(r.completed()) == len(r.pods)
