"""Bench: regenerate Fig. 7 (per-node COV per app-mix)."""

import numpy as np

from benchmarks.conftest import BENCH_SETTINGS, run_once
from repro.experiments import fig7


def test_bench_fig7(benchmark):
    data = run_once(benchmark, fig7.run_fig7, "res-ag", BENCH_SETTINGS)
    for covs in data.values():
        assert np.all(np.diff(covs) >= 0)    # sorted, as plotted
    # the bursty low-load mix carries the heaviest variability tail
    assert data["app-mix-3"].max() > 0
