"""Simulator-loop benchmarks under pytest-benchmark.

``python -m repro bench --only sim_dense sim_sparse dlsim_loop`` is the
tracked suite (it emits ``BENCH_simloop.json``, the CI gate); these
tests put the same end-to-end loops under pytest-benchmark and double
as shape assertions on the harness output.
"""

from __future__ import annotations

from repro.bench.simloop import bench_dlsim_loop, bench_sim_dense, bench_sim_sparse
from repro.cluster.cluster import make_paper_cluster
from repro.core.schedulers import make_scheduler
from repro.sim.simulator import KubeKnotsSimulator, SimConfig
from repro.workloads.appmix import generate_appmix_workload


def _dense_sim() -> KubeKnotsSimulator:
    return KubeKnotsSimulator(
        make_paper_cluster(num_nodes=2),
        make_scheduler("cbp"),
        generate_appmix_workload("app-mix-1", duration_s=1.0, seed=3),
        SimConfig(min_horizon_ms=8_000.0),
    )


def test_event_loop_simulation_bench(benchmark):
    result = benchmark.pedantic(
        lambda: _dense_sim().run(), iterations=1, rounds=3
    )
    assert result.makespan_ms > 0.0
    assert len(result.pods) > 0


def test_sim_dense_harness_shape():
    report = bench_sim_dense(quick=True)
    assert report["events_fired"] > 0
    assert report["fast_forwards"] == 0        # dense: nothing to skip
    assert report["ms_run"] == report["after_ms"]
    assert report["before_ms"] > 0.0


def test_sim_sparse_harness_fast_forwards():
    report = bench_sim_sparse(quick=True)
    assert report["fast_forwards"] > 0
    assert report["ticks_skipped"] > 0
    # The idle fast-forward must actually win wall-clock on the sparse
    # workload; the committed baseline shows >3x, gate loosely here.
    assert report["speedup"] > 1.2


def test_dlsim_loop_harness_shape():
    report = bench_dlsim_loop(quick=True)
    assert report["events_fired"] > 0
    assert report["jobs"] > 0
    assert report["ms_run"] > 0.0
