"""Bench: regenerate Fig. 2 (Alibaba trace analysis)."""

import numpy as np

from repro.experiments import fig2


def test_bench_fig2(benchmark):
    data = benchmark(fig2.run_fig2, 3_000, 3_000)
    names, mat = data["batch_metrics"], data["batch_corr"]
    core, mem = names.index("core_util"), names.index("mem_util")
    assert mat[core][mem] > 0.6            # Observation 3
    assert data["avg_cpu_mean"] == pytest_approx(0.47)
    assert abs(data["avg_mem_median"] - 0.45) < 0.06


def pytest_approx(target, tol=0.05):
    class _A:
        def __eq__(self, other):
            return abs(other - target) < tol
    return _A()
