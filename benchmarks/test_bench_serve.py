"""Serve-loop benchmarks under pytest-benchmark.

``python -m repro bench --only serve_loop`` is the tracked suite (it
emits ``BENCH_serve.json``, the CI gate); this module puts the same
injected-arrival serving loop under pytest-benchmark and doubles as a
shape assertion on the harness output.
"""

from __future__ import annotations

from repro.bench.serve import bench_serve_loop


def test_serve_loop_bench(benchmark):
    report = benchmark.pedantic(
        lambda: bench_serve_loop(quick=True), iterations=1, rounds=3
    )
    assert report["submissions"] > 0
    assert report["placed"] > 0
    assert report["ms_per_submission"] > 0.0


def test_serve_loop_harness_shape():
    report = bench_serve_loop(quick=True)
    # The bench itself raises on dropped or unsubmitted pods; re-assert
    # the headline shape here so the invariant is pinned in two places.
    assert report["submissions"] == report["placed"] or report["placed"] > 0
    assert report["events_fired"] > 0
    assert report["sim_ms"] > 0.0
    assert report["sustained_qps"] > 0.0
    assert report["p99_decision_sim_ms"] >= report["p50_decision_sim_ms"]
