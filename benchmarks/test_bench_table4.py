"""Bench: regenerate Table IV (JCT normalized by CBP+PP)."""

from benchmarks.conftest import BENCH_DL_CONFIG, run_once
from repro.experiments import table4


def test_bench_table4(benchmark):
    ratios = run_once(benchmark, table4.run_table4, 11, BENCH_DL_CONFIG)
    assert ratios["cbp-pp"] == (1.0, 1.0, 1.0)
    # every baseline's average JCT is at or above CBP+PP's
    for name in ("res-ag", "gandiva", "tiresias"):
        assert ratios[name][0] >= 0.99
