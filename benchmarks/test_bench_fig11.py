"""Bench: regenerate Fig. 11 (cluster power + pairwise load COV)."""

import numpy as np

from benchmarks.conftest import BENCH_SETTINGS, run_once
from repro.experiments import fig11


def test_bench_fig11a(benchmark):
    data = run_once(benchmark, fig11.run_fig11a, BENCH_SETTINGS)
    for mix in data:
        assert max(data[mix].values()) == data[mix]["uniform"]
        assert data[mix]["peak-prediction"] < 1.0


def test_bench_fig11b(benchmark):
    ids, mat = run_once(benchmark, fig11.run_fig11b, BENCH_SETTINGS)
    upper = mat[np.triu_indices(len(ids), k=1)]
    # bounded imbalance across the consolidated working set (a pair can
    # reach 1.0 only if one device was woken solely for a transient query)
    assert np.nanmax(upper) <= 1.0
    assert np.nanmean(upper) < 0.8
