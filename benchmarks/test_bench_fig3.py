"""Bench: regenerate Fig. 3 (Rodinia suite resource timeline)."""

from repro.experiments import fig3


def test_bench_fig3(benchmark):
    data = benchmark(fig3.run_fig3, 42, 1.0)
    stats = data["stats"]
    # bursty consumption: large bandwidth median-to-peak gap, peaks rare
    assert stats["bw_median_to_peak"] > 50
    assert stats["peak_residency_fraction"] < 0.2
    assert len(data["per_app"]) == 8
