"""Ablation bench: PP's provisioning percentile (80 in the paper)."""

from benchmarks.conftest import run_once
from repro.experiments import ablation


def test_bench_ablation_percentile(benchmark):
    rows = run_once(
        benchmark, ablation.sweep_percentile, (50.0, 80.0, 100.0), "app-mix-1", 8.0, 1
    )
    by_pct = {r["percentile"]: r for r in rows}
    # provisioning at peak (100) forfeits harvesting: fewer resizes
    assert by_pct[100.0]["resizes"] <= by_pct[50.0]["resizes"]
    # all operating points remain essentially crash-free
    assert all(r["oom_kills"] <= 3 for r in rows)
