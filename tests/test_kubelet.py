"""Tests for the kubelet (node agent)."""

from __future__ import annotations

import pytest

from repro.cluster.node import GpuNode
from repro.kube.api import APIServer, EventType
from repro.kube.kubelet import Kubelet, KubeletConfig
from repro.kube.pod import PodPhase
from tests.conftest import make_spec


def bind_and_admit(api, kubelet, spec, now=0.0, alloc=None):
    pod = api.submit(spec, now)
    api.bind(pod, kubelet.node.node_id, f"{kubelet.node.node_id}/gpu0",
             alloc if alloc is not None else spec.requested_mem_mb, now)
    kubelet.admit(pod, now)
    return pod


@pytest.fixture
def setup():
    node = GpuNode.build("n")
    api = APIServer()
    kubelet = Kubelet(node, api, config=KubeletConfig(image_pull_ms=100.0, warm_start_ms=10.0))
    return node, api, kubelet


class TestAdmission:
    def test_cold_start_delays_execution(self, setup):
        node, api, kubelet = setup
        pod = bind_and_admit(api, kubelet, make_spec(duration_ms=50.0))
        kubelet.step(0.0, 10.0)
        assert pod.phase is PodPhase.SCHEDULED  # still pulling
        kubelet.step(100.0, 10.0)
        assert pod.phase is PodPhase.RUNNING

    def test_warm_start_is_fast(self, setup):
        node, api, kubelet = setup
        kubelet.prewarm({"img/toy"})
        pod = bind_and_admit(api, kubelet, make_spec(image="img/toy"))
        kubelet.step(10.0, 10.0)
        assert pod.phase is PodPhase.RUNNING

    def test_second_pod_of_image_is_warm(self, setup):
        node, api, kubelet = setup
        first = bind_and_admit(api, kubelet, make_spec("a", image="img/x", duration_ms=30.0))
        assert kubelet.has_image("img/x")
        kubelet.step(100.0, 10.0)  # first starts after cold pull
        spec = make_spec("b", image="img/x")
        pod = api.submit(spec, 100.0)
        api.bind(pod, "n", "n/gpu0", spec.requested_mem_mb, 100.0)
        kubelet.admit(pod, 100.0)
        kubelet.step(110.0, 10.0)
        assert pod.phase is PodPhase.RUNNING

    def test_wrong_node_rejected(self, setup):
        node, api, kubelet = setup
        pod = api.submit(make_spec(), 0.0)
        api.bind(pod, "other", "other/gpu0", 100.0, 0.0)
        with pytest.raises(ValueError):
            kubelet.admit(pod, 0.0)


class TestExecution:
    def test_uncontended_pod_completes_on_time(self, setup):
        node, api, kubelet = setup
        kubelet.prewarm({"img/toy"})
        pod = bind_and_admit(api, kubelet, make_spec(duration_ms=50.0, sm=0.4))
        t = 0.0
        while not pod.done and t < 1_000.0:
            kubelet.step(t, 10.0)
            t += 10.0
        assert pod.done
        # ~10 ms warm start + 50 ms work, on 10 ms ticks
        assert pod.finished_ms <= 100.0

    def test_contention_stretches_runtime(self, setup):
        node, api, kubelet = setup
        kubelet.prewarm({"img/a", "img/b"})
        a = bind_and_admit(api, kubelet, make_spec("a", image="img/a", duration_ms=100.0, sm=0.9, mem_mb=1000))
        b = bind_and_admit(api, kubelet, make_spec("b", image="img/b", duration_ms=100.0, sm=0.9, mem_mb=1000))
        t = 0.0
        while not (a.done and b.done) and t < 5_000.0:
            kubelet.step(t, 10.0)
            t += 10.0
        # two 0.9-SM pods time-share: both take much longer than solo
        assert a.finished_ms > 180.0 and b.finished_ms > 180.0

    def test_oom_victim_reported_and_freed(self, setup):
        node, api, kubelet = setup
        kubelet.prewarm({"img/a", "img/b"})
        bind_and_admit(api, kubelet, make_spec("a", image="img/a", mem_mb=9_000), alloc=9_000)
        victim = bind_and_admit(
            api, kubelet, make_spec("b", image="img/b", mem_mb=9_000), alloc=7_000
        )
        for t in (0.0, 10.0, 20.0):
            kubelet.step(t, 10.0)
        assert victim.restart_count == 1
        assert victim.uid in [p.uid for p in api.pending_pods()]
        assert kubelet.num_hosted() == 1

    def test_hosted_pods_filter_by_gpu(self, setup):
        node, api, kubelet = setup
        pod = bind_and_admit(api, kubelet, make_spec())
        assert kubelet.hosted_pods("n/gpu0")[0] is pod
        assert kubelet.hosted_pods("n/gpu9") == []


class TestAutoPState:
    def test_idle_device_falls_asleep(self, setup):
        node, api, kubelet = setup
        cfg_idle = kubelet.config.auto_pstate_idle_ms
        t = 0.0
        while t <= cfg_idle + 20.0:
            kubelet.step(t, 10.0)
            t += 10.0
        assert node.gpus[0].asleep

    def test_busy_device_stays_awake(self, setup):
        node, api, kubelet = setup
        kubelet.prewarm({"img/toy"})
        bind_and_admit(api, kubelet, make_spec(duration_ms=10_000.0))
        for t in range(0, 3_000, 10):
            kubelet.step(float(t), 10.0)
        assert not node.gpus[0].asleep

    def test_resize_notifies_api(self, setup):
        node, api, kubelet = setup
        pod = bind_and_admit(api, kubelet, make_spec(mem_mb=2_000), alloc=4_000)
        harvested = kubelet.resize(pod, 2_500, 5.0)
        assert harvested == 1_500
        assert pod.alloc_mb == 2_500
        assert len(api.events_of(EventType.RESIZED)) == 1
