"""Tests for the import-graph layer contract (repro.analysis.layers)."""

from __future__ import annotations

import io
import json
import textwrap
from pathlib import Path

from repro.analysis.layers import (
    FORBIDDEN_LAYER_IMPORTS,
    build_import_graph,
    check_layers,
    layer_of,
    main,
)

REPO_SRC = Path(__file__).parent.parent / "src" / "repro"


def write_pkg(root: Path, files: dict[str, str]) -> Path:
    """Materialize a synthetic ``repro`` package under ``root``."""
    pkg = root / "repro"
    for rel, body in files.items():
        path = pkg / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body))
    for d in [pkg, *[p for p in pkg.rglob("*") if p.is_dir()]]:
        init = d / "__init__.py"
        if not init.exists():
            init.write_text("")
    return pkg


class TestRepoSatisfiesContract:
    def test_src_repro_is_clean(self):
        report = check_layers(REPO_SRC)
        assert report.clean, report.render()
        assert report.modules > 50
        assert report.edges > 100

    def test_default_root_resolves_to_installed_package(self):
        # check_layers() with no root must find the same package.
        assert check_layers().modules == check_layers(REPO_SRC).modules

    def test_contract_covers_the_simulation_stack(self):
        for layer in ("sim", "core", "forecast", "cluster"):
            assert FORBIDDEN_LAYER_IMPORTS[layer] >= {"serve", "sweep", "cli"}
        assert "serve" in FORBIDDEN_LAYER_IMPORTS["experiments"]

    def test_contract_covers_the_scenario_package(self):
        # scenario sits beside sim: it may never import the simulation
        # drivers (or any driver), and the substrate below it may never
        # import scenario — only sim threads a scenario through.
        assert FORBIDDEN_LAYER_IMPORTS["scenario"] >= {"serve", "sweep", "cli", "sim"}
        for layer in ("core", "cluster", "forecast", "kube", "workloads"):
            assert "scenario" in FORBIDDEN_LAYER_IMPORTS[layer]

    def test_scenario_importing_sim_is_a_layer_violation(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "scenario/capacity.py": "from repro.sim.harness import FaultPlan\n",
            "sim/harness.py": "class FaultPlan: ...\n",
        })
        report = check_layers(pkg)
        assert [v["dst_layer"] for v in report.layer_violations] == ["sim"]

    def test_kube_importing_scenario_is_a_layer_violation(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "kube/pod.py": "from repro.scenario.spec import GangMix\n",
            "scenario/spec.py": "class GangMix: ...\n",
        })
        report = check_layers(pkg)
        assert [v["dst_layer"] for v in report.layer_violations] == ["scenario"]


class TestLayerOf:
    def test_layers(self):
        assert layer_of("repro.sim.engine") == "sim"
        assert layer_of("repro.core.schedulers.base") == "core"
        assert layer_of("repro.cli") == "cli"
        assert layer_of("repro") == ""


class TestViolationsAreDetected:
    def test_sim_importing_serve_is_a_layer_violation(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "sim/engine.py": "from repro.serve.queue import AdmissionQueue\n",
            "serve/queue.py": "class AdmissionQueue: ...\n",
        })
        report = check_layers(pkg)
        assert not report.clean
        (violation,) = report.layer_violations
        assert violation["src"] == "repro.sim.engine"
        assert violation["dst"] == "repro.serve.queue"
        assert violation["src_layer"] == "sim"
        assert violation["dst_layer"] == "serve"
        assert violation["line"] == 1

    def test_lazy_function_body_import_still_violates_the_contract(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "core/sched.py": "def f():\n    from repro.cli import main\n    return main\n",
            "cli.py": "def main(): ...\n",
        })
        report = check_layers(pkg)
        assert [v["dst_layer"] for v in report.layer_violations] == ["cli"]
        assert report.cycles == []

    def test_import_cycle_is_detected(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "obs/a.py": "import repro.obs.b\n",
            "obs/b.py": "import repro.obs.c\n",
            "obs/c.py": "import repro.obs.a\n",
        })
        report = check_layers(pkg)
        assert report.cycles == [["repro.obs.a", "repro.obs.b", "repro.obs.c"]]

    def test_lazy_imports_do_not_form_cycles(self, tmp_path):
        # Function-body imports exist to break cycles; only module-scope
        # edges build the DAG.
        pkg = write_pkg(tmp_path, {
            "obs/a.py": "import repro.obs.b\n",
            "obs/b.py": "def f():\n    import repro.obs.a\n",
        })
        assert check_layers(pkg).cycles == []

    def test_type_checking_block_is_not_an_edge(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "obs/a.py": (
                "from typing import TYPE_CHECKING\n"
                "if TYPE_CHECKING:\n"
                "    import repro.obs.b\n"
            ),
            "obs/b.py": "import repro.obs.a\n",
        })
        assert check_layers(pkg).cycles == []

    def test_pragma_exempts_one_import(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "sim/engine.py": (
                "from repro.serve.queue import AdmissionQueue  # kk: disable=layers\n"
            ),
            "serve/queue.py": "class AdmissionQueue: ...\n",
        })
        assert check_layers(pkg).clean

    def test_relative_imports_resolve(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "sim/engine.py": "from . import harness\n",
            "sim/harness.py": "from .engine import x\nx = 1\n",
        })
        report = check_layers(pkg)
        # engine <-> harness at module scope is a real cycle.
        assert report.cycles == [["repro.sim.engine", "repro.sim.harness"]]


class TestGraphShape:
    def test_static_and_lazy_edges_are_separated(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "a.py": "import repro.b\ndef f():\n    import repro.c\n",
            "b.py": "",
            "c.py": "",
        })
        static, lazy = build_import_graph(pkg)
        assert [e.dst for e in static["repro.a"]] == ["repro.b"]
        assert [e.dst for e in lazy["repro.a"]] == ["repro.c"]

    def test_external_imports_are_ignored(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "a.py": "import numpy\nimport threading\nfrom pathlib import Path\n",
        })
        static, lazy = build_import_graph(pkg)
        assert static["repro.a"] == [] and lazy["repro.a"] == []


class TestCliEntry:
    def test_clean_repo_exits_zero(self):
        out = io.StringIO()
        assert main(str(REPO_SRC), out=out) == 0
        assert "clean" in out.getvalue()

    def test_violating_package_exits_one(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "sim/engine.py": "from repro.cli import main\n",
            "cli.py": "def main(): ...\n",
        })
        out = io.StringIO()
        assert main(str(pkg), out=out) == 1
        assert "must not import" in out.getvalue()

    def test_json_format(self, tmp_path):
        pkg = write_pkg(tmp_path, {
            "sim/engine.py": "from repro.cli import main\n",
            "cli.py": "def main(): ...\n",
        })
        out = io.StringIO()
        assert main(str(pkg), fmt="json", out=out) == 1
        doc = json.loads(out.getvalue())
        assert doc["clean"] is False
        assert doc["layer_violations"][0]["src"] == "repro.sim.engine"

    def test_unknown_format_is_usage_error(self):
        assert main(str(REPO_SRC), fmt="yaml", out=io.StringIO()) == 2
