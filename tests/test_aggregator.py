"""Tests for node monitors and the head-node utilization aggregator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.node import GpuNode
from repro.telemetry.aggregator import NodeMonitor, UtilizationAggregator
from repro.workloads.base import ResourceDemand


def tick(node: GpuNode, sm: float = 0.3) -> None:
    """Run one arbitration on every device of a node."""
    for gpu in node.gpus:
        demands = {}
        if gpu.containers:
            uid = next(iter(gpu.containers))
            demands[uid] = ResourceDemand(sm=sm, mem_mb=1_000, tx_mbps=0, rx_mbps=0)
        gpu.arbitrate(demands)


@pytest.fixture
def monitored_nodes():
    nodes = [GpuNode.build(f"node{i}") for i in (1, 2)]
    nodes[0].gpus[0].attach("p", 4_000)
    monitors = [NodeMonitor(n) for n in nodes]
    agg = UtilizationAggregator(monitors)
    return nodes, monitors, agg


class TestNodeMonitor:
    def test_heartbeat_logs_all_metrics(self, monitored_nodes):
        nodes, monitors, _ = monitored_nodes
        tick(nodes[0])
        monitors[0].heartbeat(now=10.0)
        assert "node1/gpu0.sm_util" in monitors[0].tsdb
        assert "node1/gpu0.power_w" in monitors[0].tsdb

    def test_series_window(self, monitored_nodes):
        nodes, monitors, _ = monitored_nodes
        for t in range(20):
            tick(nodes[0])
            monitors[0].heartbeat(float(t))
        w = monitors[0].series("node1/gpu0", "sm_util", window=5.0, now=19.0)
        assert len(w) == 6

    def test_series_many_matches_individual_series(self, monitored_nodes):
        nodes, monitors, _ = monitored_nodes
        for t in range(20):
            tick(nodes[0])
            monitors[0].heartbeat(float(t))
        metrics = ("sm_util", "mem_util", "power_w")
        batch = monitors[0].series_many("node1/gpu0", metrics, window=5.0, now=19.0)
        assert set(batch) == set(metrics)
        for m in metrics:
            single = monitors[0].series("node1/gpu0", m, window=5.0, now=19.0)
            np.testing.assert_array_equal(batch[m].times, single.times)
            np.testing.assert_array_equal(batch[m].values, single.values)


class TestAggregator:
    def test_requires_monitors(self):
        with pytest.raises(ValueError):
            UtilizationAggregator([])

    def test_query_routes_to_node(self, monitored_nodes):
        nodes, monitors, agg = monitored_nodes
        tick(nodes[0])
        for m in monitors:
            m.heartbeat(1.0)
        w = agg.query("node1/gpu0", "sm_util", window=10.0, now=1.0)
        assert w.latest() == pytest.approx(0.3)

    def test_query_unknown_node(self, monitored_nodes):
        _, _, agg = monitored_nodes
        with pytest.raises(KeyError):
            agg.query("node9/gpu0", "sm_util", 1.0, 1.0)

    def test_query_node_stats_covers_five_metrics(self, monitored_nodes):
        nodes, monitors, agg = monitored_nodes
        tick(nodes[0])
        monitors[0].heartbeat(1.0)
        stats = agg.query_node_stats("node1/gpu0", window=10.0, now=1.0)
        assert set(stats) == {"sm_util", "mem_util", "power_w", "tx_mbps", "rx_mbps"}

    def test_snapshot_reflects_allocations(self, monitored_nodes):
        nodes, _, agg = monitored_nodes
        views = {v.gpu_id: v for v in agg.snapshot()}
        assert views["node1/gpu0"].free_alloc_mb == 16_384 - 4_000
        assert views["node2/gpu0"].free_alloc_mb == 16_384

    def test_sorted_by_free_memory_descending(self, monitored_nodes):
        _, _, agg = monitored_nodes
        order = [v.gpu_id for v in agg.sorted_by_free_memory()]
        assert order == ["node2/gpu0", "node1/gpu0"]

    def test_active_views_exclude_sleepers(self, monitored_nodes):
        nodes, _, agg = monitored_nodes
        nodes[1].gpus[0].sleep()
        assert [v.gpu_id for v in agg.active_views()] == ["node1/gpu0"]

    def test_cluster_utilization_matrix(self, monitored_nodes):
        nodes, monitors, agg = monitored_nodes
        for t in range(10):
            for n in nodes:
                tick(n)
            for m in monitors:
                m.heartbeat(float(t))
        mat = agg.cluster_utilization(window=20.0, now=9.0)
        assert mat.shape == (2, 10)
        assert mat[0].max() > 0          # node1 busy
        assert np.all(mat[1] == 0.0)     # node2 idle

    def test_cluster_utilization_batch_matches_per_series_queries(self, monitored_nodes):
        nodes, monitors, agg = monitored_nodes
        for t in range(12):
            for n in nodes:
                tick(n)
            for m in monitors:
                m.heartbeat(float(t))
        mat = agg.cluster_utilization(window=50.0, now=11.0, metric="sm_util")

        rows = []
        for mon in monitors:
            for gpu in mon.node.gpus:
                w = mon.series(gpu.gpu_id, "sm_util", window=50.0, now=11.0)
                rows.append(w.values)
        n = min(len(r) for r in rows)
        expected = np.stack([r[len(r) - n:] for r in rows])
        np.testing.assert_array_equal(mat, expected)
