"""Tests for the metrics package."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.kube.pod import Pod
from repro.metrics.cov import coefficient_of_variation, node_covs_sorted, pairwise_load_cov
from repro.metrics.energy import normalize_energy, summarize_energy
from repro.metrics.jct import jct_cdf, jct_stats, normalized_jct
from repro.metrics.percentiles import cluster_percentiles, node_percentiles
from repro.metrics.qos import qos_report, violations_per_hour
from repro.metrics.report import format_series, format_table
from tests.conftest import make_spec


class TestPercentiles:
    def test_basic_percentiles(self):
        series = np.concatenate([np.full(99, 0.5), [1.0]])
        p = node_percentiles(series, trim_idle_edges=False)
        assert p.p50 == pytest.approx(50.0)
        assert p.max == pytest.approx(100.0)

    def test_idle_edges_trimmed(self):
        series = np.concatenate([np.zeros(50), np.full(50, 0.8), np.zeros(50)])
        p = node_percentiles(series)
        assert p.p50 == pytest.approx(80.0)

    def test_fully_idle_node(self):
        p = node_percentiles(np.zeros(100))
        assert p.as_tuple() == (0.0, 0.0, 0.0, 0.0)

    def test_empty_series(self):
        assert node_percentiles(np.array([])).max == 0.0

    def test_cluster_pools_busy_windows(self):
        series = {
            "a": np.concatenate([np.zeros(10), np.full(10, 1.0)]),
            "b": np.zeros(20),
        }
        p = cluster_percentiles(series)
        assert p.p50 == pytest.approx(100.0)   # idle node contributes nothing

    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=50))
    def test_percentiles_ordered(self, xs):
        p = node_percentiles(np.asarray(xs), trim_idle_edges=False)
        assert p.p50 <= p.p90 <= p.p99 <= p.max


class TestCov:
    def test_constant_series_zero_cov(self):
        assert coefficient_of_variation(np.full(10, 5.0)) == 0.0

    def test_known_cov(self):
        series = np.array([1.0, 3.0])
        assert coefficient_of_variation(series) == pytest.approx(0.5)

    def test_sorted_per_node(self):
        series = {"a": np.array([1.0, 1.0]), "b": np.array([1.0, 3.0])}
        covs = node_covs_sorted(series, trim_idle_edges=False)
        assert list(covs) == sorted(covs)

    def test_pairwise_matrix_upper_triangle(self):
        series = {"a": np.random.default_rng(0).random(50), "b": np.random.default_rng(1).random(50)}
        ids, mat = pairwise_load_cov(series)
        assert ids == ["a", "b"]
        assert np.isnan(mat[1, 0]) and not np.isnan(mat[0, 1])

    def test_pairwise_empty(self):
        ids, mat = pairwise_load_cov({})
        assert ids == [] and mat.shape == (0, 0)


class TestQoS:
    @staticmethod
    def finished_pod(jct_ms, threshold=150.0):
        pod = Pod(spec=make_spec(qos_threshold_ms=threshold))
        pod.mark_submitted(0.0)
        pod.mark_succeeded(jct_ms)
        return pod

    def test_report_counts_violations(self):
        pods = [self.finished_pod(100), self.finished_pod(200), self.finished_pod(120)]
        report = qos_report(pods)
        assert report.total_queries == 3
        assert report.violations == 1
        assert report.per_kilo == pytest.approx(1000 / 3)

    def test_batch_pods_ignored(self):
        batch = Pod(spec=make_spec())
        batch.mark_submitted(0.0)
        batch.mark_succeeded(1e6)
        report = qos_report([batch])
        assert report.total_queries == 0

    def test_violations_per_hour(self):
        assert violations_per_hour(10, 1_800.0) == 20.0
        with pytest.raises(ValueError):
            violations_per_hour(1, 0.0)


class TestJct:
    def test_stats(self):
        s = jct_stats(np.array([1.0, 2.0, 3.0, 100.0]))
        assert s.mean == pytest.approx(26.5)
        assert s.median == pytest.approx(2.5)
        assert s.n == 4

    def test_normalized_table(self):
        jcts = {"base": np.array([2.0, 4.0]), "ref": np.array([1.0, 2.0])}
        table = normalized_jct(jcts, reference="ref")
        assert table["base"][0] == pytest.approx(2.0)
        assert table["ref"] == pytest.approx((1.0, 1.0, 1.0))

    def test_unknown_reference(self):
        with pytest.raises(KeyError):
            normalized_jct({"a": np.array([1.0])}, reference="b")

    def test_cdf(self):
        x, f = jct_cdf(np.array([3.0, 1.0, 2.0]))
        assert list(x) == [1.0, 2.0, 3.0]
        assert f[-1] == 1.0

    def test_empty_jcts(self):
        s = jct_stats(np.array([]))
        assert np.isnan(s.mean) and s.n == 0


class TestEnergy:
    def test_summary_mean_power(self):
        summary = summarize_energy({"a": 100.0, "b": 200.0}, makespan_ms=10_000.0)
        assert summary.total_j == 300.0
        assert summary.mean_power_w == pytest.approx(30.0)

    def test_normalize_to_max(self):
        out = normalize_energy({"a": 50.0, "b": 100.0})
        assert out == {"a": 0.5, "b": 1.0}

    def test_normalize_to_reference(self):
        out = normalize_energy({"a": 50.0, "b": 100.0}, reference="a")
        assert out["b"] == 2.0

    def test_empty(self):
        assert normalize_energy({}) == {}


class TestReport:
    def test_table_alignment(self):
        out = format_table(["name", "x"], [("a", 1.5), ("bb", 2.0)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "1.50" in out and "bb" in out

    def test_series(self):
        out = format_series("y", [1, 2], [0.1, 0.2])
        assert "0.100" in out
