"""Tests for the power / energy-efficiency models (Fig. 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cluster.power import (
    SANDY_BRIDGE,
    WESTMERE,
    CpuEfficiencyModel,
    GpuPowerModel,
    energy_proportionality_zone,
    gpu_energy_efficiency,
)


class TestGpuPowerModel:
    def test_power_interpolates_idle_to_tdp(self):
        m = GpuPowerModel(tdp_watts=250, idle_watts=25)
        assert m.power(0.0) == 25
        assert m.power(1.0) == 250
        assert m.power(0.5) == pytest.approx(137.5)

    def test_power_clamps_utilization(self):
        m = GpuPowerModel()
        assert m.power(-0.5) == m.power(0.0)
        assert m.power(1.5) == m.power(1.0)

    def test_sleep_power_below_idle(self):
        m = GpuPowerModel()
        assert m.power(0.0, asleep=True) == m.sleep_watts < m.idle_watts

    def test_efficiency_normalized_at_full_load(self):
        m = GpuPowerModel()
        assert m.efficiency(1.0) == pytest.approx(1.0)
        assert m.efficiency(0.0) == 0.0

    def test_gpu_efficiency_strictly_increasing(self):
        """The paper's Observation 1: GPU EE rises monotonically."""
        u = np.linspace(0.01, 1.0, 100)
        eff = np.asarray(gpu_energy_efficiency(u))
        assert np.all(np.diff(eff) > 0)
        assert eff[-1] == pytest.approx(1.0)

    def test_energy_scales_with_duration(self):
        m = GpuPowerModel()
        assert m.energy_mj(0.5, 200.0) == pytest.approx(2 * m.energy_mj(0.5, 100.0))

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_efficiency_bounded(self, u):
        assert 0.0 <= GpuPowerModel().efficiency(u) <= 1.0 + 1e-9


class TestCpuEfficiencyModel:
    def test_cpu_peak_is_interior(self):
        """CPUs peak at 60-80 % utilization, not at full load (Fig. 1)."""
        peak = SANDY_BRIDGE.peak_efficiency_utilization()
        assert 0.55 <= peak <= 0.85

    def test_cpu_efficiency_exceeds_one_at_peak(self):
        """Normalized to u=1, the interior peak sits above 1.0."""
        peak_u = SANDY_BRIDGE.peak_efficiency_utilization()
        assert SANDY_BRIDGE.efficiency(peak_u) > 1.0

    def test_westmere_less_proportional_than_sandybridge(self):
        """Older CPUs are less energy proportional at low load."""
        assert WESTMERE.efficiency(0.2) < SANDY_BRIDGE.efficiency(0.2)

    def test_efficiency_zero_at_zero(self):
        assert SANDY_BRIDGE.efficiency(0.0) == 0.0

    def test_curve_matches_scalar(self):
        u = np.asarray([0.1, 0.5, 0.9])
        curve = SANDY_BRIDGE.efficiency_curve(u)
        for ui, ci in zip(u, curve):
            assert ci == pytest.approx(SANDY_BRIDGE.efficiency(float(ui)))

    def test_proportionality_zone_contains_peak(self):
        lo, hi = energy_proportionality_zone(SANDY_BRIDGE)
        peak = SANDY_BRIDGE.peak_efficiency_utilization()
        assert lo <= peak <= hi

    def test_power_fraction_monotone(self):
        u = np.linspace(0, 1, 50)
        p = [SANDY_BRIDGE.power_fraction(x) for x in u]
        assert all(b >= a for a, b in zip(p, p[1:]))

    @given(st.floats(min_value=0.05, max_value=0.6), st.floats(min_value=1.2, max_value=4.0))
    def test_custom_models_peak_not_at_zero(self, alpha, gamma):
        model = CpuEfficiencyModel("custom", alpha, gamma)
        peak = model.peak_efficiency_utilization()
        assert 0.0 < peak <= 1.0
