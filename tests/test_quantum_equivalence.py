"""A/B bit-identity and property tests for the vectorized quantum.

The array-native execution quantum (:mod:`repro.cluster.quantum`) is a
pure substrate swap: a run with the engine engaged must produce
**bit-identical** :class:`SimResult` payloads — makespan, energy,
every telemetry series, every pod outcome — to the unmodified
per-pod ``Kubelet.step`` loop.  These tests pin that contract on the
scenario matrix the engine has to survive (dense ticks, device
faults, diurnal gang scheduling, occupancy-threshold crossings), plus
property tests tying the two batched kernels — phase-table lookup and
victim selection — to their scalar references.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.cluster.gpu import GPU
from repro.cluster.quantum import demand_rows_at, pick_victim_slots
from repro.core.schedulers import make_scheduler
from repro.obs import Observability
from repro.scenario.gangs import apply_gang_mix
from repro.scenario.spec import SCENARIOS
from repro.sim.simulator import DeviceFault, KubeKnotsSimulator, SimConfig
from repro.workloads.appmix import generate_appmix_workload
from repro.workloads.base import Phase, ResourceDemand, WorkloadTrace

from tests.test_sim_equivalence import assert_kk_identical, pod_signature

FAULTS = (
    DeviceFault(at_ms=1_500.0, gpu_id="node1/gpu0"),
    DeviceFault(at_ms=2_500.0, gpu_id="node3/gpu2"),
)


def _build(
    sched_name: str = "cbp",
    n_nodes: int = 32,
    faults: tuple = (),
    scenario=None,
    vectorized: bool = True,
    load: float = 1.0,
    obs: Observability | None = None,
) -> KubeKnotsSimulator:
    workload = generate_appmix_workload(
        "app-mix-1", duration_s=4.0, seed=3, load_factor=load
    )
    if scenario is not None and scenario.gangs is not None:
        workload = apply_gang_mix(workload, scenario.gangs)
    scheduler = make_scheduler(sched_name)
    scheduler.vectorized = vectorized
    return KubeKnotsSimulator(
        make_paper_cluster(num_nodes=n_nodes, gpus_per_node=8),
        scheduler,
        workload,
        SimConfig(min_horizon_ms=20_000.0, faults=tuple(faults), scenario=scenario),
        obs=obs,
    )


def _run_pair(tag: str, min_batch: int | None = 0, **kw) -> None:
    """Run fast-on vs fast-off and require bit-identical results.

    ``min_batch=0`` forces every due tick through the vectorized path;
    ``None`` keeps the default occupancy crossover so mode transitions
    (legacy -> fast -> legacy) are exercised too.
    """
    fast = _build(**kw)
    engine = fast.orchestrator.quantum
    assert engine is not None, f"{tag}: engine did not engage"
    if min_batch is not None:
        engine.min_batch = min_batch
    result_fast = fast.run()
    if min_batch == 0:
        assert engine.fast_ticks > 0, f"{tag}: vectorized path never ran"

    slow = _build(**kw)
    slow.orchestrator.quantum = None
    for kubelet in slow.orchestrator.kubelets.values():
        kubelet.engine = None
    result_slow = slow.run()

    assert_kk_identical(result_fast, result_slow, tag)
    assert pod_signature(result_fast) == pod_signature(result_slow)


class TestBitIdentity:
    def test_cbp(self):
        _run_pair("cbp", sched_name="cbp")

    def test_peak_prediction(self):
        _run_pair("peak-prediction", sched_name="peak-prediction")

    def test_device_faults(self):
        """Failure eviction + requeue replays through the object path."""
        _run_pair("faults", sched_name="cbp", faults=FAULTS)

    def test_diurnal_gang(self):
        """Gang scheduler delegates ``quantum_ok`` to its inner policy."""
        _run_pair("gang", sched_name="cbp", scenario=SCENARIOS["diurnal-gang"])

    def test_dense(self):
        """Overloaded cluster: OOM kills, evictions, queue churn."""
        _run_pair("dense", sched_name="cbp", load=8.0)

    def test_dense_default_threshold(self):
        """Default ``min_batch`` crosses the occupancy threshold both
        ways mid-run — the progress-authority handoff (flush on the way
        down, resync on the way up) must not perturb anything."""
        _run_pair("dense-mbdef", min_batch=None, sched_name="cbp", load=8.0)


class TestEngagement:
    def test_engages_when_dark_and_vectorized(self):
        sim = _build()
        engine = sim.orchestrator.quantum
        assert engine is not None
        for kubelet in sim.orchestrator.kubelets.values():
            assert kubelet.engine is engine

    def test_disengaged_when_not_vectorized(self):
        sim = _build(vectorized=False)
        assert sim.orchestrator.quantum is None

    def test_disengaged_under_observability(self):
        sim = _build(obs=Observability(trace=False, metrics=False, audit=True))
        assert sim.orchestrator.quantum is None

    def test_disengaged_under_sanitizer(self):
        sim = _build(
            obs=Observability(trace=False, metrics=False, audit=False, sanitize=True)
        )
        assert sim.orchestrator.quantum is None

    def test_gang_scheduler_delegates(self):
        inner = make_scheduler("cbp")
        inner.vectorized = True
        sim = _build(scenario=SCENARIOS["diurnal-gang"])
        assert sim.orchestrator.quantum is not None

    def test_sparse_run_stays_legacy_at_default_threshold(self):
        """A load-1.0 run never reaches ``min_batch`` running pods, so
        the default threshold routes every tick through the object
        path — the engine is attached but the vector pass never fires."""
        sim = _build()
        result = sim.run()
        assert result is not None
        assert sim.orchestrator.quantum.fast_ticks == 0


# -- property tests: batched kernels vs scalar references -----------------


def _trace(durations, name="t") -> WorkloadTrace:
    phases = tuple(
        Phase(
            duration_ms=d,
            demand=ResourceDemand(
                sm=0.1 * (i + 1) % 1.0 or 0.05,
                mem_mb=100.0 * (i + 1),
                tx_mbps=5.0 * i,
                rx_mbps=3.0 * i,
            ),
        )
        for i, d in enumerate(durations)
    )
    return WorkloadTrace(name=name, phases=phases)


class TestDemandRowsAt:
    @pytest.mark.parametrize(
        "durations",
        [
            (100.0,),
            (100.0, 250.0, 50.0),
            (1.0, 1.0, 1.0, 1000.0),
        ],
    )
    def test_matches_scalar_lookup(self, durations):
        trace = _trace(durations)
        cum, rows = trace.demand_table()
        total = float(sum(durations))
        # Boundaries, interiors, zero, and past-the-end progress.
        probes = sorted(
            {0.0, total, total + 123.4}
            | {float(c) for c in cum}
            | {float(c) - 0.5 for c in cum}
            | {float(c) + 0.5 for c in cum}
        )
        probes = [p for p in probes if p >= 0.0]
        got = demand_rows_at(cum, rows, np.array(probes))
        for k, p in enumerate(probes):
            want = trace.demand_at(p)
            assert got[k, 0] == want.sm, p
            assert got[k, 1] == want.mem_mb, p
            assert got[k, 2] == want.tx_mbps, p
            assert got[k, 3] == want.rx_mbps, p

    def test_phase_boundary_is_right_exclusive(self):
        trace = _trace((100.0, 100.0))
        cum, rows = trace.demand_table()
        got = demand_rows_at(cum, rows, np.array([100.0]))
        assert got[0, 1] == trace.demand_at(100.0).mem_mb == 200.0


def _victim_fixture(demand_mem, alloc, attach_order):
    """A standalone GPU with containers attached in ``attach_order``,
    plus the pod-major arrays mirroring it (slot i == pod ``p{i}``)."""
    gpu = GPU("nodeX/gpu0", mem_capacity_mb=1_000.0)
    for i in attach_order:
        gpu.attach(f"p{i}", alloc_mb=alloc[i])
    demands = {
        f"p{i}": ResourceDemand(sm=0.1, mem_mb=demand_mem[i], tx_mbps=0, rx_mbps=0)
        for i in attach_order
    }
    n = len(alloc)
    dev = np.zeros(n, dtype=np.intp)
    d_mem = np.array([demand_mem[i] for i in range(n)], dtype=float)
    alloc_arr = np.array([alloc[i] for i in range(n)], dtype=float)
    seq = np.array(
        [gpu.containers[f"p{i}"].attach_seq for i in range(n)], dtype=np.int64
    )
    return gpu, demands, dev, d_mem, alloc_arr, seq


class TestPickVictimSlots:
    def test_prefers_over_reservation(self):
        # Slot 1 bursts past its reservation; slot 2 attached later but
        # stays within it — the burster must die, matching the legacy
        # "over first" pool restriction.
        gpu, demands, dev, d_mem, alloc, seq = _victim_fixture(
            demand_mem=[200.0, 500.0, 300.0],
            alloc=[300.0, 400.0, 300.0],
            attach_order=[0, 1, 2],
        )
        want = gpu._pick_victim(demands)
        got = pick_victim_slots(dev, d_mem, alloc, seq, np.array([0]))
        assert want == "p1"
        assert got == {0: 1}

    def test_all_within_reservation_falls_back_to_latest(self):
        gpu, demands, dev, d_mem, alloc, seq = _victim_fixture(
            demand_mem=[200.0, 200.0, 200.0],
            alloc=[300.0, 300.0, 300.0],
            attach_order=[0, 1, 2],
        )
        want = gpu._pick_victim(demands)
        got = pick_victim_slots(dev, d_mem, alloc, seq, np.array([0]))
        assert want == "p2"
        assert got == {0: 2}

    def test_tie_break_uses_attach_seq_not_slot_order(self):
        # Attach out of slot order: p0 attached last, so it has the
        # greatest attach_seq and loses the tie-break among equals.
        gpu, demands, dev, d_mem, alloc, seq = _victim_fixture(
            demand_mem=[400.0, 400.0, 400.0],
            alloc=[300.0, 300.0, 300.0],
            attach_order=[2, 1, 0],
        )
        want = gpu._pick_victim(demands)
        got = pick_victim_slots(dev, d_mem, alloc, seq, np.array([0]))
        assert want == "p0"
        assert got == {0: 0}

    def test_epsilon_guard_matches_legacy(self):
        # Demand exactly alloc + 1e-10 is *within* reservation under the
        # 1e-9 epsilon — both paths must fall back to the latest attach.
        gpu, demands, dev, d_mem, alloc, seq = _victim_fixture(
            demand_mem=[300.0 + 1e-10, 200.0],
            alloc=[300.0, 300.0],
            attach_order=[0, 1],
        )
        want = gpu._pick_victim(demands)
        got = pick_victim_slots(dev, d_mem, alloc, seq, np.array([0]))
        assert want == "p1"
        assert got == {0: 1}

    def test_multiple_devices(self):
        n = 4
        dev = np.array([0, 0, 3, 3], dtype=np.intp)
        d_mem = np.array([500.0, 200.0, 100.0, 100.0])
        alloc = np.array([300.0, 300.0, 300.0, 300.0])
        seq = np.array([1, 2, 3, 4], dtype=np.int64)
        got = pick_victim_slots(dev, d_mem, alloc, seq, np.array([0, 3]))
        # Device 0: slot 0 is the only burster.  Device 3: nobody
        # bursts, greatest attach_seq (slot 3) dies.
        assert got == {0: 0, 3: 3}
        assert n == len(dev)


class TestBincountOrderPin:
    def test_bincount_matches_sequential_sum(self):
        """The engine's segment sums rely on ``np.bincount`` weights
        accumulating in input order — the same left-to-right order as
        the object path's ``sum()`` over each device's demands dict.
        Pin that: a pairwise reduction of these weights rounds
        differently, so drift here would break bit-identity."""
        rng = np.random.default_rng(7)
        w = rng.uniform(0.01, 0.99, size=513)
        dev = np.zeros(w.size, dtype=np.intp)
        binned = np.bincount(dev, weights=w, minlength=1)[0]
        seq = 0.0
        for x in w:
            seq += x
        assert binned == seq
