"""Tests for the shared-GPU device plugin."""

from __future__ import annotations

import pytest

from repro.cluster.node import GpuNode
from repro.kube.device_plugin import DevicePluginError, SharedGPUDevicePlugin


@pytest.fixture
def node() -> GpuNode:
    return GpuNode.build("n", num_gpus=2)


class TestSharedMode:
    def test_multiple_pods_share_a_device(self, node):
        plugin = SharedGPUDevicePlugin(node)
        plugin.allocate("n/gpu0", "a", 4_000)
        plugin.allocate("n/gpu0", "b", 4_000)
        assert len(node.gpus[0].containers) == 2

    def test_allocatable_respects_reservations(self, node):
        plugin = SharedGPUDevicePlugin(node)
        plugin.allocate("n/gpu0", "a", 16_000)
        assert not plugin.allocatable("n/gpu0", 1_000)
        assert plugin.allocatable("n/gpu1", 1_000)

    def test_over_allocation_raises(self, node):
        plugin = SharedGPUDevicePlugin(node)
        plugin.allocate("n/gpu0", "a", 16_000)
        with pytest.raises(DevicePluginError):
            plugin.allocate("n/gpu0", "b", 1_000)

    def test_free_releases(self, node):
        plugin = SharedGPUDevicePlugin(node)
        plugin.allocate("n/gpu0", "a", 16_000)
        plugin.free("n/gpu0", "a")
        assert plugin.allocatable("n/gpu0", 16_000)

    def test_resize_returns_harvested(self, node):
        plugin = SharedGPUDevicePlugin(node)
        plugin.allocate("n/gpu0", "a", 8_000)
        assert plugin.resize("n/gpu0", "a", 2_000) == 6_000


class TestExclusiveMode:
    def test_one_pod_per_device(self, node):
        plugin = SharedGPUDevicePlugin(node, sharing_enabled=False)
        plugin.allocate("n/gpu0", "a", 100)
        assert not plugin.allocatable("n/gpu0", 100)
        with pytest.raises(DevicePluginError):
            plugin.allocate("n/gpu0", "b", 100)

    def test_resize_unsupported(self, node):
        """The stock plugin has no docker-resize path."""
        plugin = SharedGPUDevicePlugin(node, sharing_enabled=False)
        plugin.allocate("n/gpu0", "a", 100)
        with pytest.raises(DevicePluginError):
            plugin.resize("n/gpu0", "a", 50)
