"""Tests for the scheduler decision audit log.

Covers the log itself (recording, queries, JSONL round-trip) and the
evidence contract of the instrumented policies: every CBP decision
carries the Spearman correlations its gate evaluated, every PP bind the
peak forecast it used.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.core.orchestrator import KubeKnots
from repro.core.schedulers import CBPScheduler, PeakPredictionScheduler
from repro.obs.audit import KINDS, DecisionAuditLog, NullAuditLog
from repro.obs.context import Observability
from repro.obs.tracer import SimClock
from repro.sim.simulator import run_appmix
from repro.workloads.base import Phase, QoSClass, ResourceDemand, WorkloadTrace
from tests.conftest import make_spec


class TestAuditLog:
    def test_record_and_queries(self):
        log = DecisionAuditLog(SimClock(10.0))
        log.begin_pass("cbp", ts=10.0)
        log.record("bind", pod_uid="p1", gpu_id="n0/gpu0", alloc_mb=1_000)
        log.record("reject", pod_uid="p2", queue_depth=2)
        log.begin_pass("cbp", ts=20.0)
        log.record("resize", pod_uid="p1", gpu_id="n0/gpu0", alloc_mb=800)

        assert len(log) == 3
        assert [r.pass_id for r in log.records] == [0, 0, 1]
        assert log.binds()[0].pod_uid == "p1"
        assert log.rejections()[0].queue_depth == 2
        assert log.resizes()[0].ts == 20.0
        assert [r.kind for r in log.for_pod("p1")] == ["bind", "resize"]
        assert set(log.passes()) == {0, 1}
        assert log.summary() == {"bind": 1, "reject": 1, "resize": 1}

    def test_unknown_kind_rejected(self):
        log = DecisionAuditLog()
        log.begin_pass("cbp")
        with pytest.raises(ValueError, match="unknown decision kind"):
            log.record("destroy")

    def test_jsonl_round_trip(self, tmp_path):
        log = DecisionAuditLog()
        log.begin_pass("pp", ts=5.0)
        log.record(
            "bind", pod_uid="p1", image="img/x", qos="batch",
            gpu_id="n0/gpu0", alloc_mb=512.0, queue_depth=3,
            evidence={"forecast": {"predicted_peak_util": 0.4}},
        )
        log.record("sleep", gpu_id="n1/gpu0")
        path = tmp_path / "audit.jsonl"
        assert log.to_jsonl(path) == 2
        loaded = DecisionAuditLog.read_jsonl(path)
        assert loaded == log.records

    def test_null_log_is_inert(self):
        log = NullAuditLog()
        assert log.enabled is False
        log.begin_pass("cbp")
        log.record("bind", pod_uid="p1")
        assert len(log) == 0


def _ramp_trace(name: str, rising: bool) -> WorkloadTrace:
    """A memory ramp whose direction controls the Spearman sign."""
    mems = [1_000.0, 1_250.0, 1_500.0, 1_750.0, 2_000.0]
    if not rising:
        mems = mems[::-1]
    phases = [
        Phase(20.0, ResourceDemand(sm=0.3, mem_mb=m, tx_mbps=1.0, rx_mbps=1.0))
        for m in mems
    ]
    return WorkloadTrace(name, phases, qos_class=QoSClass.BATCH)


class TestCBPCorrelationEvidence:
    """CBP records carry the ρ values its gate actually evaluated."""

    def _cluster_with_resident(self):
        obs = Observability()
        kk = KubeKnots(make_paper_cluster(num_nodes=1), CBPScheduler(), obs=obs)
        resident = kk.api.submit(
            make_spec("a", image="img/a", mem_mb=1_500, peak_mem_mb=2_000,
                      requested_mem_mb=4_000.0),
            0.0,
        )
        kk.scheduling_pass(0.0)
        assert obs.audit.binds()[0].pod_uid == resident.uid
        kk.knots.profiles.record_trace("img/a", _ramp_trace("a", rising=True))
        return kk, obs

    def test_correlated_pod_rejected_with_rho_evidence(self):
        kk, obs = self._cluster_with_resident()
        # Same ramp shape as the resident: ρ ~ +1, above the 0.5 gate.
        kk.knots.profiles.record_trace("img/b", _ramp_trace("b", rising=True))
        pod = kk.api.submit(
            make_spec("b", image="img/b", requested_mem_mb=4_000.0), 1.0
        )
        kk.scheduling_pass(1.0)

        rejects = [r for r in obs.audit.rejections() if r.pod_uid == pod.uid]
        assert len(rejects) == 1
        attempts = rejects[0].evidence["attempts"]
        correlated = [a for a in attempts if a["outcome"] == "correlated"]
        assert correlated, f"expected a correlation-gate refusal, got {attempts}"
        rho = correlated[0]["correlations"]["img/a"]
        assert rho >= 0.5

    def test_uncorrelated_pod_bound_with_rho_evidence(self):
        kk, obs = self._cluster_with_resident()
        # Opposite ramp: ρ ~ -1, gate passes, and the bind record still
        # carries the evaluated correlation.
        kk.knots.profiles.record_trace("img/c", _ramp_trace("c", rising=False))
        pod = kk.api.submit(
            make_spec("c", image="img/c", requested_mem_mb=4_000.0), 1.0
        )
        kk.scheduling_pass(1.0)

        binds = [r for r in obs.audit.binds() if r.pod_uid == pod.uid]
        assert len(binds) == 1
        evidence = binds[0].evidence
        assert evidence["correlations"] == {"img/a": pytest.approx(-1.0, abs=0.2)}
        assert evidence["attempts"][-1]["outcome"] == "bound"
        assert evidence["percentile"] == 80.0


def _run(scheduler, obs, duration_s=3.0):
    return run_appmix(
        "app-mix-1", scheduler, duration_s=duration_s, seed=2, num_nodes=3, obs=obs
    )


class TestAuditCompleteness:
    """One record per decision, cross-checked against the action stream."""

    @pytest.mark.parametrize("make", [CBPScheduler, PeakPredictionScheduler])
    def test_one_record_per_decision(self, make):
        obs = Observability(trace=False)
        _run(make(), obs)
        audit = obs.audit
        assert len(audit) > 0
        assert all(r.kind in KINDS for r in audit.records)

        # Every applied action of an audited kind has exactly one record.
        actions = obs.metrics.get("scheduler_actions_total")
        assert len(audit.binds()) == actions.value(kind="bind")
        assert len(audit.resizes()) == actions.value(kind="resize")
        assert len(audit.of_kind("sleep")) == actions.value(kind="sleep")
        assert len(audit.of_kind("wake")) == actions.value(kind="wake")
        # ... and every bind reached a kubelet admission.
        admitted = obs.metrics.get("pods_admitted_total")
        assert admitted.value() == len(audit.binds())

    @pytest.mark.parametrize("make", [CBPScheduler, PeakPredictionScheduler])
    def test_at_most_one_verdict_per_pod_per_pass(self, make):
        obs = Observability(trace=False)
        _run(make(), obs)
        for pass_id, records in obs.audit.passes().items():
            verdicts = [r.pod_uid for r in records if r.kind in ("bind", "reject")]
            assert len(verdicts) == len(set(verdicts)), (
                f"pod audited twice in pass {pass_id}"
            )

    def test_cbp_binds_carry_correlation_field(self):
        obs = Observability(trace=False)
        _run(CBPScheduler(), obs)
        for rec in obs.audit.binds():
            assert "correlations" in rec.evidence
            assert rec.evidence["attempts"][-1]["outcome"] == "bound"
            assert rec.scheduler == "cbp"

    def test_pp_binds_carry_forecast(self):
        obs = Observability(trace=False)
        result = _run(PeakPredictionScheduler(), obs)
        binds = obs.audit.binds()
        assert binds, "PP run placed no pods"
        for rec in binds:
            assert "forecast" in rec.evidence, rec
            assert rec.evidence["admitted_via"] in ("correlation-gate", "forecast", "wake")
        # Forecasts that went through the ARIMA branch carry the
        # predicted peak the admission compared against.
        arima = [
            r for r in binds
            if r.evidence["admitted_via"] == "forecast"
            and "predicted_peak_util" in r.evidence["forecast"]
        ]
        for rec in arima:
            f = rec.evidence["forecast"]
            assert 0.0 <= f["predicted_peak_util"] <= 1.0
            assert f["admitted"] is True
        assert result.makespan_ms > 0

    def test_rejects_carry_candidate_attempts(self):
        obs = Observability(trace=False)
        _run(CBPScheduler(), obs, duration_s=4.0)
        for rec in obs.audit.rejections():
            assert rec.pod_uid is not None
            assert rec.gpu_id is None
            assert isinstance(rec.evidence["attempts"], list)

    def test_disabled_obs_records_nothing(self):
        obs = Observability.disabled()
        _run(CBPScheduler(), obs)
        assert len(obs.audit) == 0
        assert len(obs.tracer) == 0
        assert obs.metrics.render() == ""
