"""One test per numbered Observation in the paper (Sec. II).

The five observations are the empirical premises the schedulers are
designed around; each test asserts that the reproduction's substrate
actually exhibits the premise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.cluster.power import SANDY_BRIDGE, gpu_energy_efficiency
from repro.core.orchestrator import KubeKnots
from repro.core.schedulers import make_scheduler
from repro.forecast.arima import forecast_series
from repro.forecast.correlation import spearman
from repro.workloads.alibaba import batch_task_series, synthesize_latency_containers
from repro.workloads.djinn_tonic import inference_memory_mb, tf_managed_memory_mb
from repro.workloads.rodinia import make_rodinia_trace


class TestObservation1:
    """Keeping GPU utilization high is essential for energy efficiency
    (unlike CPUs, whose efficiency peaks in the interior)."""

    def test_gpu_efficiency_maximized_only_at_full_load(self):
        u = np.linspace(0.05, 1.0, 50)
        eff = np.asarray(gpu_energy_efficiency(u))
        assert np.argmax(eff) == len(u) - 1

    def test_cpu_efficiency_peaks_before_full_load(self):
        u = np.linspace(0.05, 1.0, 200)
        eff = SANDY_BRIDGE.efficiency_curve(u)
        assert 0 < np.argmax(eff) < len(u) - 1


class TestObservation2:
    """Jobs overstate their requirements: provisioning for the
    average case + harvesting beats static worst-case provisioning."""

    def test_population_overstates_memory(self):
        pop = synthesize_latency_containers(5_000, np.random.default_rng(0))
        # average usage sits well below the provisioned amount (1.0)
        assert np.mean(pop["mem_avg"]) < 0.55

    def test_harvesting_reclaims_the_gap(self):
        rng = np.random.default_rng(1)
        trace = make_rodinia_trace("kmeans", rng, requested_headroom=1.5)
        p80 = trace.mem_percentile(80)
        assert p80 < 0.5 * trace.requested_mem_mb


class TestObservation3:
    """Batch tasks' utilization metrics correlate strongly — early
    markers for proactive harvesting, predictable ~15 s ahead."""

    def test_load_averages_lead_core_utilization(self):
        series = batch_task_series(600.0, rng=np.random.default_rng(2))
        assert spearman(series["core_util"], series["load_15"]) > 0.4

    def test_batch_series_forecastable(self):
        series = batch_task_series(600.0, rng=np.random.default_rng(3))
        window = series["core_util"][:60]
        pred = forecast_series(window, steps=1)[0]
        actual = series["core_util"][60]
        # materially better than a naive global-mean guess
        assert abs(pred - actual) < abs(series["core_util"].mean() - actual) + 0.15


class TestObservation4:
    """A GPU batch application's footprint is predictable through
    correlation markers: bandwidth bursts precede compute peaks."""

    def test_rx_burst_precedes_memory_peak(self):
        rng = np.random.default_rng(4)
        trace = make_rodinia_trace("leukocyte", rng, scale=5.0)
        samples = trace.sample_series(1.0)
        peak_t = int(np.argmax(samples["mem_mb"]))
        rx_before = samples["rx_mbps"][max(peak_t - 30, 0) : peak_t]
        assert rx_before.size and rx_before.max() > 10 * np.median(samples["rx_mbps"])


class TestObservation5:
    """Framework APIs must be exposed to the scheduler: TF's default
    allocator earmarks the device regardless of need, and the profile
    store is what un-fragments it."""

    def test_tf_earmark_dwarfs_actual_need(self):
        for name in ("face", "ner"):
            assert tf_managed_memory_mb() > 10 * inference_memory_mb(name, 8)

    def test_knots_profiles_defragment_tf_pods(self):
        """A profiled TF-managed pod is provisioned for usage, not earmark."""
        from repro.workloads.djinn_tonic import make_inference_trace

        rng = np.random.default_rng(5)
        kk = KubeKnots(make_paper_cluster(num_nodes=1), make_scheduler("cbp"))
        trace = make_inference_trace("face", rng, tf_managed=True)
        kk.knots.profiles.record_trace("djinn/face", trace)
        alloc = kk.knots.profiles.provision_mb("djinn/face", trace.requested_mem_mb)
        assert alloc < 0.15 * trace.requested_mem_mb
