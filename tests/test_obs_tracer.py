"""Tests for the structured event tracer and its exporters."""

from __future__ import annotations

import json

import pytest

from repro.obs.tracer import NullTracer, SimClock, TraceError, Tracer


class TestSpanNesting:
    def test_begin_end_pairs_nest(self):
        tr = Tracer()
        tr.begin("outer")
        assert tr.depth == 1
        tr.begin("inner")
        assert tr.depth == 2
        assert tr.open_spans() == ["outer", "inner"]
        tr.end()
        assert tr.depth == 1
        tr.end()
        assert tr.depth == 0
        phases = [ev["ph"] for ev in tr.events]
        names = [ev["name"] for ev in tr.events]
        assert phases == ["B", "B", "E", "E"]
        # E events close in LIFO order: inner closes before outer.
        assert names == ["outer", "inner", "inner", "outer"]

    def test_end_without_begin_raises(self):
        tr = Tracer()
        with pytest.raises(TraceError):
            tr.end()

    def test_span_context_manager_closes_on_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tr.span("work"):
                assert tr.depth == 1
                raise RuntimeError("boom")
        assert tr.depth == 0
        assert [ev["ph"] for ev in tr.events] == ["B", "E"]

    def test_nested_span_context_managers(self):
        tr = Tracer()
        with tr.span("a"):
            with tr.span("b"):
                with tr.span("c"):
                    assert tr.open_spans() == ["a", "b", "c"]
        assert tr.depth == 0
        assert len(tr) == 6


class TestClockAndEvents:
    def test_timestamps_come_from_sim_clock(self):
        clock = SimClock(0.0)
        tr = Tracer(clock)
        tr.instant("first")
        clock.now = 42.5
        tr.instant("second")
        assert [ev["ts"] for ev in tr.events] == [0.0, 42.5]

    def test_explicit_ts_overrides_clock(self):
        tr = Tracer(SimClock(100.0))
        tr.instant("pinned", ts=7.0)
        assert tr.events[0]["ts"] == 7.0

    def test_async_spans_carry_ids(self):
        tr = Tracer()
        tr.async_begin("pod:img/a", "pod-1", ts=0.0)
        tr.async_begin("pod:img/b", "pod-2", ts=1.0)
        tr.async_end("pod:img/a", "pod-1", ts=5.0)
        tr.async_end("pod:img/b", "pod-2", ts=6.0)
        by_id: dict[str, list[str]] = {}
        for ev in tr.events:
            by_id.setdefault(ev["id"], []).append(ev["ph"])
        assert by_id == {"pod-1": ["b", "e"], "pod-2": ["b", "e"]}

    def test_counter_events(self):
        tr = Tracer()
        tr.counter("queue", {"depth": 3.0}, ts=10.0)
        ev = tr.events[0]
        assert ev["ph"] == "C"
        assert ev["args"] == {"depth": 3.0}

    def test_determinism_same_inputs_same_events(self):
        def emit(tr: Tracer) -> None:
            tr.begin("pass", args={"n": 1}, ts=0.0)
            tr.instant("oom", ts=1.0)
            tr.end(ts=2.0)

        a, b = Tracer(), Tracer()
        emit(a)
        emit(b)
        assert a.events == b.events


class TestChromeExport:
    def test_valid_chrome_trace_json(self, tmp_path):
        tr = Tracer()
        tr.begin("pass", cat="scheduler", ts=1.0)
        tr.instant("oom", cat="pod", ts=1.5)
        tr.end(ts=2.0)
        tr.async_begin("pod:x", "u1", ts=0.5)
        tr.async_end("pod:x", "u1", ts=3.0)
        path = tmp_path / "trace.json"
        n = tr.to_chrome(path)
        assert n == 5

        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert len(events) == 5
        assert payload["displayTimeUnit"] == "ms"
        for ev in events:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(ev)
        # ms -> us scaling on export, original events untouched.
        assert events[0]["ts"] == 1_000.0
        assert tr.events[0]["ts"] == 1.0

    def test_jsonl_round_trips_raw_events(self, tmp_path):
        tr = Tracer()
        tr.instant("a", ts=1.0)
        tr.counter("c", {"v": 2.0}, ts=2.0)
        path = tmp_path / "trace.jsonl"
        assert tr.to_jsonl(path) == 2
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines == tr.events


class TestNullTracer:
    def test_disabled_and_recordless(self):
        tr = NullTracer()
        assert tr.enabled is False
        tr.begin("x")
        tr.instant("y")
        tr.async_begin("z", "id")
        tr.counter("c", {"v": 1.0})
        tr.end()           # no open span, but must not raise
        with tr.span("s"):
            pass
        assert len(tr) == 0
        assert tr.depth == 0

    def test_shares_clock_protocol_with_real_tracer(self):
        clock = SimClock(5.0)
        tr = NullTracer(clock)
        assert tr.clock is clock
