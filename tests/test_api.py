"""Tests for the API server (pod store / pending queue / events)."""

from __future__ import annotations

import pytest

from repro.kube.api import APIServer, EventType
from tests.conftest import make_spec


class TestSubmission:
    def test_submit_enqueues_fifo(self):
        api = APIServer()
        a = api.submit(make_spec("a"), 0.0)
        b = api.submit(make_spec("b"), 1.0)
        assert [p.uid for p in api.pending_pods()] == [a.uid, b.uid]
        assert api.num_pending() == 2

    def test_submit_logs_event(self):
        api = APIServer()
        api.submit(make_spec(), 0.0)
        assert len(api.events_of(EventType.SUBMITTED)) == 1


class TestBinding:
    def test_bind_removes_from_queue(self):
        api = APIServer()
        pod = api.submit(make_spec(), 0.0)
        api.bind(pod, "node1", "node1/gpu0", 500.0, 1.0)
        assert api.num_pending() == 0
        assert pod.alloc_mb == 500.0
        assert pod.gpu_id == "node1/gpu0"

    def test_bind_non_pending_rejected(self):
        api = APIServer()
        pod = api.submit(make_spec(), 0.0)
        api.bind(pod, "n", "n/gpu0", 1.0, 1.0)
        with pytest.raises(ValueError):
            api.bind(pod, "n", "n/gpu0", 1.0, 2.0)

    def test_bind_preserves_queue_order_of_others(self):
        api = APIServer()
        a = api.submit(make_spec("a"), 0.0)
        b = api.submit(make_spec("b"), 0.0)
        c = api.submit(make_spec("c"), 0.0)
        api.bind(b, "n", "n/gpu0", 1.0, 1.0)
        assert [p.uid for p in api.pending_pods()] == [a.uid, c.uid]


class TestLifecycleNotifications:
    def test_oom_requeues_at_tail(self):
        api = APIServer()
        victim = api.submit(make_spec("victim"), 0.0)
        api.bind(victim, "n", "n/gpu0", 1.0, 1.0)
        waiting = api.submit(make_spec("waiting"), 2.0)
        api.notify_oom_killed(victim, 3.0)
        assert [p.uid for p in api.pending_pods()] == [waiting.uid, victim.uid]
        assert victim.restart_count == 1
        assert len(api.events_of(EventType.OOM_KILLED)) == 1
        assert len(api.events_of(EventType.REQUEUED)) == 1

    def test_succeeded_completes(self):
        api = APIServer()
        pod = api.submit(make_spec(), 0.0)
        api.bind(pod, "n", "n/gpu0", 1.0, 1.0)
        api.notify_started(pod, 2.0)
        api.notify_succeeded(pod, 10.0)
        assert api.all_done()
        assert not api.unfinished()

    def test_resize_event_updates_alloc(self):
        api = APIServer()
        pod = api.submit(make_spec(), 0.0)
        api.bind(pod, "n", "n/gpu0", 1_000.0, 1.0)
        api.notify_resized(pod, 400.0, 2.0)
        assert pod.alloc_mb == 400.0
        assert len(api.events_of(EventType.RESIZED)) == 1

    def test_all_done_false_with_pending(self):
        api = APIServer()
        api.submit(make_spec(), 0.0)
        assert not api.all_done()

    def test_pod_lookup(self):
        api = APIServer()
        pod = api.submit(make_spec(), 0.0)
        assert api.pod(pod.uid) is pod
        with pytest.raises(KeyError):
            api.pod("ghost")
