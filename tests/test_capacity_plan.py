"""Tests for :class:`repro.sim.harness.CapacityPlan` edge cases.

The generalization of ``FaultPlan`` to whole-node capacity transitions:
same-instant reclaim+restore phase ordering, reclaiming a node hosting
an unfinished gang member, and the interaction between pending capacity
events and the event loop's idle fast-forward.
"""

from __future__ import annotations

import pytest

from repro.core.schedulers import make_scheduler
from repro.scenario import make_scenario
from repro.scenario.capacity import CapacityEvent
from repro.sim.engine import EventLoop
from repro.sim.harness import (
    PHASE_FAULT,
    PHASE_REPAIR,
    CapacityPlan,
    TickHarness,
    run_until_idle,
)
from repro.sim.simulator import SimConfig, run_appmix


def make_harness(tick_ms: float = 10.0, horizon: float = 200.0):
    loop = EventLoop()
    harness = TickHarness(loop, tick_ms, lambda now: None)
    harness.every_tick(lambda now: loop.stop() if now >= horizon else None, priority=99)
    return loop, harness


class TestCapacityPlan:
    def test_events_fire_in_phase_order(self):
        loop, harness = make_harness()
        log = []
        CapacityPlan(
            harness,
            [
                CapacityEvent(30.0, "node1", "restore"),
                CapacityEvent(10.0, "node1", "drain"),
                CapacityEvent(20.0, "node1", "reclaim"),
            ],
            drain_fn=lambda n: log.append(("drain", n, loop.now)),
            reclaim_fn=lambda n: log.append(("reclaim", n, loop.now)),
            restore_fn=lambda n: log.append(("restore", n, loop.now)),
        )
        run_until_idle(loop)
        assert log == [
            ("drain", "node1", 10.0),
            ("reclaim", "node1", 20.0),
            ("restore", "node1", 30.0),
        ]

    def test_same_instant_reclaim_and_restore_nets_to_restored(self):
        """Reclaim and restore at the same instant behave like the
        same-tick fault+repair pair: the reclaim (PHASE_FAULT) fires
        first, the restore (PHASE_REPAIR) second — the node ends live."""
        loop, harness = make_harness()
        log = []
        CapacityPlan(
            harness,
            [
                CapacityEvent(20.0, "node1", "restore"),
                CapacityEvent(20.0, "node1", "reclaim"),
            ],
            drain_fn=lambda n: log.append("drain"),
            reclaim_fn=lambda n: log.append("reclaim"),
            restore_fn=lambda n: log.append("restore"),
        )
        run_until_idle(loop)
        assert log == ["reclaim", "restore"]
        assert PHASE_FAULT < PHASE_REPAIR

    def test_events_quantize_to_the_tick_grid(self):
        loop, harness = make_harness(tick_ms=10.0)
        times = []
        CapacityPlan(
            harness,
            [CapacityEvent(13.0, "node1", "drain")],
            drain_fn=lambda n: times.append(loop.now),
            reclaim_fn=lambda n: None,
            restore_fn=lambda n: None,
        )
        run_until_idle(loop)
        assert times == [20.0]

    def test_pending_counts_unfired_events(self):
        loop, harness = make_harness(horizon=50.0)
        plan = CapacityPlan(
            harness,
            [
                CapacityEvent(10.0, "node1", "drain"),
                CapacityEvent(1_000.0, "node1", "restore"),
            ],
            drain_fn=lambda n: None,
            reclaim_fn=lambda n: None,
            restore_fn=lambda n: None,
        )
        assert plan.pending == 2
        counts = []
        loop.schedule_at(25.0, lambda: counts.append(plan.pending), priority=9)
        run_until_idle(loop)
        assert counts == [1]   # drain fired, far-future restore outstanding

    def test_unknown_kind_is_rejected_at_construction(self):
        loop, harness = make_harness()
        with pytest.raises(KeyError):
            CapacityPlan(
                harness,
                [CapacityEvent(10.0, "node1", "explode")],
                drain_fn=lambda n: None,
                reclaim_fn=lambda n: None,
                restore_fn=lambda n: None,
            )

    def test_negative_times_clamp_to_zero(self):
        loop, harness = make_harness()
        times = []
        CapacityPlan(
            harness,
            [CapacityEvent(-5.0, "node1", "drain")],
            drain_fn=lambda n: times.append(loop.now),
            reclaim_fn=lambda n: None,
            restore_fn=lambda n: None,
        )
        run_until_idle(loop)
        assert times == [0.0]


class TestGangReclaimEndToEnd:
    def test_reclaimed_gang_member_requeues_and_finishes(self):
        """A diurnal dip that reclaims a node hosting gang members must
        co-evict the whole gang, requeue it, and still let every member
        finish once capacity returns."""
        result = run_appmix(
            "app-mix-1", make_scheduler("cbp"),
            duration_s=6.0, seed=9, num_nodes=8, gpus_per_node=2,
            config=SimConfig(scenario=make_scenario("diurnal-gang")),
        )
        ganged = [p for p in result.pods if p.spec.gang is not None]
        assert ganged
        restarted = [p for p in ganged if p.restart_count > 0]
        finished_after_restart = [p for p in restarted if p.done]
        # The capacity dips must actually disturb gangs in this mix,
        # and a disturbed gang must be able to recover.
        assert restarted
        assert finished_after_restart


class TestFastForwardAcrossCapacityEvents:
    @pytest.mark.parametrize("scenario_name", ["diurnal", "diurnal-gang"])
    def test_fast_forward_ab_is_bit_identical(self, scenario_name):
        """Idle fast-forward may never skip over a pending capacity
        event; with the guard in place, fast_forward on/off is pinned
        bit-identical under capacity scenarios."""
        runs = []
        for ff in (True, False):
            cfg = SimConfig(fast_forward=ff, scenario=make_scenario(scenario_name))
            runs.append(run_appmix("app-mix-1", make_scheduler("cbp"),
                                   duration_s=5.0, seed=6, num_nodes=8,
                                   config=cfg))
        a, b = runs
        assert a.makespan_ms == b.makespan_ms
        assert a.evictions == b.evictions
        assert [(p.uid, p.phase, p.started_ms, p.finished_ms, p.restart_count)
                for p in a.pods] == \
               [(p.uid, p.phase, p.started_ms, p.finished_ms, p.restart_count)
                for p in b.pods]
