"""Tests for the autocorrelation function (Eq. 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forecast.autocorr import (
    autocorrelation,
    autocorrelation_function,
    has_predictable_trend,
    peak_interval,
)


class TestAutocorrelation:
    def test_matches_manual_eq2(self, rng):
        y = rng.normal(size=50)
        mean = y.mean()
        dev = y - mean
        manual = (dev[:-3] @ dev[3:]) / (dev @ dev)
        assert autocorrelation(y, lag=3) == pytest.approx(manual)

    def test_smooth_series_positive_lag1(self):
        y = np.sin(np.linspace(0, 4 * np.pi, 200))
        assert autocorrelation(y, lag=1) > 0.9

    def test_alternating_series_negative(self):
        y = np.array([1.0, -1.0] * 20)
        assert autocorrelation(y, lag=1) == pytest.approx(-1.0, abs=0.1)

    def test_constant_series_zero(self):
        assert autocorrelation(np.full(20, 3.0), lag=1) == 0.0

    def test_short_series_zero(self):
        assert autocorrelation(np.array([1.0, 2.0]), lag=5) == 0.0

    def test_bad_lag_rejected(self):
        with pytest.raises(ValueError):
            autocorrelation(np.arange(10.0), lag=0)

    def test_white_noise_near_zero(self, rng):
        y = rng.normal(size=5_000)
        assert abs(autocorrelation(y, lag=1)) < 0.05


class TestAcfAndTrend:
    def test_acf_shape(self, rng):
        acf = autocorrelation_function(rng.normal(size=100), max_lag=10)
        assert acf.shape == (10,)

    def test_acf_first_entry_is_lag1(self, rng):
        y = rng.normal(size=80).cumsum()
        acf = autocorrelation_function(y, 5)
        assert acf[0] == pytest.approx(autocorrelation(y, 1))

    def test_predictable_trend_gate(self, rng):
        """Algorithm 1: r > 0 means forecastable."""
        trended = np.linspace(0, 1, 100) + rng.normal(0, 0.01, 100)
        assert has_predictable_trend(trended)
        assert not has_predictable_trend(np.array([1.0, -1.0] * 30))


class TestPeakInterval:
    def test_periodic_signal_interval_detected(self):
        t = np.arange(400)
        y = (np.sin(2 * np.pi * t / 40) > 0.9).astype(float)  # peaks every 40
        interval = peak_interval(y, max_lag=100)
        assert interval is not None
        assert interval == pytest.approx(40, abs=3)

    def test_aperiodic_returns_none_or_weak(self, rng):
        y = rng.normal(size=30)
        # white noise either finds nothing or a spurious weak lag;
        # require that a *strong* period is not reported
        interval = peak_interval(y)
        if interval is not None:
            acf = autocorrelation_function(y, max_lag=len(y) // 2)
            assert acf[interval - 1] < 0.5

    def test_too_short_series(self):
        assert peak_interval(np.array([1.0, 2.0, 1.0])) is None
