"""Tests for the runtime lock-order / race detector (repro.analysis.racedetect)."""

from __future__ import annotations

import threading

import pytest

from repro.analysis.racedetect import (
    RACE_INVARIANTS,
    RaceDetector,
    RaceError,
    TrackedLock,
)
from repro.obs import Observability
from repro.sim.engine import EventLoop


class TestTrackedLock:
    def test_behaves_like_a_lock(self):
        lock = RaceDetector().tracked("L")
        assert not lock.locked()
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_acquire_release_api(self):
        lock = RaceDetector().tracked("L")
        assert lock.acquire() is True
        assert lock.acquire(blocking=False) is False   # non-reentrant, like Lock
        lock.release()
        assert not lock.locked()

    def test_failed_acquire_is_not_counted(self):
        d = RaceDetector()
        lock = d.tracked("L")
        lock.acquire()
        lock.acquire(blocking=False)
        assert d.acquisitions == 1

    def test_mutual_exclusion_across_threads(self):
        d = RaceDetector()
        lock = d.tracked("L")
        counter = {"n": 0}

        def work():
            for _ in range(1_000):
                with lock:
                    counter["n"] += 1

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter["n"] == 4_000
        assert d.acquisitions == 4_000
        assert d.violations == []


class TestLockOrder:
    def test_consistent_order_is_clean(self):
        d = RaceDetector()
        a, b = d.tracked("A"), d.tracked("B")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert d.violations == []
        assert d.edges() == {"A": ("B",)}

    def test_ab_ba_cycle_is_a_potential_deadlock(self):
        d = RaceDetector()
        a, b = d.tracked("A"), d.tracked("B")
        with a:
            with b:
                pass
        with b:
            with a:          # closes B -> A -> B
                pass
        assert [v.invariant for v in d.violations] == ["lock_order"]
        assert "potential deadlock" in d.violations[0].message
        assert d.violations[0].details["cycle"] == ["B", "A", "B"]

    def test_cycle_reported_once_per_edge(self):
        d = RaceDetector()
        a, b = d.tracked("A"), d.tracked("B")
        for _ in range(5):
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        assert len(d.violations) == 1

    def test_transitive_cycle_through_three_locks(self):
        d = RaceDetector()
        a, b, c = d.tracked("A"), d.tracked("B"), d.tracked("C")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with a:          # A -> B -> C -> A
                pass
        assert [v.invariant for v in d.violations] == ["lock_order"]
        assert d.violations[0].details["cycle"] == ["C", "A", "B", "C"]

    def test_held_stack_is_per_thread(self):
        d = RaceDetector()
        a = d.tracked("A")
        seen = {}

        def probe():
            seen["inner"] = d.held_by_current_thread()

        with a:
            t = threading.Thread(target=probe)
            t.start()
            t.join()
            assert d.held_by_current_thread() == ("A",)
        assert seen["inner"] == ()


class TestOwnerThread:
    def test_first_toucher_binds_then_foreign_thread_violates(self):
        d = RaceDetector()
        guard = d.affinity("TSDB")
        guard.check("write")
        t = threading.Thread(target=lambda: guard.check("write"), name="intruder")
        t.start()
        t.join()
        (v,) = d.violations
        assert v.invariant == "owner_thread"
        assert v.details["intruder"] == "intruder"
        assert v.details["resource"] == "TSDB"

    def test_rebind_is_a_sanctioned_handoff(self):
        d = RaceDetector()
        guard = d.affinity("EventLoop")
        guard.check("schedule_at")

        def handoff():
            guard.rebind()
            guard.check("schedule_at")

        t = threading.Thread(target=handoff)
        t.start()
        t.join()
        assert d.violations == []

    def test_affinity_is_shared_per_resource(self):
        d = RaceDetector()
        assert d.affinity("TSDB") is d.affinity("TSDB")
        assert d.affinity("TSDB") is not d.affinity("Tracer")


class TestEventLoopAffinity:
    def test_cross_thread_schedule_while_running_is_reported(self):
        obs = Observability(trace=False, metrics=False, audit=False, race_detect=True)
        loop = EventLoop(obs=obs)
        race = obs.race
        assert race is not None

        def intrude():
            loop.schedule_at(5.0, lambda: None)

        def handler():
            t = threading.Thread(target=intrude, name="foreign")
            t.start()
            t.join()

        loop.schedule_at(1.0, handler)
        loop.run()
        assert [v.invariant for v in race.violations] == ["owner_thread"]
        assert race.violations[0].details["resource"] == "EventLoop"

    def test_owner_thread_scheduling_is_clean(self):
        obs = Observability(trace=False, metrics=False, audit=False, race_detect=True)
        loop = EventLoop(obs=obs)

        def handler():
            if loop.now < 5.0:
                loop.schedule(1.0, handler)

        loop.schedule(1.0, handler)
        loop.run()
        assert obs.race.violations == []

    def test_run_rebinds_ownership_to_the_running_thread(self):
        # Construct on one thread, run on another: the sanctioned pattern.
        obs = Observability(trace=False, metrics=False, audit=False, race_detect=True)
        loop = EventLoop(obs=obs)
        loop.schedule(1.0, lambda: None)
        t = threading.Thread(target=loop.run)
        t.start()
        t.join()
        assert obs.race.violations == []


class TestReporting:
    def test_unknown_invariant_rejected(self):
        with pytest.raises(ValueError, match="unknown race invariant"):
            RaceDetector().violation("nope", "x")
        assert RACE_INVARIANTS == ("lock_order", "owner_thread")

    def test_halt_mode_raises_race_error(self):
        d = RaceDetector(halt=True)
        with pytest.raises(RaceError) as exc:
            d.violation("owner_thread", "boom")
        assert exc.value.violation.invariant == "owner_thread"
        assert d.violations  # recorded even when raising

    def test_violations_land_in_the_audit_log(self):
        obs = Observability(trace=False, metrics=False, audit=True, race_detect=True)
        obs.race.violation("lock_order", "synthetic", cycle=["A", "B", "A"])
        kinds = [r.kind for r in obs.audit.records]
        assert "violation" in kinds
        record = [r for r in obs.audit.records if r.kind == "violation"][0]
        assert record.evidence["invariant"] == "lock_order"

    def test_summary_counts_by_invariant(self):
        d = RaceDetector()
        d.violation("lock_order", "a")
        d.violation("owner_thread", "b")
        d.violation("owner_thread", "c")
        assert d.summary() == {"lock_order": 1, "owner_thread": 2}

    def test_observability_off_means_no_detector(self):
        obs = Observability(trace=False, metrics=False, audit=False)
        assert obs.race is None

    def test_tracked_lock_repr_and_type(self):
        lock = RaceDetector().tracked("X")
        assert isinstance(lock, TrackedLock)
        assert "X" in repr(lock)
