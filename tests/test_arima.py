"""Tests for the AR(1)/ARIMA forecaster (Eq. 3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.forecast.arima import Arima1, fit_ar1, fit_ar1_at_lag, forecast_series


def ar1_series(phi: float, mu: float, n: int, noise: float, rng) -> np.ndarray:
    y = np.empty(n)
    y[0] = mu / (1 - phi) if phi != 1 else mu
    for i in range(1, n):
        y[i] = mu + phi * y[i - 1] + rng.normal(0, noise)
    return y


class TestFit:
    def test_recovers_known_coefficients(self, rng):
        y = ar1_series(phi=0.8, mu=0.5, n=5_000, noise=0.05, rng=rng)
        model = fit_ar1(y)
        assert model.phi == pytest.approx(0.8, abs=0.05)
        assert model.mu == pytest.approx(0.5, abs=0.15)

    def test_constant_window_persistence(self):
        model = fit_ar1(np.full(50, 7.0))
        assert model.phi == 0.0
        assert model.predict(7.0) == pytest.approx(7.0)

    def test_tiny_window_persistence(self):
        model = fit_ar1(np.array([3.0, 4.0]))
        assert model.phi == 0.0
        assert model.mu == pytest.approx(3.5)

    def test_empty_window(self):
        model = fit_ar1(np.array([]))
        assert model.n_obs == 0
        assert model.predict(1.0) == 0.0

    def test_phi_clamped_to_stationary(self, rng):
        # Explosive-looking data must not produce |phi| > 1.
        y = np.exp(np.linspace(0, 5, 30))
        assert abs(fit_ar1(y).phi) <= 1.0

    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=0, max_size=40))
    @settings(max_examples=50)
    def test_fit_never_crashes(self, ys):
        model = fit_ar1(np.asarray(ys))
        assert np.isfinite(model.predict(0.0))


class TestForecast:
    def test_multi_step_shape(self):
        model = Arima1(mu=0.0, phi=0.5, n_obs=10)
        path = model.forecast(1.0, steps=4)
        assert list(path) == [0.5, 0.25, 0.125, 0.0625]

    def test_bad_steps(self):
        with pytest.raises(ValueError):
            Arima1(0, 0.5, 10).forecast(1.0, steps=0)

    def test_forecast_series_clips(self):
        pred = forecast_series(np.linspace(0, 2, 50), steps=3, clip=(0.0, 1.0))
        assert (pred >= 0).all() and (pred <= 1).all()

    def test_forecast_tracks_rising_trend(self, rng):
        y = np.linspace(0.1, 0.5, 100) + rng.normal(0, 0.002, 100)
        pred = forecast_series(y, steps=1)[0]
        assert pred > 0.49


class TestLagK:
    def test_direct_lag_matches_truth(self, rng):
        y = ar1_series(phi=0.9, mu=0.0, n=8_000, noise=0.05, rng=rng)
        model = fit_ar1_at_lag(y, lag=10)
        assert model.phi == pytest.approx(0.9**10, abs=0.08)

    def test_falls_back_on_short_window(self):
        model = fit_ar1_at_lag(np.array([1.0, 2.0, 3.0]), lag=10)
        assert np.isfinite(model.predict(3.0))

    def test_bad_lag(self):
        with pytest.raises(ValueError):
            fit_ar1_at_lag(np.arange(10.0), lag=0)

    def test_constant_prev_segment(self):
        y = np.concatenate([np.full(10, 2.0), np.arange(5.0)])
        model = fit_ar1_at_lag(y, lag=12)
        assert np.isfinite(model.predict(4.0))
