"""Same-seed equivalence: event-driven simulators vs the reference loops.

The PR that moved both simulators onto the shared
:class:`repro.sim.engine.EventLoop` pins bit-identical outputs against
verbatim copies of the old hand-rolled time loops
(:mod:`repro.sim.reference`).  Pod UIDs come from a process-global
counter, so comparisons are positional and UID-invariant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.core.schedulers import make_scheduler
from repro.sim.dlsim import DLClusterSimulator, make_dl_policy
from repro.sim.reference import run_dl_reference, run_tick_reference
from repro.sim.simulator import DeviceFault, KubeKnotsSimulator, SimConfig
from repro.workloads.appmix import generate_appmix_workload
from repro.workloads.dlt import DLWorkloadConfig, generate_dl_workload

KK_SCHEDULERS = ["cbp", "peak-prediction", "uniform", "res-ag"]
DL_POLICIES = ["cbp-pp", "gandiva", "res-ag", "tiresias"]


def pod_signature(result):
    """UID-invariant per-pod lifecycle signature, in submission order."""
    return [
        (str(p.phase), p.submitted_ms, p.started_ms, p.finished_ms,
         p.gpu_id, p.alloc_mb, p.restart_count)
        for p in result.pods
    ]


def assert_kk_identical(ra, rb, tag):
    assert ra.makespan_ms == rb.makespan_ms, tag
    assert ra.energy_j_per_gpu == rb.energy_j_per_gpu, tag
    assert np.array_equal(ra.sample_times_ms, rb.sample_times_ms), tag
    assert set(ra.gpu_util_series) == set(rb.gpu_util_series), tag
    for gpu_id in ra.gpu_util_series:
        assert np.array_equal(ra.gpu_util_series[gpu_id], rb.gpu_util_series[gpu_id]), (tag, gpu_id)
        assert np.array_equal(ra.gpu_mem_series[gpu_id], rb.gpu_mem_series[gpu_id]), (tag, gpu_id)
    assert pod_signature(ra) == pod_signature(rb), tag
    assert (ra.oom_kills, ra.evictions, ra.resizes) == (rb.oom_kills, rb.evictions, rb.resizes), tag


class TestKubeKnotsEquivalence:
    @pytest.mark.parametrize("sched", KK_SCHEDULERS)
    def test_dense_appmix_bit_identical(self, sched):
        def build():
            return KubeKnotsSimulator(
                make_paper_cluster(num_nodes=3),
                make_scheduler(sched),
                generate_appmix_workload("app-mix-1", duration_s=2.0, seed=3),
                SimConfig(min_horizon_ms=12_000.0),
            )

        a = build()
        ra = a.run()
        rb = run_tick_reference(build())
        assert_kk_identical(ra, rb, sched)
        assert a.events_fired > 0

    def test_faults_and_cancellable_repairs_bit_identical(self):
        faults = [
            DeviceFault(at_ms=200.0, gpu_id="node1/gpu0", duration_ms=900.0),
            DeviceFault(at_ms=350.0, gpu_id="node2/gpu0", duration_ms=400.0),
            # Fault on an already-failed device: swallowed, no second repair.
            DeviceFault(at_ms=400.0, gpu_id="node1/gpu0", duration_ms=100.0),
        ]

        def build():
            return KubeKnotsSimulator(
                make_paper_cluster(num_nodes=3),
                make_scheduler("cbp"),
                generate_appmix_workload("app-mix-1", duration_s=2.0, seed=3),
                SimConfig(min_horizon_ms=12_000.0, faults=list(faults)),
            )

        assert_kk_identical(build().run(), run_tick_reference(build()), "faults")

    def test_sparse_fast_forward_bit_identical(self):
        """Stretched arrival gaps force idle spans: fast-forward must
        actually fire and stay bit-identical to the tick-by-tick loop."""

        def build():
            wl = generate_appmix_workload("app-mix-1", duration_s=0.6, seed=5)
            wl = [(at * 40.0, spec) for at, spec in wl]
            return KubeKnotsSimulator(
                make_paper_cluster(num_nodes=2),
                make_scheduler("cbp"),
                wl,
                SimConfig(min_horizon_ms=4_000.0),
            )

        a = build()
        ra = a.run()
        rb = run_tick_reference(build())
        assert_kk_identical(ra, rb, "sparse")
        assert a.fast_forwards > 0
        assert a.ticks_skipped > 0

    def test_fast_forward_off_matches_too(self):
        def build(ff):
            wl = generate_appmix_workload("app-mix-1", duration_s=0.6, seed=5)
            wl = [(at * 40.0, spec) for at, spec in wl]
            return KubeKnotsSimulator(
                make_paper_cluster(num_nodes=2),
                make_scheduler("cbp"),
                wl,
                SimConfig(min_horizon_ms=4_000.0, fast_forward=ff),
            )

        a = build(False)
        ra = a.run()
        assert a.fast_forwards == 0
        assert_kk_identical(ra, run_tick_reference(build(True)), "ff-off")


class TestDLEquivalence:
    @pytest.mark.parametrize("policy", DL_POLICIES)
    def test_dl_policies_bit_identical(self, policy):
        cfg = DLWorkloadConfig(n_training=20, n_inference=40, window_s=1200.0)

        def build():
            jobs = generate_dl_workload(cfg, seed=11)
            return DLClusterSimulator(
                jobs, make_dl_policy(policy), n_nodes=4, gpus_per_node=4
            )

        a = build()
        ra = a.run()
        rb = run_dl_reference(build())
        assert ra.horizon_s == rb.horizon_s, policy
        assert a.events_fired > 0
        sig_a = [(j.job_id, str(j.kind), j.arrival_s, j.start_s, j.finish_s,
                  j.preemptions, j.migrations) for j in ra.jobs]
        sig_b = [(j.job_id, str(j.kind), j.arrival_s, j.start_s, j.finish_s,
                  j.preemptions, j.migrations) for j in rb.jobs]
        assert sig_a == sig_b, policy


class TestSimResultCaching:
    def test_completed_and_latency_are_cached(self):
        sim = KubeKnotsSimulator(
            make_paper_cluster(num_nodes=2),
            make_scheduler("cbp"),
            generate_appmix_workload("app-mix-1", duration_s=1.0, seed=1),
            SimConfig(min_horizon_ms=8_000.0),
        )
        result = sim.run()
        assert result.completed() is result.completed()
        assert result.latency_pods() is result.latency_pods()
        assert all(p.done for p in result.completed())
