"""A/B equivalence and scale smokes for the vectorized scheduling pass.

The SoA fast paths must be *invisible*: with ``vectorized=False`` the
schedulers take the original dict/object pass, and at the paper scale
(32 nodes x 8 GPUs) every decision, sample series and energy figure
must come out bit-identical either way — including under injected
device faults.  The sanitizer pins the legacy semantics by disabling
every fast path, so sanitized runs at 256 and 1024 nodes double as
scale smokes of the slow path; a plain 1024-node run smokes the fast
one.
"""

from __future__ import annotations

import pytest

from repro.core.schedulers import make_scheduler
from repro.core.schedulers.vectorized import ArrayPassState
from repro.obs.context import Observability
from repro.sim.simulator import DeviceFault, SimConfig, run_appmix

from tests.test_sim_equivalence import assert_kk_identical

VECTORIZED_SCHEDULERS = ["cbp", "peak-prediction"]


def _run(sched, vectorized, *, nodes=32, gpus=8, duration_s=2.0, seed=3,
         horizon=10_000.0, faults=(), obs=None):
    return run_appmix(
        "app-mix-1",
        make_scheduler(sched, vectorized=vectorized),
        duration_s=duration_s,
        seed=seed,
        num_nodes=nodes,
        gpus_per_node=gpus,
        config=SimConfig(min_horizon_ms=horizon, faults=tuple(faults)),
        obs=obs,
    )


class TestPaperScaleAB:
    @pytest.mark.parametrize("sched", VECTORIZED_SCHEDULERS)
    def test_32x8_bit_identical(self, sched):
        fast = _run(sched, True)
        slow = _run(sched, False)
        assert_kk_identical(fast, slow, sched)
        assert fast.completed(), sched      # the run did real work

    def test_32x8_with_faults_bit_identical(self):
        faults = [
            DeviceFault(at_ms=300.0, gpu_id="node3/gpu1", duration_ms=800.0),
            DeviceFault(at_ms=500.0, gpu_id="node17/gpu6", duration_ms=600.0),
        ]
        fast = _run("cbp", True, faults=faults)
        slow = _run("cbp", False, faults=faults)
        assert_kk_identical(fast, slow, "faults")

    def test_fast_pass_actually_engages(self, monkeypatch):
        """Guard the A/B test against silently comparing slow vs slow."""
        built = []
        orig = ArrayPassState.__init__

        def spy(self, *args, **kwargs):
            built.append(1)
            return orig(self, *args, **kwargs)

        monkeypatch.setattr(ArrayPassState, "__init__", spy)
        _run("cbp", True, nodes=4, gpus=2, duration_s=1.0, horizon=5_000.0)
        assert built

    def test_vectorized_false_never_builds_pass_state(self, monkeypatch):
        built = []
        orig = ArrayPassState.__init__

        def spy(self, *args, **kwargs):
            built.append(1)
            return orig(self, *args, **kwargs)

        monkeypatch.setattr(ArrayPassState, "__init__", spy)
        _run("cbp", False, nodes=4, gpus=2, duration_s=1.0, horizon=5_000.0)
        assert not built


class TestScaleSmokes:
    @pytest.mark.parametrize("nodes,duration_s,horizon", [
        (256, 0.5, 1_500.0),
        (1024, 0.25, 1_000.0),
    ])
    def test_sanitized_large_cluster(self, nodes, duration_s, horizon):
        """The sanitizer forces the legacy per-object path on every node
        every tick; it must stay clean at scale."""
        obs = Observability(trace=False, metrics=False, audit=False, sanitize=True)
        result = _run("cbp", True, nodes=nodes, gpus=8,
                      duration_s=duration_s, horizon=horizon, obs=obs)
        assert obs.sanitizer.violations == []
        assert obs.sanitizer.checks > 0
        assert result.pods

    def test_1024_node_fast_path_smoke(self):
        result = _run("cbp", True, nodes=1024, gpus=8,
                      duration_s=1.0, horizon=5_000.0)
        assert len(result.energy_j_per_gpu) == 1024 * 8
        assert result.completed()
        assert all(e >= 0.0 for e in result.energy_j_per_gpu.values())
