"""Tests for the Alibaba trace synthesizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.forecast.correlation import spearman
from repro.workloads.alibaba import (
    BATCH_METRICS,
    LATENCY_METRICS,
    ArrivalProcess,
    batch_task_series,
    pareto_split,
    synthesize_batch_jobs,
    synthesize_latency_containers,
    utilization_cdfs,
)


class TestPopulations:
    def test_latency_population_shape(self):
        pop = synthesize_latency_containers(500, np.random.default_rng(0))
        assert set(pop) == set(LATENCY_METRICS)
        assert all(len(v) == 500 for v in pop.values())
        assert all((v >= 0).all() and (v <= 1).all() for v in pop.values())

    def test_batch_population_shape(self):
        pop = synthesize_batch_jobs(500, np.random.default_rng(0))
        assert set(pop) == set(BATCH_METRICS)

    def test_fig2b_cdf_targets(self):
        """Avg CPU ~47 %, half of pods under ~45 % of provisioned memory."""
        pop = synthesize_latency_containers(8_000, np.random.default_rng(0))
        assert np.mean(pop["cpu_avg"]) == pytest.approx(0.47, abs=0.04)
        assert np.median(pop["mem_avg"]) == pytest.approx(0.45, abs=0.05)
        assert np.mean(pop["mem_max"]) == pytest.approx(0.76, abs=0.05)

    def test_batch_metrics_strongly_correlated(self):
        """Observation 3: batch core/memory/load co-move strongly."""
        pop = synthesize_batch_jobs(4_000, np.random.default_rng(1))
        assert spearman(pop["core_util"], pop["mem_util"]) > 0.6
        assert spearman(pop["core_util"], pop["load_1"]) > 0.7
        assert spearman(pop["core_util"], pop["disk_io"]) < -0.2

    def test_latency_metrics_weakly_correlated(self):
        """Fig. 2a: short-lived tasks show no strong usage correlations."""
        pop = synthesize_latency_containers(4_000, np.random.default_rng(2))
        rho = spearman(pop["cpu_avg"], pop["mem_avg"])
        assert abs(rho) < 0.3

    def test_cdfs_are_monotone(self):
        pop = synthesize_latency_containers(300, np.random.default_rng(0))
        for x, f in utilization_cdfs(pop).values():
            assert np.all(np.diff(x) >= 0)
            assert np.all(np.diff(f) > 0)


class TestBatchSeries:
    def test_series_keys_and_bounds(self):
        series = batch_task_series(60.0, rng=np.random.default_rng(0))
        assert {"core_util", "mem_util", "load_1", "load_5", "load_15"} <= set(series)
        assert (series["core_util"] >= 0).all() and (series["core_util"] <= 1).all()

    def test_load_averages_track_core(self):
        series = batch_task_series(300.0, rng=np.random.default_rng(3))
        assert spearman(series["core_util"], series["load_5"]) > 0.5

    def test_memory_lags_core(self):
        """Memory follows core with a small lag (the early marker)."""
        series = batch_task_series(300.0, rng=np.random.default_rng(3))
        core, mem = series["core_util"], series["mem_util"]
        lagged = spearman(core[:-2], mem[2:])
        instant = spearman(core, mem)
        assert lagged >= instant - 0.02


class TestArrivals:
    def test_rate_approximately_respected(self):
        proc = ArrivalProcess(rate_per_s=5.0, burstiness=0.5, diurnal_amplitude=0.0,
                              rng=np.random.default_rng(0))
        arrivals = proc.sample_until(500.0)
        assert len(arrivals) == pytest.approx(2_500, rel=0.15)

    def test_arrivals_sorted_within_window(self):
        proc = ArrivalProcess(rng=np.random.default_rng(1))
        arrivals = proc.sample_until(100.0)
        assert np.all(np.diff(arrivals) >= 0)
        assert arrivals[-1] < 100.0

    def test_burstiness_raises_interarrival_cov(self):
        calm = ArrivalProcess(rate_per_s=5, burstiness=0.2, diurnal_amplitude=0.0,
                              rng=np.random.default_rng(2)).sample_until(2_000)
        bursty = ArrivalProcess(rate_per_s=5, burstiness=2.5, diurnal_amplitude=0.0,
                                rng=np.random.default_rng(2)).sample_until(2_000)
        cov = lambda a: np.std(np.diff(a)) / np.mean(np.diff(a))  # noqa: E731
        assert cov(bursty) > 2 * cov(calm)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ArrivalProcess(rate_per_s=0)
        with pytest.raises(ValueError):
            ArrivalProcess(burstiness=0)


class TestParetoSplit:
    def test_split_fraction(self):
        rng = np.random.default_rng(0)
        mask = pareto_split(20_000, rng)
        assert mask.mean() == pytest.approx(0.8, abs=0.02)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            pareto_split(10, np.random.default_rng(0), short_fraction=1.0)
