"""Sync contract of the struct-of-arrays :class:`ClusterState` mirror.

The per-object ``GPU``/``GpuNode`` model stays the source of truth;
every mutating path writes through into the flat numpy mirror the hot
paths read.  These tests pin the contract documented in
``cluster/state.py``: allocation is re-summed (bit-identical to
``free_mem_mb``), flags and samples mirror exactly, epochs bump on
scheduling-relevant transitions only, and the telemetry ring's sparse
heartbeat consumes the ``sample_dirty`` set without ever storing a
value the full requantization would not.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import make_paper_cluster
from repro.cluster.gpu import GpuSample
from repro.telemetry.matrix import MatrixTelemetry
from repro.telemetry.nvml import METRICS


@pytest.fixture
def cluster():
    return make_paper_cluster(num_nodes=3, gpus_per_node=4)


@pytest.fixture
def state(cluster):
    return cluster.state


def _gpus(cluster):
    return [gpu for node in cluster for gpu in node.gpus]


# ---------------------------------------------------------------------------
# Static layout
# ---------------------------------------------------------------------------


class TestLayout:
    def test_node_major_order_and_index(self, cluster, state):
        ids = [gpu.gpu_id for node in cluster for gpu in node.gpus]
        assert state.gpu_ids == ids
        assert all(state.index[gid] == i for i, gid in enumerate(ids))
        assert len(state) == len(ids)

    def test_node_slices_partition_the_devices(self, cluster, state):
        for (start, stop), node in zip(state.node_slices, cluster):
            assert state.gpu_ids[start:stop] == [g.gpu_id for g in node.gpus]
            assert (state.node_of[start:stop] == state.node_index[node.node_id]).all()

    def test_id_rank_reproduces_string_sort(self, state):
        ordered = sorted(state.gpu_ids)
        for i, gid in enumerate(state.gpu_ids):
            assert ordered[state.id_rank[i]] == gid

    def test_static_facts_match_objects(self, cluster, state):
        for i, gpu in enumerate(_gpus(cluster)):
            assert state.mem_capacity_mb[i] == gpu.mem_capacity_mb
            assert state.cap_total_bytes[i] == float(int(gpu.mem_capacity_mb * 1024 * 1024))
            assert state.sleep_watts[i] == gpu.power_model.sleep_watts


# ---------------------------------------------------------------------------
# Allocation write-through
# ---------------------------------------------------------------------------


class TestAllocSync:
    def test_attach_detach_resize_resum(self, cluster, state):
        gpu = _gpus(cluster)[2]
        i = state.index[gpu.gpu_id]

        gpu.attach("pod-a", 1000.0)
        gpu.attach("pod-b", 333.3)
        assert state.alloc_mb[i] == sum(c.alloc_mb for c in gpu.containers.values())
        assert state.num_containers[i] == 2

        gpu.resize("pod-a", 1500.0)
        assert state.alloc_mb[i] == sum(c.alloc_mb for c in gpu.containers.values())

        gpu.detach("pod-b")
        assert state.alloc_mb[i] == sum(c.alloc_mb for c in gpu.containers.values())
        assert state.num_containers[i] == 1

    def test_free_mb_bit_identical_to_object_path(self, cluster, state):
        # Awkward decimals: a resum and an incremental +=/-= diverge in
        # float; the mirror must match the object path's fresh sum.
        gpu = _gpus(cluster)[0]
        for k, mb in enumerate([0.1, 0.2, 1234.5678, 3.3333333]):
            gpu.attach(f"p{k}", mb)
        gpu.detach("p1")
        free = state.free_mb()
        for i, g in enumerate(_gpus(cluster)):
            assert free[i] == g.free_mem_mb

    def test_alloc_mutations_bump_owning_node_epoch_only(self, cluster, state):
        gpu = _gpus(cluster)[5]
        node_i = state.node_of[state.index[gpu.gpu_id]]
        before = state.node_epoch.copy()
        gpu.attach("pod-e", 64.0)
        delta = state.node_epoch - before
        # attach re-sums the node's allocation and clears its power
        # state, so the owning node moves (possibly more than once);
        # nobody else does.
        assert delta[node_i] >= 1
        assert delta.sum() == delta[node_i]


# ---------------------------------------------------------------------------
# Flags and samples
# ---------------------------------------------------------------------------


class TestFlagAndSampleSync:
    def test_power_and_fault_flags_write_through(self, cluster, state):
        gpu = _gpus(cluster)[1]
        i = state.index[gpu.gpu_id]
        before = state.node_epoch.copy()

        gpu.sleep()
        assert state.asleep[i]
        gpu.asleep = False
        assert not state.asleep[i]
        gpu.fail()
        assert state.failed[i]
        gpu.repair()
        assert not state.failed[i] and not state.asleep[i]
        # Each transition is scheduling-relevant: epochs moved.
        assert state.node_epoch[state.node_of[i]] > before[state.node_of[i]]

    def test_sample_mirrors_without_epoch_bump(self, cluster, state):
        gpu = _gpus(cluster)[3]
        i = state.index[gpu.gpu_id]
        before = state.node_epoch.copy()
        state.sample_dirty.clear()

        sample = GpuSample(sm_util=0.7, mem_used_mb=123.4, mem_util=0.01,
                           power_w=151.7, tx_mbps=12.0, rx_mbps=3.0,
                           num_containers=2)
        gpu.last_sample = sample

        assert state.sm_util[i] == sample.sm_util
        assert state.mem_used_mb[i] == sample.mem_used_mb
        assert state.mem_util[i] == sample.mem_util
        assert state.power_w[i] == sample.power_w
        assert state.tx_mbps[i] == sample.tx_mbps
        assert state.rx_mbps[i] == sample.rx_mbps
        assert state.sample_containers[i] == sample.num_containers
        assert state.sample_dirty == {i}
        # Samples are outputs, not state transitions: no epoch bump.
        assert (state.node_epoch == before).all()

    def test_idle_sample_is_memoized_per_power_state(self, cluster):
        gpu = _gpus(cluster)[0]
        awake = gpu.idle_sample()
        assert gpu.idle_sample() is awake
        gpu.sleep()
        asleep = gpu.idle_sample()
        assert asleep is not awake
        assert asleep.power_w < awake.power_w
        gpu.asleep = False
        assert gpu.idle_sample() is awake


# ---------------------------------------------------------------------------
# Matrix telemetry: sparse heartbeat vs full requantization
# ---------------------------------------------------------------------------


def _rand_samples(cluster, rng):
    for gpu in _gpus(cluster):
        gpu.last_sample = GpuSample(
            sm_util=float(rng.uniform(0, 1)),
            mem_used_mb=float(rng.uniform(0, gpu.mem_capacity_mb)),
            mem_util=float(rng.uniform(0, 1)),
            power_w=float(rng.uniform(25, 250)),
            tx_mbps=float(rng.uniform(0, 2000)),
            rx_mbps=float(rng.uniform(0, 2000)),
            num_containers=int(rng.integers(0, 4)),
        )


def _full_row(state):
    """The reference: full quantization of the current mirrors (what a
    fresh ring's first append computes for every device)."""
    ref = MatrixTelemetry(state, heartbeat_ms=100.0, window_ms=1_000.0)
    saved = set(state.sample_dirty)
    ref.append_from_state(ref.last_t if ref.count else 0.0)
    state.sample_dirty |= saved            # appends consume the dirty set
    return {m: ref.data[m][0].copy() for m in METRICS}


class TestSparseHeartbeat:
    def test_sparse_append_matches_full_requantization(self, cluster, state):
        rng = np.random.default_rng(7)
        ring = MatrixTelemetry(state, heartbeat_ms=100.0, window_ms=1_000.0)

        _rand_samples(cluster, rng)
        ring.append_from_state(0.0)        # first append: full path
        assert state.sample_dirty == set()

        # Move exactly one device (12 GPUs: 1 * 8 < 12 takes the sparse path).
        gpu = _gpus(cluster)[5]
        gpu.last_sample = GpuSample(sm_util=0.42, mem_used_mb=777.7,
                                    mem_util=0.05, power_w=99.9,
                                    tx_mbps=1.0, rx_mbps=2.0, num_containers=1)
        assert len(state.sample_dirty) * 8 < len(state)
        want = _full_row(state)
        ring.append_from_state(100.0)

        for metric in METRICS:
            np.testing.assert_array_equal(ring.data[metric][1], want[metric])

    def test_quiescent_heartbeat_repeats_the_row_exactly(self, cluster, state):
        rng = np.random.default_rng(11)
        ring = MatrixTelemetry(state, heartbeat_ms=100.0, window_ms=1_000.0)
        _rand_samples(cluster, rng)
        ring.append_from_state(0.0)
        ring.append_from_state(100.0)      # nothing dirty: pure row copy
        for metric in METRICS:
            np.testing.assert_array_equal(ring.data[metric][1], ring.data[metric][0])
        assert ring.version == 2

    def test_every_append_consumes_the_dirty_set(self, cluster, state):
        ring = MatrixTelemetry(state, heartbeat_ms=100.0, window_ms=1_000.0)
        _gpus(cluster)[0].last_sample = _gpus(cluster)[0].idle_sample()
        state.sample_dirty.add(0)
        ring.append_from_state(0.0)
        assert state.sample_dirty == set()
