"""Tests for the Rodinia batch workload models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.base import QoSClass
from repro.workloads.rodinia import (
    RODINIA_PROFILES,
    RODINIA_SUITE_ORDER,
    make_rodinia_trace,
    suite_timeline,
)


class TestProfiles:
    def test_all_suite_apps_have_profiles(self):
        assert set(RODINIA_SUITE_ORDER) <= set(RODINIA_PROFILES)

    def test_profile_invariants(self):
        for p in RODINIA_PROFILES.values():
            assert 0 < p.steady_sm < p.peak_sm <= 1.0
            assert 0 < p.steady_mem_mb < p.peak_mem_mb
            assert p.base_ms > 0
            assert 0 < p.peak_fraction < 0.5


class TestTraceGeneration:
    def test_unknown_app_rejected(self, rng):
        with pytest.raises(KeyError):
            make_rodinia_trace("nonexistent", rng)

    def test_trace_is_batch_class(self, rng):
        assert make_rodinia_trace("lud", rng).qos_class is QoSClass.BATCH

    def test_runtime_scales_with_problem_size(self, rng):
        short = make_rodinia_trace("kmeans", np.random.default_rng(5), scale=1.0)
        long = make_rodinia_trace("kmeans", np.random.default_rng(5), scale=10.0)
        assert long.total_ms > 5 * short.total_ms

    def test_mem_scale_multiplies_footprint(self):
        base = make_rodinia_trace("lud", np.random.default_rng(5), mem_scale=1.0)
        big = make_rodinia_trace("lud", np.random.default_rng(5), mem_scale=3.0)
        assert big.peak_mem_mb() == pytest.approx(3 * base.peak_mem_mb())

    def test_requested_headroom_overstates(self, rng):
        trace = make_rodinia_trace("lud", rng, requested_headroom=1.5)
        assert trace.requested_mem_mb == pytest.approx(min(trace.peak_mem_mb() * 1.5, 16_384))

    def test_underrequest_headroom_understates(self, rng):
        trace = make_rodinia_trace("lud", rng, requested_headroom=0.5)
        assert trace.requested_mem_mb < trace.peak_mem_mb()

    def test_same_rng_state_reproducible(self):
        a = make_rodinia_trace("heartwall", np.random.default_rng(9))
        b = make_rodinia_trace("heartwall", np.random.default_rng(9))
        assert a.total_ms == b.total_ms
        assert a.peak_mem_mb() == b.peak_mem_mb()

    def test_peak_memory_is_transient(self, rng):
        """The paper: peak residency is a few percent of runtime."""
        trace = make_rodinia_trace("mummergpu", rng, scale=10)
        p80 = trace.mem_percentile(80)
        assert p80 < 0.5 * trace.peak_mem_mb()

    def test_bandwidth_led_phases_exist(self, rng):
        """An rx burst precedes compute peaks (PP's early marker)."""
        trace = make_rodinia_trace("leukocyte", rng)
        rx = [p.demand.rx_mbps for p in trace.phases]
        assert max(rx) > 1_000.0


class TestSuiteTimeline:
    def test_boundaries_cover_all_apps(self):
        timeline = suite_timeline(np.random.default_rng(0), step_ms=1.0)
        assert len(timeline["boundaries_ms"]) == len(RODINIA_SUITE_ORDER) + 1
        assert timeline["boundaries_ms"][0] == 0.0

    def test_series_lengths_consistent(self):
        timeline = suite_timeline(np.random.default_rng(0), step_ms=1.0)
        n = len(timeline["time_ms"])
        for key in ("sm_util", "mem_used_mb", "tx_mbps", "rx_mbps"):
            assert len(timeline[key]) == n

    def test_bandwidth_median_to_peak_gap(self):
        """Fig. 3: ~400x between median and peak bandwidth."""
        timeline = suite_timeline(np.random.default_rng(42), step_ms=1.0)
        bw = timeline["rx_mbps"] + timeline["tx_mbps"]
        assert bw.max() / max(np.median(bw), 1e-9) > 50

    def test_memory_stays_on_card(self):
        timeline = suite_timeline(np.random.default_rng(0), step_ms=1.0)
        assert timeline["mem_used_mb"].max() <= 16_384
